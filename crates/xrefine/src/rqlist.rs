//! `RQSortedList` (§VI-B): the running approximate Top-2K candidate list,
//! ordered by dissimilarity, with `O(log n)` insert/evict and `O(1)`
//! membership via a side hash set.

use crate::query::RqCandidate;
use std::collections::HashSet;

/// A bounded candidate list sorted by ascending dissimilarity.
#[derive(Debug)]
pub struct RqSortedList {
    capacity: usize,
    /// Sorted ascending by (dissimilarity, keywords).
    items: Vec<RqCandidate>,
    members: HashSet<String>,
}

impl RqSortedList {
    /// `capacity` is `2K` in Algorithm 2/3.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        RqSortedList {
            capacity,
            items: Vec::with_capacity(capacity + 1),
            members: HashSet::new(),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Worst (largest) dissimilarity currently held; `+∞` while not full,
    /// so any candidate qualifies (Algorithm 2 line 12).
    pub fn admission_threshold(&self) -> f64 {
        if self.is_full() {
            self.items
                .last()
                .map(|c| c.dissimilarity)
                .unwrap_or(f64::INFINITY)
        } else {
            f64::INFINITY
        }
    }

    /// `hasRQ`: membership by canonical keyword set.
    pub fn contains(&self, rq: &RqCandidate) -> bool {
        self.members.contains(&rq.canonical())
    }

    /// Dissimilarity of the `k`-th best candidate (1-based), if present —
    /// the short-list-eager stop condition reads this.
    pub fn kth_dissimilarity(&self, k: usize) -> Option<f64> {
        self.items.get(k.checked_sub(1)?).map(|c| c.dissimilarity)
    }

    /// Attempts to insert; returns `true` if the candidate was admitted.
    /// Duplicates (same keyword set) are rejected; when full, a candidate
    /// strictly better than the worst evicts it.
    pub fn insert(&mut self, rq: RqCandidate) -> bool {
        if self.contains(&rq) {
            return false;
        }
        if self.is_full() && rq.dissimilarity >= self.admission_threshold() {
            return false;
        }
        let key = rq.canonical();
        let pos = self
            .items
            .partition_point(|c| (c.dissimilarity, &c.keywords) < (rq.dissimilarity, &rq.keywords));
        self.items.insert(pos, rq);
        self.members.insert(key);
        if self.items.len() > self.capacity {
            let evicted = self.items.pop().expect("over capacity");
            self.members.remove(&evicted.canonical());
        }
        true
    }

    pub fn iter(&self) -> impl Iterator<Item = &RqCandidate> {
        self.items.iter()
    }

    /// Consumes the list, yielding candidates in ascending dissimilarity.
    pub fn into_vec(self) -> Vec<RqCandidate> {
        self.items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rq(words: &[&str], ds: f64) -> RqCandidate {
        RqCandidate::new(words.iter().map(|s| s.to_string()).collect(), ds)
    }

    #[test]
    fn insert_keeps_sorted_order() {
        let mut l = RqSortedList::new(4);
        assert!(l.insert(rq(&["c"], 3.0)));
        assert!(l.insert(rq(&["a"], 1.0)));
        assert!(l.insert(rq(&["b"], 2.0)));
        let ds: Vec<f64> = l.iter().map(|c| c.dissimilarity).collect();
        assert_eq!(ds, [1.0, 2.0, 3.0]);
        assert_eq!(l.kth_dissimilarity(2), Some(2.0));
        assert_eq!(l.kth_dissimilarity(9), None);
    }

    #[test]
    fn duplicates_rejected() {
        let mut l = RqSortedList::new(4);
        assert!(l.insert(rq(&["x", "y"], 2.0)));
        assert!(!l.insert(rq(&["y", "x"], 1.0))); // same set
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn eviction_at_capacity() {
        let mut l = RqSortedList::new(2);
        l.insert(rq(&["a"], 1.0));
        l.insert(rq(&["b"], 2.0));
        assert!(l.is_full());
        assert_eq!(l.admission_threshold(), 2.0);
        // worse candidate rejected
        assert!(!l.insert(rq(&["c"], 3.0)));
        // better evicts the worst
        assert!(l.insert(rq(&["d"], 0.5)));
        let kws: Vec<&str> = l.iter().map(|c| c.keywords[0].as_str()).collect();
        assert_eq!(kws, ["d", "a"]);
        // evicted member can be re-inserted later
        assert!(!l.contains(&rq(&["b"], 2.0)));
    }

    #[test]
    fn threshold_is_infinite_until_full() {
        let mut l = RqSortedList::new(3);
        assert_eq!(l.admission_threshold(), f64::INFINITY);
        l.insert(rq(&["a"], 5.0));
        assert_eq!(l.admission_threshold(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        RqSortedList::new(0);
    }
}

//! The pluggable index read path.
//!
//! [`IndexReader`] is the storage-agnostic contract the query layers
//! (SLCA, refinement, ranking) consume: vocabulary lookup, frequency
//! statistics, co-occurrence counts and posting-list acquisition. Two
//! backends implement it — [`crate::InMemoryIndex`] (everything resident)
//! and [`crate::KvBackedIndex`] (lists materialized lazily from a kvstore
//! through an LRU byte-budget cache).
//!
//! [`ListHandle`] is the currency between the backends and the
//! algorithms: a cheap, clonable, `Arc`-shared view over a decoded
//! posting list. Handles stay valid after cache eviction (the `Arc`
//! keeps the decoded list alive), so scans never observe a list
//! disappearing under them.

use crate::postings::{Posting, PostingList};
use crate::stats::{KeywordId, KeywordTable, TypeStats};
use std::ops::Range;
use std::sync::{Arc, OnceLock};
use xmldom::{Dewey, Document, NodeTypeId};

/// A shared, immutable view over (a contiguous range of) a decoded
/// posting list.
///
/// Handles deref to `[Posting]`, so every slice-shaped algorithm works on
/// them unchanged; [`ListHandle::slice`] produces sub-views that share
/// the same decoded allocation.
#[derive(Debug, Clone)]
pub struct ListHandle {
    list: Arc<PostingList>,
    start: usize,
    end: usize,
}

impl ListHandle {
    /// A handle over the whole of `list`.
    pub fn new(list: Arc<PostingList>) -> Self {
        let end = list.len();
        ListHandle {
            list,
            start: 0,
            end,
        }
    }

    /// A handle over an owned vector of postings (test/bridge helper).
    pub fn from_postings(postings: Vec<Posting>) -> Self {
        ListHandle::new(Arc::new(PostingList::from_sorted(postings)))
    }

    /// The canonical empty handle (shared allocation).
    pub fn empty() -> Self {
        static EMPTY: OnceLock<Arc<PostingList>> = OnceLock::new();
        ListHandle::new(Arc::clone(
            EMPTY.get_or_init(|| Arc::new(PostingList::new())),
        ))
    }

    /// The postings visible through this handle.
    pub fn postings(&self) -> &[Posting] {
        &self.list.as_slice()[self.start..self.end]
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this handle (range is relative to this view). The
    /// returned handle shares the decoded allocation.
    pub fn slice(&self, range: Range<usize>) -> Self {
        assert!(range.start <= range.end && range.end <= self.len());
        ListHandle {
            list: Arc::clone(&self.list),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Index of the first visible posting `>= target` (view-relative).
    pub fn lower_bound(&self, target: &Dewey) -> usize {
        self.postings().partition_point(|p| p.dewey < *target)
    }

    /// View-relative range of postings inside `root`'s subtree
    /// (including `root` itself).
    pub fn partition_range(&self, root: &Dewey) -> Range<usize> {
        let ps = self.postings();
        let start = self.lower_bound(root);
        let end = start + ps[start..].partition_point(|p| root.is_ancestor_or_self_of(&p.dewey));
        start..end
    }
}

impl Default for ListHandle {
    fn default() -> Self {
        ListHandle::empty()
    }
}

impl std::ops::Deref for ListHandle {
    type Target = [Posting];

    fn deref(&self) -> &[Posting] {
        self.postings()
    }
}

impl AsRef<[Posting]> for ListHandle {
    fn as_ref(&self) -> &[Posting] {
        self.postings()
    }
}

/// Storage-agnostic read access to an inverted index.
///
/// List acquisition is fallible (a disk-backed reader can hit I/O errors
/// or corrupt pages); in-memory backends never fail. Statistics access
/// is infallible because every backend loads the (small) statistic
/// tables up front.
pub trait IndexReader: Send + Sync {
    /// The indexed document.
    fn document(&self) -> &Arc<Document>;

    /// The keyword vocabulary.
    fn vocabulary(&self) -> &KeywordTable;

    /// Per-node-type frequency statistics.
    fn stats(&self) -> &TypeStats;

    /// Acquires the posting list for a keyword id.
    fn list_handle_by_id(&self, k: KeywordId) -> kvstore::Result<ListHandle>;

    /// Joint containment count `|{t-typed nodes containing ki and kj}|`
    /// (Formula 8's numerator). Storage errors degrade to `0` — the
    /// count only weights ranking, never correctness.
    fn co_occur(&self, t: NodeTypeId, ki: KeywordId, kj: KeywordId) -> u64;

    /// Resolves a keyword to its id, if indexed.
    fn keyword_id(&self, keyword: &str) -> Option<KeywordId> {
        self.vocabulary().get(keyword)
    }

    /// Acquires the posting list for a keyword; unknown keywords yield
    /// the empty handle.
    fn list_handle(&self, keyword: &str) -> kvstore::Result<ListHandle> {
        match self.keyword_id(keyword) {
            Some(k) => self.list_handle_by_id(k),
            None => Ok(ListHandle::empty()),
        }
    }

    /// True when the keyword occurs in the document.
    fn contains_keyword(&self, keyword: &str) -> bool {
        self.keyword_id(keyword).is_some()
    }

    /// List-cache counters, for backends that cache lazily materialized
    /// lists (`None` for fully resident backends). Serving drivers use
    /// this to report cache effectiveness without downcasting.
    fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        None
    }

    /// What is wrong with this keyword's on-disk statistics, if its
    /// store was damaged (see `KvBackedIndex`'s lenient open). Resident
    /// backends are never damaged. Query layers use this to report
    /// degraded ranking instead of failing or silently mis-ranking.
    fn keyword_damage(&self, _k: KeywordId) -> Option<&str> {
        None
    }
}

// The whole query path is built on shared readers: one engine, many
// serving threads. Keep the trait object itself `Send + Sync` — if this
// stops compiling, a backend grew thread-unsafe state.
const _: () = {
    fn _assert_send_sync<T: Send + Sync + ?Sized>() {}
    fn _check() {
        _assert_send_sync::<dyn IndexReader>();
    }
};

/// Distinct `t`-typed ancestors-or-self of the postings, in document
/// order — the denominator sets of the co-occurrence statistics. Shared
/// by both backends.
pub fn typed_ancestors_in(doc: &Document, postings: &[Posting], t: NodeTypeId) -> Vec<Dewey> {
    let types = doc.node_types();
    let t_path = types.path(t);
    let t_len = t_path.len();
    let mut out: Vec<Dewey> = Vec::new();
    for p in postings {
        if p.dewey.len() < t_len {
            continue;
        }
        let p_path = types.path(p.node_type);
        if p_path[..t_len] != *t_path {
            continue;
        }
        let anc = Dewey::new(p.dewey.components()[..t_len].to_vec()).expect("non-empty prefix");
        if out.last() != Some(&anc) {
            out.push(anc);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::NodeTypeId;

    fn ps(labels: &[&str]) -> Vec<Posting> {
        labels
            .iter()
            .map(|s| Posting::new(s.parse().unwrap(), NodeTypeId(0)))
            .collect()
    }

    #[test]
    fn handle_views_share_the_allocation() {
        let h = ListHandle::from_postings(ps(&["0.0.0", "0.0.1", "0.1.0", "0.1.2", "0.2"]));
        assert_eq!(h.len(), 5);
        let sub = h.slice(1..4);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub[0].dewey.to_string(), "0.0.1");
        // sub-slicing composes and stays view-relative
        let subsub = sub.slice(1..3);
        assert_eq!(subsub[0].dewey.to_string(), "0.1.0");
        assert_eq!(subsub.len(), 2);
    }

    #[test]
    fn partition_range_is_view_relative() {
        let h = ListHandle::from_postings(ps(&["0.0.0", "0.0.1", "0.1.0", "0.1.2", "0.2"]));
        let root: Dewey = "0.1".parse().unwrap();
        assert_eq!(h.partition_range(&root), 2..4);
        let sub = h.slice(2..5);
        assert_eq!(sub.partition_range(&root), 0..2);
    }

    #[test]
    fn empty_handle_is_shared_and_empty() {
        let a = ListHandle::empty();
        let b = ListHandle::default();
        assert!(a.is_empty() && b.is_empty());
        assert_eq!(a.lower_bound(&"0.1".parse().unwrap()), 0);
    }
}

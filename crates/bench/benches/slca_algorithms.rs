//! Criterion bench: the four SLCA algorithms over real posting lists of
//! the synthetic DBLP corpus (frequent keyword x rare keyword — the
//! length asymmetry the eager/multiway algorithms exploit).

use bench::dblp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use invindex::{Index, Posting};
use std::hint::black_box;

// Monomorphic shims: the slca entry points are generic over the list
// type, so they no longer coerce to a higher-ranked fn pointer directly.
fn stack(l: &[&[Posting]]) -> Vec<xmldom::Dewey> {
    slca::slca_stack(l)
}
fn scan_eager(l: &[&[Posting]]) -> Vec<xmldom::Dewey> {
    slca::slca_scan_eager(l)
}
fn indexed_lookup_eager(l: &[&[Posting]]) -> Vec<xmldom::Dewey> {
    slca::slca_indexed_lookup_eager(l)
}
fn multiway(l: &[&[Posting]]) -> Vec<xmldom::Dewey> {
    slca::slca_multiway(l)
}

fn bench_slca(c: &mut Criterion) {
    let doc = dblp(0.25);
    let index = Index::build(doc);

    // "data" is rank-0 Zipf (huge list); "skyline" mid-rank; "john" a name.
    let cases: Vec<(&str, Vec<&str>)> = vec![
        ("frequent_pair", vec!["data", "query"]),
        ("skewed_pair", vec!["data", "skyline"]),
        ("triple", vec!["xml", "keyword", "search"]),
    ];

    for (label, kws) in cases {
        let lists: Vec<&[Posting]> = kws
            .iter()
            .map(|k| index.list(k).map(|l| l.as_slice()).unwrap_or(&[]))
            .collect();
        let mut group = c.benchmark_group(format!("slca_{label}"));
        for (name, f) in [
            ("stack", stack as fn(&[&[Posting]]) -> Vec<xmldom::Dewey>),
            ("scan_eager", scan_eager),
            ("indexed_lookup_eager", indexed_lookup_eager),
            ("multiway", multiway),
        ] {
            group.bench_with_input(BenchmarkId::from_parameter(name), &lists, |b, l| {
                b.iter(|| black_box(f(l)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_slca);
criterion_main!(benches);

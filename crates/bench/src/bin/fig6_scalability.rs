//! Figure 6: Top-3 refinement time over data sets of increasing size
//! (20% up to 200% of the DBLP corpus), for Partition and SLE.
//!
//! Expected shape (paper §VIII-B): both near-linear in the data size;
//! SLE shows a visible jump somewhere in the 60%→80% step because its
//! cost depends on how early the final Top-K RQs are discovered.
//!
//! Corpora are rendered by the streaming XML writer and ingested with
//! the streaming structural-index pipeline (`invindex::build_streaming`)
//! rather than DOM-first parsing — the two produce identical indexes,
//! and the streaming path's memory profile is what makes the >100%
//! sizes practical in one run.

use bench::{dblp_config, engine_from_index, f3, time_ms, Table};
use datagen::{generate_workload, write_dblp_xml, PerturbKind, WorkloadConfig};
use invindex::build_streaming;
use xrefine::{Algorithm, Query};

fn main() {
    let mut t = Table::new(&["data size", "elements", "Partition (ms)", "SLE (ms)"]);
    for pct in [20u32, 40, 60, 80, 100, 150, 200] {
        let cfg = dblp_config().scaled(pct as f64 / 100.0);
        let xml = String::from_utf8(write_dblp_xml(&cfg, Vec::new()).expect("render corpus"))
            .expect("utf8 corpus");
        let index = build_streaming(&xml, 4).expect("streaming ingest");
        let doc = index.document().clone();
        let elements = doc.len();
        let workload: Vec<_> = generate_workload(
            &doc,
            &WorkloadConfig {
                per_kind: 11,
                ..Default::default()
            },
        )
        .into_iter()
        .filter(|q| q.kind != PerturbKind::None)
        .take(40)
        .collect();

        let mut e = engine_from_index(index, Algorithm::Partition, 3);
        let tp = time_ms(
            || {
                for wq in &workload {
                    std::hint::black_box(
                        e.answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
                            .expect("query answered"),
                    );
                }
            },
            2,
        ) / workload.len() as f64;
        e.config_mut().algorithm = Algorithm::ShortListEager;
        let ts = time_ms(
            || {
                for wq in &workload {
                    std::hint::black_box(
                        e.answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
                            .expect("query answered"),
                    );
                }
            },
            2,
        ) / workload.len() as f64;
        t.row(vec![
            format!("{pct}%"),
            format!("{elements}"),
            f3(tp),
            f3(ts),
        ]);
    }
    println!("== Figure 6: avg per-query Top-3 refinement time vs data size ==\n");
    t.print();
}

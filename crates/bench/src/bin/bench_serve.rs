//! Serving-path load bench: drives an in-process `xserve` server with a
//! closed loop (capacity probe), an open loop at a multiple of that
//! capacity (overload: shedding + tail latency), and a drain check
//! (in-flight requests across `begin_drain` must all be answered).
//! Emits `results/BENCH_serve.json` with qps, p50/p99/p999 (shared
//! nearest-rank `bench::percentile`), shed rate, the `serve_*` metric
//! deltas, and — under `store` — the at-rest footprint of the served
//! corpus: compressed (v4) vs uncompressed (v3) store bytes and cache
//! resident bytes at a fixed budget (`bench::store_footprint`).
//!
//! Knobs (environment): `SERVE_BENCH_SECS` per-phase duration (default
//! 2), `SERVE_BENCH_CONNS` closed-loop connections (default 8),
//! `SERVE_OVERLOAD_FACTOR` open-loop rate multiplier (default 3.0),
//! `SERVE_BENCH_FRACTION` DBLP corpus scale (default 0.02),
//! `SERVE_QUEUE_CAP` server queue capacity (default 32),
//! `SERVE_BENCH_CACHE_BYTES` footprint cache budget (default 32768).

use bench::{dblp, percentile, store_footprint};
use datagen::{generate_workload, WorkloadConfig};
use invindex::Index;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use xrefine::{EngineConfig, XRefineEngine};
use xserve::{EngineService, ServeConfig};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Minimal keep-alive HTTP client for loopback load generation.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            stream,
            buf: Vec::with_capacity(4096),
        })
    }

    fn send(&mut self, target: &str) -> io::Result<()> {
        write!(self.stream, "GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n")
    }

    /// Reads one response; returns (status, peer_will_close).
    fn read_response(&mut self) -> io::Result<(u16, bool)> {
        let mut tmp = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos + 4;
            }
            let n = self.stream.read(&mut tmp)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            self.buf.extend_from_slice(&tmp[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_ascii_lowercase();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
        let close = head.contains("connection: close");
        let clen: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("content-length:"))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0);
        while self.buf.len() < head_end + clen {
            let n = self.stream.read(&mut tmp)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-body",
                ));
            }
            self.buf.extend_from_slice(&tmp[..n]);
        }
        self.buf.drain(..head_end + clen);
        Ok((status, close))
    }

    fn get(&mut self, target: &str) -> io::Result<(u16, bool)> {
        self.send(target)?;
        self.read_response()
    }
}

/// Conservative query-string encoding (words from datagen are ASCII,
/// but the encoder must not depend on that).
fn encode_query(q: &str) -> String {
    let mut out = String::with_capacity(q.len());
    for b in q.bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

#[derive(Default)]
struct LoopTally {
    ok: u64,
    shed: u64,
    timeouts: u64,
    http_other: u64,
    conn_errors: u64,
    latencies: Vec<Duration>,
}

impl LoopTally {
    fn merge(&mut self, other: LoopTally) {
        self.ok += other.ok;
        self.shed += other.shed;
        self.timeouts += other.timeouts;
        self.http_other += other.http_other;
        self.conn_errors += other.conn_errors;
        self.latencies.extend(other.latencies);
    }

    fn record(&mut self, status: u16, latency: Duration) {
        match status {
            200 => {
                self.ok += 1;
                self.latencies.push(latency);
            }
            503 => self.shed += 1,
            504 => self.timeouts += 1,
            _ => self.http_other += 1,
        }
    }
}

fn targets(queries: &[String]) -> Vec<String> {
    queries
        .iter()
        .map(|q| format!("/query?q={}", encode_query(q)))
        .collect()
}

/// Closed loop: `conns` connections each issue the next request as soon
/// as the previous one is answered. Measures delivered capacity.
fn closed_loop(addr: SocketAddr, targets: &[String], conns: usize, secs: f64) -> LoopTally {
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let next = AtomicU64::new(0);
    let mut total = LoopTally::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|_| {
                let next = &next;
                s.spawn(move || {
                    let mut tally = LoopTally::default();
                    let mut client = None;
                    while Instant::now() < deadline {
                        let c = match client.as_mut() {
                            Some(c) => c,
                            None => match Client::connect(addr) {
                                Ok(c) => {
                                    client = Some(c);
                                    client.as_mut().expect("just set")
                                }
                                Err(_) => {
                                    tally.conn_errors += 1;
                                    continue;
                                }
                            },
                        };
                        let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                        let target = &targets[i % targets.len()];
                        let t0 = Instant::now();
                        match c.get(target) {
                            Ok((status, close)) => {
                                tally.record(status, t0.elapsed());
                                if close {
                                    client = None;
                                }
                            }
                            Err(_) => {
                                tally.conn_errors += 1;
                                client = None;
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        for h in handles {
            total.merge(h.join().expect("closed-loop thread"));
        }
    });
    total
}

/// Open loop: requests fire on a fixed schedule (`rate` per second)
/// regardless of responses — the arrival process servers actually face.
/// Returns the tally plus the attempted count.
fn open_loop(
    addr: SocketAddr,
    targets: &[String],
    rate: f64,
    senders: usize,
    secs: f64,
) -> (LoopTally, u64) {
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs_f64(secs);
    let next = AtomicU64::new(0);
    let attempted = AtomicU64::new(0);
    let mut total = LoopTally::default();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..senders)
            .map(|_| {
                let next = &next;
                let attempted = &attempted;
                s.spawn(move || {
                    let mut tally = LoopTally::default();
                    let mut client = None;
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let sched = t0 + Duration::from_secs_f64(i as f64 / rate);
                        if sched >= deadline {
                            break;
                        }
                        let now = Instant::now();
                        if sched > now {
                            std::thread::sleep(sched - now);
                        }
                        attempted.fetch_add(1, Ordering::Relaxed);
                        let c = match client.as_mut() {
                            Some(c) => c,
                            None => match Client::connect(addr) {
                                Ok(c) => {
                                    client = Some(c);
                                    client.as_mut().expect("just set")
                                }
                                Err(_) => {
                                    tally.conn_errors += 1;
                                    continue;
                                }
                            },
                        };
                        let target = &targets[i as usize % targets.len()];
                        let t = Instant::now();
                        match c.get(target) {
                            Ok((status, close)) => {
                                tally.record(status, t.elapsed());
                                if close {
                                    client = None;
                                }
                            }
                            Err(_) => {
                                tally.conn_errors += 1;
                                client = None;
                            }
                        }
                    }
                    tally
                })
            })
            .collect();
        for h in handles {
            total.merge(h.join().expect("open-loop thread"));
        }
    });
    (total, attempted.load(Ordering::Relaxed))
}

/// Drain check: synchronous clients keep one request in flight each;
/// drain begins mid-run; every request *fully sent* before the drain
/// instant must receive a response (the zero-dropped-in-flight
/// invariant). Returns (dropped_inflight, answered_before_or_during,
/// stragglers_reported_by_join).
fn drain_check(
    service: Arc<EngineService>,
    targets: &[String],
    clients: usize,
) -> (u64, u64, usize) {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 64,
        max_connections: 64,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_secs(5),
        request_timeout: Duration::from_secs(5),
        drain_grace: Duration::from_secs(10),
    };
    let svc: Arc<dyn xserve::QueryService> = service;
    let handle = xserve::start(config, svc).expect("drain-check server");
    let addr = handle.addr();
    let draining = Arc::new(AtomicBool::new(false));
    let drain_at: Arc<Mutex<Option<Instant>>> = Arc::new(Mutex::new(None));
    let dropped = AtomicU64::new(0);
    let answered = AtomicU64::new(0);

    std::thread::scope(|s| {
        for tid in 0..clients {
            let draining = Arc::clone(&draining);
            let drain_at = Arc::clone(&drain_at);
            let dropped = &dropped;
            let answered = &answered;
            let targets = &targets;
            s.spawn(move || {
                let mut i = tid;
                'conns: loop {
                    let mut client = match Client::connect(addr) {
                        Ok(c) => c,
                        // Listener gone: drain reached the accept path.
                        Err(_) => break,
                    };
                    loop {
                        let target = &targets[i % targets.len()];
                        i += clients;
                        if client.send(target).is_err() {
                            // Send failed ⇒ the request never fully
                            // reached the server; not an in-flight drop.
                            continue 'conns;
                        }
                        let sent_at = Instant::now();
                        match client.read_response() {
                            Ok((_, close)) => {
                                answered.fetch_add(1, Ordering::Relaxed);
                                if close {
                                    if draining.load(Ordering::SeqCst) {
                                        break 'conns;
                                    }
                                    continue 'conns;
                                }
                            }
                            Err(_) => {
                                let t_drain = *drain_at.lock().expect("drain_at");
                                let before_drain = t_drain.map(|t| sent_at <= t).unwrap_or(true);
                                if before_drain {
                                    // Fully sent before drain began and
                                    // never answered: a dropped
                                    // in-flight request.
                                    dropped.fetch_add(1, Ordering::Relaxed);
                                }
                                continue 'conns;
                            }
                        }
                        if draining.load(Ordering::SeqCst) {
                            // Don't start new work into a draining
                            // server forever; one tail request already
                            // exercised the race window.
                            break 'conns;
                        }
                    }
                }
            });
        }
        std::thread::sleep(Duration::from_millis(300));
        *drain_at.lock().expect("drain_at") = Some(Instant::now());
        draining.store(true, Ordering::SeqCst);
        handle.begin_drain();
    });
    let stragglers = handle.join();
    (
        dropped.load(Ordering::Relaxed),
        answered.load(Ordering::Relaxed),
        stragglers,
    )
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1000.0
}

/// `{p50, p99, p999, max}` JSON fragment over an unsorted latency list.
fn latency_json(latencies: &mut [Duration]) -> String {
    latencies.sort_unstable();
    let max = latencies.last().copied().unwrap_or(Duration::ZERO);
    format!(
        "{{\"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"p999_ms\": {:.3}, \"max_ms\": {:.3}}}",
        ms(percentile(latencies, 0.50)),
        ms(percentile(latencies, 0.99)),
        ms(percentile(latencies, 0.999)),
        ms(max),
    )
}

fn main() {
    let secs = env_f64("SERVE_BENCH_SECS", 2.0);
    let conns = env_usize("SERVE_BENCH_CONNS", 8);
    let overload = env_f64("SERVE_OVERLOAD_FACTOR", 3.0);
    let fraction = env_f64("SERVE_BENCH_FRACTION", 0.02);
    let queue_cap = env_usize("SERVE_QUEUE_CAP", 32);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_serve.json".to_string());

    let doc = dblp(fraction);
    let keyword_sets: Vec<Vec<String>> = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 3,
            ..Default::default()
        },
    )
    .into_iter()
    .map(|q| q.keywords)
    .collect();
    let queries: Vec<String> = keyword_sets.iter().map(|k| k.join(" ")).collect();
    let targets = targets(&queries);
    println!(
        "corpus: {} nodes; workload: {} queries; {conns} conn(s); {secs}s per phase",
        doc.len(),
        queries.len()
    );

    // At-rest footprint of the served corpus, measured before the
    // metric snapshot so the warm-up pass stays out of the serve-phase
    // counter deltas.
    let cache_budget = env_usize("SERVE_BENCH_CACHE_BYTES", 32 * 1024);
    let footprint = store_footprint(&Index::build(Arc::clone(&doc)), &keyword_sets, cache_budget);
    println!(
        "store: v3 {} B, v4 {} B ({:.2}x smaller); cache resident {} B of {} B (hit rate {:.3})",
        footprint.v3_bytes,
        footprint.v4_bytes,
        footprint.v3_bytes as f64 / footprint.v4_bytes.max(1) as f64,
        footprint.cache.cached_bytes,
        cache_budget,
        footprint.cache_hit_rate(),
    );

    let engine = Arc::new(XRefineEngine::from_document(
        Arc::clone(&doc),
        EngineConfig::default(),
    ));
    let service = Arc::new(EngineService::new(Arc::clone(&engine)));

    // Two query workers makes overload reachable without a giant corpus:
    // the bench exercises admission control, not engine throughput.
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: queue_cap,
        max_connections: 512,
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(5),
        request_timeout: Duration::from_secs(2),
        drain_grace: Duration::from_secs(10),
    };
    let before = obs::global().snapshot();
    let svc: Arc<dyn xserve::QueryService> = Arc::clone(&service) as Arc<dyn xserve::QueryService>;
    let handle = xserve::start(config, svc).expect("bench server");
    let addr = handle.addr();
    println!("server on {addr}");

    // Phase 1 — closed loop: delivered capacity under well-behaved load.
    let mut closed = closed_loop(addr, &targets, conns, secs);
    let closed_qps = closed.ok as f64 / secs;
    println!(
        "closed loop: {} ok ({closed_qps:.1} q/s), {} shed, {} errors",
        closed.ok, closed.shed, closed.conn_errors
    );

    // Phase 2 — open loop at `overload`× the measured capacity.
    let rate = (closed_qps * overload).max(50.0);
    let senders = (conns * 4).max(8);
    let (mut open, attempted) = open_loop(addr, &targets, rate, senders, secs);
    let shed_rate = if attempted > 0 {
        open.shed as f64 / attempted as f64
    } else {
        0.0
    };
    println!(
        "open loop @ {rate:.0} q/s target: {attempted} attempted, {} ok, {} shed ({:.1}%), {} timeouts, {} errors",
        open.ok,
        open.shed,
        shed_rate * 100.0,
        open.timeouts,
        open.conn_errors
    );

    let stragglers_main = handle.join();
    println!("main server drained ({stragglers_main} stragglers)");

    // Phase 3 — drain under load on a fresh server.
    let (dropped, drain_answered, drain_stragglers) =
        drain_check(Arc::clone(&service), &targets, 4);
    println!(
        "drain check: {drain_answered} answered, {dropped} dropped in-flight, {drain_stragglers} stragglers"
    );

    let metrics = obs::global().snapshot().delta_since(&before);
    let json = format!(
        "{{\n  \"corpus_nodes\": {},\n  \"workload_queries\": {},\n  \"phase_secs\": {:.1},\n  \
         \"closed_loop\": {{\"connections\": {}, \"requests_ok\": {}, \"qps\": {:.2}, \"latency\": {}}},\n  \
         \"open_loop\": {{\"target_qps\": {:.1}, \"senders\": {}, \"attempted\": {}, \"ok\": {}, \
         \"shed\": {}, \"timeouts\": {}, \"http_other\": {}, \"conn_errors\": {}, \
         \"shed_rate\": {:.4}, \"delivered_qps\": {:.2}, \"latency\": {}}},\n  \
         \"drain\": {{\"answered\": {}, \"dropped_inflight\": {}, \"stragglers\": {}}},\n  \
         \"store\": {},\n  \
         \"metrics\": {}\n}}\n",
        doc.len(),
        queries.len(),
        secs,
        conns,
        closed.ok,
        closed_qps,
        latency_json(&mut closed.latencies),
        rate,
        senders,
        attempted,
        open.ok,
        open.shed,
        open.timeouts,
        open.http_other,
        open.conn_errors,
        shed_rate,
        open.ok as f64 / secs,
        latency_json(&mut open.latencies),
        drain_answered,
        dropped,
        drain_stragglers,
        footprint.json(),
        metrics.render_json(),
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("wrote {out_path}");

    if dropped > 0 || drain_stragglers > 0 {
        eprintln!("DRAIN VIOLATION: dropped={dropped} stragglers={drain_stragglers}");
        std::process::exit(1);
    }
}

//! The stack-based SLCA algorithm (\[3\]; the basis of the paper's
//! Algorithm 1).
//!
//! The merged stream of all keyword lists is consumed in document order.
//! The stack mirrors the Dewey components of the most recent node; each
//! entry carries a witness bitset: `keywords[i]` is true when the subtree
//! of the node the entry denotes contains keyword `i`. When an entry is
//! popped with all bits set, the node it denotes is an SLCA, and its
//! witness is *not* propagated to its parent (preventing every ancestor
//! from matching too); partial witnesses propagate upward.

use crate::common::minimal_candidates;
use invindex::Posting;
use xmldom::Dewey;

struct Entry {
    component: u32,
    witness: Vec<bool>,
}

/// Stack-based SLCA over `k` posting lists.
pub fn slca_stack<S: AsRef<[Posting]>>(lists: &[S]) -> Vec<Dewey> {
    obs::counter!("slca_invocations_total").inc();
    let lists: Vec<&[Posting]> = lists.iter().map(AsRef::as_ref).collect();
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }
    let k = lists.len();
    let mut pos = vec![0usize; k];
    let mut stack: Vec<Entry> = Vec::new();
    let mut results: Vec<Dewey> = Vec::new();
    // Postings consumed from the merged stream, flushed as one atomic add.
    let mut steps = 0u64;

    loop {
        // k-way merge: smallest head across lists, with its keyword index.
        let mut best: Option<(usize, &Dewey)> = None;
        for (i, list) in lists.iter().enumerate() {
            if let Some(p) = list.get(pos[i]) {
                match best {
                    None => best = Some((i, &p.dewey)),
                    Some((_, d)) if p.dewey < *d => best = Some((i, &p.dewey)),
                    _ => {}
                }
            }
        }
        let Some((list_idx, dewey)) = best else { break };
        pos[list_idx] += 1;
        steps += 1;

        let comps = dewey.components();
        // common prefix length between stack path and the new node
        let mut p = 0;
        while p < stack.len() && p < comps.len() && stack[p].component == comps[p] {
            p += 1;
        }
        // pop entries below the common prefix
        pop_to(&mut stack, p, &mut results);
        // push the remaining components of the new node
        for &c in &comps[p..] {
            stack.push(Entry {
                component: c,
                witness: vec![false; k],
            });
        }
        // witness the keyword at the (possibly re-used) top entry
        if let Some(top) = stack.last_mut() {
            top.witness[list_idx] = true;
        }
    }
    pop_to(&mut stack, 0, &mut results);
    obs::counter!("slca_stack_steps_total").add(steps);
    obs::trace::count("slca.steps", steps);
    minimal_candidates(results)
}

/// Pops entries until the stack has height `target`, emitting SLCAs and
/// propagating partial witnesses.
fn pop_to(stack: &mut Vec<Entry>, target: usize, results: &mut Vec<Dewey>) {
    while stack.len() > target {
        let entry = stack.pop().expect("len > target >= 0");
        if entry.witness.iter().all(|&w| w) {
            // The popped node is an SLCA: its Dewey is the current stack
            // path plus the popped component.
            let mut comps: Vec<u32> = stack.iter().map(|e| e.component).collect();
            comps.push(entry.component);
            results.push(Dewey::new(comps).expect("non-empty"));
            // Do not propagate: ancestors must not count these witnesses.
        } else if let Some(parent) = stack.last_mut() {
            for (pw, w) in parent.witness.iter_mut().zip(entry.witness.iter()) {
                *pw |= w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::slca_brute_force;
    use xmldom::NodeTypeId;

    fn ps(labels: &[&str]) -> Vec<Posting> {
        labels
            .iter()
            .map(|s| Posting::new(s.parse().unwrap(), NodeTypeId(0)))
            .collect()
    }

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    #[test]
    fn matches_brute_force_on_small_cases() {
        let a = ps(&["0.0.2.0.0", "0.1.1.0.0"]);
        let b = ps(&["0.0.2.1.1", "0.0.2.2.1"]);
        let c = ps(&["0.1.0"]);
        let cases: Vec<Vec<&[Posting]>> =
            vec![vec![&a], vec![&a, &b], vec![&a, &c], vec![&a, &b, &c]];
        for lists in cases {
            assert_eq!(slca_stack(&lists), slca_brute_force(&lists), "{lists:?}");
        }
    }

    #[test]
    fn nested_matches_yield_only_smallest() {
        // keyword1 at 0.0 and 0.0.1.2; keyword2 at 0.0.1.2.0 and 0.5
        let a = ps(&["0.0", "0.0.1.2"]);
        let b = ps(&["0.0.1.2.0", "0.5"]);
        let expected = slca_brute_force(&[&a, &b]);
        assert_eq!(slca_stack(&[&a, &b]), expected);
        assert_eq!(expected, vec![d("0.0.1.2")]);
    }

    #[test]
    fn same_node_holds_both_keywords() {
        let a = ps(&["0.3.1"]);
        let b = ps(&["0.3.1"]);
        assert_eq!(slca_stack(&[&a, &b]), vec![d("0.3.1")]);
    }

    #[test]
    fn empty_inputs() {
        let a = ps(&["0.1"]);
        let none: [&[Posting]; 0] = [];
        let pair: [&[Posting]; 2] = [&a, &[]];
        assert!(slca_stack(&none).is_empty());
        assert!(slca_stack(&pair).is_empty());
    }

    #[test]
    fn root_slca_when_keywords_split_across_partitions() {
        let a = ps(&["0.0.5"]);
        let b = ps(&["0.2.1"]);
        assert_eq!(slca_stack(&[&a, &b]), vec![d("0")]);
    }
}

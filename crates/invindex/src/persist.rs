//! Index persistence over any [`KvStore`] (the paper stores all indices in
//! Berkeley DB, §VII; we store them in the workspace B+-tree).
//!
//! Key space (format version 2):
//!
//! * `M/version`                — format version;
//! * `D/doc`                    — the source document (builder replay
//!   stream), so [`crate::KvBackedIndex`] can open with no re-parse;
//! * `V/<keyword>`              — keyword id (u32 LE);
//! * `L/<id:u32 BE>`            — framed posting list:
//!   `varint(len(payload)) ‖ crc32(payload):u32 LE ‖ payload`, where
//!   `payload` is the front-coded [`PostingList`] encoding. The header
//!   lets a lazy loader validate each list at materialization time;
//! * `S/N`, `S/G`               — `N_T` / `G_T` vectors (varints);
//! * `S/T/<type BE><kw BE>`     — `tf(k,T)` (varint);
//! * `S/D/<type BE><kw BE>`     — `f^T_k` (varint).
//!
//! Version 1 (no list framing, no `D/doc`) remains readable; corruption
//! of any entry yields [`KvError::Corrupt`], never a panic.
//!
//! Node-type and keyword ids are deterministic for a given document (both
//! interners assign ids in parse order), so an index loaded against the
//! same document is bit-identical to a rebuilt one.

use crate::index::Index;
use crate::postings::{read_varint, write_varint, PostingList};
use crate::stats::{KeywordId, KeywordTable, TypeStats};
use kvstore::{crc32, KvError, KvStore, Result};
use std::collections::HashMap;
use std::sync::Arc;
use xmldom::{Document, DocumentBuilder, NodeTypeId};

/// Current on-disk format: framed, checksummed posting lists plus the
/// embedded source document.
pub const FORMAT_VERSION: u64 = 2;

/// The original format: raw list encodings, document supplied by the
/// caller. Still readable.
pub const LEGACY_FORMAT_VERSION: u64 = 1;

/// Writes the index into `store` at the current format version.
pub fn persist(index: &Index, store: &mut dyn KvStore) -> Result<()> {
    persist_versioned(index, store, FORMAT_VERSION)
}

/// Writes the index at an explicit format version (the legacy path keeps
/// version-1 fixtures producible for compatibility tests).
pub fn persist_versioned(index: &Index, store: &mut dyn KvStore, version: u64) -> Result<()> {
    if version != FORMAT_VERSION && version != LEGACY_FORMAT_VERSION {
        return Err(KvError::Corrupt(format!(
            "cannot write unknown index version {version}"
        )));
    }
    let mut buf = Vec::new();
    write_varint(&mut buf, version);
    store.put(b"M/version", &buf)?;

    if version >= 2 {
        store.put(b"D/doc", &encode_document(index.document()))?;
    }

    for (k, text) in index.vocabulary().iter() {
        let mut key = Vec::with_capacity(2 + text.len());
        key.extend_from_slice(b"V/");
        key.extend_from_slice(text.as_bytes());
        store.put(&key, &k.0.to_le_bytes())?;
    }

    for (i, list) in index.lists().iter().enumerate() {
        store.put(&list_key(i as u32), &encode_list_value(version, list))?;
    }

    let mut nbuf = Vec::new();
    for &n in index.stats().n_nodes_vec() {
        write_varint(&mut nbuf, n);
    }
    store.put(b"S/N", &nbuf)?;

    let mut gbuf = Vec::new();
    for &g in index.stats().distinct_keywords_vec() {
        write_varint(&mut gbuf, g);
    }
    store.put(b"S/G", &gbuf)?;

    // The stat tables are hash maps; write their entries in sorted
    // (t, k) order so the put sequence — and therefore the page layout
    // of ordered stores — is a pure function of the index contents.
    // `tests/parallel_persist.rs` relies on persisted byte-identity.
    let mut tf: Vec<_> = index.stats().iter_tf().collect();
    tf.sort_unstable_by_key(|&(t, k, _)| (t.0, k.0));
    for (t, k, v) in tf {
        store.put(&stat_key(b"S/T/", t, k), &varint_vec(v))?;
    }
    let mut df: Vec<_> = index.stats().iter_df().collect();
    df.sort_unstable_by_key(|&(t, k, _)| (t.0, k.0));
    for (t, k, v) in df {
        store.put(&stat_key(b"S/D/", t, k), &varint_vec(v))?;
    }
    store.sync()
}

/// Loads an index from `store` against the (identical) source document.
/// Accepts both format versions.
pub fn load(doc: Arc<Document>, store: &dyn KvStore) -> Result<Index> {
    let version = read_version(store)?;
    let vocab = load_vocab(store)?;

    let mut lists = vec![PostingList::new(); vocab.len()];
    for (key, value) in store.scan_prefix(b"L/")? {
        let id = u32::from_be_bytes(
            key[2..]
                .try_into()
                .map_err(|_| KvError::Corrupt("bad list key".into()))?,
        ) as usize;
        if id >= lists.len() {
            return Err(KvError::Corrupt("list for unknown keyword".into()));
        }
        lists[id] = decode_list_value(version, &value)?;
    }

    let stats = load_stats(store)?;
    if stats.n_nodes_vec().len() != doc.node_types().len() {
        return Err(KvError::Corrupt(
            "document does not match persisted index (type count)".into(),
        ));
    }
    Ok(Index::from_parts(doc, vocab, lists, stats))
}

/// Reads and validates the format version.
pub(crate) fn read_version(store: &dyn KvStore) -> Result<u64> {
    let vbuf = store
        .get(b"M/version")?
        .ok_or_else(|| KvError::Corrupt("missing index version".into()))?;
    let mut pos = 0;
    let version = read_varint(&vbuf, &mut pos)
        .ok_or_else(|| KvError::Corrupt("bad version encoding".into()))?;
    if version != FORMAT_VERSION && version != LEGACY_FORMAT_VERSION {
        return Err(KvError::Corrupt(format!(
            "unsupported index version {version}"
        )));
    }
    Ok(version)
}

/// Rebuilds the keyword table from the `V/` entries.
pub(crate) fn load_vocab(store: &dyn KvStore) -> Result<KeywordTable> {
    let mut vocab = KeywordTable::new();
    let mut texts: Vec<(u32, String)> = Vec::new();
    for (key, value) in store.scan_prefix(b"V/")? {
        let text = String::from_utf8(key[2..].to_vec())
            .map_err(|_| KvError::Corrupt("non-UTF-8 keyword".into()))?;
        let id = u32::from_le_bytes(
            value
                .as_slice()
                .try_into()
                .map_err(|_| KvError::Corrupt("bad keyword id".into()))?,
        );
        texts.push((id, text));
    }
    texts.sort_by_key(|(id, _)| *id);
    for (expected, (id, text)) in texts.iter().enumerate() {
        if *id as usize != expected {
            return Err(KvError::Corrupt("keyword id gap".into()));
        }
        vocab.intern(text);
    }
    Ok(vocab)
}

/// Rebuilds the frequency statistics from the `S/` entries.
pub(crate) fn load_stats(store: &dyn KvStore) -> Result<TypeStats> {
    let n_nodes = decode_varint_vec(
        &store
            .get(b"S/N")?
            .ok_or_else(|| KvError::Corrupt("missing S/N".into()))?,
    )?;
    let distinct = decode_varint_vec(
        &store
            .get(b"S/G")?
            .ok_or_else(|| KvError::Corrupt("missing S/G".into()))?,
    )?;

    let mut tf = HashMap::new();
    for (key, value) in store.scan_prefix(b"S/T/")? {
        let (t, k) = parse_stat_key(&key)?;
        tf.insert((t, k), decode_varint_scalar(&value)?);
    }
    let mut df = HashMap::new();
    for (key, value) in store.scan_prefix(b"S/D/")? {
        let (t, k) = parse_stat_key(&key)?;
        df.insert((t, k), decode_varint_scalar(&value)?);
    }
    Ok(TypeStats::set_from_parts(n_nodes, distinct, tf, df))
}

/// The `L/` key of a keyword id.
pub(crate) fn list_key(id: u32) -> Vec<u8> {
    let mut key = Vec::with_capacity(6);
    key.extend_from_slice(b"L/");
    key.extend_from_slice(&id.to_be_bytes());
    key
}

/// Encodes one posting list as a stored value for `version`.
pub(crate) fn encode_list_value(version: u64, list: &PostingList) -> Vec<u8> {
    let payload = list.encode();
    if version < 2 {
        return payload;
    }
    let mut out = Vec::with_capacity(payload.len() + 9);
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decodes one stored list value, validating the version-2 length header
/// and checksum.
pub(crate) fn decode_list_value(version: u64, value: &[u8]) -> Result<PostingList> {
    let payload = if version < 2 {
        value
    } else {
        let mut pos = 0;
        let len = read_varint(value, &mut pos)
            .ok_or_else(|| KvError::Corrupt("bad list length header".into()))?
            as usize;
        let rest = &value[pos..];
        if rest.len() != 4 + len {
            return Err(KvError::Corrupt(format!(
                "list frame length mismatch: header {len}, got {}",
                rest.len().saturating_sub(4)
            )));
        }
        let stored = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        let payload = &rest[4..];
        let actual = crc32(payload);
        if stored != actual {
            return Err(KvError::Corrupt(format!(
                "list checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
            )));
        }
        payload
    };
    PostingList::decode(payload).ok_or_else(|| KvError::Corrupt("undecodable posting list".into()))
}

/// Serializes the document as a builder replay stream: per node in
/// pre-order, its depth, tag, attributes and text. Replaying through
/// [`DocumentBuilder`] reproduces byte-identical Dewey labels, symbols
/// and node types (both interners assign ids in first-appearance order,
/// which pre-order preserves).
pub(crate) fn encode_document(doc: &Document) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, doc.len() as u64);
    for (id, node) in doc.nodes() {
        write_varint(&mut out, node.dewey.len() as u64);
        write_bytes(&mut out, doc.tag_name(id).as_bytes());
        write_varint(&mut out, node.attributes.len() as u64);
        for (name, value) in &node.attributes {
            write_bytes(&mut out, name.as_bytes());
            write_bytes(&mut out, value.as_bytes());
        }
        write_bytes(&mut out, node.text.as_bytes());
    }
    out
}

/// Rebuilds the document from a replay stream.
pub(crate) fn decode_document(bytes: &[u8]) -> Result<Document> {
    let corrupt = |what: &str| KvError::Corrupt(format!("document blob: {what}"));
    let mut pos = 0;
    let count = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing node count"))?;
    if count == 0 {
        return Err(corrupt("empty document"));
    }
    let mut builder = DocumentBuilder::new();
    let mut open_depth = 0usize;
    let mut seen_root = false;
    for _ in 0..count {
        let depth =
            read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing node depth"))? as usize;
        if depth == 0 || depth > open_depth + 1 {
            return Err(corrupt("invalid node depth"));
        }
        if depth == 1 {
            if seen_root {
                return Err(corrupt("multiple roots"));
            }
            seen_root = true;
        }
        let tag = read_string(bytes, &mut pos).ok_or_else(|| corrupt("bad tag"))?;
        while open_depth >= depth {
            builder.close_element();
            open_depth -= 1;
        }
        builder.open_element(&tag);
        open_depth += 1;
        let attrs = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing attr count"))?;
        for _ in 0..attrs {
            let name = read_string(bytes, &mut pos).ok_or_else(|| corrupt("bad attr name"))?;
            let value = read_string(bytes, &mut pos).ok_or_else(|| corrupt("bad attr value"))?;
            builder.attribute(&name, &value);
        }
        let text = read_string(bytes, &mut pos).ok_or_else(|| corrupt("bad text"))?;
        if !text.is_empty() {
            builder.text(&text);
        }
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes"));
    }
    while open_depth > 0 {
        builder.close_element();
        open_depth -= 1;
    }
    Ok(builder.finish())
}

fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn read_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = read_varint(bytes, pos)? as usize;
    let end = pos.checked_add(len)?;
    if end > bytes.len() {
        return None;
    }
    let s = String::from_utf8(bytes[*pos..end].to_vec()).ok()?;
    *pos = end;
    Some(s)
}

fn stat_key(prefix: &[u8], t: NodeTypeId, k: KeywordId) -> Vec<u8> {
    let mut key = Vec::with_capacity(prefix.len() + 8);
    key.extend_from_slice(prefix);
    key.extend_from_slice(&t.0.to_be_bytes());
    key.extend_from_slice(&k.0.to_be_bytes());
    key
}

fn parse_stat_key(key: &[u8]) -> Result<(NodeTypeId, KeywordId)> {
    if key.len() != 4 + 8 {
        return Err(KvError::Corrupt("bad stat key".into()));
    }
    let t = u32::from_be_bytes(key[4..8].try_into().unwrap());
    let k = u32::from_be_bytes(key[8..12].try_into().unwrap());
    Ok((NodeTypeId(t), KeywordId(k)))
}

fn varint_vec(v: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2);
    write_varint(&mut buf, v);
    buf
}

fn decode_varint_scalar(bytes: &[u8]) -> Result<u64> {
    let mut pos = 0;
    let v = read_varint(bytes, &mut pos).ok_or_else(|| KvError::Corrupt("bad varint".into()))?;
    if pos != bytes.len() {
        return Err(KvError::Corrupt("trailing bytes in varint".into()));
    }
    Ok(v)
}

fn decode_varint_vec(bytes: &[u8]) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        out.push(
            read_varint(bytes, &mut pos)
                .ok_or_else(|| KvError::Corrupt("bad varint vector".into()))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::MemKv;
    use xmldom::fixtures::figure1;

    #[test]
    fn persist_load_roundtrip_preserves_everything() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        let loaded = load(Arc::clone(&doc), &store).unwrap();

        assert_eq!(built.vocabulary().len(), loaded.vocabulary().len());
        for (k, text) in built.vocabulary().iter() {
            assert_eq!(loaded.vocabulary().get(text), Some(k));
            assert_eq!(built.list_by_id(k), loaded.list_by_id(k));
        }
        for t in doc.node_types().iter() {
            assert_eq!(built.stats().n_nodes(t), loaded.stats().n_nodes(t));
            assert_eq!(
                built.stats().distinct_keywords(t),
                loaded.stats().distinct_keywords(t)
            );
            for (k, _) in built.vocabulary().iter() {
                assert_eq!(built.stats().tf(t, k), loaded.stats().tf(t, k));
                assert_eq!(built.stats().df(t, k), loaded.stats().df(t, k));
            }
        }
    }

    #[test]
    fn version1_stores_remain_readable() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist_versioned(&built, &mut store, LEGACY_FORMAT_VERSION).unwrap();
        // no embedded document in v1
        assert!(store.get(b"D/doc").unwrap().is_none());
        let loaded = load(Arc::clone(&doc), &store).unwrap();
        assert_eq!(loaded.total_postings(), built.total_postings());
        for (k, _) in built.vocabulary().iter() {
            assert_eq!(built.list_by_id(k), loaded.list_by_id(k));
        }
    }

    #[test]
    fn corrupted_list_payload_is_an_error_not_a_panic() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();

        // Flip one payload byte behind the checksum.
        let key = list_key(0);
        let mut value = store.get(&key).unwrap().unwrap();
        *value.last_mut().unwrap() ^= 0xFF;
        store.put(&key, &value).unwrap();
        match load(Arc::clone(&doc), &store) {
            Err(KvError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| "an index")),
        }

        // Truncate a frame: length header no longer matches.
        persist(&built, &mut store).unwrap();
        let mut value = store.get(&key).unwrap().unwrap();
        value.pop();
        store.put(&key, &value).unwrap();
        match load(doc, &store) {
            Err(KvError::Corrupt(msg)) => assert!(msg.contains("length"), "{msg}"),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| "an index")),
        }
    }

    #[test]
    fn document_blob_roundtrips_exactly() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        let blob = store.get(b"D/doc").unwrap().expect("v2 embeds the doc");
        let replayed = decode_document(&blob).unwrap();
        assert_eq!(replayed.len(), doc.len());
        for ((_, a), (_, b)) in doc.nodes().zip(replayed.nodes()) {
            assert_eq!(a.dewey, b.dewey);
            assert_eq!(a.node_type, b.node_type);
            assert_eq!(a.text, b.text);
            assert_eq!(a.attributes, b.attributes);
        }
        assert_eq!(doc.to_xml(), replayed.to_xml());
    }

    #[test]
    fn load_rejects_missing_or_mismatched_state() {
        let doc = Arc::new(figure1());
        let store = MemKv::new();
        assert!(load(Arc::clone(&doc), &store).is_err());

        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        // Different document (different type count) must be rejected.
        let other = Arc::new(xmldom::fixtures::tiny());
        assert!(load(other, &store).is_err());
    }

    #[test]
    fn persist_works_on_disk_store_too() {
        use kvstore::DiskKv;
        let dir = std::env::temp_dir().join(format!("invindex_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.db");
        let _ = std::fs::remove_file(&path);

        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        {
            let mut store = DiskKv::open(&path).unwrap();
            persist(&built, &mut store).unwrap();
        }
        let store = DiskKv::open(&path).unwrap();
        let loaded = load(Arc::clone(&doc), &store).unwrap();
        assert_eq!(loaded.total_postings(), built.total_postings());
        std::fs::remove_file(&path).unwrap();
    }
}

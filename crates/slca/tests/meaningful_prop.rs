//! Property tests for meaningful-SLCA semantics over generated corpora:
//! the filter's verdicts must agree with Definition 3.3 computed from
//! first principles.

use invindex::Index;
use proptest::prelude::*;
use slca::{infer_search_for, slca_scan_eager, MeaningfulFilter, SearchForConfig};
use std::sync::Arc;
use xmldom::DocumentBuilder;

/// A small random two-level corpus: root -> entities -> fields.
fn corpus_strategy() -> impl Strategy<Value = Arc<xmldom::Document>> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![
                Just(("title", "alpha beta")),
                Just(("title", "beta gamma")),
                Just(("year", "2001")),
                Just(("year", "2002")),
                Just(("note", "gamma delta")),
            ],
            1..4,
        ),
        1..6,
    )
    .prop_map(|entities| {
        let mut b = DocumentBuilder::new();
        b.open_element("root");
        for fields in &entities {
            b.open_element("item");
            for (tag, text) in fields {
                b.leaf(tag, text);
            }
            b.close_element();
        }
        b.close_element();
        Arc::new(b.finish())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn filter_agrees_with_first_principles(
        doc in corpus_strategy(),
        q in proptest::collection::vec(
            prop_oneof![Just("alpha"), Just("beta"), Just("gamma"), Just("2001"), Just("item")],
            1..3,
        ),
    ) {
        let index = Index::build(Arc::clone(&doc));
        let ids: Vec<_> = q.iter().filter_map(|w| index.vocabulary().get(w)).collect();
        let config = SearchForConfig::default();
        let filter = MeaningfulFilter::infer(&index, &ids, &config);
        let candidates = infer_search_for(&index, &ids, &config);

        // candidate list from Formula 1 and the filter must agree
        let cand_types: Vec<_> = candidates.iter().map(|(t, _)| *t).collect();
        prop_assert_eq!(filter.candidates(), cand_types.as_slice());

        // verdicts: a node is meaningful iff its type path extends some
        // candidate's path (Definition 3.3)
        let types = doc.node_types();
        for (id, node) in doc.nodes() {
            let verdict = filter.is_meaningful(&node.dewey);
            let first_principles = cand_types.iter().any(|&c| {
                node.node_type == c || types.is_descendant_type(node.node_type, c)
            });
            prop_assert_eq!(verdict, first_principles, "node {}", doc.tag_name(id));
        }

        // whatever SLCAs exist, filtering is a subset and order-preserving
        let lists: Vec<&[invindex::Posting]> = q
            .iter()
            .map(|w| index.list(w).map(|l| l.as_slice()).unwrap_or(&[]))
            .collect();
        let slcas = slca_scan_eager(&lists);
        let kept = filter.filter(slcas.clone());
        prop_assert!(kept.len() <= slcas.len());
        prop_assert!(kept.iter().all(|d| slcas.contains(d)));
        prop_assert!(kept.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn confidence_is_monotone_in_df_sum(sum_a in 0u64..1000, sum_b in 0u64..1000, depth in 0u32..6) {
        let (lo, hi) = if sum_a <= sum_b { (sum_a, sum_b) } else { (sum_b, sum_a) };
        let c_lo = slca::confidence_with(lo, depth as f64, 0.8);
        let c_hi = slca::confidence_with(hi, depth as f64, 0.8);
        prop_assert!(c_lo <= c_hi);
        prop_assert!(c_lo >= 0.0);
    }
}

//! Multiway-SLCA (\[8\] in the paper): anchor-driven SLCA that skips
//! redundant LCA computations.
//!
//! Instead of anchoring on every element of the shortest list, each round
//! anchors on the *maximum* of the current list heads, computes one
//! candidate from the closest match in every other list, then advances all
//! cursors past the anchor. Elements skipped this way can only contribute
//! candidates that are ancestors of the one just emitted, so the final
//! minimal-filter yields the same SLCA set with fewer LCA computations —
//! the optimization the paper cites when calling its partition/SLE
//! algorithms "orthogonal to any existing SLCA method".

use crate::common::{closest_match, minimal_candidates};
use invindex::Posting;
use xmldom::Dewey;

/// Multiway-SLCA.
pub fn slca_multiway<S: AsRef<[Posting]>>(lists: &[S]) -> Vec<Dewey> {
    obs::counter!("slca_invocations_total").inc();
    let lists: Vec<&[Posting]> = lists.iter().map(AsRef::as_ref).collect();
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }
    let mut pos = vec![0usize; lists.len()];
    let mut candidates = Vec::new();
    let mut steps = 0u64;

    loop {
        // Anchor: the maximum among current heads. Lists whose remaining
        // elements are exhausted no longer offer anchors, but still serve
        // closest-match probes over their full content.
        let mut anchor: Option<Dewey> = None;
        for (i, list) in lists.iter().enumerate() {
            if let Some(p) = list.get(pos[i]) {
                if anchor.as_ref().map(|a| p.dewey > *a).unwrap_or(true) {
                    anchor = Some(p.dewey.clone());
                }
            }
        }
        let Some(anchor) = anchor else { break };

        // Each per-list LCA is a prefix of the anchor, so the shortest one
        // is found by minimizing the common-prefix length and the candidate
        // label is allocated once per round, not once per list.
        let mut min_prefix = usize::MAX;
        for list in &lists {
            steps += 1;
            let m = closest_match(list, &anchor).expect("lists verified non-empty");
            min_prefix = min_prefix.min(anchor.common_prefix_len(m));
        }
        candidates.push(anchor.prefix(min_prefix).expect("same document"));

        // Advance every cursor past the anchor.
        for (i, list) in lists.iter().enumerate() {
            while pos[i] < list.len() && list[pos[i]].dewey <= anchor {
                pos[i] += 1;
            }
        }
    }
    obs::counter!("slca_multiway_steps_total").add(steps);
    obs::trace::count("slca.steps", steps);
    minimal_candidates(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::slca_brute_force;
    use xmldom::NodeTypeId;

    fn ps(labels: &[&str]) -> Vec<Posting> {
        labels
            .iter()
            .map(|s| Posting::new(s.parse().unwrap(), NodeTypeId(0)))
            .collect()
    }

    #[test]
    fn matches_brute_force_on_assorted_cases() {
        let a = ps(&["0.0.2.0.0", "0.1.1.0.0"]);
        let b = ps(&["0.0.2.1.1", "0.0.2.2.1"]);
        let c = ps(&["0.1.0"]);
        let dlist = ps(&["0.0", "0.0.1.2", "0.7.7.7"]);
        let e = ps(&["0.0.1.2.0", "0.5", "0.7.7"]);
        let cases: Vec<Vec<&[Posting]>> = vec![
            vec![&a],
            vec![&a, &b],
            vec![&a, &c],
            vec![&a, &b, &c],
            vec![&dlist, &e],
            vec![&dlist, &e, &a],
        ];
        for lists in cases {
            assert_eq!(
                slca_multiway(&lists),
                slca_brute_force(&lists),
                "case {lists:?}"
            );
        }
    }

    #[test]
    fn empty_inputs() {
        let a = ps(&["0.1"]);
        let none: [&[Posting]; 0] = [];
        let pair: [&[Posting]; 2] = [&a, &[]];
        assert!(slca_multiway(&none).is_empty());
        assert!(slca_multiway(&pair).is_empty());
    }

    #[test]
    fn skipping_does_not_lose_deep_slcas() {
        // Dense cluster of matches inside one subtree.
        let a = ps(&["0.0.0", "0.0.1", "0.0.2", "0.9"]);
        let b = ps(&["0.0.1", "0.0.3", "0.9.1"]);
        assert_eq!(slca_multiway(&[&a, &b]), slca_brute_force(&[&a, &b]));
    }
}

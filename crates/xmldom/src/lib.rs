//! `xmldom` — the XML substrate of the XRefine reproduction.
//!
//! Provides everything the paper assumes of its XML layer (§III, §VII):
//!
//! * [`dewey::Dewey`] labels whose lexicographic order is document order
//!   and whose longest common prefix is the LCA;
//! * a from-scratch XML 1.0 [`parser`];
//! * an arena [`tree::Document`] with interned tag names and node types
//!   (prefix paths, Definition 3.1);
//! * the canonical keyword [`fn@tokenize`]r shared by index build and query
//!   parsing;
//! * the paper's Figure 1 document as a reusable [`fixtures`] fixture.

pub mod dewey;
pub mod fixtures;
pub mod intern;
pub mod parser;
pub mod tokenize;
pub mod tree;

pub use dewey::Dewey;
pub use intern::{NodeTypeId, NodeTypeTable, Symbol, SymbolTable};
pub use parser::{parse_document, parse_with, ParseError, ParseErrorKind, XmlHandler};
pub use tokenize::{normalize_keyword, tokenize, tokenize_query};
pub use tree::{Document, DocumentBuilder, Node, NodeId};

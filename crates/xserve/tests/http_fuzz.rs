//! Fuzz-style sweep over the HTTP/1.1 request-head parser: no input —
//! truncated, byte-substituted, header soup, or oversized — may panic,
//! and every `Parse::Bad` verdict must carry one of the statuses the
//! connection layer knows how to answer (the 4xx/5xx set asserted by
//! `http::tests::framing_errors_map_to_statuses`).
//!
//! Mirrors `xmldom/tests/scan_fuzz.rs`: deterministic SplitMix64
//! mutations of valid request heads, plus targeted pathological cases.

use xserve::http::{parse_request, Parse, MAX_BODY_BYTES, MAX_HEAD_BYTES};

/// SplitMix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Bytes that stress request framing: separators, header punctuation,
/// digits for lengths, percent escapes, NUL and high bytes.
const POOL: &[u8] = &[
    b'\r', b'\n', b' ', b':', b'/', b'?', b'=', b'&', b'%', b'.', b'-', b'_', b'G', b'P', b'T',
    b'H', b'1', b'0', b'9', b'a', b'Z', 0x00, 0x7F, 0xC3, 0xFF,
];

const SEEDS: &[&[u8]] = &[
    b"GET /query?q=a+b&k=2 HTTP/1.1\r\nHost: x\r\n\r\n",
    b"POST /update HTTP/1.1\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello",
    b"GET /stats HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
    b"GET /q?term=%E4%B8%AD&rank=pr HTTP/1.1\r\nAccept: */*\r\n\r\n",
    b"HEAD / HTTP/1.1\r\n\r\n",
];

/// The complete status set the connection layer can answer before
/// closing; any other status out of the parser is a bug.
const KNOWN_BAD_STATUSES: &[u16] = &[400, 413, 431, 501, 505];

/// Feeds `input` to the parser; panics (failing the test) on an unknown
/// error status. Returns which verdict was reached.
fn classify(input: &[u8]) -> &'static str {
    match parse_request(input) {
        Parse::Ready(_) => "ready",
        Parse::Incomplete => "incomplete",
        Parse::Bad(e) => {
            assert!(
                KNOWN_BAD_STATUSES.contains(&e.status),
                "parser produced unknown status {} ({}) for input ({} bytes): {:?}",
                e.status,
                e.detail,
                input.len(),
                String::from_utf8_lossy(input)
            );
            "bad"
        }
    }
}

fn mutate(rng: &mut Rng, base: &[u8]) -> Vec<u8> {
    if base.is_empty() {
        return vec![POOL[rng.below(POOL.len())]];
    }
    match rng.below(4) {
        // substitute one byte
        0 => {
            let mut b = base.to_vec();
            let i = rng.below(b.len());
            b[i] = POOL[rng.below(POOL.len())];
            b
        }
        // truncate anywhere (mid-CRLF, mid-escape, mid-UTF-8)
        1 => base[..rng.below(base.len() + 1)].to_vec(),
        // insert a byte
        2 => {
            let mut b = base.to_vec();
            let i = rng.below(b.len() + 1);
            b.insert(i, POOL[rng.below(POOL.len())]);
            b
        }
        // splice: duplicate a random slice somewhere else
        _ => {
            let a = rng.below(base.len());
            let end = a + rng.below(base.len() - a + 1);
            let at = rng.below(base.len() + 1);
            let mut b = base.to_vec();
            for (k, &byte) in base[a..end].iter().enumerate() {
                b.insert(at + k, byte);
            }
            b
        }
    }
}

#[test]
fn mutated_heads_never_panic_and_map_to_known_statuses() {
    let mut rng = Rng(0x4177_0F00);
    let mut ready = 0usize;
    let mut bad = 0usize;
    let mut incomplete = 0usize;
    for seed in SEEDS {
        // Mutation chains: damage accumulates, with periodic resets to
        // the pristine seed so complete heads stay reachable.
        let mut current = seed.to_vec();
        for round in 0..600 {
            let base = if round % 5 == 0 { *seed } else { &current[..] };
            current = mutate(&mut rng, base);
            match classify(&current) {
                "ready" => ready += 1,
                "bad" => bad += 1,
                _ => incomplete += 1,
            }
        }
    }
    // The sweep must genuinely reach all three verdicts.
    assert!(ready > 50, "only {ready} mutants parsed");
    assert!(bad > 100, "only {bad} mutants rejected");
    assert!(incomplete > 50, "only {incomplete} mutants incomplete");
}

#[test]
fn header_soup_never_panics() {
    let mut rng = Rng(0x500B_1E7E);
    for _ in 0..2000 {
        let len = rng.below(120);
        let soup: Vec<u8> = (0..len).map(|_| POOL[rng.below(POOL.len())]).collect();
        classify(&soup);
    }
}

#[test]
fn truncations_of_every_seed_never_panic() {
    for seed in SEEDS {
        for end in 0..=seed.len() {
            classify(&seed[..end]);
        }
    }
}

#[test]
fn oversized_inputs_map_to_the_documented_statuses() {
    // Head too large without any terminator: 431 once past the cap.
    let huge = vec![b'a'; MAX_HEAD_BYTES + 1];
    assert!(matches!(parse_request(&huge), Parse::Bad(e) if e.status == 431));

    // Head too large even though properly terminated: still 431.
    let mut padded = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
    padded.resize(padded.len() + MAX_HEAD_BYTES, b'p');
    padded.extend_from_slice(b"\r\n\r\n");
    assert!(matches!(parse_request(&padded), Parse::Bad(e) if e.status == 431));

    // Declared body over the cap: 413.
    let big_body = format!(
        "POST /u HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        MAX_BODY_BYTES + 1
    );
    assert!(matches!(parse_request(big_body.as_bytes()), Parse::Bad(e) if e.status == 413));

    // Absurd (non-usize) Content-Length: 400, not a panic or wrap.
    let absurd = b"POST /u HTTP/1.1\r\nContent-Length: 99999999999999999999999999\r\n\r\n";
    assert!(matches!(parse_request(absurd), Parse::Bad(e) if e.status == 400));

    // Negative and garbage lengths: 400.
    for bad_len in ["-1", "0x10", "1e9", " ", "18446744073709551616"] {
        let raw = format!("POST /u HTTP/1.1\r\nContent-Length: {bad_len}\r\n\r\n");
        assert!(
            matches!(parse_request(raw.as_bytes()), Parse::Bad(e) if e.status == 400),
            "Content-Length {bad_len:?} must map to 400"
        );
    }
}

#[test]
fn protocol_edges_map_to_the_documented_statuses() {
    // Unsupported versions: 505.
    for v in ["HTTP/2.0", "HTTP/0.9", "HTTP/1.2", "SPDY/3"] {
        let raw = format!("GET / {v}\r\n\r\n");
        assert!(
            matches!(parse_request(raw.as_bytes()), Parse::Bad(e) if e.status == 505),
            "version {v:?} must map to 505"
        );
    }
    // Chunked transfer encoding is out of scope: 501.
    let chunked = b"POST /u HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    assert!(matches!(parse_request(chunked), Parse::Bad(e) if e.status == 501));
    // Non-UTF-8 head: 400.
    let latin1 = b"GET /caf\xE9 HTTP/1.1\r\n\r\n";
    assert!(matches!(parse_request(latin1), Parse::Bad(e) if e.status == 400));
}

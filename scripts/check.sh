#!/usr/bin/env bash
# The repo's pre-merge gate: formatting, lints (warnings are errors),
# static analysis, and the full test suite. Run from anywhere inside the
# repo. Suite definitions live in scripts/suites.sh so CI runs exactly
# the same commands. Set CHECK_TSAN=1 to also run the ThreadSanitizer
# suite (needs a nightly toolchain with rust-src).
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q

scripts/suites.sh analysis release_smoke torture observability ingest serve maintenance compress

if [[ "${CHECK_TSAN:-0}" == "1" ]]; then
    scripts/suites.sh tsan
fi

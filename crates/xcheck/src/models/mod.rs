//! Distilled models of the workspace's real synchronization patterns.
//!
//! Each model ships in two variants: the production shape (`Bug::None`)
//! and a seeded-bug shape that reintroduces a race the production code
//! was specifically written to exclude. The seeded variants are the
//! self-test of the checker itself: `explore` must find each bug under
//! full DFS at small bounds, and must exhaust the correct variants
//! without a violation. The production counterpart of each model is
//! named in DESIGN.md §6c.

pub mod cache;
pub mod drain;
pub mod epoch;

/// Which seeded bug, if any, a model run should carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bug {
    /// The production shape; exploration must exhaust cleanly.
    None,
    /// The model-specific seeded race; exploration must find it.
    Seeded,
}

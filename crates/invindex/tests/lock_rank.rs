//! Deadlock regression tests for the store-lock / shard-lock nesting.
//!
//! The static half of the lock-order story is xlint's `lock-order` rule;
//! this is the runtime half: `obs::lockrank` keeps a thread-local stack
//! of held ranks and `debug_assert`s that acquisitions are strictly
//! increasing. Eight threads hammer the real sharded cache (whose
//! instrumented sites acquire `cache.shard` under the runtime checker)
//! while nesting a modelled `kvindex.store` read outside it — the order
//! the production `KvBackedIndex` read path uses. The inverted order
//! must panic, in debug builds only.

use invindex::{Posting, PostingList, ShardedListCache};
use obs::lockrank;
use std::sync::{Arc, Barrier, RwLock};
use std::thread;
use xmldom::{Dewey, NodeTypeId};

fn list(n: u32) -> Arc<PostingList> {
    let mut l = PostingList::new();
    l.push(Posting::new(
        Dewey::new(vec![0, n]).expect("non-empty dewey"),
        NodeTypeId(1),
    ));
    Arc::new(l)
}

/// Store-before-shard (the production order) from eight threads at once:
/// every acquisition is strictly increasing, so the checker stays quiet
/// and nothing deadlocks.
#[test]
fn eight_threads_nest_store_then_shard_cleanly() {
    const THREADS: usize = 8;
    const ROUNDS: u32 = 200;
    let store = Arc::new(RwLock::new(0u64));
    let cache = Arc::new(ShardedListCache::new(1 << 16, 4));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let store = Arc::clone(&store);
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    let id = (t as u32) * ROUNDS + round;
                    // The read path's shape: hold the store lock, then
                    // dip into a cache shard. `cache.get`/`insert`
                    // acquire CACHE_SHARD through their own
                    // instrumentation, nested inside this guard.
                    let _store_rank =
                        lockrank::acquire(lockrank::rank::KVINDEX_STORE, "kvindex.store");
                    let _store_guard = store.read().expect("store lock");
                    if cache.get(id).is_none() {
                        cache.insert(id, list(id), 64);
                    }
                }
                cache.check_invariants();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker thread");
    }
    assert!(
        lockrank::held_ranks().is_empty(),
        "main thread should hold no ranks"
    );
}

/// The inverted nesting — shard held, then the store lock — is exactly
/// the shape that deadlocks against the clean order above. The runtime
/// checker must refuse it before any scheduler interleaving gets a say.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "lock-rank violation")]
fn shard_then_store_nesting_panics_in_debug() {
    let cache = ShardedListCache::new(1 << 12, 4);
    // Entering the shard via the instrumented `insert` is fine on its
    // own; the violation is taking the store rank while a same-thread
    // shard guard would still be live.
    cache.insert(1, list(1), 64);
    let _shard_rank = lockrank::acquire(lockrank::rank::CACHE_SHARD, "cache.shard");
    let _store_rank = lockrank::acquire(lockrank::rank::KVINDEX_STORE, "kvindex.store");
}

/// In release builds the checker compiles down to nothing: the guard is
/// a ZST and inverted acquisition is (dangerously) silent — that's the
/// zero-overhead contract, and why debug CI runs the test above.
#[cfg(not(debug_assertions))]
#[test]
fn release_checker_is_zero_cost_and_silent() {
    assert_eq!(std::mem::size_of::<lockrank::RankGuard>(), 0);
    let _shard = lockrank::acquire(lockrank::rank::CACHE_SHARD, "cache.shard");
    let _store = lockrank::acquire(lockrank::rank::KVINDEX_STORE, "kvindex.store");
    assert!(lockrank::held_ranks().is_empty());
}

//! CLI: `xlint --workspace [--root PATH]` lints the tree and prints
//! rustc-style diagnostics; `xlint --fixtures` self-tests the rules;
//! `xlint --write-safety` regenerates the SAFETY.md inventory. `--json`
//! switches diagnostics to one-line JSON for CI annotation.
//!
//! Exit codes: 0 clean; 1 findings, or a fixture whose rule went
//! entirely dead (matched nothing it expected); 3 fixture failures
//! where every failing fixture still partially matched (rule drift,
//! not rule death); 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" | "--fixtures" | "--list-rules" | "--write-safety" => {
                if mode.is_some() {
                    return usage(
                        "pass exactly one of --workspace, --fixtures, --list-rules, --write-safety",
                    );
                }
                mode = Some(match args[i].as_str() {
                    "--workspace" => "workspace",
                    "--fixtures" => "fixtures",
                    "--write-safety" => "write-safety",
                    _ => "list-rules",
                });
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => return usage("--root needs a path"),
                }
            }
            "--json" => json = true,
            "-h" | "--help" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    let root = root.unwrap_or_else(xlint::workspace::default_root);
    match mode {
        Some("workspace") => run_workspace(&root, json),
        Some("fixtures") => run_fixtures(&root, json),
        Some("write-safety") => match xlint::workspace::write_safety(&root) {
            Ok(()) => {
                println!("xlint: SAFETY.md inventory regenerated");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("xlint: {e}");
                ExitCode::from(2)
            }
        },
        Some("list-rules") => {
            for rule in xlint::rules::RULE_NAMES {
                println!("{rule}");
            }
            println!("pragma");
            ExitCode::SUCCESS
        }
        _ => usage("pass one of --workspace, --fixtures, --list-rules, --write-safety"),
    }
}

fn run_workspace(root: &std::path::Path, json: bool) -> ExitCode {
    let findings = match xlint::workspace::lint_workspace(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xlint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("[");
        for (i, f) in findings.iter().enumerate() {
            let comma = if i + 1 < findings.len() { "," } else { "" };
            println!("  {}{comma}", f.to_json());
        }
        println!("]");
        return if findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    if findings.is_empty() {
        println!("xlint: workspace clean");
        return ExitCode::SUCCESS;
    }
    // Re-read each file once for diagnostic source lines.
    let mut cache: std::collections::HashMap<String, Vec<String>> = Default::default();
    for f in &findings {
        let lines = cache.entry(f.path.clone()).or_insert_with(|| {
            std::fs::read_to_string(root.join(&f.path))
                .map(|t| t.lines().map(str::to_string).collect())
                .unwrap_or_default()
        });
        let src = lines
            .get(f.line.saturating_sub(1))
            .map(String::as_str)
            .unwrap_or("");
        eprint!("{}", f.render(src));
        eprintln!();
    }
    eprintln!("xlint: {} finding(s)", findings.len());
    ExitCode::from(1)
}

fn run_fixtures(root: &std::path::Path, json: bool) -> ExitCode {
    let dir = root.join("crates/xlint/tests/fixtures");
    let config = xlint::fixtures::fixture_config();
    let outcomes = match xlint::fixtures::run_fixtures(&dir, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xlint: {e}");
            return ExitCode::from(2);
        }
    };
    let failed = outcomes.iter().filter(|o| !o.passed).count();
    if json {
        println!("[");
        for (i, o) in outcomes.iter().enumerate() {
            let comma = if i + 1 < outcomes.len() { "," } else { "" };
            println!("  {}{comma}", o.to_json());
        }
        println!("]");
    } else {
        for o in &outcomes {
            if o.passed {
                println!("fixture {} ... ok", o.name);
            } else if o.partial() {
                println!(
                    "fixture {} ... PARTIAL ({} matched, {} missed, {} spurious)",
                    o.name, o.matched, o.missed, o.spurious
                );
                print!("{}", o.details);
            } else {
                println!("fixture {} ... FAILED", o.name);
                print!("{}", o.details);
            }
        }
        println!("{} fixture(s), {} failed", outcomes.len(), failed);
    }
    if failed == 0 {
        ExitCode::SUCCESS
    } else if outcomes.iter().filter(|o| !o.passed).all(|o| o.partial()) {
        ExitCode::from(3)
    } else {
        ExitCode::from(1)
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("xlint: {err}");
    }
    eprintln!(
        "usage: xlint --workspace [--root PATH] [--json] \
         | --fixtures [--root PATH] [--json] | --list-rules | --write-safety [--root PATH]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

// xlint-fixture: path=crates/kvstore/src/durable.rs
// The durability protocol (DESIGN.md): a `rename` is durable only once
// `sync_parent_dir` has run, in the same function or in every caller.

fn checkpoint_synced(vfs: &V, tmp: &P, db: &P) {
    vfs.rename(tmp, db);
    vfs.sync_parent_dir(db);
}

fn checkpoint_unsynced(vfs: &V, tmp: &P, db: &P) {
    vfs.rename(tmp, db);
}

fn sync_before_rename_does_not_count(vfs: &V, tmp: &P, db: &P) {
    vfs.sync_parent_dir(db);
    vfs.rename(tmp, db);
}

fn swap_delegating_to_caller(vfs: &V, tmp: &P, db: &P) {
    vfs.rename(tmp, db);
}

fn covering_caller(vfs: &V, tmp: &P, db: &P) {
    swap_delegating_to_caller(vfs, tmp, db);
    vfs.sync_parent_dir(db);
}

fn swap_with_a_gap(vfs: &V, tmp: &P, db: &P) {
    vfs.rename(tmp, db);
}

fn caller_that_syncs(vfs: &V, tmp: &P, db: &P) {
    swap_with_a_gap(vfs, tmp, db);
    vfs.sync_parent_dir(db);
}

fn caller_that_forgets(vfs: &V, tmp: &P, db: &P) {
    swap_with_a_gap(vfs, tmp, db);
}

fn suppressed_with_reason(vfs: &V, tmp: &P, db: &P) {
    // xlint::allow(durability-protocol): target dir is fsynced by the batch epilogue
    vfs.rename(tmp, db);
}

#[cfg(test)]
mod tests {
    fn torture(vfs: &V, tmp: &P, db: &P) {
        vfs.rename(tmp, db);
    }
}

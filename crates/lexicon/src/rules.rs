//! Refinement rules (§III-B, Definition 3.5).
//!
//! A rule `S1 →op S2` rewrites the keyword sequence `S1` into `S2` under
//! one of the four refinement operations, carrying a dissimilarity score
//! `ds_r`. [`RuleSet`] indexes rules the way the dynamic program of §V
//! consumes them: by the *last* keyword of the left-hand side.

use std::collections::HashMap;
use std::fmt;

/// The four refinement operations of the paper (term deletion is the
/// implicit fifth: it needs no rule, only a cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefineOp {
    /// `on, line → online`
    Merge,
    /// `online → on, line`
    Split,
    /// spelling / synonym / acronym / stemming substitution
    Substitute,
}

impl fmt::Display for RefineOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefineOp::Merge => write!(f, "merge"),
            RefineOp::Split => write!(f, "split"),
            RefineOp::Substitute => write!(f, "substitute"),
        }
    }
}

/// Finer-grained provenance of a substitution rule (diagnostics and the
/// effectiveness experiments report these separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleSource {
    Merging,
    Splitting,
    Spelling,
    Synonym,
    Acronym,
    Stemming,
    Manual,
}

/// One refinement rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    pub lhs: Vec<String>,
    pub rhs: Vec<String>,
    pub op: RefineOp,
    pub source: RuleSource,
    /// `ds_r` of Definition 3.5.
    pub dissimilarity: f64,
}

impl Rule {
    pub fn new(
        lhs: &[&str],
        rhs: &[&str],
        op: RefineOp,
        source: RuleSource,
        dissimilarity: f64,
    ) -> Self {
        assert!(!lhs.is_empty() && !rhs.is_empty(), "rule sides non-empty");
        assert!(dissimilarity >= 0.0, "dissimilarity must be non-negative");
        Rule {
            lhs: lhs.iter().map(|s| s.to_string()).collect(),
            rhs: rhs.iter().map(|s| s.to_string()).collect(),
            op,
            source,
            dissimilarity,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -[{}]-> {} (ds={})",
            self.lhs.join(","),
            self.op,
            self.rhs.join(","),
            self.dissimilarity
        )
    }
}

/// Stable id of a rule within its [`RuleSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RuleId(pub u32);

/// An indexed collection of refinement rules.
#[derive(Debug, Default, Clone)]
pub struct RuleSet {
    rules: Vec<Rule>,
    /// last LHS keyword -> rule ids (the DP's access pattern).
    by_lhs_last: HashMap<String, Vec<RuleId>>,
    /// Cost of deleting one term. The paper keeps this strictly greater
    /// than the other operations' scores (it changes meaning the most) and
    /// uses 2 in the experiments (§VIII).
    deletion_cost: f64,
}

impl RuleSet {
    pub fn new() -> Self {
        RuleSet {
            rules: Vec::new(),
            by_lhs_last: HashMap::new(),
            deletion_cost: 2.0,
        }
    }

    /// Sets the per-term deletion cost.
    pub fn with_deletion_cost(mut self, cost: f64) -> Self {
        assert!(cost > 0.0);
        self.deletion_cost = cost;
        self
    }

    pub fn deletion_cost(&self) -> f64 {
        self.deletion_cost
    }

    /// Adds a rule, deduplicating exact `(lhs, rhs)` pairs by keeping the
    /// cheaper score.
    pub fn add(&mut self, rule: Rule) -> RuleId {
        if let Some(&existing) = self
            .by_lhs_last
            .get(rule.lhs.last().expect("non-empty lhs"))
            .and_then(|ids| {
                ids.iter().find(|&&id| {
                    let r = &self.rules[id.0 as usize];
                    r.lhs == rule.lhs && r.rhs == rule.rhs
                })
            })
        {
            let r = &mut self.rules[existing.0 as usize];
            if rule.dissimilarity < r.dissimilarity {
                r.dissimilarity = rule.dissimilarity;
                r.op = rule.op;
                r.source = rule.source;
            }
            return existing;
        }
        let id = RuleId(self.rules.len() as u32);
        self.by_lhs_last
            .entry(rule.lhs.last().expect("non-empty lhs").clone())
            .or_default()
            .push(id);
        self.rules.push(rule);
        id
    }

    pub fn get(&self, id: RuleId) -> &Rule {
        &self.rules[id.0 as usize]
    }

    /// Rules whose LHS ends with `keyword` — the lookup the recurrence of
    /// Formula 11 (option 3) performs at position `i`.
    pub fn rules_ending_with(&self, keyword: &str) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.by_lhs_last
            .get(keyword)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&id| (id, &self.rules[id.0 as usize]))
    }

    pub fn iter(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.rules
            .iter()
            .enumerate()
            .map(|(i, r)| (RuleId(i as u32), r))
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Every keyword appearing on the right-hand side of any rule — the
    /// "new keywords" `getNewKeywords` adds to the key set `KS`
    /// (Algorithm 1 line 3).
    pub fn rhs_keywords(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .rules
            .iter()
            .flat_map(|r| r.rhs.iter().cloned())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The sample rule set of the paper's Table II.
    pub fn table2() -> Self {
        let mut rs = RuleSet::new();
        rs.add(Rule::new(
            &["on", "line"],
            &["online"],
            RefineOp::Merge,
            RuleSource::Merging,
            1.0,
        ));
        rs.add(Rule::new(
            &["data", "base"],
            &["database"],
            RefineOp::Merge,
            RuleSource::Merging,
            1.0,
        ));
        rs.add(Rule::new(
            &["article"],
            &["inproceedings"],
            RefineOp::Substitute,
            RuleSource::Synonym,
            1.0,
        ));
        rs.add(Rule::new(
            &["learn", "ing"],
            &["learning"],
            RefineOp::Merge,
            RuleSource::Merging,
            1.0,
        ));
        rs.add(Rule::new(
            &["mecin"],
            &["machine"],
            RefineOp::Substitute,
            RuleSource::Spelling,
            2.0,
        ));
        rs.add(Rule::new(
            &["www"],
            &["world", "wide", "web"],
            RefineOp::Substitute,
            RuleSource::Acronym,
            1.0,
        ));
        rs.add(Rule::new(
            &["online"],
            &["on", "line"],
            RefineOp::Split,
            RuleSource::Splitting,
            1.0,
        ));
        rs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_contents() {
        let rs = RuleSet::table2();
        assert_eq!(rs.len(), 7);
        assert_eq!(rs.deletion_cost(), 2.0);
        // deletion cost strictly greater than every merge/split score
        for (_, r) in rs.iter() {
            if r.op != RefineOp::Substitute {
                assert!(r.dissimilarity < rs.deletion_cost());
            }
        }
    }

    #[test]
    fn lookup_by_last_lhs_keyword() {
        let rs = RuleSet::table2();
        let hits: Vec<&Rule> = rs.rules_ending_with("line").map(|(_, r)| r).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rhs, vec!["online".to_string()]);
        assert_eq!(rs.rules_ending_with("nothing").count(), 0);
        // "base" ends the data,base merge rule
        assert_eq!(rs.rules_ending_with("base").count(), 1);
    }

    #[test]
    fn duplicate_rules_keep_cheapest() {
        let mut rs = RuleSet::new();
        rs.add(Rule::new(
            &["a"],
            &["b"],
            RefineOp::Substitute,
            RuleSource::Manual,
            3.0,
        ));
        let id = rs.add(Rule::new(
            &["a"],
            &["b"],
            RefineOp::Substitute,
            RuleSource::Spelling,
            1.0,
        ));
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.get(id).dissimilarity, 1.0);
        assert_eq!(rs.get(id).source, RuleSource::Spelling);
    }

    #[test]
    fn rhs_keywords_are_deduped_and_sorted() {
        let rs = RuleSet::table2();
        let rhs = rs.rhs_keywords();
        assert!(rhs.contains(&"online".to_string()));
        assert!(rhs.contains(&"wide".to_string()));
        assert!(rhs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_rule_side_panics() {
        Rule::new(&[], &["x"], RefineOp::Merge, RuleSource::Manual, 1.0);
    }
}

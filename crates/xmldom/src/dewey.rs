//! Dewey labels for XML nodes.
//!
//! A Dewey label encodes the path from the document root to a node as a
//! sequence of child ordinals: the root element is `0`, its `i`-th child is
//! `0.i`, and so on (the scheme of Tatarinov et al. adopted by the paper in
//! §III). Dewey labels have two properties every algorithm in this workspace
//! relies on:
//!
//! 1. lexicographic order on the component sequence equals document order;
//! 2. the longest common prefix of two labels is the label of their lowest
//!    common ancestor (LCA).

use std::cmp::Ordering;
use std::fmt;
use std::str::FromStr;

/// A Dewey label: the component path from the root to a node.
///
/// The root element of a document carries the single-component label `0`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Dewey {
    components: Vec<u32>,
}

impl Dewey {
    /// The label of the document root element (`0`).
    pub fn root() -> Self {
        Dewey {
            components: vec![0],
        }
    }

    /// Builds a label from raw components. Returns `None` for an empty
    /// component list, which does not denote any node.
    pub fn new(components: Vec<u32>) -> Option<Self> {
        if components.is_empty() {
            None
        } else {
            Some(Dewey { components })
        }
    }

    /// The label of this node's `ordinal`-th child.
    #[must_use]
    pub fn child(&self, ordinal: u32) -> Self {
        let mut components = Vec::with_capacity(self.components.len() + 1);
        components.extend_from_slice(&self.components);
        components.push(ordinal);
        Dewey { components }
    }

    /// The label of this node's parent, or `None` for the root.
    pub fn parent(&self) -> Option<Self> {
        if self.components.len() <= 1 {
            None
        } else {
            Some(Dewey {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// Raw component access.
    pub fn components(&self) -> &[u32] {
        &self.components
    }

    /// Number of components; the root has length 1.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// A Dewey label always has at least one component.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Depth of the node, defined as `len() - 1` so the root is at depth 0.
    pub fn depth(&self) -> usize {
        self.components.len() - 1
    }

    /// True if `self` is an ancestor of `other` (proper prefix).
    pub fn is_ancestor_of(&self, other: &Dewey) -> bool {
        self.components.len() < other.components.len()
            && other.components[..self.components.len()] == self.components[..]
    }

    /// True if `self` is `other` or an ancestor of `other`.
    pub fn is_ancestor_or_self_of(&self, other: &Dewey) -> bool {
        self == other || self.is_ancestor_of(other)
    }

    /// Lowest common ancestor: the longest common prefix of the two labels.
    ///
    /// Any two labels in the same document share at least the root
    /// component, so within a document this never returns `None`.
    pub fn lca(&self, other: &Dewey) -> Option<Dewey> {
        let n = self
            .components
            .iter()
            .zip(other.components.iter())
            .take_while(|(a, b)| a == b)
            .count();
        Dewey::new(self.components[..n].to_vec())
    }

    /// The ancestor-or-self label consisting of the first `len` components
    /// (`None` when `len` is 0 or exceeds the depth). Together with
    /// [`Dewey::common_prefix_len`] this lets callers compute an LCA with a
    /// single allocation after comparing prefix lengths allocation-free.
    pub fn prefix(&self, len: usize) -> Option<Dewey> {
        if len == 0 || len > self.components.len() {
            None
        } else {
            Dewey::new(self.components[..len].to_vec())
        }
    }

    /// Length of the longest common prefix with `other`.
    pub fn common_prefix_len(&self, other: &Dewey) -> usize {
        self.components
            .iter()
            .zip(other.components.iter())
            .take_while(|(a, b)| a == b)
            .count()
    }

    /// The *document partition* identifier of this label (Definition 6.1):
    /// the two-component prefix `0.i` naming the subtree rooted at the
    /// `i`-th child of the document root. The root itself belongs to no
    /// partition.
    pub fn partition(&self) -> Option<Dewey> {
        if self.components.len() < 2 {
            None
        } else {
            Dewey::new(self.components[..2].to_vec())
        }
    }

    /// A compact byte encoding that preserves document order under plain
    /// byte-wise comparison: each component is emitted as a big-endian
    /// 4-byte group. Used as a B+-tree key component by the index layer.
    pub fn to_order_preserving_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.components.len() * 4);
        for &c in &self.components {
            out.extend_from_slice(&c.to_be_bytes());
        }
        out
    }

    /// Inverse of [`Dewey::to_order_preserving_bytes`].
    pub fn from_order_preserving_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.is_empty() || !bytes.len().is_multiple_of(4) {
            return None;
        }
        let components = bytes
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Dewey::new(components)
    }
}

impl PartialOrd for Dewey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Dewey {
    /// Lexicographic component order == document (pre-)order, with the
    /// convention that an ancestor precedes its descendants.
    fn cmp(&self, other: &Self) -> Ordering {
        self.components.cmp(&other.components)
    }
}

impl fmt::Display for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Dewey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dewey({self})")
    }
}

/// Error parsing a Dewey label from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDeweyError(pub String);

impl fmt::Display for ParseDeweyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid Dewey label: {}", self.0)
    }
}

impl std::error::Error for ParseDeweyError {}

impl FromStr for Dewey {
    type Err = ParseDeweyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseDeweyError(s.to_string()));
        }
        let mut components = Vec::new();
        for part in s.split('.') {
            let c: u32 = part.parse().map_err(|_| ParseDeweyError(s.to_string()))?;
            components.push(c);
        }
        Dewey::new(components).ok_or_else(|| ParseDeweyError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    #[test]
    fn root_label_is_zero() {
        assert_eq!(Dewey::root().to_string(), "0");
        assert_eq!(Dewey::root().depth(), 0);
    }

    #[test]
    fn child_and_parent_roundtrip() {
        let n = Dewey::root().child(1).child(2);
        assert_eq!(n.to_string(), "0.1.2");
        assert_eq!(n.parent().unwrap().to_string(), "0.1");
        assert_eq!(n.parent().unwrap().parent().unwrap(), Dewey::root());
        assert_eq!(Dewey::root().parent(), None);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in ["0", "0.0", "0.1.2.3", "0.0.1.0.0.0"] {
            assert_eq!(d(s).to_string(), s);
        }
        assert!("".parse::<Dewey>().is_err());
        assert!("0.x".parse::<Dewey>().is_err());
        assert!("0..1".parse::<Dewey>().is_err());
    }

    #[test]
    fn document_order_matches_component_order() {
        let mut labels = [d("0.1"), d("0"), d("0.0.1"), d("0.0"), d("0.0.2")];
        labels.sort();
        let strs: Vec<String> = labels.iter().map(|l| l.to_string()).collect();
        assert_eq!(strs, ["0", "0.0", "0.0.1", "0.0.2", "0.1"]);
    }

    #[test]
    fn ancestor_tests() {
        assert!(d("0").is_ancestor_of(&d("0.1.2")));
        assert!(d("0.1").is_ancestor_of(&d("0.1.2")));
        assert!(!d("0.1.2").is_ancestor_of(&d("0.1.2")));
        assert!(!d("0.1").is_ancestor_of(&d("0.2.1")));
        assert!(d("0.1.2").is_ancestor_or_self_of(&d("0.1.2")));
        // component 1 vs component 10: prefix on strings would be wrong here
        assert!(!d("0.1").is_ancestor_of(&d("0.10")));
    }

    #[test]
    fn lca_is_longest_common_prefix() {
        assert_eq!(d("0.0.1.0").lca(&d("0.0.2")).unwrap(), d("0.0"));
        assert_eq!(d("0.0").lca(&d("0.0.2")).unwrap(), d("0.0"));
        assert_eq!(d("0.1").lca(&d("0.2")).unwrap(), d("0"));
        assert_eq!(d("0.3").lca(&d("0.3")).unwrap(), d("0.3"));
    }

    #[test]
    fn partition_is_two_component_prefix() {
        assert_eq!(d("0.1.2.3").partition().unwrap(), d("0.1"));
        assert_eq!(d("0.0").partition().unwrap(), d("0.0"));
        assert_eq!(d("0").partition(), None);
    }

    #[test]
    fn order_preserving_bytes_roundtrip_and_order() {
        let a = d("0.1.2");
        let b = d("0.10");
        let ab = a.to_order_preserving_bytes();
        let bb = b.to_order_preserving_bytes();
        assert_eq!(Dewey::from_order_preserving_bytes(&ab).unwrap(), a);
        assert_eq!(Dewey::from_order_preserving_bytes(&bb).unwrap(), b);
        assert_eq!(ab.cmp(&bb), a.cmp(&b));
        assert!(Dewey::from_order_preserving_bytes(&[1, 2, 3]).is_none());
        assert!(Dewey::from_order_preserving_bytes(&[]).is_none());
    }
}

//! `datagen` — synthetic corpora and query workloads (the DESIGN.md
//! substitutions for DBLP, Baseball, and the demo query log).
//!
//! * [`zipf`]: seeded Zipf sampler (keyword-frequency skew);
//! * [`vocab`]: bibliographic/baseball term pools;
//! * [`dblp`]: scale-parameterised DBLP-like generator;
//! * [`baseball`]: the shallower Baseball generator;
//! * [`workload`]: valid queries perturbed by the inverse of each
//!   refinement operation, with ground truth by construction.

pub mod baseball;
pub mod dblp;
pub mod vocab;
pub mod workload;
pub mod zipf;

pub use baseball::{generate_baseball, BaseballConfig};
pub use dblp::{generate_dblp, DblpConfig};
pub use workload::{generate_workload, PerturbKind, WorkloadConfig, WorkloadQuery};
pub use zipf::Zipf;

//! Small utilities shared by the refinement algorithms.

/// A fixed-width bitset over the query session's key set `KS` (original
/// keywords plus all rule-generated ones). Sized once per query, so the
/// hot operations (or-assign, subset test) are branch-free word loops.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct KeyMask {
    words: Vec<u64>,
}

impl KeyMask {
    /// An empty mask over a universe of `n` keywords.
    pub fn empty(n: usize) -> Self {
        KeyMask {
            words: vec![0; n.div_ceil(64)],
        }
    }

    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    pub fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .map(|w| w & (1u64 << (i % 64)) != 0)
            .unwrap_or(false)
    }

    pub fn or_assign(&mut self, other: &KeyMask) {
        debug_assert_eq!(self.words.len(), other.words.len());
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// True if every bit of `self` is set in `other`.
    pub fn is_subset_of(&self, other: &KeyMask) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len());
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & !b == 0)
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of the set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }

    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_count() {
        let mut m = KeyMask::empty(130);
        assert!(m.is_empty());
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(129);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(129));
        assert!(!m.get(1) && !m.get(128));
        assert_eq!(m.count_ones(), 4);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        assert!(!m.get(500)); // out of range reads as false
    }

    #[test]
    fn subset_and_or() {
        let mut a = KeyMask::empty(70);
        let mut b = KeyMask::empty(70);
        a.set(3);
        b.set(3);
        b.set(66);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        a.or_assign(&b);
        assert!(b.is_subset_of(&a));
        a.clear();
        assert!(a.is_empty());
        assert!(a.is_subset_of(&b)); // empty set is a subset of anything
    }
}

//! ELCA — Exclusive LCA, the XRank-family result semantics from the LCA
//! lineage the paper's related work surveys (§II).
//!
//! A node `v` is an ELCA when its subtree contains every query keyword
//! *after excluding* the occurrences lying inside descendants that
//! themselves contain every keyword. ELCA is a superset of SLCA: every
//! SLCA is an ELCA (it has no all-covering descendant at all), and an
//! ancestor also qualifies when it still has its own private witnesses.
//!
//! Implementation: materialize the *cover set* `S` (every node whose
//! subtree contains all keywords — the intersection of the per-keyword
//! ancestor closures), then for each `v ∈ S` subtract the keyword
//! occurrences captured by `v`'s *maximal* proper descendants in `S` and
//! check a private witness remains for every keyword. Complexity
//! `O(|S| · k · log|L|)` — fine for reproduction-scale corpora; the
//! optimized stack algorithms of XRank are out of scope (SLCA is what the
//! paper builds on).

use crate::common::minimal_candidates;
use invindex::Posting;
use std::collections::HashSet;
use xmldom::Dewey;

/// Computes the ELCA set.
pub fn elca<S: AsRef<[Posting]>>(lists: &[S]) -> Vec<Dewey> {
    let lists: Vec<&[Posting]> = lists.iter().map(AsRef::as_ref).collect();
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }

    // Cover set S: intersection of ancestor-or-self closures.
    let closure = |list: &[Posting]| -> HashSet<Vec<u32>> {
        let mut set = HashSet::new();
        for p in list {
            let comps = p.dewey.components();
            for m in 1..=comps.len() {
                set.insert(comps[..m].to_vec());
            }
        }
        set
    };
    let mut cover = closure(lists[0]);
    for l in &lists[1..] {
        let next = closure(l);
        cover.retain(|c| next.contains(c));
    }
    let mut cover: Vec<Dewey> = cover
        .into_iter()
        .map(|c| Dewey::new(c).expect("non-empty"))
        .collect();
    cover.sort();

    let cover_set: HashSet<&Dewey> = cover.iter().collect();
    let mut out = Vec::new();
    for v in &cover {
        // Maximal proper descendants of v within S: those whose parent
        // chain up to (exclusive) v leaves S immediately — i.e. no other
        // S-node strictly between.
        let children: Vec<&Dewey> = cover
            .iter()
            .filter(|u| v.is_ancestor_of(u))
            .filter(|u| {
                // u is maximal under v iff no S-node w with v < w < u
                let mut w = (*u).clone();
                loop {
                    let Some(parent) = w.parent() else { break true };
                    if parent == *v {
                        break true;
                    }
                    if cover_set.contains(&parent) {
                        break false;
                    }
                    w = parent;
                }
            })
            .collect();

        // v is an ELCA iff every keyword has an occurrence in subtree(v)
        // outside all `children` subtrees.
        let private_witness = |list: &[Posting]| -> bool {
            let start = list.partition_point(|p| p.dewey < *v);
            list[start..]
                .iter()
                .take_while(|p| v.is_ancestor_or_self_of(&p.dewey))
                .any(|p| !children.iter().any(|c| c.is_ancestor_or_self_of(&p.dewey)))
        };
        if lists.iter().all(|l| private_witness(l)) {
            out.push(v.clone());
        }
    }
    out
}

/// Definition-direct reference (used in tests): `v` is an ELCA iff each
/// keyword has an occurrence under `v` not under any *all-covering*
/// proper descendant of `v`.
pub fn elca_brute_force<S: AsRef<[Posting]>>(lists: &[S]) -> Vec<Dewey> {
    let lists: Vec<&[Posting]> = lists.iter().map(AsRef::as_ref).collect();
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }
    // all-covering nodes = nodes whose subtree has every keyword
    let covers = |d: &Dewey| -> bool {
        lists
            .iter()
            .all(|l| l.iter().any(|p| d.is_ancestor_or_self_of(&p.dewey)))
    };
    // candidate universe: every ancestor of every posting
    let mut universe: Vec<Dewey> = Vec::new();
    for l in &lists {
        for p in l.iter() {
            let comps = p.dewey.components();
            for m in 1..=comps.len() {
                universe.push(Dewey::new(comps[..m].to_vec()).unwrap());
            }
        }
    }
    universe.sort();
    universe.dedup();

    universe
        .into_iter()
        .filter(|v| covers(v))
        .filter(|v| {
            lists.iter().all(|l| {
                l.iter().any(|p| {
                    if !v.is_ancestor_or_self_of(&p.dewey) {
                        return false;
                    }
                    // excluded if some all-covering proper descendant of v
                    // contains this occurrence
                    let comps = p.dewey.components();
                    !(v.len() + 1..=comps.len()).any(|m| {
                        let anc = Dewey::new(comps[..m].to_vec()).unwrap();
                        anc != *v && covers(&anc)
                    })
                })
            })
        })
        .collect()
}

/// SLCA derived from the ELCA set (the minimal ELCA nodes) — a useful
/// cross-check: `minimal(ELCA) == SLCA`.
pub fn slca_via_elca<S: AsRef<[Posting]>>(lists: &[S]) -> Vec<Dewey> {
    minimal_candidates(elca(lists))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::slca_brute_force;
    use xmldom::NodeTypeId;

    fn ps(labels: &[&str]) -> Vec<Posting> {
        labels
            .iter()
            .map(|s| Posting::new(s.parse().unwrap(), NodeTypeId(0)))
            .collect()
    }

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    #[test]
    fn elca_includes_ancestors_with_private_witnesses() {
        // keyword A at 0.0.0 and 0.1 ; keyword B at 0.0.1 and 0.2
        // node 0.0 covers both (A@0.0.0, B@0.0.1) -> ELCA
        // root covers both privately too (A@0.1, B@0.2) -> ELCA
        let a = ps(&["0.0.0", "0.1"]);
        let b = ps(&["0.0.1", "0.2"]);
        let got = elca(&[&a, &b]);
        assert_eq!(got, vec![d("0"), d("0.0")]);
        // SLCA keeps only the minimal one
        assert_eq!(slca_via_elca(&[&a, &b]), vec![d("0.0")]);
    }

    #[test]
    fn root_without_private_witness_is_not_elca() {
        // both keywords only inside 0.0 -> root's witnesses are all
        // captured by 0.0
        let a = ps(&["0.0.0"]);
        let b = ps(&["0.0.1"]);
        assert_eq!(elca(&[&a, &b]), vec![d("0.0")]);
    }

    #[test]
    fn elca_is_superset_of_slca() {
        let a = ps(&["0.0.2.0.0", "0.1.1.0.0"]);
        let b = ps(&["0.0.2.1.1", "0.0.2.2.1"]);
        let e = elca(&[&a, &b]);
        for s in slca_brute_force(&[&a, &b]) {
            assert!(e.contains(&s), "SLCA {s} missing from ELCA");
        }
    }

    #[test]
    fn matches_definition_direct_reference() {
        let cases: Vec<(Vec<Posting>, Vec<Posting>)> = vec![
            (ps(&["0.0.0", "0.1"]), ps(&["0.0.1", "0.2"])),
            (ps(&["0.0"]), ps(&["0.0"])),
            (ps(&["0.0", "0.0.1.2"]), ps(&["0.0.1.2.0", "0.5"])),
            (ps(&["0.3.1"]), ps(&["0.4.1"])),
        ];
        for (a, b) in cases {
            assert_eq!(elca(&[&a, &b]), elca_brute_force(&[&a, &b]), "{a:?} {b:?}");
        }
    }

    #[test]
    fn empty_inputs() {
        let a = ps(&["0.1"]);
        let none: [&[Posting]; 0] = [];
        let pair: [&[Posting]; 2] = [&a, &[]];
        assert!(elca(&none).is_empty());
        assert!(elca(&pair).is_empty());
    }
}

//! Integration tests encoding the paper's motivating examples (§I,
//! Table I) end-to-end through the engine facade.

use std::sync::Arc;
use xrefine_repro::prelude::*;

fn engine(alg: Algorithm) -> XRefineEngine {
    XRefineEngine::from_document(
        Arc::new(xrefine_repro::xmldom::fixtures::figure1()),
        EngineConfig {
            algorithm: alg,
            k: 3,
            ..Default::default()
        },
    )
}

#[test]
fn example1_database_publication_is_refined() {
    // Example 1: "publication" never occurs; synonyms/stems are used in
    // the data. The engine must (a) detect refinement is needed and (b)
    // propose replacements with non-empty meaningful results.
    for alg in [
        Algorithm::StackRefine,
        Algorithm::Partition,
        Algorithm::ShortListEager,
    ] {
        let out = engine(alg).answer("database publication").unwrap();
        assert!(!out.original_ok, "{alg:?}");
        let best = out.best().unwrap();
        assert!(best.candidate.dissimilarity > 0.0);
        assert!(!best.slcas.is_empty());
        // no result is the meaningless document root
        assert!(best.slcas.iter().all(|d| d.to_string() != "0"));
    }
}

#[test]
fn table1_q4_root_cover_triggers_refinement() {
    // Q4 {xml, john, 2003}: all keywords exist; only the root covers all.
    let e = engine(Algorithm::Partition);
    // the plain SLCA baseline really does return the root
    let slcas = e
        .baseline_slca(
            &Query::parse("xml john 2003"),
            xrefine_repro::slca::slca_stack,
        )
        .unwrap();
    assert_eq!(slcas.len(), 1);
    assert_eq!(slcas[0].to_string(), "0");
    // the refinement engine rejects it and proposes subqueries
    let out = e.answer("xml john 2003").unwrap();
    assert!(!out.original_ok);
    assert!(!out.refinements.is_empty());
    for r in &out.refinements {
        assert!(r.candidate.keywords.len() < 3 || r.candidate.dissimilarity > 0.0);
        assert!(!r.slcas.is_empty());
    }
}

#[test]
fn table1_q0_hobby_result_is_meaningful() {
    // RQ0 flavour: {john, fishing} matches hobby:0.1.2 under author.
    let e = engine(Algorithm::Partition);
    let out = e.answer("john fishing").unwrap();
    assert!(out.original_ok);
    let best = out.best().unwrap();
    assert_eq!(best.candidate.dissimilarity, 0.0);
    assert!(best.slcas.iter().all(|d| d.to_string().starts_with("0.1")));
}

#[test]
fn queries_with_no_repair_fail_gracefully() {
    let e = engine(Algorithm::Partition);
    let out = e.answer("zzzz qqqq wwww1234").unwrap();
    assert!(!out.original_ok);
    assert!(out.refinements.is_empty());
}

#[test]
fn empty_query_is_handled() {
    let e = engine(Algorithm::Partition);
    let out = e.answer("   ").unwrap();
    assert!(!out.original_ok);
    assert!(out.refinements.is_empty());
}

#[test]
fn single_keyword_queries_work() {
    let e = engine(Algorithm::Partition);
    let out = e.answer("fishing").unwrap();
    assert!(out.original_ok);
    assert!(!out.best().unwrap().slcas.is_empty());
    // a misspelled single keyword gets corrected
    let out = e.answer("fihsing").unwrap();
    assert!(!out.original_ok);
    let best = out.best().unwrap();
    assert_eq!(best.candidate.keywords, vec!["fishing".to_string()]);
}

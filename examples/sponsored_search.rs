//! Sponsored search — the application scenario §I singles out: matching a
//! stream of noisy user queries against a *small* corpus of XML-formatted
//! advertising listings, where an unrefined query usually matches nothing
//! and every miss is lost revenue.
//!
//! ```text
//! cargo run --example sponsored_search
//! ```

use std::sync::Arc;
use xrefine_repro::lexicon::Thesaurus;
use xrefine_repro::prelude::*;
use xrefine_repro::xmldom::DocumentBuilder;

/// Builds a small advertising catalogue.
fn catalogue() -> Document {
    let mut b = DocumentBuilder::new();
    b.open_element("ads");
    let listings = [
        ("laptop", "lightweight laptop with long battery life", "899"),
        ("laptop", "gaming laptop with dedicated graphics", "1499"),
        ("phone", "budget smartphone with great camera", "299"),
        ("phone", "flagship smartphone titanium frame", "999"),
        ("tablet", "drawing tablet with stylus support", "549"),
        ("headphones", "noise cancelling wireless headphones", "249"),
        ("camera", "mirrorless camera with prime lens", "1299"),
        ("monitor", "ultrawide monitor for productivity", "649"),
    ];
    for (category, blurb, price) in listings {
        b.open_element("listing");
        b.leaf("category", category);
        b.leaf("blurb", blurb);
        b.leaf("price", price);
        b.close_element();
    }
    b.close_element();
    b.finish()
}

fn main() {
    // A domain thesaurus replaces the bibliographic default.
    let mut thesaurus = Thesaurus::new();
    thesaurus.add_group(&["laptop", "notebook", "ultrabook"], 1.0);
    thesaurus.add_group(&["phone", "smartphone", "mobile"], 1.0);
    thesaurus.add_group(&["headphones", "earphones", "headset"], 1.0);
    thesaurus.add_group(&["camera", "dslr"], 1.5);
    thesaurus.add_group(&["cheap", "budget", "affordable"], 1.0);

    let engine = XRefineEngine::from_document(
        Arc::new(catalogue()),
        EngineConfig {
            algorithm: Algorithm::ShortListEager,
            k: 2,
            ..Default::default()
        },
    )
    .with_thesaurus(thesaurus);

    // Noisy queries as users actually type them.
    let queries = [
        "notebook battery",          // synonym mismatch: notebook -> laptop
        "wire less headphones",      // mistaken split
        "budget smart phone",        // split of "smartphone"
        "noize cancelling",          // typo
        "mirrorles camera lens",     // typo
        "ultrabook titanium camera", // over-constrained: needs a deletion
    ];

    for text in queries {
        let out = engine.answer(text).unwrap();
        print!("{text:28} -> ");
        if out.original_ok {
            println!("{} direct match(es)", out.best().unwrap().slcas.len());
        } else if let Some(best) = out.best() {
            println!(
                "refined to {{{}}} (dSim={}), {} listing(s)",
                best.candidate.keywords.join(", "),
                best.candidate.dissimilarity,
                best.slcas.len()
            );
        } else {
            println!("no match even after refinement");
        }
    }
}

//! Extension experiment (§IX future work): narrowing refinement quality
//! and cost for over-broad queries. For a batch of deliberately broad
//! queries (head-of-Zipf keywords), reports the original result count,
//! the Top-3 suggested narrowings with their counts, and the wall time.

use bench::{dblp, f3, time_ms, Table};
use std::sync::Arc;
use xrefine::{EngineConfig, NarrowOptions, XRefineEngine};

fn main() {
    let doc = dblp(0.5);
    let engine = XRefineEngine::from_document(Arc::clone(&doc), EngineConfig::default());
    let options = NarrowOptions {
        k: 3,
        max_results: 12,
        ..Default::default()
    };

    let queries = [
        "data",
        "query",
        "xml",
        "system data",
        "database system",
        "xml query",
        "efficient search",
        "keyword search",
    ];

    let mut t = Table::new(&["query", "results", "suggestions (added -> count)", "ms"]);
    for q in queries {
        let ms = time_ms(
            || {
                std::hint::black_box(engine.narrow(q, &options).expect("narrow"));
            },
            3,
        );
        match engine.narrow(q, &options).expect("narrow") {
            None => t.row(vec![q.into(), "<= max".into(), "-".into(), f3(ms)]),
            Some(suggestions) => {
                let orig = suggestions
                    .first()
                    .map(|s| s.original_results.to_string())
                    .unwrap_or_else(|| "many".into());
                let rendered = if suggestions.is_empty() {
                    "(no single-keyword narrowing)".to_string()
                } else {
                    suggestions
                        .iter()
                        .map(|s| format!("+{} -> {}", s.added, s.refinement.slcas.len()))
                        .collect::<Vec<_>>()
                        .join("; ")
                };
                t.row(vec![q.into(), orig, rendered, f3(ms)]);
            }
        }
    }
    println!("== Extension: narrowing refinement (too-many-results queries) ==\n");
    t.print();
    println!("\nmax_results = {}, Top-{}", options.max_results, options.k);
}

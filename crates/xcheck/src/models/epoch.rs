//! Epoch publish vs reader pin (production: `invindex::maint` snapshot
//! handoff).
//!
//! The maintenance writer prepares a new snapshot and only then swaps
//! the epoch pointer; a reader that pins the published epoch must see a
//! fully built snapshot. The model collapses "the snapshot" to one cell:
//! the writer fills `snapshot`, then publishes `epoch = 1`. The seeded
//! bug flips the publish order — epoch first, snapshot second — which is
//! exactly the handoff the production code orders the other way around.

use crate::sched::{explore, Config, Outcome};
use crate::shim::XAtomicU64;

use super::Bug;

pub struct State {
    /// Collapsed snapshot contents: 0 = unbuilt, SNAPSHOT_READY = built.
    snapshot: XAtomicU64,
    /// Published epoch: readers pin by loading it.
    epoch: XAtomicU64,
    bug: Bug,
}

const SNAPSHOT_READY: u64 = 42;

fn writer(s: &State) {
    match s.bug {
        Bug::None => {
            s.snapshot.store(SNAPSHOT_READY);
            s.epoch.store(1);
        }
        Bug::Seeded => {
            // Seeded bug: publish before the snapshot is built.
            s.epoch.store(1);
            s.snapshot.store(SNAPSHOT_READY);
        }
    }
}

fn reader(s: &State) {
    let pinned = s.epoch.load();
    let seen = s.snapshot.load();
    if pinned == 1 && seen != SNAPSHOT_READY {
        panic!("pinned epoch 1 but read an unbuilt snapshot ({seen})");
    }
}

/// Explores the handoff exhaustively; the violation (when seeded) is the
/// reader's panic above.
pub fn check(bug: Bug) -> Outcome {
    explore(
        &Config::default(),
        move || State {
            snapshot: XAtomicU64::new(0),
            epoch: XAtomicU64::new(0),
            bug,
        },
        &[writer, reader],
        |_| Ok(()),
    )
}

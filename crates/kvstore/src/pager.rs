//! Page storage: fixed-size pages addressed by [`PageId`], backed either by
//! memory or by a file with a write-back cache.
//!
//! The B+-tree above never touches files directly; it allocates, reads and
//! writes whole pages through the [`Pager`] trait, which keeps the tree
//! logic testable against the in-memory pager and makes the disk format a
//! detail of [`FilePager`].

use crate::error::{KvError, Result};
use crate::fsutil::sync_parent_dir;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Size of every page in bytes. 4 KiB matches common filesystem blocks.
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a store. Page 0 is the store header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Sentinel meaning "no page" (page 0 is the header, never a tree page).
    pub const NULL: PageId = PageId(0);

    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

/// A page-granular storage backend.
///
/// Like [`crate::KvStore`], pagers are `Send + Sync`: `read` takes
/// `&self` so concurrent readers can share a pager without an exclusive
/// lock (writes still require `&mut self`).
pub trait Pager: Send + Sync {
    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&mut self) -> Result<PageId>;
    /// Reads a full page. `id` must have been allocated.
    fn read(&self, id: PageId) -> Result<Vec<u8>>;
    /// Overwrites a full page. `data.len()` must equal [`PAGE_SIZE`].
    fn write(&mut self, id: PageId, data: &[u8]) -> Result<()>;
    /// Returns a previously allocated page to the free pool.
    fn free(&mut self, id: PageId) -> Result<()>;
    /// Number of pages ever allocated (including freed ones and the header).
    fn page_count(&self) -> u64;
    /// Flushes buffered writes to durable storage.
    fn sync(&mut self) -> Result<()>;
}

/// Purely in-memory pager. The default for tests and for index builds that
/// never need persistence.
#[derive(Debug, Default)]
pub struct MemPager {
    pages: Vec<Vec<u8>>,
    free: Vec<PageId>,
}

impl MemPager {
    pub fn new() -> Self {
        // Reserve page 0 as the header so ids match the file layout.
        MemPager {
            pages: vec![vec![0; PAGE_SIZE]],
            free: Vec::new(),
        }
    }
}

impl Pager for MemPager {
    fn allocate(&mut self) -> Result<PageId> {
        if let Some(id) = self.free.pop() {
            self.pages[id.0 as usize].fill(0);
            return Ok(id);
        }
        let id = PageId(self.pages.len() as u64);
        self.pages.push(vec![0; PAGE_SIZE]);
        Ok(id)
    }

    fn read(&self, id: PageId) -> Result<Vec<u8>> {
        self.pages
            .get(id.0 as usize)
            .cloned()
            .ok_or_else(|| KvError::Corrupt(format!("read of unallocated page {}", id.0)))
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> Result<()> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        let page = self
            .pages
            .get_mut(id.0 as usize)
            .ok_or_else(|| KvError::Corrupt(format!("write of unallocated page {}", id.0)))?;
        page.copy_from_slice(data);
        Ok(())
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        if id.is_null() || id.0 as usize >= self.pages.len() {
            return Err(KvError::Corrupt(format!("free of invalid page {}", id.0)));
        }
        self.free.push(id);
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// File-backed pager with a simple write-back page cache.
///
/// The cache holds every dirty page plus up to `cache_limit` clean pages;
/// eviction is not LRU-precise (it drops an arbitrary clean page), which is
/// adequate for the workload's sequential build + random probe pattern.
pub struct FilePager {
    file: Mutex<File>,
    cache: HashMap<PageId, CachedPage>,
    cache_limit: usize,
    page_count: u64,
    free: Vec<PageId>,
}

struct CachedPage {
    data: Vec<u8>,
    dirty: bool,
}

impl FilePager {
    /// Opens (creating if absent) a pager over `path`.
    pub fn open(path: &Path) -> Result<Self> {
        let existed = path.exists();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if !existed {
            // Make the file's directory entry durable (see `fsutil`).
            sync_parent_dir(path)?;
        }
        let len = file.seek(SeekFrom::End(0))?;
        if len % PAGE_SIZE as u64 != 0 {
            return Err(KvError::Corrupt(format!(
                "file length {len} is not a multiple of the page size"
            )));
        }
        let mut page_count = len / PAGE_SIZE as u64;
        if page_count == 0 {
            // Write the header page eagerly so page 0 always exists.
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&[0u8; PAGE_SIZE])?;
            page_count = 1;
        }
        Ok(FilePager {
            file: Mutex::new(file),
            cache: HashMap::new(),
            cache_limit: 4096,
            page_count,
            free: Vec::new(),
        })
    }

    fn evict_if_needed(&mut self) -> Result<()> {
        if self.cache.len() <= self.cache_limit {
            return Ok(());
        }
        // Flush one dirty page if everything is dirty; otherwise drop a
        // clean one.
        let clean = self.cache.iter().find(|(_, p)| !p.dirty).map(|(&id, _)| id);
        match clean {
            Some(id) => {
                self.cache.remove(&id);
            }
            None => {
                if let Some((&id, _)) = self.cache.iter().next() {
                    let page = self.cache.remove(&id).expect("just found");
                    self.write_through(id, &page.data)?;
                }
            }
        }
        Ok(())
    }

    fn write_through(&self, id: PageId, data: &[u8]) -> Result<()> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        file.write_all(data)?;
        Ok(())
    }
}

impl Pager for FilePager {
    fn allocate(&mut self) -> Result<PageId> {
        if let Some(id) = self.free.pop() {
            self.cache.insert(
                id,
                CachedPage {
                    data: vec![0; PAGE_SIZE],
                    dirty: true,
                },
            );
            return Ok(id);
        }
        let id = PageId(self.page_count);
        self.page_count += 1;
        self.evict_if_needed()?;
        self.cache.insert(
            id,
            CachedPage {
                data: vec![0; PAGE_SIZE],
                dirty: true,
            },
        );
        Ok(id)
    }

    fn read(&self, id: PageId) -> Result<Vec<u8>> {
        if id.0 >= self.page_count {
            return Err(KvError::Corrupt(format!(
                "read of unallocated page {}",
                id.0
            )));
        }
        if let Some(p) = self.cache.get(&id) {
            return Ok(p.data.clone());
        }
        let mut file = self.file.lock();
        let file_pages = {
            let len = file.seek(SeekFrom::End(0))?;
            len / PAGE_SIZE as u64
        };
        if id.0 >= file_pages {
            // Allocated but never flushed nor written: logically zeroed.
            return Ok(vec![0; PAGE_SIZE]);
        }
        file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        let mut buf = vec![0; PAGE_SIZE];
        file.read_exact(&mut buf)?;
        Ok(buf)
    }

    fn write(&mut self, id: PageId, data: &[u8]) -> Result<()> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        if id.0 >= self.page_count {
            return Err(KvError::Corrupt(format!(
                "write of unallocated page {}",
                id.0
            )));
        }
        match self.cache.get_mut(&id) {
            Some(p) => {
                p.data.copy_from_slice(data);
                p.dirty = true;
            }
            None => {
                self.evict_if_needed()?;
                self.cache.insert(
                    id,
                    CachedPage {
                        data: data.to_vec(),
                        dirty: true,
                    },
                );
            }
        }
        Ok(())
    }

    fn free(&mut self, id: PageId) -> Result<()> {
        if id.is_null() || id.0 >= self.page_count {
            return Err(KvError::Corrupt(format!("free of invalid page {}", id.0)));
        }
        self.cache.remove(&id);
        self.free.push(id);
        Ok(())
    }

    fn page_count(&self) -> u64 {
        self.page_count
    }

    fn sync(&mut self) -> Result<()> {
        // Grow the file to cover all allocated pages, then flush dirty pages.
        {
            let mut file = self.file.lock();
            let want = self.page_count * PAGE_SIZE as u64;
            let have = file.seek(SeekFrom::End(0))?;
            if have < want {
                file.set_len(want)?;
            }
        }
        for (&id, page) in self.cache.iter_mut() {
            if page.dirty {
                let mut file = self.file.lock();
                file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
                file.write_all(&page.data)?;
                page.dirty = false;
            }
        }
        self.file.lock().sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(pager: &mut dyn Pager) {
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_ne!(a, b);
        assert!(!a.is_null());

        let mut pa = vec![0u8; PAGE_SIZE];
        pa[0] = 0xAA;
        pa[PAGE_SIZE - 1] = 0x55;
        pager.write(a, &pa).unwrap();
        assert_eq!(pager.read(a).unwrap(), pa);
        assert_eq!(pager.read(b).unwrap(), vec![0u8; PAGE_SIZE]);

        pager.free(b).unwrap();
        let c = pager.allocate().unwrap();
        // freed page is recycled and zeroed (mem) or fresh (file)
        assert_eq!(pager.read(c).unwrap(), vec![0u8; PAGE_SIZE]);
        pager.sync().unwrap();
        assert_eq!(pager.read(a).unwrap(), pa);
    }

    #[test]
    fn mem_pager_basics() {
        let mut p = MemPager::new();
        exercise(&mut p);
        assert!(p.read(PageId(999)).is_err());
        assert!(p.free(PageId::NULL).is_err());
    }

    #[test]
    fn file_pager_basics_and_reopen() {
        let dir = std::env::temp_dir().join(format!("kvstore_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pager_basics.db");
        let _ = std::fs::remove_file(&path);

        let a;
        let mut pa = vec![0u8; PAGE_SIZE];
        {
            let mut p = FilePager::open(&path).unwrap();
            exercise(&mut p);
            a = p.allocate().unwrap();
            pa[7] = 42;
            p.write(a, &pa).unwrap();
            p.sync().unwrap();
        }
        // Reopen and verify durability.
        let p = FilePager::open(&path).unwrap();
        assert_eq!(p.read(a).unwrap(), pa);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_pager_rejects_torn_files() {
        let dir = std::env::temp_dir().join(format!("kvstore_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.db");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 17]).unwrap();
        assert!(matches!(FilePager::open(&path), Err(KvError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_pager_cache_eviction_preserves_data() {
        let dir = std::env::temp_dir().join(format!("kvstore_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("evict.db");
        let _ = std::fs::remove_file(&path);
        let mut p = FilePager::open(&path).unwrap();
        p.cache_limit = 4; // force eviction
        let mut ids = Vec::new();
        for i in 0..32u8 {
            let id = p.allocate().unwrap();
            let mut page = vec![0u8; PAGE_SIZE];
            page[0] = i;
            p.write(id, &page).unwrap();
            ids.push(id);
        }
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(p.read(*id).unwrap()[0], i as u8);
        }
        std::fs::remove_file(&path).unwrap();
    }
}

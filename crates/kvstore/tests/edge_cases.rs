//! Edge-case batteries for the B+-tree: boundary sizes around the
//! inline/overflow threshold, delete-heavy churn, empty keys, and reopen
//! of every state.

use kvstore::{KvStore, MemTreeKv, PAGE_SIZE};

#[test]
fn values_around_the_inline_overflow_boundary() {
    let mut t = MemTreeKv::new().unwrap();
    // MAX_INLINE_ENTRY is 1024 internally: sweep sizes around it
    for size in [
        0usize,
        1,
        900,
        1000,
        1017,
        1018,
        1019,
        1024,
        1025,
        2048,
        PAGE_SIZE,
        PAGE_SIZE + 1,
    ] {
        let key = format!("size-{size}");
        let value = vec![0xA5u8; size];
        t.put(key.as_bytes(), &value).unwrap();
        assert_eq!(
            t.get(key.as_bytes()).unwrap().unwrap(),
            value,
            "size {size}"
        );
    }
    // overwrite across the boundary in both directions
    t.put(b"flip", &[1u8; 10]).unwrap();
    t.put(b"flip", &vec![2u8; 5000]).unwrap();
    assert_eq!(t.get(b"flip").unwrap().unwrap(), vec![2u8; 5000]);
    t.put(b"flip", &[3u8; 10]).unwrap();
    assert_eq!(t.get(b"flip").unwrap().unwrap(), vec![3u8; 10]);
}

#[test]
fn empty_key_and_empty_value() {
    let mut t = MemTreeKv::new().unwrap();
    t.put(b"", b"empty-key").unwrap();
    t.put(b"empty-value", b"").unwrap();
    assert_eq!(t.get(b"").unwrap().unwrap(), b"empty-key");
    assert_eq!(t.get(b"empty-value").unwrap().unwrap(), b"");
    assert!(t.delete(b"").unwrap());
    assert_eq!(t.get(b"").unwrap(), None);
}

#[test]
fn churn_insert_delete_reinsert() {
    let mut t = MemTreeKv::new().unwrap();
    let n = 2000u32;
    for i in 0..n {
        t.put(format!("k{i:06}").as_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    // delete every other key
    for i in (0..n).step_by(2) {
        assert!(t.delete(format!("k{i:06}").as_bytes()).unwrap());
    }
    assert_eq!(t.len(), (n / 2) as u64);
    // reinsert deleted keys with new values
    for i in (0..n).step_by(2) {
        t.put(format!("k{i:06}").as_bytes(), &(i + 1).to_le_bytes())
            .unwrap();
    }
    assert_eq!(t.len(), n as u64);
    for i in 0..n {
        let expect = if i % 2 == 0 { i + 1 } else { i };
        assert_eq!(
            t.get(format!("k{i:06}").as_bytes()).unwrap().unwrap(),
            expect.to_le_bytes()
        );
    }
    // full scan still ordered and complete
    let all = t.scan_range(b"", None).unwrap();
    assert_eq!(all.len(), n as usize);
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn long_shared_prefix_keys() {
    let mut t = MemTreeKv::new().unwrap();
    let prefix = "x".repeat(500);
    for i in 0..200u32 {
        t.put(format!("{prefix}{i:04}").as_bytes(), b"v").unwrap();
    }
    assert_eq!(t.scan_prefix(prefix.as_bytes()).unwrap().len(), 200);
    // "…01xx" matches exactly 0100..=0199
    assert_eq!(
        t.scan_prefix(format!("{prefix}01").as_bytes())
            .unwrap()
            .len(),
        100
    );
}

//! `invindex` — keyword inverted lists and document statistics (§VII).
//!
//! * [`postings`]: document-ordered posting lists with delta/front-coded
//!   serialization;
//! * [`index`]: the one-pass index builder and in-memory [`Index`];
//! * [`stats`]: the frequency tables (`N_T`, `G_T`, `tf(k,T)`, `f^T_k`);
//! * [`cooccur`]: memoized co-occurrence frequencies `f^T_{ki,kj}`;
//! * [`cursor`]: scan-instrumented list cursors (used to *prove* the
//!   one-scan property of the refinement algorithms in tests);
//! * [`persist`]: storage of the whole index in any [`kvstore::KvStore`].

pub mod cooccur;
pub mod cursor;
pub mod parallel;
pub mod index;
pub mod persist;
pub mod postings;
pub mod stats;

pub use cursor::{ListCursor, ScanStats};
pub use index::Index;
pub use parallel::build_parallel;
pub use postings::{Posting, PostingList};
pub use stats::{KeywordId, KeywordTable, TypeStats};

//! The synthetic relevance oracle — substitute for the paper's six human
//! judges (§VIII-C; see DESIGN.md).
//!
//! The judges scored each refined query (with its results) against the
//! user's search intention on a four-point scale (0 irrelevant … 3 highly
//! relevant). Our workload knows the *intended* query by construction, so
//! the oracle grades an RQ by how faithfully it restores that intention:
//! exact keyword-set restoration is highly relevant; stem-equivalent or
//! off-by-one sets are partially relevant; disjoint sets are irrelevant.

use datagen::WorkloadQuery;
use lexicon::porter_stem;
use std::collections::BTreeSet;

/// Graded relevance on the paper's 0–3 scale.
pub fn grade(workload: &WorkloadQuery, refined: &[String]) -> f64 {
    let intended: BTreeSet<String> = workload.intended.iter().map(|s| stem_key(s)).collect();
    let got: BTreeSet<String> = refined.iter().map(|s| stem_key(s)).collect();
    if intended.is_empty() || got.is_empty() {
        return 0.0;
    }
    if got == intended {
        return 3.0;
    }
    let inter = intended.intersection(&got).count();
    let missing = intended.len() - inter;
    let extra = got.len() - inter;
    if inter == 0 {
        return 0.0;
    }
    if missing + extra <= 1 {
        // one keyword off (a dropped constraint or one spurious addition):
        // fairly relevant
        2.0
    } else if inter * 2 >= intended.len() {
        // at least half the intention restored: marginally relevant
        1.0
    } else {
        0.0
    }
}

/// Keywords are compared modulo merging and stemming: "worldwide" should
/// count as restoring "world wide"… but without document context we fold
/// only morphology (Porter stem).
fn stem_key(word: &str) -> String {
    porter_stem(word)
}

/// The gain vector of a ranked refinement list for one workload query.
pub fn gain_vector(workload: &WorkloadQuery, ranked: &[Vec<String>], k: usize) -> Vec<f64> {
    ranked
        .iter()
        .take(k)
        .map(|rq| grade(workload, rq))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::PerturbKind;

    fn wq(intended: &[&str]) -> WorkloadQuery {
        WorkloadQuery {
            keywords: vec!["broken".into()],
            intended: intended.iter().map(|s| s.to_string()).collect(),
            kind: PerturbKind::Typo,
        }
    }

    fn kws(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn exact_restoration_scores_three() {
        let w = wq(&["xml", "database"]);
        assert_eq!(grade(&w, &kws(&["database", "xml"])), 3.0);
    }

    #[test]
    fn stem_equivalence_counts_as_exact() {
        let w = wq(&["matching", "queries"]);
        assert_eq!(grade(&w, &kws(&["match", "query"])), 3.0);
    }

    #[test]
    fn one_off_scores_two() {
        let w = wq(&["xml", "database", "2003"]);
        assert_eq!(grade(&w, &kws(&["xml", "database"])), 2.0); // one missing
        assert_eq!(grade(&w, &kws(&["xml", "database", "2003", "extra"])), 2.0);
    }

    #[test]
    fn half_overlap_scores_one() {
        let w = wq(&["a", "b", "c", "d"]);
        assert_eq!(grade(&w, &kws(&["a", "b", "x", "y"])), 1.0);
    }

    #[test]
    fn disjoint_scores_zero() {
        let w = wq(&["xml", "database"]);
        assert_eq!(grade(&w, &kws(&["baseball", "pitcher"])), 0.0);
        assert_eq!(grade(&w, &[]), 0.0);
    }

    #[test]
    fn gain_vector_truncates_to_k() {
        let w = wq(&["xml"]);
        let ranked = vec![kws(&["xml"]), kws(&["web"]), kws(&["xml", "web"])];
        let g = gain_vector(&w, &ranked, 2);
        assert_eq!(g, [3.0, 0.0]);
    }
}

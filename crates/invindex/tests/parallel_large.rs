//! Parallel index build equivalence on a realistic corpus.

use datagen::{generate_dblp, DblpConfig};
use invindex::{build_parallel, Index};
use std::sync::Arc;

#[test]
fn parallel_build_matches_sequential_on_dblp() {
    let doc = Arc::new(generate_dblp(&DblpConfig {
        authors: 120,
        ..Default::default()
    }));
    let seq = Index::build(Arc::clone(&doc));
    let par = build_parallel(Arc::clone(&doc), 4);
    assert_eq!(seq.vocabulary().len(), par.vocabulary().len());
    assert_eq!(seq.total_postings(), par.total_postings());
    for (k_seq, text) in seq.vocabulary().iter() {
        let k_par = par.vocabulary().get(text).expect("vocab parity");
        assert_eq!(seq.list_by_id(k_seq), par.list_by_id(k_par), "{text}");
        for t in doc.node_types().iter() {
            assert_eq!(seq.stats().df(t, k_seq), par.stats().df(t, k_par));
            assert_eq!(seq.stats().tf(t, k_seq), par.stats().tf(t, k_par));
        }
    }
}

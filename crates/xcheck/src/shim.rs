//! Instrumented synchronization shims.
//!
//! Under exploration (a checker context installed by [`crate::sched`]),
//! every operation is a scheduling yield point, lock contention parks
//! the thread in the scheduler, and atomics interleave at instruction
//! granularity. Outside exploration — in `setup()`, in invariants, or
//! under plain `cargo test` — they degrade to ordinary `Mutex` and
//! SeqCst atomics, so the same model code runs in both worlds.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::sched::{fresh_lock_id, with_ctx};

/// A mutex whose acquisition is a scheduling point and whose contention
/// is visible to the deadlock detector.
pub struct XMutex<T> {
    id: usize,
    inner: Mutex<T>,
}

impl<T> XMutex<T> {
    pub fn new(value: T) -> Self {
        XMutex {
            id: fresh_lock_id(),
            inner: Mutex::new(value),
        }
    }

    pub fn lock(&self) -> XGuard<'_, T> {
        let instrumented = with_ctx(|ctx| loop {
            ctx.yield_now();
            if ctx.try_acquire(self.id) {
                break;
            }
            ctx.block_on(self.id);
        })
        .is_some();
        // Under exploration the scheduler has granted exclusive
        // ownership, so the std lock below is uncontended; threads are
        // unwound on abort only while parked in the scheduler, never
        // while holding it.
        let guard = self.inner.lock().expect("xmutex poisoned");
        XGuard {
            lock_id: self.id,
            instrumented,
            guard: Some(guard),
        }
    }
}

/// RAII guard for [`XMutex`]; releasing it wakes parked threads.
pub struct XGuard<'a, T> {
    lock_id: usize,
    instrumented: bool,
    guard: Option<MutexGuard<'a, T>>,
}

impl<T> std::ops::Deref for XGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken")
    }
}

impl<T> std::ops::DerefMut for XGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken")
    }
}

impl<T> Drop for XGuard<'_, T> {
    fn drop(&mut self) {
        self.guard.take();
        if self.instrumented {
            with_ctx(|ctx| ctx.release(self.lock_id));
        }
    }
}

/// A `u64` atomic whose every access is a scheduling point.
pub struct XAtomicU64 {
    inner: AtomicU64,
}

impl XAtomicU64 {
    pub fn new(v: u64) -> Self {
        XAtomicU64 {
            inner: AtomicU64::new(v),
        }
    }

    pub fn load(&self) -> u64 {
        with_ctx(|ctx| ctx.yield_now());
        self.inner.load(Ordering::SeqCst)
    }

    pub fn store(&self, v: u64) {
        with_ctx(|ctx| ctx.yield_now());
        self.inner.store(v, Ordering::SeqCst);
    }

    pub fn fetch_add(&self, v: u64) -> u64 {
        with_ctx(|ctx| ctx.yield_now());
        self.inner.fetch_add(v, Ordering::SeqCst)
    }
}

/// A boolean atomic whose every access is a scheduling point.
pub struct XAtomicBool {
    inner: AtomicBool,
}

impl XAtomicBool {
    pub fn new(v: bool) -> Self {
        XAtomicBool {
            inner: AtomicBool::new(v),
        }
    }

    pub fn load(&self) -> bool {
        with_ctx(|ctx| ctx.yield_now());
        self.inner.load(Ordering::SeqCst)
    }

    pub fn store(&self, v: bool) {
        with_ctx(|ctx| ctx.yield_now());
        self.inner.store(v, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shims_work_without_a_checker_context() {
        let m = XMutex::new(7u64);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 8);
        let a = XAtomicU64::new(1);
        assert_eq!(a.fetch_add(2), 1);
        assert_eq!(a.load(), 3);
        let b = XAtomicBool::new(false);
        b.store(true);
        assert!(b.load());
    }
}

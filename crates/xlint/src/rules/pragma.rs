//! `pragma`: hygiene for the suppression pragmas themselves. An
//! `xlint::allow(..)` must name a real rule and must carry a written
//! justification after a colon — a bare suppression is how exemptions
//! rot. These findings are not themselves suppressible.

use crate::diag::Finding;
use crate::source::SourceFile;

pub const RULE: &str = "pragma";

pub fn check(file: &SourceFile, out: &mut Vec<Finding>) {
    for allow in &file.allows {
        if !super::RULE_NAMES.contains(&allow.rule.as_str()) {
            out.push(Finding {
                rule: RULE,
                path: file.path.clone(),
                line: allow.line,
                col: 1,
                message: format!("`xlint::allow({})` names an unknown rule", allow.rule),
                help: format!("known rules: {}", super::RULE_NAMES.join(", ")),
            });
        }
        if allow.justification.is_empty() {
            out.push(Finding {
                rule: RULE,
                path: file.path.clone(),
                line: allow.line,
                col: 1,
                message: format!("`xlint::allow({})` has no justification", allow.rule),
                help: "write `// xlint::allow(rule): why this site is safe`".into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    #[test]
    fn bare_and_unknown_pragmas_are_findings() {
        let src = "// xlint::allow(no-panic-paths)\n\
                   // xlint::allow(no-such-rule): because\n\
                   // xlint::allow(lock-order): guard provably dropped above\n";
        let f = SourceFile::parse("a.rs", src, FileKind::Production);
        let mut out = Vec::new();
        check(&f, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("no justification"));
        assert!(out[1].message.contains("unknown rule"));
    }

    #[test]
    fn pragma_hygiene_applies_to_test_files_too() {
        let f = SourceFile::parse(
            "crates/x/tests/t.rs",
            "// xlint::allow(lock-order)\nfn t() {}\n",
            FileKind::Test,
        );
        let mut out = Vec::new();
        check(&f, &mut out);
        assert_eq!(out.len(), 1);
    }
}

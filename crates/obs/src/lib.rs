//! obs — zero-dependency observability for the XRefine reproduction.
//!
//! Two halves:
//!
//! * [`metrics`] — a process-global, lock-cheap registry of atomic counters,
//!   gauges and log₂-bucketed histograms (p50/p90/p99 from bucket bounds),
//!   snapshot-able as a [`MetricsSnapshot`] and renderable as Prometheus
//!   text or JSON. See the `counter!`/`gauge!`/`histogram!` macros for the
//!   cached-handle call-site pattern.
//! * [`trace`] — an opt-in, per-thread span tracer. [`trace::capture`] wraps
//!   a query and returns a structured [`QueryTrace`]; instrumented layers
//!   call [`trace::span`]/[`trace::event`]/[`trace::count`] which are no-ops
//!   unless a capture is active on the calling thread.
//!
//! The crate is `std`-only by design: it sits below `kvstore` in the
//! dependency order so every layer of the system can use it.

pub mod lockrank;
pub mod metrics;
pub mod trace;

pub use metrics::{
    global, set_enabled, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use trace::{QueryTrace, Span, SpanGuard};

/// Cached-handle counter lookup: `obs::counter!("name")` evaluates to a
/// `&'static Counter` registered in the global registry, resolving the name
/// only on first use at each call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::metrics::global().counter($name))
    }};
}

/// Cached-handle gauge lookup; see [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::metrics::global().gauge($name))
    }};
}

/// Cached-handle histogram lookup; see [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::metrics::global().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_return_stable_global_handles() {
        let _g = crate::metrics::test_serial_guard();
        let c = crate::counter!("obs_lib_macro_test_total");
        c.inc();
        crate::counter!("obs_lib_macro_test_total").inc();
        // Two distinct call sites, one underlying counter.
        assert_eq!(
            crate::metrics::global()
                .counter("obs_lib_macro_test_total")
                .get(),
            2
        );
        crate::gauge!("obs_lib_macro_test_gauge").set(5);
        crate::histogram!("obs_lib_macro_test_hist").observe(3);
        let snap = crate::metrics::global().snapshot();
        assert_eq!(snap.gauges["obs_lib_macro_test_gauge"], 5);
        assert_eq!(snap.histograms["obs_lib_macro_test_hist"].count, 1);
    }
}

//! Concurrent serving: eight threads sharing one `Arc<XRefineEngine>`
//! over a kv-backed index must produce outcomes identical to answering
//! the same workload single-threaded. Answering is a read-only
//! operation; interleaving (cache hits/misses/evictions, shared
//! co-occurrence memo) must never change an answer.

use std::sync::Arc;
use xrefine_repro::datagen::{generate_dblp, generate_workload, DblpConfig, WorkloadConfig};
use xrefine_repro::invindex::{persist, KvBackedIndex};
use xrefine_repro::kvstore::MemKv;
use xrefine_repro::prelude::*;

const THREADS: usize = 8;
const ROUNDS: usize = 3;

fn workload() -> (Arc<Document>, Vec<Vec<String>>) {
    let doc = Arc::new(generate_dblp(&DblpConfig {
        authors: 40,
        ..Default::default()
    }));
    let queries: Vec<Vec<String>> = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 2,
            ..Default::default()
        },
    )
    .into_iter()
    .map(|q| q.keywords)
    .collect();
    (doc, queries)
}

fn kv_engine(doc: &Arc<Document>, cache_budget: usize) -> Arc<XRefineEngine> {
    let built = Index::build(Arc::clone(doc));
    let mut store = MemKv::new();
    persist::persist(&built, &mut store).unwrap();
    let reader = KvBackedIndex::open(Box::new(store))
        .unwrap()
        .with_cache_budget(cache_budget);
    Arc::new(XRefineEngine::from_reader(
        Arc::new(reader),
        EngineConfig::default(),
    ))
}

/// Everything observable about an outcome, in a comparable shape.
type Fingerprint = (bool, Vec<(Vec<String>, u64, u64, Vec<String>)>);

fn fingerprint(o: &RefineOutcome) -> Fingerprint {
    let refs = o
        .refinements
        .iter()
        .map(|r: &Refinement| {
            (
                r.candidate.keywords.clone(),
                r.candidate.dissimilarity.to_bits(),
                r.rank_score.to_bits(),
                r.slcas.iter().map(|d| d.to_string()).collect(),
            )
        })
        .collect();
    (o.original_ok, refs)
}

#[test]
fn eight_threads_agree_with_single_threaded_baseline() {
    let (doc, queries) = workload();
    assert!(!queries.is_empty());

    // Baseline: one thread, its own engine.
    let baseline_engine = kv_engine(&doc, 64 << 20);
    let baseline: Vec<_> = queries
        .iter()
        .map(|kw| {
            let o = baseline_engine
                .answer_query(Query::from_keywords(kw.iter().cloned()))
                .unwrap();
            fingerprint(&o)
        })
        .collect();

    // A deliberately tight cache budget keeps eviction churning while
    // the threads run — the harshest interleaving we can provoke.
    for budget in [64 << 20, 4 << 10] {
        let engine = kv_engine(&doc, budget);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let engine = Arc::clone(&engine);
                let queries = &queries;
                let baseline = &baseline;
                s.spawn(move || {
                    for round in 0..ROUNDS {
                        // each thread walks the workload at its own offset
                        for i in 0..queries.len() {
                            let i = (i + t * 3) % queries.len();
                            let kw = &queries[i];
                            let o = engine
                                .answer_query(Query::from_keywords(kw.iter().cloned()))
                                .unwrap();
                            assert_eq!(
                                fingerprint(&o),
                                baseline[i],
                                "thread {t} round {round} budget {budget}: \
                                 outcome diverged for {kw:?}"
                            );
                        }
                    }
                });
            }
        });
    }
}

//! Self-tests: the checker must exhaust every correct model without a
//! violation, find the seeded bug in every buggy variant, genuinely
//! branch (explored-schedule counts > 1), and be deterministic.

use xcheck::models::{cache, drain, epoch, Bug};
use xcheck::Kind;

#[test]
fn epoch_publish_correct_model_is_exhausted_clean() {
    let out = epoch::check(Bug::None);
    assert!(out.passed(), "violation: {:?}", out.violation);
    assert!(
        out.schedules > 1,
        "handoff must branch, got {}",
        out.schedules
    );
}

#[test]
fn epoch_publish_seeded_bug_is_caught_as_a_panic() {
    let out = epoch::check(Bug::Seeded);
    let v = out.violation.expect("flipped publish order must be found");
    assert_eq!(v.kind, Kind::Panic);
    assert!(
        v.detail.contains("unbuilt snapshot"),
        "unexpected detail: {}",
        v.detail
    );
    assert!(!v.schedule.is_empty(), "counterexample schedule missing");
}

#[test]
fn cache_invalidate_correct_model_is_exhausted_clean() {
    let out = cache::check(Bug::None);
    assert!(out.passed(), "violation: {:?}", out.violation);
    assert!(out.schedules > 1);
}

#[test]
fn cache_invalidate_seeded_bug_leaves_a_stale_entry() {
    let out = cache::check(Bug::Seeded);
    let v = out
        .violation
        .expect("dropped gen-stamp check must be found");
    assert_eq!(v.kind, Kind::Invariant);
    assert!(v.detail.contains("stale cache entry"), "{}", v.detail);
}

#[test]
fn drain_handshake_correct_model_is_exhausted_clean() {
    let out = drain::check(Bug::None);
    assert!(out.passed(), "violation: {:?}", out.violation);
    assert!(out.schedules > 1);
}

#[test]
fn drain_handshake_seeded_bug_drops_an_admitted_job() {
    let out = drain::check(Bug::Seeded);
    let v = out.violation.expect("drain-before-close must be found");
    assert_eq!(v.kind, Kind::Invariant);
    assert!(v.detail.contains("drain guarantee broken"), "{}", v.detail);
}

#[test]
fn exploration_is_deterministic_across_runs() {
    for (first, second) in [
        (epoch::check(Bug::None), epoch::check(Bug::None)),
        (cache::check(Bug::None), cache::check(Bug::None)),
        (drain::check(Bug::None), drain::check(Bug::None)),
    ] {
        assert_eq!(first.schedules, second.schedules);
        assert_eq!(first.exhausted, second.exhausted);
    }
    let (a, b) = (epoch::check(Bug::Seeded), epoch::check(Bug::Seeded));
    let (va, vb) = (a.violation.expect("bug"), b.violation.expect("bug"));
    assert_eq!(va.schedule, vb.schedule, "counterexample must be stable");
    assert_eq!(a.schedules, b.schedules);
}

//! Exhaustive at-rest corruption sweep over a persisted index, checked
//! end to end through the engine: for *every* vocabulary (`V/`), posting
//! list (`L/`) and statistics (`S/`) value in the store, flip each byte
//! in turn and require that every query either
//!
//! * fails to open / answer with a structured `Corrupt` error, or
//! * answers **identically** to the pristine store, or
//! * answers differently but *says so* (`RefineOutcome::is_degraded`) —
//!   the graceful-degradation path for damage confined to generated
//!   keywords or ranking statistics.
//!
//! A panic or a silently different Top-K list is a failure. This is the
//! engine-level counterpart of the per-value framing tests in
//! `invindex::persist`.
//!
//! Debug builds stride the byte offsets to keep `cargo test` quick; the
//! CI fault job runs this in release, where every byte is flipped.

use std::sync::Arc;
use xrefine_repro::invindex::{persist, KvBackedIndex};
use xrefine_repro::kvstore::{KvStore, MemKv};
use xrefine_repro::prelude::*;

const QUERIES: [&str; 4] = [
    "john fishing",
    "on line data base",
    "xml john 2003",
    "article online database",
];

/// The comparable part of an outcome: whether the original sufficed and
/// the Top-K refinements' keyword sets and result lists. Rank scores are
/// intentionally excluded — statistics damage skews them, and those runs
/// must flag themselves as degraded instead.
type Signature = (bool, Vec<(Vec<String>, Vec<String>)>);

fn signature(out: &RefineOutcome) -> Signature {
    (
        out.original_ok,
        out.refinements
            .iter()
            .map(|r| {
                (
                    r.candidate.keywords.clone(),
                    r.slcas.iter().map(|d| d.to_string()).collect(),
                )
            })
            .collect(),
    )
}

fn engine_over(
    pairs: &[(Vec<u8>, Vec<u8>)],
) -> Result<XRefineEngine, xrefine_repro::kvstore::KvError> {
    let mut store = MemKv::new();
    for (k, v) in pairs {
        store.put(k, v)?;
    }
    let reader = KvBackedIndex::open(Box::new(store))?;
    Ok(XRefineEngine::from_reader(
        Arc::new(reader),
        EngineConfig::default(),
    ))
}

#[test]
fn every_single_byte_flip_is_loud_or_harmless() {
    // Pristine store and baseline answers.
    let doc = Arc::new(xrefine_repro::xmldom::fixtures::figure1());
    let built = Index::build(Arc::clone(&doc));
    let mut store = MemKv::new();
    persist::persist(&built, &mut store).unwrap();
    let pairs = store.scan_range(b"", None).unwrap();

    let baseline_engine = engine_over(&pairs).unwrap();
    let baseline: Vec<Signature> = QUERIES
        .iter()
        .map(|q| signature(&baseline_engine.answer(q).unwrap()))
        .collect();
    drop(baseline_engine);

    let mut flips = 0u64;
    let mut corrupt_opens = 0u64;
    let mut corrupt_queries = 0u64;
    let mut degraded_answers = 0u64;

    for (ki, (key, value)) in pairs.iter().enumerate() {
        let class = key.first().copied();
        if !matches!(class, Some(b'V') | Some(b'L') | Some(b'S')) {
            continue;
        }
        let step = if cfg!(debug_assertions) { 3 } else { 1 };
        for off in (0..value.len()).step_by(step) {
            flips += 1;
            let mut damaged = pairs.to_vec();
            damaged[ki].1[off] ^= 0xFF;

            let engine = match engine_over(&damaged) {
                Ok(e) => e,
                Err(e) => {
                    assert!(
                        e.is_corrupt(),
                        "key {key:?} byte {off}: open failed with non-Corrupt: {e}"
                    );
                    corrupt_opens += 1;
                    continue;
                }
            };
            for (q, base) in QUERIES.iter().zip(&baseline) {
                match engine.answer_detailed(q) {
                    Err(failure) => {
                        assert!(
                            failure.error.is_corrupt(),
                            "key {key:?} byte {off}, query {q:?}: non-Corrupt failure: {failure}"
                        );
                        corrupt_queries += 1;
                    }
                    Ok(out) => {
                        if &signature(&out) != base {
                            assert!(
                                out.is_degraded(),
                                "key {key:?} byte {off}, query {q:?}: answer changed silently"
                            );
                            degraded_answers += 1;
                        }
                    }
                }
            }
        }
    }

    // The sweep must have actually exercised every failure path.
    assert!(flips > 500, "only {flips} flips — store unexpectedly small");
    assert!(corrupt_opens > 0, "no flip was fatal at open");
    assert!(corrupt_queries > 0, "no flip failed a query");
    assert!(degraded_answers > 0, "no flip degraded an answer");
}

//! Differential oracle for the SLCA algorithms.
//!
//! Four production implementations (`stack`, `indexed-lookup eager`,
//! `scan eager`, `multiway`) are run against the brute-force
//! ancestor-closure-intersection reference over seeded random Dewey
//! corpora, and the allocation-free `closest_match` is micro-checked
//! against its previous (cloning) definition.
//!
//! These are deliberately plain `#[test]` loops over seeded corpora rather
//! than proptest properties: the cases must actually execute, with a case
//! count (>= 500 per property) this suite can state in its assertions.

use datagen::{random_dewey_corpus, DeweyCorpusConfig};
use invindex::Posting;
use slca::{
    closest_match, slca_brute_force, slca_indexed_lookup_eager, slca_multiway, slca_scan_eager,
    slca_stack,
};
use xmldom::{Dewey, NodeTypeId};

fn to_postings(corpus: &[Vec<Dewey>]) -> Vec<Vec<Posting>> {
    corpus
        .iter()
        .map(|list| {
            list.iter()
                .map(|d| Posting::new(d.clone(), NodeTypeId(0)))
                .collect()
        })
        .collect()
}

/// Shape the corpus by seed so the sweep covers singleton lists, deep
/// narrow trees, wide flat trees, and occasional empty lists.
fn config_for(seed: u64) -> DeweyCorpusConfig {
    DeweyCorpusConfig {
        lists: (seed % 4 + 1) as usize,
        max_len: [1, 3, 8, 20][(seed / 4 % 4) as usize],
        max_depth: [1, 3, 6][(seed / 16 % 3) as usize],
        fanout: [1, 2, 4][(seed / 48 % 3) as usize],
        allow_empty: seed.is_multiple_of(5),
    }
}

#[test]
fn all_four_algorithms_agree_with_brute_force_on_random_corpora() {
    const CASES: u64 = 600;
    for seed in 0..CASES {
        let cfg = config_for(seed);
        let lists = to_postings(&random_dewey_corpus(seed, &cfg));
        let expected = slca_brute_force(&lists);
        let ctx = format!("seed={seed} cfg={cfg:?} lists={lists:?}");
        assert_eq!(slca_stack(&lists), expected, "stack disagrees: {ctx}");
        assert_eq!(
            slca_indexed_lookup_eager(&lists),
            expected,
            "indexed-lookup eager disagrees: {ctx}"
        );
        assert_eq!(
            slca_scan_eager(&lists),
            expected,
            "scan eager disagrees: {ctx}"
        );
        assert_eq!(slca_multiway(&lists), expected, "multiway disagrees: {ctx}");
    }
}

/// The pre-optimization `closest_match`: identical decision procedure, but
/// returning owned clones. Kept verbatim as the micro-oracle for the
/// allocation-free rewrite.
fn closest_match_reference(list: &[Posting], anchor: &Dewey) -> Option<Dewey> {
    if list.is_empty() {
        return None;
    }
    let idx = list.partition_point(|p| p.dewey <= *anchor);
    let pred = idx.checked_sub(1).map(|i| &list[i].dewey);
    let succ = list.get(idx).map(|p| &p.dewey);
    match (pred, succ) {
        (Some(p), Some(s)) => {
            if anchor.common_prefix_len(p) >= anchor.common_prefix_len(s) {
                Some(p.clone())
            } else {
                Some(s.clone())
            }
        }
        (Some(p), None) => Some(p.clone()),
        (None, Some(s)) => Some(s.clone()),
        (None, None) => None,
    }
}

#[test]
fn allocation_free_closest_match_is_unchanged() {
    let mut cases = 0u64;
    for seed in 1000..1150u64 {
        let cfg = DeweyCorpusConfig {
            lists: 2,
            max_len: 10,
            max_depth: 5,
            fanout: 3,
            allow_empty: seed % 7 == 0,
        };
        let corpus = random_dewey_corpus(seed, &cfg);
        let lists = to_postings(&corpus);
        // Anchors drawn from the other list plus perturbed variants, so
        // both exact-hit and between-elements probes are covered.
        for (list, anchors) in [(&lists[0], &corpus[1]), (&lists[1], &corpus[0])] {
            for anchor in anchors {
                for probe in [
                    anchor.clone(),
                    anchor.prefix(1).expect("root prefix"),
                    anchor
                        .prefix(anchor.components().len().saturating_sub(1).max(1))
                        .expect("in range"),
                ] {
                    cases += 1;
                    let got = closest_match(list, &probe);
                    assert_eq!(
                        got.cloned(),
                        closest_match_reference(list, &probe),
                        "seed={seed} probe={probe} list={list:?}"
                    );
                    // The borrow must point into the list — proof that the
                    // hot path no longer clones.
                    if let Some(m) = got {
                        assert!(
                            list.iter().any(|p| std::ptr::eq(&p.dewey, m)),
                            "closest_match returned a label not borrowed from the list"
                        );
                    }
                }
            }
        }
    }
    assert!(cases >= 500, "only {cases} micro cases executed");
}

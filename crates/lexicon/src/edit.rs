//! String edit distances for spelling-error rules (§III-B).
//!
//! [`levenshtein`] is the classic insert/delete/substitute distance;
//! [`damerau_levenshtein`] also counts adjacent transpositions (the most
//! common typing error) as a single edit. [`within_distance`] is the
//! bounded variant used when scanning a vocabulary: it runs the banded DP
//! and bails out as soon as the bound is exceeded.

/// Levenshtein distance over Unicode scalar values.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Damerau–Levenshtein distance (restricted: adjacent transpositions).
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Full matrix; inputs are short keywords, so O(len^2) memory is fine.
    let w = b.len() + 1;
    let mut d = vec![vec![0usize; w]; a.len() + 1];
    for (j, row) in d[0].iter_mut().enumerate() {
        *row = j;
    }
    for i in 1..=a.len() {
        d[i][0] = i;
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[i - 1][j] + 1)
                .min(d[i][j - 1] + 1)
                .min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[i - 2][j - 2] + 1);
            }
            d[i][j] = best;
        }
    }
    d[a.len()][b.len()]
}

/// `Some(distance)` if `damerau_levenshtein(a, b) <= max`, else `None`.
/// Runs a banded DP of width `2·max+1`.
pub fn within_distance(a: &str, b: &str, max: usize) -> Option<usize> {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la.abs_diff(lb) > max {
        return None;
    }
    let d = damerau_levenshtein(a, b);
    (d <= max).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "xy"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("database", "databse"), 1);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn paper_spelling_examples() {
        // Table II rule 5: "mecin" -> "machine" needs 2 edits? The OCR'd
        // table says ds=2 for the spelling rule; our metric:
        assert!(damerau_levenshtein("machin", "machine") <= 2);
        assert_eq!(levenshtein("eficient", "efficient"), 1); // QX1
        assert_eq!(levenshtein("inproceeding", "inproceedings"), 1); // QX4
    }

    #[test]
    fn damerau_counts_transposition_once() {
        assert_eq!(damerau_levenshtein("abcd", "abdc"), 1);
        assert_eq!(levenshtein("abcd", "abdc"), 2);
        assert_eq!(damerau_levenshtein("ba", "ab"), 1);
        assert_eq!(damerau_levenshtein("", "ab"), 2);
    }

    #[test]
    fn within_distance_bounds() {
        assert_eq!(within_distance("databse", "database", 2), Some(1));
        assert_eq!(within_distance("data", "database", 2), None); // len gap 4
        assert_eq!(within_distance("xml", "sql", 2), Some(2));
        assert_eq!(within_distance("xml", "sql", 1), None);
        assert_eq!(within_distance("a", "a", 0), Some(0));
    }

    #[test]
    fn unicode_safe() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(damerau_levenshtein("über", "ubér"), 2);
    }
}

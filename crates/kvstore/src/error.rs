//! Error type for the key-value store.

use std::fmt;
use std::io;

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum KvError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// On-disk state failed validation (bad magic, bad page type, torn
    /// entry, checksum mismatch, dangling page reference).
    ///
    /// `page` carries the physical page number when the damage is
    /// attributable to one page (checksum/trailer failures); `None` for
    /// structural damage spanning pages or for non-paged files (WAL,
    /// value encodings).
    Corrupt {
        /// Physical page the damage was detected on, if known.
        page: Option<u64>,
        /// What failed validation and where.
        context: String,
    },
    /// Key exceeds [`crate::btree::MAX_KEY_LEN`].
    KeyTooLarge(usize),
    /// Value exceeds the maximum representable length.
    ValueTooLarge(usize),
    /// The store was opened read-only and a write was attempted.
    ReadOnly,
}

impl KvError {
    /// Corruption not attributable to a single page.
    pub fn corrupt(context: impl Into<String>) -> Self {
        KvError::Corrupt {
            page: None,
            context: context.into(),
        }
    }

    /// Corruption detected on a specific physical page.
    pub fn corrupt_page(page: u64, context: impl Into<String>) -> Self {
        KvError::Corrupt {
            page: Some(page),
            context: context.into(),
        }
    }

    /// True for any corruption report, regardless of page attribution.
    pub fn is_corrupt(&self) -> bool {
        matches!(self, KvError::Corrupt { .. })
    }
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Io(e) => write!(f, "I/O error: {e}"),
            KvError::Corrupt {
                page: Some(p),
                context,
            } => {
                write!(f, "corrupt store (page {p}): {context}")
            }
            KvError::Corrupt {
                page: None,
                context,
            } => write!(f, "corrupt store: {context}"),
            KvError::KeyTooLarge(n) => write!(f, "key of {n} bytes exceeds maximum"),
            KvError::ValueTooLarge(n) => write!(f, "value of {n} bytes exceeds maximum"),
            KvError::ReadOnly => write!(f, "store is read-only"),
        }
    }
}

impl std::error::Error for KvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for KvError {
    fn from(e: io::Error) -> Self {
        KvError::Io(e)
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, KvError>;

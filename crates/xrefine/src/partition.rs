//! Algorithm 2: partition-based Top-K query refinement.
//!
//! The document is consumed as its ordered partitions (Definition 6.1 —
//! the subtrees rooted at the children of the document root). Per
//! partition, one dynamic-program invocation yields the approximate
//! Top-2K refined-query candidates whose keywords all occur inside the
//! partition; candidates that beat the running `RQSortedList` threshold
//! get their SLCAs computed *within the partition* by a pluggable SLCA
//! method (scan-eager by default — Lemma 3's orthogonality). A final pass
//! applies the full ranking model (Formula 10) to pick the Top-K.
//!
//! Root-level matches (postings on the document root itself) belong to no
//! partition and are skipped — the root is never a meaningful result.

use crate::dp::get_top_optimal_rqs;
use crate::query::RqCandidate;
use crate::ranking::{Ranker, RankingConfig};
use crate::results::{RefineOutcome, Refinement};
use crate::rqlist::RqSortedList;
use crate::session::RefineSession;
use crate::util::KeyMask;
use invindex::{ListCursor, ListHandle};
use std::collections::HashMap;
use xmldom::Dewey;

/// Memo of dynamic-program results keyed by the available-keyword mask
/// `T`. Algorithm 2's advantage (3) — "`getOptimalRQ` is employed once
/// for RQ candidates that have multiple matching results" — generalizes
/// across partitions: the DP's output depends only on `T`, and under
/// Zipf-skewed data many partitions expose identical keyword sets.
pub(crate) struct DpMemo {
    memo: HashMap<KeyMask, std::rc::Rc<Vec<RqCandidate>>>,
}

impl DpMemo {
    pub(crate) fn new() -> Self {
        DpMemo {
            memo: HashMap::new(),
        }
    }

    pub(crate) fn candidates(
        &mut self,
        session: &RefineSession<'_>,
        mask: KeyMask,
        m: usize,
    ) -> std::rc::Rc<Vec<RqCandidate>> {
        if let Some(c) = self.memo.get(&mask) {
            obs::counter!("xrefine_dp_memo_hits_total").inc();
            return std::rc::Rc::clone(c);
        }
        let availability = |w: &str| session.pos(w).map(|i| mask.get(i)).unwrap_or(false);
        let dp = get_top_optimal_rqs(&session.query, &availability, &session.rules, m);
        let rc = std::rc::Rc::new(dp.candidates);
        self.memo.insert(mask, std::rc::Rc::clone(&rc));
        rc
    }
}

/// A pluggable SLCA computation over per-keyword posting slices. The
/// slices are [`ListHandle`] views, so they work identically for resident
/// and kv-backed lists; any generic `fn<S: AsRef<[Posting]>>(&[S])`
/// algorithm from the `slca` crate coerces to this type.
///
/// [`Posting`]: invindex::Posting
pub type SlcaMethod = fn(&[ListHandle]) -> Vec<Dewey>;

/// Options of the partition algorithm.
pub struct PartitionOptions {
    /// K of Top-K.
    pub k: usize,
    /// SLCA method used inside partitions (Lemma 3: any method works).
    pub slca: SlcaMethod,
    /// Ranking model applied in the final re-ranking pass.
    pub ranking: RankingConfig,
}

impl Default for PartitionOptions {
    fn default() -> Self {
        PartitionOptions {
            k: 1,
            slca: slca::slca_scan_eager,
            ranking: RankingConfig::default(),
        }
    }
}

/// Runs Algorithm 2.
pub fn partition_refine(session: &RefineSession<'_>, options: &PartitionOptions) -> RefineOutcome {
    let k = options.k.max(1);
    let mut rq_list = RqSortedList::new(2 * k);
    let mut slcas_by_rq: HashMap<String, Vec<Dewey>> = HashMap::new();
    let mut dp_memo = DpMemo::new();

    let mut cursors: Vec<ListCursor<'_>> = session
        .lists
        .iter()
        .map(|l| ListCursor::new(l, session.scan_stats.clone()))
        .collect();

    // Hot-loop counters are accumulated locally and flushed with one
    // atomic add per query (see DESIGN.md "Observability").
    let mut partitions_scanned = 0u64;
    let mut rqs_pruned = 0u64;

    loop {
        // v_s: the smallest head across all cursors (line 5).
        let mut smallest: Option<Dewey> = None;
        for c in &cursors {
            if let Some(p) = c.peek() {
                if smallest.as_ref().map(|d| p.dewey < *d).unwrap_or(true) {
                    smallest = Some(p.dewey.clone());
                }
            }
        }
        let Some(v) = smallest else { break };

        let Some(pid) = v.partition() else {
            // A match on the document root itself: advance past it.
            for c in cursors.iter_mut() {
                if c.peek().map(|p| p.dewey == v).unwrap_or(false) {
                    c.next();
                }
            }
            continue;
        };

        // Slice each list to the partition and advance the cursors past it
        // (lines 6-8). The slices are cheap views sharing the handles'
        // allocations.
        let mut slices: Vec<ListHandle> = Vec::with_capacity(cursors.len());
        for c in cursors.iter_mut() {
            let range = c.skip_partition(&pid);
            slices.push(c.handle().slice(range));
        }

        partitions_scanned += 1;

        // T: keywords with a non-empty sub-list (line 9).
        let mut mask = KeyMask::empty(session.width());
        for (i, s) in slices.iter().enumerate() {
            if !s.is_empty() {
                mask.set(i);
            }
        }

        // Candidates within this partition (line 10), memoized on T. We
        // request more than 2K because candidates can fail the
        // meaningful-SLCA check below; the surviving ones fill the Top-2K
        // list (the paper's list is "approximate" for the same reason).
        let candidates = dp_memo.candidates(session, mask, 2 * k + 8);
        for cand in candidates.iter().cloned() {
            let already = rq_list.contains(&cand);
            if !already && cand.dissimilarity >= rq_list.admission_threshold() {
                // Worse than the current Top-2K: skip even the SLCA
                // computation (the paper's key optimization).
                rqs_pruned += 1;
                continue;
            }
            let rq_slices: Vec<ListHandle> = cand
                .keywords
                .iter()
                .map(|kw| {
                    session
                        .pos(kw)
                        .map(|i| slices[i].clone())
                        .unwrap_or_default()
                })
                .collect();
            let found = (options.slca)(&rq_slices);
            let meaningful: Vec<Dewey> = session.filter.filter(found);
            if meaningful.is_empty() {
                continue;
            }
            if already || rq_list.insert(cand.clone()) {
                slcas_by_rq
                    .entry(cand.canonical())
                    .or_default()
                    .extend(meaningful);
            }
        }
    }

    obs::counter!("xrefine_partitions_scanned_total").add(partitions_scanned);
    obs::counter!("xrefine_rqs_pruned_total").add(rqs_pruned);
    obs::trace::count("partitions.scanned", partitions_scanned);
    obs::trace::count("rqs.pruned", rqs_pruned);

    finalize(session, rq_list, slcas_by_rq, k, &options.ranking)
}

/// Shared final ranking pass (also used by short-list eager).
pub(crate) fn finalize(
    session: &RefineSession<'_>,
    rq_list: RqSortedList,
    slcas_by_rq: HashMap<String, Vec<Dewey>>,
    k: usize,
    ranking: &RankingConfig,
) -> RefineOutcome {
    let candidates: Vec<RqCandidate> = rq_list.into_vec();
    let ranker = Ranker::new(session.index, &session.query, ranking.clone());
    let ranked = ranker.rank_all(candidates);

    let mut refinements: Vec<Refinement> = ranked
        .into_iter()
        .filter_map(|(cand, score)| {
            let mut slcas = slcas_by_rq.get(&cand.canonical())?.clone();
            slcas.sort();
            slcas.dedup();
            Some(Refinement {
                candidate: cand,
                rank_score: score,
                slcas,
            })
        })
        .collect();

    // The zero-dissimilarity candidate is the original query: when present
    // it wins outright (no refinement was needed), regardless of rank.
    if let Some(ipos) = refinements
        .iter()
        .position(|r| r.candidate.dissimilarity == 0.0)
    {
        let original = refinements.remove(ipos);
        refinements.insert(0, original);
        refinements.truncate(1);
        return RefineOutcome {
            original_ok: true,
            refinements,
            advances: session.scan_stats.advances(),
            random_accesses: session.scan_stats.random_accesses(),
            degraded: session.degraded.clone(),
        };
    }

    refinements.truncate(k);
    RefineOutcome {
        original_ok: false,
        refinements,
        advances: session.scan_stats.advances(),
        random_accesses: session.scan_stats.random_accesses(),
        degraded: session.degraded.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;
    use invindex::Index;
    use lexicon::RuleSet;
    use std::sync::Arc;
    use xmldom::fixtures::figure1;

    fn run(q: &[&str], k: usize) -> RefineOutcome {
        let idx = Index::build(Arc::new(figure1()));
        let query = Query::from_keywords(q.iter().map(|s| s.to_string()));
        let session = RefineSession::new(&idx, query, RuleSet::table2()).unwrap();
        let options = PartitionOptions {
            k,
            ..Default::default()
        };
        partition_refine(&session, &options)
    }

    #[test]
    fn meaningful_original_query_short_circuits() {
        let out = run(&["john", "fishing"], 2);
        assert!(out.original_ok);
        assert_eq!(out.refinements.len(), 1);
        assert_eq!(out.best().unwrap().candidate.dissimilarity, 0.0);
        assert!(!out.best().unwrap().slcas.is_empty());
    }

    #[test]
    fn example5_top2_refinements() {
        // Example 5: {article, online, database}. "article" exists (two
        // nodes), online/database exist under author 0.0. Candidates with
        // meaningful SLCAs are found per partition.
        let out = run(&["article", "online", "database"], 2);
        assert!(!out.original_ok || out.best().unwrap().candidate.dissimilarity == 0.0);
        assert!(!out.refinements.is_empty());
        for r in &out.refinements {
            assert!(!r.slcas.is_empty());
            // all results live inside partitions, never at the root
            for d in &r.slcas {
                assert!(d.len() >= 2);
            }
        }
    }

    #[test]
    fn one_scan_guarantee_theorem2() {
        let idx = Index::build(Arc::new(figure1()));
        let query = Query::from_keywords(["on", "line", "data", "base"]);
        let session = RefineSession::new(&idx, query, RuleSet::table2()).unwrap();
        let budget = session.total_list_len() as u64;
        let out = partition_refine(&session, &PartitionOptions::default());
        assert!(out.advances <= budget, "{} > {budget}", out.advances);
        assert_eq!(out.random_accesses, 0);
        assert!(!out.original_ok);
        assert_eq!(
            out.best().unwrap().candidate.keywords,
            ["base", "data", "online"]
        );
        assert_eq!(out.best().unwrap().candidate.dissimilarity, 1.0);
    }

    #[test]
    fn agrees_with_stack_refine_on_optimum() {
        use crate::stack_refine::stack_refine;
        for q in [
            vec!["on", "line", "data", "base"],
            vec!["xml", "john", "2003"],
            vec!["database", "publication"],
            vec!["john", "fishing"],
        ] {
            let idx = Index::build(Arc::new(figure1()));
            let query = Query::from_keywords(q.iter().map(|s| s.to_string()));
            let s1 = RefineSession::new(&idx, query.clone(), RuleSet::table2()).unwrap();
            let s2 = RefineSession::new(&idx, query, RuleSet::table2()).unwrap();
            let a = stack_refine(&s1);
            let b = partition_refine(&s2, &PartitionOptions::default());
            match (a.best(), b.best()) {
                (Some(x), Some(y)) => {
                    assert_eq!(
                        x.candidate.dissimilarity, y.candidate.dissimilarity,
                        "query {q:?}"
                    );
                }
                (None, None) => {}
                other => panic!("disagreement on {q:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn k_bounds_result_count() {
        let out = run(&["xml", "john", "2003"], 3);
        assert!(out.refinements.len() <= 3);
        assert!(!out.refinements.is_empty());
        // ranked descending by score
        assert!(out
            .refinements
            .windows(2)
            .all(|w| w[0].rank_score >= w[1].rank_score));
    }
}

// xlint-fixture: path=crates/invindex/src/cache.rs
// Fixture catalogue: kvstore_pager_syncs_total, invindex_cache_resident_bytes,
// query, stack-refine, pages.read. Metric names must also follow the
// <crate>_<noun>_<unit> convention.

fn metrics(resident: u64) {
    obs::counter!("kvstore_pager_syncs_total").inc();
    obs::gauge!("invindex_cache_resident_bytes").set(resident);
    obs::counter!("invindex_cache_flushes_total").inc();
    obs::counter!("BadName_total").inc();
    obs::counter!("kvstore_syncs").inc();
}

fn spans(algo: Algo) {
    obs::trace::span("query");
    obs::trace::count("pages.read", 4);
    obs::trace::span("no-such-span");
    obs::trace::span(match algo {
        Algo::Stack => "stack-refine",
        Algo::Other => "mystery-span",
    });
    obs::trace::event("query", "free-text payload is not a catalogue name");
}

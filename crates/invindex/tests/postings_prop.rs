//! Property tests for posting-list encoding and range operations.

use invindex::{Posting, PostingList};
use proptest::prelude::*;
use xmldom::{Dewey, NodeTypeId};

fn posting_set() -> impl Strategy<Value = Vec<Posting>> {
    proptest::collection::btree_set(
        (
            proptest::collection::vec(0u32..5, 0..5),
            0u32..8, // node type id
        ),
        0..24,
    )
    .prop_map(|set| {
        set.into_iter()
            .map(|(tail, ty)| {
                let mut comps = vec![0u32];
                comps.extend(tail);
                (comps, ty)
            })
            // btree_set dedups on (comps, ty); dedup again on comps alone
            .collect::<std::collections::BTreeMap<Vec<u32>, u32>>()
            .into_iter()
            .map(|(comps, ty)| Posting::new(Dewey::new(comps).unwrap(), NodeTypeId(ty)))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_roundtrip(postings in posting_set()) {
        let list = PostingList::from_sorted(postings);
        let decoded = PostingList::decode(&list.encode()).expect("decodes");
        prop_assert_eq!(decoded, list);
    }

    #[test]
    fn truncated_encodings_never_panic(postings in posting_set(), cut in 0usize..64) {
        let list = PostingList::from_sorted(postings);
        let bytes = list.encode();
        let cut = cut.min(bytes.len());
        // any strict prefix either fails to decode or decodes to a list
        // that re-encodes to that same prefix (impossible unless cut==len)
        if cut < bytes.len() {
            if let Some(out) = PostingList::decode(&bytes[..cut]) {
                prop_assert_eq!(out.encode().len(), cut);
            }
        }
    }

    #[test]
    fn bounds_partition_the_list(postings in posting_set(), probe in proptest::collection::vec(0u32..5, 0..5)) {
        let list = PostingList::from_sorted(postings);
        let mut comps = vec![0u32];
        comps.extend(probe);
        let target = Dewey::new(comps).unwrap();

        let lb = list.lower_bound(&target);
        let ub = list.upper_bound(&target);
        prop_assert!(lb <= ub);
        for (i, p) in list.iter().enumerate() {
            if i < lb { prop_assert!(p.dewey < target); }
            if i >= ub { prop_assert!(p.dewey > target); }
        }

        let range = list.partition_range(&target);
        for (i, p) in list.iter().enumerate() {
            let inside = target.is_ancestor_or_self_of(&p.dewey);
            prop_assert_eq!(range.contains(&i), inside,
                "posting {} vs partition {}", p.dewey, target);
        }
    }
}

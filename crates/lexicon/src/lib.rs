//! `lexicon` — the lexical machinery behind the refinement operations
//! (§III-B of the paper).
//!
//! * [`edit`]: Levenshtein / Damerau–Levenshtein distances for spelling
//!   rules;
//! * [`stemmer`]: the Porter stemmer for word-stemming substitutions;
//! * [`thesaurus`]: the synonym thesaurus (WordNet substitute) and the
//!   acronym table;
//! * [`rules`]: refinement rules, rule sets, and the paper's Table II;
//! * [`rulegen`]: per-query rule generation against a document vocabulary
//!   (`getNewKeywords`), guaranteeing every generated RHS keyword exists
//!   in the data.

pub mod edit;
pub mod rulegen;
pub mod rules;
pub mod stemmer;
pub mod thesaurus;

pub use edit::{damerau_levenshtein, levenshtein, within_distance};
pub use rulegen::{generate_rules, RuleGenConfig, VocabIndex};
pub use rules::{RefineOp, Rule, RuleId, RuleSet, RuleSource};
pub use stemmer::{porter_stem, same_stem};
pub use thesaurus::{AcronymTable, Thesaurus};

//! Typo correction in depth: how the rule generator (§III-B) and the
//! `getOptimalRQ` dynamic program (§V) cooperate to repair the mixed
//! broken queries QX1–QX4 of the paper's experiment section.
//!
//! ```text
//! cargo run --example typo_correction
//! ```

use std::sync::Arc;
use xrefine_repro::datagen::{generate_dblp, DblpConfig};
use xrefine_repro::prelude::*;

fn main() {
    let doc = Arc::new(generate_dblp(&DblpConfig {
        authors: 300,
        ..Default::default()
    }));
    let engine = XRefineEngine::from_document(
        doc,
        EngineConfig {
            algorithm: Algorithm::Partition,
            k: 2,
            ..Default::default()
        },
    );

    // The paper's mixed-refinement queries (§VIII, QX1–QX4):
    let cases = [
        // spelling error + mistaken split
        ("QX1", "eficient key word search"),
        // mistaken split of "skyline"
        ("QX2", "efficient sky line computation"),
        // merged phrase that should split (or contract to an acronym)
        ("QX3", "worldwide web search engine"),
        // misspelled tag + stemming mismatch
        ("QX4", "inproceeding xml twig match"),
    ];

    for (id, text) in cases {
        println!("== {id}: {{{text}}} ==");
        let q = Query::parse(text);
        let rules = engine.rules_for(&q);
        println!("  {} pertinent rules generated, e.g.:", rules.len());
        for (_, r) in rules.iter().take(4) {
            println!("    {r}");
        }
        let out = engine.answer(text).unwrap();
        if out.original_ok {
            println!("  (query already has meaningful results)");
        } else {
            for (i, r) in out.refinements.iter().enumerate() {
                println!(
                    "  RQ{} = {{{}}}  dSim={}  {} result(s)",
                    i + 1,
                    r.candidate.keywords.join(", "),
                    r.candidate.dissimilarity,
                    r.slcas.len()
                );
            }
            if out.refinements.is_empty() {
                println!("  no refinement with meaningful results");
            }
        }
        println!();
    }
}

//! A from-scratch, dependency-free XML parser.
//!
//! Supports the subset of XML 1.0 the workload needs: element trees with
//! attributes, character data, the five predefined entities plus numeric
//! character references, CDATA sections, comments, processing instructions
//! and the XML declaration. DTDs are recognized and skipped. Namespaces are
//! treated lexically (prefixes stay part of the tag name), which matches how
//! the paper's engine sees tags.
//!
//! The parser is a single-pass scanner emitting SAX-style events into an
//! [`XmlHandler`]; [`parse_document`] plugs in the [`DocumentBuilder`] to
//! materialize a DOM, while streaming consumers (statistics collectors,
//! filters) implement the trait directly and never build a tree. Errors
//! carry byte offsets and line/column positions.

use crate::tree::{Document, DocumentBuilder};
use std::fmt;

/// Receiver of parse events. Methods are called in well-formed order: the
/// parser guarantees elements nest properly, attributes arrive between an
/// element's `start_element` and its first content, and `end_element`
/// calls balance `start_element` calls exactly.
pub trait XmlHandler {
    fn start_element(&mut self, name: &str);
    fn attribute(&mut self, name: &str, value: &str);
    /// Character data (entity-decoded, whitespace-trimmed, non-empty).
    fn text(&mut self, text: &str);
    fn end_element(&mut self);
}

impl XmlHandler for DocumentBuilder {
    fn start_element(&mut self, name: &str) {
        self.open_element(name);
    }

    fn attribute(&mut self, name: &str, value: &str) {
        DocumentBuilder::attribute(self, name, value);
    }

    fn text(&mut self, text: &str) {
        DocumentBuilder::text(self, text);
    }

    fn end_element(&mut self) {
        self.close_element();
    }
}

/// Position of a parse error in the input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    pub offset: usize,
    pub line: usize,
    pub column: usize,
}

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    UnexpectedEof,
    /// `<` followed by something that is not a name or markup we support.
    InvalidMarkup,
    InvalidName,
    /// Closing tag does not match the open element.
    MismatchedClose {
        expected: String,
        found: String,
    },
    /// Text or a second root element outside the root.
    ContentOutsideRoot,
    /// No root element at all.
    EmptyDocument,
    UnterminatedComment,
    UnterminatedCdata,
    UnterminatedPi,
    UnterminatedDoctype,
    InvalidAttribute,
    DuplicateAttribute(String),
    InvalidEntity(String),
    /// `<` is not allowed in attribute values / character data handling.
    BareLt,
}

/// A parse error with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub kind: ParseErrorKind,
    pub position: Position,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at line {}, column {}: {:?}",
            self.position.line, self.position.column, self.kind
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete XML document into a DOM.
pub fn parse_document(input: &str) -> Result<Document, ParseError> {
    let mut builder = DocumentBuilder::new();
    parse_with(input, &mut builder)?;
    Ok(builder.finish())
}

/// Streams a complete XML document into `handler` without building a
/// DOM. Well-formedness (balanced tags, single root, no content outside
/// it) is still enforced.
pub fn parse_with<H: XmlHandler>(input: &str, handler: &mut H) -> Result<(), ParseError> {
    let mut p = Parser::new(input, handler);
    p.run()?;
    if !p.seen_root {
        return Err(p.error(ParseErrorKind::EmptyDocument));
    }
    Ok(())
}

struct Parser<'a, H: XmlHandler> {
    input: &'a [u8],
    pos: usize,
    handler: &'a mut H,
    open_tags: Vec<String>,
    seen_root: bool,
}

impl<'a, H: XmlHandler> Parser<'a, H> {
    fn new(input: &'a str, handler: &'a mut H) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            handler,
            open_tags: Vec::new(),
            seen_root: false,
        }
    }

    fn position(&self) -> Position {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.input[..self.pos.min(self.input.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Position {
            offset: self.pos,
            line,
            column: col,
        }
    }

    fn error(&self, kind: ParseErrorKind) -> ParseError {
        ParseError {
            kind,
            position: self.position(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn run(&mut self) -> Result<(), ParseError> {
        loop {
            if self.open_tags.is_empty() {
                self.skip_whitespace();
            }
            match self.peek() {
                None => {
                    if self.open_tags.is_empty() {
                        return Ok(());
                    }
                    return Err(self.error(ParseErrorKind::UnexpectedEof));
                }
                Some(b'<') => self.markup()?,
                Some(_) => self.character_data()?,
            }
        }
    }

    fn markup(&mut self) -> Result<(), ParseError> {
        if self.starts_with("<!--") {
            self.comment()
        } else if self.starts_with("<![CDATA[") {
            self.cdata()
        } else if self.starts_with("<!DOCTYPE") {
            self.doctype()
        } else if self.starts_with("<?") {
            self.processing_instruction()
        } else if self.starts_with("</") {
            self.close_tag()
        } else {
            self.open_tag()
        }
    }

    fn comment(&mut self) -> Result<(), ParseError> {
        self.bump(4);
        match find_sub(&self.input[self.pos..], b"-->") {
            Some(end) => {
                self.bump(end + 3);
                Ok(())
            }
            None => Err(self.error(ParseErrorKind::UnterminatedComment)),
        }
    }

    fn cdata(&mut self) -> Result<(), ParseError> {
        if self.open_tags.is_empty() {
            return Err(self.error(ParseErrorKind::ContentOutsideRoot));
        }
        self.bump(9);
        match find_sub(&self.input[self.pos..], b"]]>") {
            Some(end) => {
                let text = std::str::from_utf8(&self.input[self.pos..self.pos + end])
                    .expect("input was valid UTF-8");
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    self.handler.text(trimmed);
                }
                self.bump(end + 3);
                Ok(())
            }
            None => Err(self.error(ParseErrorKind::UnterminatedCdata)),
        }
    }

    fn doctype(&mut self) -> Result<(), ParseError> {
        // Skip to the matching `>`, tolerating one bracketed internal subset.
        self.bump(9);
        let mut depth = 0usize;
        while let Some(b) = self.peek() {
            match b {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.bump(1);
                    return Ok(());
                }
                _ => {}
            }
            self.bump(1);
        }
        Err(self.error(ParseErrorKind::UnterminatedDoctype))
    }

    fn processing_instruction(&mut self) -> Result<(), ParseError> {
        self.bump(2);
        match find_sub(&self.input[self.pos..], b"?>") {
            Some(end) => {
                self.bump(end + 2);
                Ok(())
            }
            None => Err(self.error(ParseErrorKind::UnterminatedPi)),
        }
    }

    fn name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            let ok = b.is_ascii_alphanumeric()
                || b == b'_'
                || b == b'-'
                || b == b'.'
                || b == b':'
                || b >= 0x80;
            if !ok {
                break;
            }
            self.bump(1);
        }
        if self.pos == start {
            return Err(self.error(ParseErrorKind::InvalidName));
        }
        let first = self.input[start];
        if first.is_ascii_digit() || first == b'-' || first == b'.' {
            return Err(self.error(ParseErrorKind::InvalidName));
        }
        Ok(std::str::from_utf8(&self.input[start..self.pos])
            .expect("input was valid UTF-8")
            .to_string())
    }

    fn open_tag(&mut self) -> Result<(), ParseError> {
        if self.seen_root && self.open_tags.is_empty() {
            return Err(self.error(ParseErrorKind::ContentOutsideRoot));
        }
        self.bump(1); // '<'
        let tag = self.name()?;
        self.handler.start_element(&tag);
        self.seen_root = true;
        self.open_tags.push(tag);

        let mut seen_attrs: Vec<String> = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                None => return Err(self.error(ParseErrorKind::UnexpectedEof)),
                Some(b'>') => {
                    self.bump(1);
                    return Ok(());
                }
                Some(b'/') => {
                    if !self.starts_with("/>") {
                        return Err(self.error(ParseErrorKind::InvalidMarkup));
                    }
                    self.bump(2);
                    self.handler.end_element();
                    self.open_tags.pop();
                    return Ok(());
                }
                Some(_) => {
                    let attr = self.name()?;
                    if seen_attrs.iter().any(|a| a == &attr) {
                        return Err(self.error(ParseErrorKind::DuplicateAttribute(attr)));
                    }
                    self.skip_whitespace();
                    if self.peek() != Some(b'=') {
                        return Err(self.error(ParseErrorKind::InvalidAttribute));
                    }
                    self.bump(1);
                    self.skip_whitespace();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.error(ParseErrorKind::InvalidAttribute)),
                    };
                    self.bump(1);
                    let vstart = self.pos;
                    while let Some(b) = self.peek() {
                        if b == quote {
                            break;
                        }
                        if b == b'<' {
                            return Err(self.error(ParseErrorKind::BareLt));
                        }
                        self.bump(1);
                    }
                    if self.peek() != Some(quote) {
                        return Err(self.error(ParseErrorKind::UnexpectedEof));
                    }
                    let raw = std::str::from_utf8(&self.input[vstart..self.pos])
                        .expect("input was valid UTF-8");
                    let value = self.decode_entities(raw)?;
                    self.bump(1); // closing quote
                    self.handler.attribute(&attr, &value);
                    seen_attrs.push(attr);
                }
            }
        }
    }

    fn close_tag(&mut self) -> Result<(), ParseError> {
        self.bump(2); // '</'
        let tag = self.name()?;
        self.skip_whitespace();
        if self.peek() != Some(b'>') {
            return Err(self.error(ParseErrorKind::InvalidMarkup));
        }
        self.bump(1);
        match self.open_tags.pop() {
            Some(open) if open == tag => {
                self.handler.end_element();
                Ok(())
            }
            Some(open) => Err(self.error(ParseErrorKind::MismatchedClose {
                expected: open,
                found: tag,
            })),
            None => Err(self.error(ParseErrorKind::ContentOutsideRoot)),
        }
    }

    fn character_data(&mut self) -> Result<(), ParseError> {
        if self.open_tags.is_empty() {
            return Err(self.error(ParseErrorKind::ContentOutsideRoot));
        }
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'<' {
                break;
            }
            self.bump(1);
        }
        let raw = std::str::from_utf8(&self.input[start..self.pos]).expect("input was valid UTF-8");
        let decoded = self.decode_entities(raw)?;
        let trimmed = decoded.trim();
        if !trimmed.is_empty() {
            self.handler.text(trimmed);
        }
        Ok(())
    }

    /// Resolves `&amp; &lt; &gt; &quot; &apos; &#NN; &#xNN;`.
    fn decode_entities(&self, raw: &str) -> Result<String, ParseError> {
        if !raw.contains('&') {
            return Ok(raw.to_string());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(amp) = rest.find('&') {
            out.push_str(&rest[..amp]);
            rest = &rest[amp..];
            let semi = rest
                .find(';')
                .ok_or_else(|| self.error(ParseErrorKind::InvalidEntity(rest.to_string())))?;
            let entity = &rest[1..semi];
            match entity {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if entity.starts_with("#x") || entity.starts_with("#X") => {
                    let cp = u32::from_str_radix(&entity[2..], 16).map_err(|_| {
                        self.error(ParseErrorKind::InvalidEntity(entity.to_string()))
                    })?;
                    out.push(char::from_u32(cp).ok_or_else(|| {
                        self.error(ParseErrorKind::InvalidEntity(entity.to_string()))
                    })?);
                }
                _ if entity.starts_with('#') => {
                    let cp: u32 = entity[1..].parse().map_err(|_| {
                        self.error(ParseErrorKind::InvalidEntity(entity.to_string()))
                    })?;
                    out.push(char::from_u32(cp).ok_or_else(|| {
                        self.error(ParseErrorKind::InvalidEntity(entity.to_string()))
                    })?);
                }
                _ => {
                    return Err(self.error(ParseErrorKind::InvalidEntity(entity.to_string())));
                }
            }
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }
}

/// Byte-level substring search (naive; inputs are parse-local).
fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (0..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_document() {
        let doc = parse_document("<a/>").unwrap();
        assert_eq!(doc.len(), 1);
        assert_eq!(doc.tag_name(doc.root()), "a");
    }

    #[test]
    fn parses_nested_structure_with_text() {
        let doc = parse_document(
            "<bib><author><name>Mike Franklin</name><interest>stream processing</interest></author></bib>",
        )
        .unwrap();
        assert_eq!(doc.len(), 4);
        let root = doc.root();
        let author = doc.node(root).children[0];
        assert_eq!(doc.tag_name(author), "author");
        let name = doc.node(author).children[0];
        assert_eq!(doc.node(name).text, "Mike Franklin");
        assert_eq!(doc.node(name).dewey.to_string(), "0.0.0");
    }

    #[test]
    fn parses_attributes() {
        let doc = parse_document(r#"<a x="1" y='two &amp; three'/>"#).unwrap();
        let attrs = &doc.node(doc.root()).attributes;
        assert_eq!(attrs[0], ("x".to_string(), "1".to_string()));
        assert_eq!(attrs[1], ("y".to_string(), "two & three".to_string()));
    }

    #[test]
    fn rejects_duplicate_attributes() {
        let err = parse_document(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::DuplicateAttribute(_)));
    }

    #[test]
    fn decodes_entities_in_text() {
        let doc = parse_document("<a>x &lt; y &amp;&amp; y &gt; z &#65;&#x42;</a>").unwrap();
        assert_eq!(doc.node(doc.root()).text, "x < y && y > z AB");
    }

    #[test]
    fn rejects_unknown_entity() {
        let err = parse_document("<a>&nope;</a>").unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::InvalidEntity(_)));
    }

    #[test]
    fn skips_declaration_comments_doctype_and_pis() {
        let doc = parse_document(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE bib [<!ELEMENT bib ANY>]>\n<!-- a comment -->\n<bib><?pi data?><x/><!-- inner --></bib>",
        )
        .unwrap();
        assert_eq!(doc.len(), 2);
    }

    #[test]
    fn cdata_becomes_text() {
        let doc = parse_document("<a><![CDATA[raw <tags> & stuff]]></a>").unwrap();
        assert_eq!(doc.node(doc.root()).text, "raw <tags> & stuff");
    }

    #[test]
    fn mismatched_close_is_reported_with_position() {
        let err = parse_document("<a><b></a>").unwrap_err();
        match err.kind {
            ParseErrorKind::MismatchedClose { expected, found } => {
                assert_eq!(expected, "b");
                assert_eq!(found, "a");
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(err.position.line, 1);
    }

    #[test]
    fn unexpected_eof_inside_element() {
        let err = parse_document("<a><b>").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::UnexpectedEof);
    }

    #[test]
    fn rejects_empty_and_rootless_input() {
        assert_eq!(
            parse_document("").unwrap_err().kind,
            ParseErrorKind::EmptyDocument
        );
        assert_eq!(
            parse_document("   \n  ").unwrap_err().kind,
            ParseErrorKind::EmptyDocument
        );
        assert_eq!(
            parse_document("<!-- only a comment -->").unwrap_err().kind,
            ParseErrorKind::EmptyDocument
        );
    }

    #[test]
    fn rejects_second_root_and_trailing_text() {
        assert_eq!(
            parse_document("<a/><b/>").unwrap_err().kind,
            ParseErrorKind::ContentOutsideRoot
        );
        assert_eq!(
            parse_document("<a/>junk").unwrap_err().kind,
            ParseErrorKind::ContentOutsideRoot
        );
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = parse_document("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(doc.node(doc.root()).text, "");
        assert_eq!(doc.len(), 3);
    }

    #[test]
    fn unicode_names_and_text_survive() {
        let doc = parse_document("<livre><títul>café über</títul></livre>").unwrap();
        let t = doc.node(doc.root()).children[0];
        assert_eq!(doc.tag_name(t), "títul");
        assert_eq!(doc.node(t).text, "café über");
    }

    #[test]
    fn roundtrip_through_renderer() {
        let src = "<bib><author><name>A &amp; B</name><year>2003</year></author></bib>";
        let doc = parse_document(src).unwrap();
        let rendered = doc.to_xml();
        let doc2 = parse_document(&rendered).unwrap();
        assert_eq!(doc.len(), doc2.len());
        for ((_, a), (_, b)) in doc.nodes().zip(doc2.nodes()) {
            assert_eq!(a.dewey, b.dewey);
            assert_eq!(a.text, b.text);
        }
    }

    #[test]
    fn error_positions_track_lines() {
        let err = parse_document("<a>\n\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(err.position.line, 3);
    }
}

//! Posting lists: for each keyword, the document-ordered list of elements
//! whose tag name or text contains the keyword.
//!
//! Lists are kept in memory as plain vectors for query processing and are
//! (de)serialized with delta-varint compression for storage in the
//! key-value store, mirroring how the paper keeps its keyword inverted
//! lists in Berkeley DB (§VII).
//!
//! Two wire encodings exist:
//!
//! * the flat front-coded stream ([`PostingList::encode`]) — store
//!   format v1–v3;
//! * the blocked compressed encoding ([`PostingList::encode_compressed`]
//!   / [`CompressedList`]) — store format v4: postings are grouped into
//!   fixed-size blocks of [`BLOCK_POSTINGS`], each independently
//!   decodable, behind a skip table of `(byte length, count, min label,
//!   max label)` entries so a cursor can skip whole blocks without
//!   decoding them (see [`crate::cursor::PostingsCursor`]).

use kvstore::{KvError, Result};
use xmldom::{Dewey, NodeTypeId};

/// One entry of an inverted list: a node containing the keyword, plus its
/// node type so statistics lookups need no document access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    pub dewey: Dewey,
    pub node_type: NodeTypeId,
}

impl Posting {
    pub fn new(dewey: Dewey, node_type: NodeTypeId) -> Self {
        Posting { dewey, node_type }
    }
}

/// A document-ordered list of postings for one keyword.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingList {
    postings: Vec<Posting>,
}

impl PostingList {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a vector that must already be in document order.
    pub fn from_sorted(postings: Vec<Posting>) -> Self {
        debug_assert!(
            postings.windows(2).all(|w| w[0].dewey < w[1].dewey),
            "postings must be strictly document-ordered"
        );
        PostingList { postings }
    }

    /// Appends a posting that must follow the current tail in document
    /// order.
    pub fn push(&mut self, posting: Posting) {
        debug_assert!(
            self.postings
                .last()
                .map(|p| p.dewey < posting.dewey)
                .unwrap_or(true),
            "push out of document order"
        );
        self.postings.push(posting);
    }

    pub fn len(&self) -> usize {
        self.postings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    pub fn get(&self, i: usize) -> Option<&Posting> {
        self.postings.get(i)
    }

    pub fn first(&self) -> Option<&Posting> {
        self.postings.first()
    }

    pub fn last(&self) -> Option<&Posting> {
        self.postings.last()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Posting> {
        self.postings.iter()
    }

    pub fn as_slice(&self) -> &[Posting] {
        &self.postings
    }

    /// Index of the first posting with `dewey >= target` (lower bound).
    pub fn lower_bound(&self, target: &Dewey) -> usize {
        self.postings.partition_point(|p| p.dewey < *target)
    }

    /// Index of the first posting with `dewey > target` (upper bound).
    pub fn upper_bound(&self, target: &Dewey) -> usize {
        self.postings.partition_point(|p| p.dewey <= *target)
    }

    /// The sub-list of postings lying inside the subtree rooted at
    /// `partition_root` (postings whose Dewey has it as prefix), as an
    /// index range.
    pub fn partition_range(&self, partition_root: &Dewey) -> std::ops::Range<usize> {
        let start = self.lower_bound(partition_root);
        let tail = self.postings.get(start..).unwrap_or(&[]);
        let end = tail.partition_point(|p| partition_root.is_ancestor_or_self_of(&p.dewey)) + start;
        start..end
    }

    /// Serializes with per-posting Dewey front-coding: each posting stores
    /// the length of the component prefix shared with its predecessor, the
    /// remaining components (varint) and the node type (varint).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.postings.len() * 6 + 4);
        write_varint(&mut out, self.postings.len() as u64);
        let mut prev: &[u32] = &[];
        for p in &self.postings {
            let comps = p.dewey.components();
            let shared = comps
                .iter()
                .zip(prev.iter())
                .take_while(|(a, b)| a == b)
                .count();
            write_varint(&mut out, shared as u64);
            write_varint(&mut out, (comps.len() - shared) as u64);
            for &c in comps.iter().skip(shared) {
                write_varint(&mut out, c as u64);
            }
            write_varint(&mut out, p.node_type.0 as u64);
            prev = comps;
        }
        out
    }

    /// Inverse of [`PostingList::encode`].
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let n = read_varint(bytes, &mut pos)? as usize;
        let mut postings = Vec::with_capacity(n);
        let mut prev: Vec<u32> = Vec::new();
        for _ in 0..n {
            let shared = read_varint(bytes, &mut pos)? as usize;
            let rest = read_varint(bytes, &mut pos)? as usize;
            let mut comps = prev.get(..shared)?.to_vec();
            for _ in 0..rest {
                comps.push(read_varint(bytes, &mut pos)? as u32);
            }
            let node_type = NodeTypeId(read_varint(bytes, &mut pos)? as u32);
            let dewey = Dewey::new(comps.clone())?;
            postings.push(Posting { dewey, node_type });
            prev = comps;
        }
        if pos != bytes.len() {
            return None;
        }
        Some(PostingList { postings })
    }
}

/// LEB128 unsigned varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, advancing `pos`. `None` on truncation/overflow.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut result = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        // xlint::allow(checked-arithmetic-on-untrusted): the guard above caps shift at 63, and shl only overflows when the shift amount reaches the bit width
        result |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(result);
        }
        shift += 7;
    }
}

// ----- compressed (store format v4) list encoding --------------------

/// Postings per compressed block. Every block except the last holds
/// exactly this many; the skip table references block boundaries, so the
/// value is part of the v4 wire format and must not change.
pub const BLOCK_POSTINGS: usize = 64;

// v4 delta-posting header byte: bits 0–2 trim (7 = varint escape),
// bits 3–5 rest (7 = varint escape), bit 6 = node type repeats, bit 7
// reserved (must be zero).
const HDR_FIELD_ESCAPE: u8 = 7;
const HDR_SAME_TYPE: u8 = 0x40;
const HDR_RESERVED: u8 = 0x80;

/// Skip-table entry for one compressed block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta {
    /// Postings in blocks before this one (cumulative start index).
    pub start: usize,
    /// Byte offset of the block's data within the blocks region.
    pub offset: usize,
    /// Byte length of the block's data.
    pub len: usize,
    /// Postings in the block (`1..=BLOCK_POSTINGS`).
    pub count: usize,
    /// Dewey label of the block's first posting (stored absolutely; the
    /// block data itself does not repeat it).
    pub min: Dewey,
    /// Dewey label of the block's last posting.
    pub max: Dewey,
}

/// A parsed v4 compressed posting list: validated skip table over
/// borrowed, still-encoded block data. Parsing validates every skip-table
/// invariant (block sizing, label ordering, byte extents) without
/// decoding any block; blocks decode individually on demand.
#[derive(Debug)]
pub struct CompressedList<'a> {
    n: usize,
    blocks: Vec<BlockMeta>,
    data: &'a [u8],
}

impl PostingList {
    /// Serializes in the blocked v4 format: `varint(n) ‖ varint(blocks)
    /// ‖ skip table ‖ block data`. Within a block the first posting's
    /// label lives in the skip entry; each later posting is a packed
    /// header byte (trim/rest/type-repeat), its divergent components
    /// (the first one delta-coded against the predecessor when the two
    /// labels diverge — document order guarantees the delta is
    /// non-negative), and its node type only when it changes.
    pub fn encode_compressed(&self) -> Vec<u8> {
        let mut skips = Vec::new();
        let mut data = Vec::new();
        for chunk in self.postings.chunks(BLOCK_POSTINGS) {
            let start = data.len();
            let mut iter = chunk.iter();
            let Some(first) = iter.next() else { continue };
            write_varint(&mut data, u64::from(first.node_type.0));
            let mut prev = first;
            for p in iter {
                encode_delta_posting(&mut data, prev, p);
                prev = p;
            }
            write_varint(&mut skips, (data.len() - start) as u64);
            write_varint(&mut skips, chunk.len() as u64);
            let min = first.dewey.components();
            write_varint(&mut skips, min.len() as u64);
            for &c in min {
                write_varint(&mut skips, u64::from(c));
            }
            let max = prev.dewey.components();
            let shared = min
                .iter()
                .zip(max.iter())
                .take_while(|(a, b)| a == b)
                .count();
            write_varint(&mut skips, shared as u64);
            write_varint(&mut skips, (max.len() - shared) as u64);
            for &c in max.get(shared..).unwrap_or(&[]) {
                write_varint(&mut skips, u64::from(c));
            }
        }
        let mut out = Vec::with_capacity(4 + skips.len() + data.len());
        write_varint(&mut out, self.postings.len() as u64);
        write_varint(
            &mut out,
            self.postings.len().div_ceil(BLOCK_POSTINGS) as u64,
        );
        out.extend_from_slice(&skips);
        out.extend_from_slice(&data);
        out
    }
}

/// Encodes `curr` relative to `prev` (strictly smaller in document
/// order, guaranteed by the list invariant).
fn encode_delta_posting(out: &mut Vec<u8>, prev: &Posting, curr: &Posting) {
    let pc = prev.dewey.components();
    let cc = curr.dewey.components();
    let shared = pc.iter().zip(cc.iter()).take_while(|(a, b)| a == b).count();
    let trim = pc.len() - shared;
    let rest = cc.len() - shared;
    debug_assert!(rest >= 1, "equal or ancestor posting violates list order");
    let trim_field = (trim as u64).min(u64::from(HDR_FIELD_ESCAPE)) as u8;
    let rest_field = (rest as u64).min(u64::from(HDR_FIELD_ESCAPE)) as u8;
    let mut header = trim_field | (rest_field << 3);
    if curr.node_type == prev.node_type {
        header |= HDR_SAME_TYPE;
    }
    out.push(header);
    if trim_field == HDR_FIELD_ESCAPE {
        write_varint(out, trim as u64);
    }
    if rest_field == HDR_FIELD_ESCAPE {
        write_varint(out, rest as u64);
    }
    let mut tail = cc.get(shared..).unwrap_or(&[]).iter();
    if let Some(&c0) = tail.next() {
        if trim > 0 {
            // Both labels have a component at `shared` and document
            // order makes ours the larger one: delta-code it.
            let base = pc.get(shared).copied().unwrap_or(0);
            write_varint(out, u64::from(c0) - u64::from(base) - 1);
        } else {
            write_varint(out, u64::from(c0));
        }
    }
    for &c in tail {
        write_varint(out, u64::from(c));
    }
    if curr.node_type != prev.node_type {
        write_varint(out, u64::from(curr.node_type.0));
    }
}

impl<'a> CompressedList<'a> {
    /// Parses and fully validates a v4 payload's header and skip table.
    /// Any structural violation — block sizing, label ordering, byte
    /// extents — is [`KvError::Corrupt`]; block *contents* are validated
    /// by [`CompressedList::decode_block`].
    pub fn parse(payload: &'a [u8]) -> Result<Self> {
        let corrupt = |what: String| KvError::corrupt(format!("compressed list: {what}"));
        let mut pos = 0usize;
        let n = read_varint(payload, &mut pos)
            .ok_or_else(|| corrupt("missing posting count".into()))? as usize;
        let b = read_varint(payload, &mut pos)
            .ok_or_else(|| corrupt("missing block count".into()))? as usize;
        if b != n.div_ceil(BLOCK_POSTINGS) {
            return Err(corrupt(format!(
                "block count {b} does not match {n} postings"
            )));
        }
        if b > payload.len() {
            return Err(corrupt("block count exceeds payload size".into()));
        }
        let mut blocks = Vec::with_capacity(b);
        let mut offset = 0usize;
        let mut start = 0usize;
        let mut prev_max: Option<Dewey> = None;
        for i in 0..b {
            let len = read_varint(payload, &mut pos)
                .ok_or_else(|| corrupt(format!("block {i}: missing byte length")))?
                as usize;
            let count = read_varint(payload, &mut pos)
                .ok_or_else(|| corrupt(format!("block {i}: missing posting count")))?
                as usize;
            if count == 0 || count > BLOCK_POSTINGS {
                return Err(corrupt(format!("block {i}: bad posting count {count}")));
            }
            if i + 1 < b && count != BLOCK_POSTINGS {
                return Err(corrupt(format!(
                    "block {i}: interior block holds {count} postings, expected {BLOCK_POSTINGS}"
                )));
            }
            // Every posting needs ≥1 byte (the first its type varint,
            // the rest a header byte plus ≥1 component byte).
            if len < count.saturating_mul(2).saturating_sub(1) {
                return Err(corrupt(format!(
                    "block {i}: {len} bytes cannot hold {count} postings"
                )));
            }
            let min = read_dewey_abs(payload, &mut pos)
                .ok_or_else(|| corrupt(format!("block {i}: bad min label")))?;
            let max = read_dewey_front_coded(payload, &mut pos, &min)
                .ok_or_else(|| corrupt(format!("block {i}: bad max label")))?;
            if max < min {
                return Err(corrupt(format!("block {i}: max label below min")));
            }
            if count == 1 && max != min {
                return Err(corrupt(format!(
                    "block {i}: single-posting block with distinct min/max"
                )));
            }
            if let Some(pm) = &prev_max {
                if *pm >= min {
                    return Err(corrupt(format!("block {i}: blocks out of label order")));
                }
            }
            let next_offset = offset
                .checked_add(len)
                .ok_or_else(|| corrupt(format!("block {i}: byte offset overflow")))?;
            blocks.push(BlockMeta {
                start,
                offset,
                len,
                count,
                min,
                max: max.clone(),
            });
            prev_max = Some(max);
            offset = next_offset;
            start = start
                .checked_add(count)
                .ok_or_else(|| corrupt(format!("block {i}: posting count overflow")))?;
        }
        if start != n {
            return Err(corrupt(format!(
                "skip table covers {start} postings, header claims {n}"
            )));
        }
        let data = payload.get(pos..).unwrap_or(&[]);
        if data.len() != offset {
            return Err(corrupt(format!(
                "skip table spans {offset} data bytes, payload has {}",
                data.len()
            )));
        }
        Ok(CompressedList { n, blocks, data })
    }

    /// Total postings across all blocks.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The validated skip table.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// Index of the first block whose `max >= target` — the only block
    /// that can contain the lower bound of `target`. Everything before
    /// it can be skipped without decoding.
    pub fn lower_bound_block(&self, target: &Dewey) -> usize {
        self.blocks.partition_point(|b| b.max < *target)
    }

    /// Decodes one block, validating the posting stream against the
    /// block's skip entry (count, strict document order by construction,
    /// max label).
    pub fn decode_block(&self, i: usize) -> Result<Vec<Posting>> {
        let corrupt = |what: String| KvError::corrupt(format!("compressed list block {i}: {what}"));
        let meta = self
            .blocks
            .get(i)
            .ok_or_else(|| corrupt("no such block".into()))?;
        let end = meta
            .offset
            .checked_add(meta.len)
            .ok_or_else(|| corrupt("byte extent overflow".into()))?;
        let bytes = self
            .data
            .get(meta.offset..end)
            .ok_or_else(|| corrupt("byte extent outside payload".into()))?;
        let mut pos = 0usize;
        let t0 = read_u32_varint(bytes, &mut pos)
            .ok_or_else(|| corrupt("bad first node type".into()))?;
        let mut out = Vec::with_capacity(meta.count);
        out.push(Posting::new(meta.min.clone(), NodeTypeId(t0)));
        let mut prev_comps: Vec<u32> = meta.min.components().to_vec();
        let mut prev_type = t0;
        for _ in 1..meta.count {
            let header = *bytes
                .get(pos)
                .ok_or_else(|| corrupt("truncated posting header".into()))?;
            pos += 1;
            if header & HDR_RESERVED != 0 {
                return Err(corrupt("reserved header bit set".into()));
            }
            let mut trim = usize::from(header & 7);
            if trim == usize::from(HDR_FIELD_ESCAPE) {
                trim = read_varint(bytes, &mut pos)
                    .ok_or_else(|| corrupt("truncated trim escape".into()))?
                    as usize;
                if trim < usize::from(HDR_FIELD_ESCAPE) {
                    return Err(corrupt("non-canonical trim escape".into()));
                }
            }
            let mut rest = usize::from((header >> 3) & 7);
            if rest == usize::from(HDR_FIELD_ESCAPE) {
                rest = read_varint(bytes, &mut pos)
                    .ok_or_else(|| corrupt("truncated rest escape".into()))?
                    as usize;
                if rest < usize::from(HDR_FIELD_ESCAPE) {
                    return Err(corrupt("non-canonical rest escape".into()));
                }
            }
            if rest == 0 {
                return Err(corrupt(
                    "posting repeats or precedes its predecessor".into(),
                ));
            }
            if rest > bytes.len() {
                return Err(corrupt("component count exceeds block size".into()));
            }
            let shared = prev_comps
                .len()
                .checked_sub(trim)
                .ok_or_else(|| corrupt("trim deeper than predecessor".into()))?;
            let mut comps = Vec::with_capacity(shared.saturating_add(rest));
            comps.extend_from_slice(prev_comps.get(..shared).unwrap_or(&[]));
            let d0 = read_varint(bytes, &mut pos)
                .ok_or_else(|| corrupt("truncated component".into()))?;
            let c0 = if trim > 0 {
                let base = prev_comps.get(shared).copied().unwrap_or(0);
                let v = u64::from(base)
                    .checked_add(1)
                    .and_then(|b| b.checked_add(d0))
                    .ok_or_else(|| corrupt("component overflow".into()))?;
                u32::try_from(v).map_err(|_| corrupt("component overflow".into()))?
            } else {
                u32::try_from(d0).map_err(|_| corrupt("component overflow".into()))?
            };
            comps.push(c0);
            for _ in 1..rest {
                let c = read_u32_varint(bytes, &mut pos)
                    .ok_or_else(|| corrupt("bad component".into()))?;
                comps.push(c);
            }
            let node_type = if header & HDR_SAME_TYPE != 0 {
                prev_type
            } else {
                read_u32_varint(bytes, &mut pos).ok_or_else(|| corrupt("bad node type".into()))?
            };
            let dewey =
                Dewey::new(comps.clone()).ok_or_else(|| corrupt("empty posting label".into()))?;
            out.push(Posting::new(dewey, NodeTypeId(node_type)));
            prev_comps = comps;
            prev_type = node_type;
        }
        if pos != bytes.len() {
            return Err(corrupt("trailing bytes".into()));
        }
        match out.last() {
            Some(last) if last.dewey == meta.max => Ok(out),
            _ => Err(corrupt("last posting does not match skip-table max".into())),
        }
    }

    /// Decodes every block into a full [`PostingList`] (the serving
    /// path: cached handles hold fully materialized lists).
    pub fn decode_all(&self) -> Result<PostingList> {
        let mut postings = Vec::with_capacity(self.n.min(self.data.len() + self.blocks.len()));
        for i in 0..self.blocks.len() {
            postings.extend(self.decode_block(i)?);
        }
        Ok(PostingList::from_sorted(postings))
    }

    /// Decodes every block independently, reporting per-block damage
    /// instead of stopping at the first bad block (the `scrub` path).
    pub fn check_blocks(&self) -> Vec<(usize, String)> {
        let mut damaged = Vec::new();
        for i in 0..self.blocks.len() {
            if let Err(e) = self.decode_block(i) {
                damaged.push((i, e.to_string()));
            }
        }
        damaged
    }
}

/// Reads an absolutely-coded Dewey label: `varint(len)` then `len`
/// components. `None` on truncation, overflow or an empty label.
fn read_dewey_abs(bytes: &[u8], pos: &mut usize) -> Option<Dewey> {
    let len = read_varint(bytes, pos)? as usize;
    if len > bytes.len() {
        return None;
    }
    let mut comps = Vec::with_capacity(len);
    for _ in 0..len {
        comps.push(read_u32_varint(bytes, pos)?);
    }
    Dewey::new(comps)
}

/// Reads a Dewey label front-coded against `base`: `varint(shared)`,
/// `varint(rest)`, then `rest` absolute components.
fn read_dewey_front_coded(bytes: &[u8], pos: &mut usize, base: &Dewey) -> Option<Dewey> {
    let shared = read_varint(bytes, pos)? as usize;
    let rest = read_varint(bytes, pos)? as usize;
    if rest > bytes.len() {
        return None;
    }
    let mut comps = base.components().get(..shared)?.to_vec();
    for _ in 0..rest {
        comps.push(read_u32_varint(bytes, pos)?);
    }
    Dewey::new(comps)
}

fn read_u32_varint(bytes: &[u8], pos: &mut usize) -> Option<u32> {
    u32::try_from(read_varint(bytes, pos)?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str, t: u32) -> Posting {
        Posting::new(s.parse().unwrap(), NodeTypeId(t))
    }

    fn sample() -> PostingList {
        PostingList::from_sorted(vec![
            p("0.0.1", 3),
            p("0.0.2.0", 4),
            p("0.1", 1),
            p("0.1.1.0", 5),
            p("0.2", 1),
        ])
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None); // truncated
    }

    #[test]
    fn encode_decode_roundtrip() {
        let list = sample();
        let bytes = list.encode();
        assert_eq!(PostingList::decode(&bytes).unwrap(), list);
        // empty list
        let empty = PostingList::new();
        assert_eq!(PostingList::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(PostingList::decode(&[]).is_none());
        assert!(PostingList::decode(&[5, 0]).is_none()); // claims 5, has none
        let mut bytes = sample().encode();
        bytes.push(0); // trailing junk
        assert!(PostingList::decode(&bytes).is_none());
    }

    #[test]
    fn bounds_and_partition_range() {
        let list = sample();
        assert_eq!(list.lower_bound(&"0.1".parse().unwrap()), 2);
        assert_eq!(list.upper_bound(&"0.1".parse().unwrap()), 3);
        assert_eq!(list.lower_bound(&"0".parse().unwrap()), 0);
        assert_eq!(list.lower_bound(&"0.9".parse().unwrap()), 5);
        // partition 0.1 covers postings 0.1 and 0.1.1.0
        assert_eq!(list.partition_range(&"0.1".parse().unwrap()), 2..4);
        assert_eq!(list.partition_range(&"0.0".parse().unwrap()), 0..2);
        assert_eq!(list.partition_range(&"0.5".parse().unwrap()), 5..5);
    }

    // the order check is a debug_assert, so the panic only exists in
    // debug builds — release runs would fail the should_panic
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "document-ordered")]
    fn from_sorted_rejects_disorder_in_debug() {
        PostingList::from_sorted(vec![p("0.1", 0), p("0.0", 0)]);
    }

    // ----- compressed (v4) codec --------------------------------------

    /// A multi-block list: three full blocks plus a partial tail, with
    /// sibling runs (shared prefixes), type changes and depth jumps.
    fn big_list() -> PostingList {
        let mut postings = Vec::new();
        for chapter in 0..5u32 {
            for section in 0..10u32 {
                for para in 0..5u32 {
                    postings.push(Posting::new(
                        Dewey::new(vec![0, chapter, section, para]).unwrap(),
                        NodeTypeId(if para == 0 { 7 } else { 3 }),
                    ));
                }
            }
        }
        PostingList::from_sorted(postings)
    }

    #[test]
    fn compressed_roundtrip() {
        for list in [PostingList::new(), sample(), big_list()] {
            let bytes = list.encode_compressed();
            let parsed = CompressedList::parse(&bytes).unwrap();
            assert_eq!(parsed.len(), list.len());
            assert_eq!(parsed.decode_all().unwrap(), list);
            assert!(parsed.check_blocks().is_empty());
        }
    }

    #[test]
    fn compressed_is_smaller_than_flat_for_sibling_runs() {
        let list = big_list();
        let flat = list.encode().len();
        let compressed = list.encode_compressed().len();
        // ~1.5x on lists alone (the store-level 2x goal additionally
        // rides on the v4 document DAG codec; see bench_compress).
        assert!(
            compressed * 10 < flat * 7,
            "compressed {compressed} vs flat {flat}: expected >1.4x shrink"
        );
    }

    #[test]
    fn skip_table_matches_blocks() {
        let list = big_list();
        let bytes = list.encode_compressed();
        let parsed = CompressedList::parse(&bytes).unwrap();
        assert_eq!(parsed.blocks().len(), list.len().div_ceil(BLOCK_POSTINGS));
        let mut start = 0usize;
        for (i, meta) in parsed.blocks().iter().enumerate() {
            assert_eq!(meta.start, start);
            assert_eq!(meta.min, list.get(start).unwrap().dewey);
            assert_eq!(meta.max, list.get(start + meta.count - 1).unwrap().dewey);
            let decoded = parsed.decode_block(i).unwrap();
            assert_eq!(
                decoded.as_slice(),
                &list.as_slice()[start..start + meta.count]
            );
            start += meta.count;
        }
        assert_eq!(start, list.len());
    }

    #[test]
    fn lower_bound_block_agrees_with_full_decode() {
        let list = big_list();
        let bytes = list.encode_compressed();
        let parsed = CompressedList::parse(&bytes).unwrap();
        for probe in ["0", "0.0.0.0", "0.2.5.3", "0.2.5.3.9", "0.4.9.4", "9"] {
            let target: Dewey = probe.parse().unwrap();
            let i = parsed.lower_bound_block(&target);
            let pos = list.lower_bound(&target);
            if pos == list.len() {
                assert_eq!(i, parsed.blocks().len(), "probe {probe}");
            } else {
                let meta = &parsed.blocks()[i];
                assert!(
                    (meta.start..meta.start + meta.count).contains(&pos),
                    "probe {probe}: lower bound {pos} not in block {i}"
                );
            }
        }
    }

    #[test]
    fn parse_rejects_structural_damage() {
        let list = big_list();
        let bytes = list.encode_compressed();
        // truncation at every prefix must error, never panic
        for cut in 0..bytes.len() {
            let r = CompressedList::parse(&bytes[..cut]).and_then(|c| c.decode_all());
            assert!(r.is_err(), "accepted truncation at {cut}");
        }
        // header claiming more postings than the skip table covers
        let mut grown = bytes.clone();
        grown[0] = grown[0].wrapping_add(1);
        assert!(CompressedList::parse(&grown).is_err());
    }

    #[test]
    fn bit_flips_never_panic_and_preserve_structure() {
        // The payload carries no checksum — flips inside component
        // varints can survive structural validation (the store frame's
        // CRC32 is the corruption boundary; see persist + compress_prop).
        // What the codec itself must guarantee under arbitrary mutation:
        // no panic, and anything it does accept is a well-formed,
        // strictly document-ordered list of the claimed length.
        let list = big_list();
        let bytes = list.encode_compressed();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[i] ^= 1 << bit;
                if let Ok(parsed) = CompressedList::parse(&mutated) {
                    if let Ok(decoded) = parsed.decode_all() {
                        assert_eq!(decoded.len(), parsed.len());
                        for w in decoded.as_slice().windows(2) {
                            assert!(w[0].dewey < w[1].dewey, "disorder after flip");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn single_and_deep_lists_roundtrip() {
        let single = PostingList::from_sorted(vec![p("0", 0)]);
        let bytes = single.encode_compressed();
        let parsed = CompressedList::parse(&bytes).unwrap();
        assert_eq!(parsed.decode_all().unwrap(), single);

        let deep = PostingList::from_sorted(vec![
            Posting::new(Dewey::new(vec![0; 40]).unwrap(), NodeTypeId(1)),
            Posting::new(
                Dewey::new([vec![0; 40], vec![1]].concat()).unwrap(),
                NodeTypeId(1),
            ),
            Posting::new(Dewey::new(vec![1]).unwrap(), NodeTypeId(2)),
        ]);
        let bytes = deep.encode_compressed();
        assert_eq!(
            CompressedList::parse(&bytes).unwrap().decode_all().unwrap(),
            deep
        );
    }
}

// xlint-fixture: path=crates/invindex/src/postings.rs
// Decode-path arithmetic on disk/network-derived values must use the
// checked_/saturating_ method forms; raw `+`, `*` and `<<` (and their
// compound forms) on tainted values are findings.

fn decode_component(prev: u32) -> Option<u32> {
    let mut pos = 0usize;
    let d0 = read_varint(b, &mut pos)?;
    let direct = u64::from(prev) + d0;
    let shifted = d0 << 7;
    let scaled = d0 * 3;
    let mut acc = 0u64;
    acc += d0;
    let checked = u64::from(prev).checked_add(d0)?;
    let saturated = d0.saturating_mul(3);
    let local = pos + 1;
    u32::try_from(checked.min(saturated).max(direct).max(shifted).max(scaled)).ok()
}

fn decode_flow(p: &mut usize) -> usize {
    let n = read_varint(b, p).unwrap_or(0);
    let count = n as usize;
    let doubled = count * 2;
    doubled
}

fn parse_frame(payload: &[u8]) -> usize {
    payload.len() + 9
}

fn frame_reply(payload: &[u8]) -> usize {
    payload.len() + 9
}

fn read_guarded(p: &mut usize) -> u64 {
    let d = read_varint(b, p).unwrap_or(0);
    // xlint::allow(checked-arithmetic-on-untrusted): d is masked to 7 bits by the caller
    let v = d + 1;
    v
}

#[cfg(test)]
mod tests {
    fn t(p: &mut usize) -> u64 {
        read_varint(b, p).unwrap_or(0) + 1
    }
}

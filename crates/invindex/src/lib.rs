//! `invindex` — keyword inverted lists and document statistics (§VII).
//!
//! * [`postings`]: document-ordered posting lists with delta/front-coded
//!   serialization — flat (store v1–v3) and blocked compressed behind a
//!   per-block skip table ([`CompressedList`], store v4);
//! * [`reader`]: the [`IndexReader`] trait and [`ListHandle`] — the
//!   storage-agnostic read path every query layer consumes;
//! * [`index`]: the one-pass index builder and resident
//!   [`InMemoryIndex`] backend;
//! * [`kvindex`]: the [`KvBackedIndex`] backend — lists materialized
//!   lazily from a [`kvstore::KvStore`] through a sharded LRU
//!   byte-budget cache ([`cache`]);
//! * [`stats`]: the frequency tables (`N_T`, `G_T`, `tf(k,T)`, `f^T_k`);
//! * [`cooccur`]: memoized co-occurrence frequencies `f^T_{ki,kj}`;
//! * [`cursor`]: scan-instrumented list cursors (used to *prove* the
//!   one-scan property of the refinement algorithms in tests);
//! * [`stream`]: the streaming builder — zero-copy span scan, parallel
//!   chunked tokenization, deterministic merge (byte-identical stores
//!   with the DOM path);
//! * [`persist`]: storage of the whole index in any [`kvstore::KvStore`];
//! * [`maint`]: online maintenance — WAL-backed document insert/delete
//!   with epoch/snapshot reader handoff ([`MaintIndex`]).

pub mod cache;
pub mod cooccur;
pub mod cursor;
mod dfpass;
pub mod index;
pub mod kvindex;
pub mod maint;
pub mod parallel;
pub mod persist;
pub mod postings;
pub mod reader;
pub mod stats;
pub mod stream;

pub use cache::{CacheStats, ShardedListCache, DEFAULT_CACHE_SHARDS};
pub use cursor::{ListCursor, PostingsCursor, ScanStats};
pub use index::{InMemoryIndex, Index};
pub use kvindex::{KvBackedIndex, StoreGen};
pub use maint::{MaintIndex, MaintOp, MaintReport};
pub use parallel::build_parallel;
pub use persist::{verify_store, IntegrityReport, SectionReport, StatDamage};
pub use postings::{BlockMeta, CompressedList, Posting, PostingList, BLOCK_POSTINGS};
pub use reader::{IndexReader, ListHandle};
pub use stats::{KeywordId, KeywordTable, TypeStats};
pub use stream::build_streaming;

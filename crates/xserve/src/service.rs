//! The query service behind the HTTP surface.
//!
//! [`QueryService`] is the one-method seam between the server chassis
//! (queues, sockets, drain) and the engine: the lifecycle tests plug in
//! slow or failing stand-ins to provoke shedding and timeouts without
//! needing a pathological corpus. [`EngineService`] is the production
//! implementation over [`XRefineEngine`], applying the degradation
//! policy from ISSUE-3 at the protocol level: a per-query storage
//! failure is *that request's* `500` — the connection, the worker and
//! the engine all keep serving.

use std::sync::Arc;

use obs::metrics::json_string;
use xrefine::{LiveEngine, QueryFailure, RefineOutcome, XRefineEngine};

use invindex::maint::{MaintOp, MaintReport};

/// SLCA Dewey labels beyond this many are elided from the JSON (the
/// count is always exact).
const MAX_SLCAS_LISTED: usize = 20;

/// A status code plus a JSON body, ready for the HTTP layer to frame.
#[derive(Debug, Clone)]
pub struct ServiceReply {
    pub status: u16,
    pub body: String,
}

/// One `POST /admin/update` request, decoded by the HTTP layer: the
/// operation and slot come from query parameters, the XML fragment (for
/// `add`) is the raw request body.
#[derive(Debug, Clone, Copy)]
pub struct UpdateRequest<'a> {
    /// `add`, `remove` or `compact`.
    pub op: &'a str,
    /// Record slot to delete (required for `remove`).
    pub slot: Option<usize>,
    /// Request body: the XML fragment to insert (required for `add`).
    pub body: &'a str,
}

/// What a worker does with a popped request. Implementations must be
/// `Send + Sync`: one instance is shared by every worker thread.
pub trait QueryService: Send + Sync {
    fn answer(&self, query: &str) -> ServiceReply;

    /// Applies a maintenance update. Read-only services keep the
    /// default: a `501` telling the operator the store is not live.
    fn update(&self, _req: &UpdateRequest<'_>) -> ServiceReply {
        ServiceReply {
            status: 501,
            body: "{\"error\":\"this server was started without --live: \
                    the store is read-only\"}"
                .to_string(),
        }
    }
}

/// Production service: answers queries through the shared engine.
pub struct EngineService {
    engine: Arc<XRefineEngine>,
}

impl EngineService {
    pub fn new(engine: Arc<XRefineEngine>) -> EngineService {
        EngineService { engine }
    }

    pub fn engine(&self) -> &Arc<XRefineEngine> {
        &self.engine
    }
}

impl QueryService for EngineService {
    fn answer(&self, query: &str) -> ServiceReply {
        match self.engine.answer_detailed(query) {
            Ok(outcome) => ServiceReply {
                status: 200,
                body: render_outcome(query, &outcome),
            },
            Err(failure) => ServiceReply {
                status: 500,
                body: render_failure(query, &failure),
            },
        }
    }
}

/// Live service: answers through the currently published engine of a
/// [`LiveEngine`] and applies `POST /admin/update` maintenance
/// transactions. Queries in flight keep the generation they pinned at
/// dispatch; a committing writer never blocks them.
pub struct LiveEngineService {
    live: Arc<LiveEngine>,
}

impl LiveEngineService {
    pub fn new(live: Arc<LiveEngine>) -> LiveEngineService {
        LiveEngineService { live }
    }

    pub fn live(&self) -> &Arc<LiveEngine> {
        &self.live
    }
}

impl QueryService for LiveEngineService {
    fn answer(&self, query: &str) -> ServiceReply {
        match self.live.engine().answer_detailed(query) {
            Ok(outcome) => ServiceReply {
                status: 200,
                body: render_outcome(query, &outcome),
            },
            Err(failure) => ServiceReply {
                status: 500,
                body: render_failure(query, &failure),
            },
        }
    }

    fn update(&self, req: &UpdateRequest<'_>) -> ServiceReply {
        let bad = |detail: &str| ServiceReply {
            status: 400,
            body: format!("{{\"error\":{}}}", json_string(detail)),
        };
        let committed = match req.op {
            "add" => {
                let fragment = req.body.trim();
                if fragment.is_empty() {
                    return bad("op=add requires the XML fragment as the request body");
                }
                self.live.update(&[MaintOp::Add {
                    fragment: fragment.to_string(),
                }])
            }
            "remove" => {
                let Some(slot) = req.slot else {
                    return bad("op=remove requires a `slot` parameter");
                };
                self.live.update(&[MaintOp::Remove { slot }])
            }
            "compact" => {
                return match self.live.compact() {
                    Ok(ran) => ServiceReply {
                        status: 200,
                        body: format!(
                            "{{\"compacted\":{},\"generation\":{}}}",
                            ran,
                            self.live.generation()
                        ),
                    },
                    Err(e) => ServiceReply {
                        status: 500,
                        body: format!("{{\"error\":{}}}", json_string(&e.to_string())),
                    },
                };
            }
            other => {
                return bad(&format!(
                    "unknown op {other:?} (expected add, remove or compact)"
                ));
            }
        };
        match committed {
            Ok(report) => ServiceReply {
                status: 200,
                body: render_report(&report),
            },
            // A rejected transaction (unparseable fragment, slot out of
            // range) never touched the WAL: the client's input was bad.
            // Anything else is the store failing underneath us.
            Err(e) if e.is_corrupt() => bad(&e.to_string()),
            Err(e) => ServiceReply {
                status: 500,
                body: format!("{{\"error\":{}}}", json_string(&e.to_string())),
            },
        }
    }
}

/// Renders a committed maintenance transaction as JSON.
pub fn render_report(report: &MaintReport) -> String {
    format!(
        "{{\"seq\":{},\"generation\":{},\"records\":{},\"batch_ops\":{},\
         \"added\":{},\"removed\":{}}}",
        report.seq,
        report.generation,
        report.records,
        report.batch_ops,
        report.added,
        report.removed
    )
}

/// Renders a successful outcome as JSON. Hand-rolled like every other
/// emitter in the workspace; strings go through `json_string`.
pub fn render_outcome(query: &str, outcome: &RefineOutcome) -> String {
    let mut out = String::with_capacity(256);
    out.push_str("{\"query\":");
    out.push_str(&json_string(query));
    out.push_str(",\"original_ok\":");
    out.push_str(if outcome.original_ok { "true" } else { "false" });
    out.push_str(",\"refinements\":[");
    for (i, r) in outcome.refinements.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"keywords\":[");
        for (j, kw) in r.candidate.keywords.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_string(kw));
        }
        out.push_str("],\"dissimilarity\":");
        out.push_str(&format!("{:.6}", r.candidate.dissimilarity));
        out.push_str(",\"rank_score\":");
        out.push_str(&format!("{:.6}", r.rank_score));
        out.push_str(",\"slca_count\":");
        out.push_str(&r.slcas.len().to_string());
        out.push_str(",\"slcas\":[");
        for (j, d) in r.slcas.iter().take(MAX_SLCAS_LISTED).enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_string(&d.to_string()));
        }
        out.push_str("]}");
    }
    out.push_str("],\"advances\":");
    out.push_str(&outcome.advances.to_string());
    out.push_str(",\"random_accesses\":");
    out.push_str(&outcome.random_accesses.to_string());
    out.push_str(",\"degraded\":[");
    for (i, d) in outcome.degraded.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"keyword\":");
        out.push_str(&json_string(&d.keyword));
        out.push_str(",\"reason\":");
        out.push_str(&json_string(&d.reason));
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Renders a per-query failure as the `500` JSON envelope.
pub fn render_failure(query: &str, failure: &QueryFailure) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"query\":");
    out.push_str(&json_string(query));
    out.push_str(",\"error\":");
    out.push_str(&json_string(&failure.to_string()));
    out.push_str(",\"keyword\":");
    match &failure.keyword {
        Some(kw) => out.push_str(&json_string(kw)),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xrefine::EngineConfig;

    fn tiny_engine() -> Arc<XRefineEngine> {
        let xml = "<bib><paper><title>xml keyword search</title>\
                   <year>2003</year></paper></bib>";
        Arc::new(XRefineEngine::from_xml(xml, EngineConfig::default()).unwrap())
    }

    #[test]
    fn engine_service_answers_with_json() {
        let svc = EngineService::new(tiny_engine());
        let reply = svc.answer("xml keyword");
        assert_eq!(reply.status, 200);
        assert!(
            reply.body.starts_with("{\"query\":\"xml keyword\""),
            "{}",
            reply.body
        );
        assert!(reply.body.contains("\"refinements\":["), "{}", reply.body);
        assert!(reply.body.contains("\"degraded\":[]"), "{}", reply.body);
        // The body must itself be well-formed enough to round-trip the
        // outer braces (cheap structural sanity check).
        assert!(reply.body.ends_with('}'), "{}", reply.body);
    }

    #[test]
    fn outcome_json_escapes_and_caps_slcas() {
        let svc = EngineService::new(tiny_engine());
        let reply = svc.answer("\"quoted\"\\path");
        assert_eq!(reply.status, 200);
        assert!(reply.body.contains("\\\"quoted\\\""), "{}", reply.body);
    }

    #[test]
    fn read_only_services_refuse_updates_with_501() {
        let svc = EngineService::new(tiny_engine());
        let reply = svc.update(&UpdateRequest {
            op: "add",
            slot: None,
            body: "<paper><title>x</title></paper>",
        });
        assert_eq!(reply.status, 501);
        assert!(reply.body.contains("--live"), "{}", reply.body);
    }

    fn tiny_live() -> LiveEngineService {
        use invindex::{build_streaming, persist};
        use kvstore::{DiskKv, FaultVfs, KvStore};
        let vfs = FaultVfs::new().as_dyn();
        let base = std::path::PathBuf::from("/svc/store.db");
        let built = build_streaming(
            "<bib><paper><title>xml keyword search</title></paper></bib>",
            1,
        )
        .unwrap();
        let mut disk = DiskKv::open_with_vfs(&vfs, &base.with_extension("db")).unwrap();
        persist::persist(&built, &mut disk).unwrap();
        disk.sync().unwrap();
        let live = LiveEngine::open_with_vfs(vfs, &base, EngineConfig::default()).unwrap();
        LiveEngineService::new(Arc::new(live))
    }

    #[test]
    fn live_service_applies_adds_removes_and_compactions() {
        let svc = tiny_live();
        let reply = svc.update(&UpdateRequest {
            op: "add",
            slot: None,
            body: "<paper><title>epoch snapshot</title></paper>",
        });
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(reply.body.contains("\"seq\":1"), "{}", reply.body);
        assert!(reply.body.contains("\"records\":2"), "{}", reply.body);
        assert_eq!(svc.answer("epoch snapshot").status, 200);

        let reply = svc.update(&UpdateRequest {
            op: "remove",
            slot: Some(0),
            body: "",
        });
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(reply.body.contains("\"records\":1"), "{}", reply.body);

        let reply = svc.update(&UpdateRequest {
            op: "compact",
            slot: None,
            body: "",
        });
        assert_eq!(reply.status, 200, "{}", reply.body);
        assert!(reply.body.contains("\"compacted\":true"), "{}", reply.body);
    }

    #[test]
    fn live_service_maps_client_mistakes_to_400() {
        let svc = tiny_live();
        // Unknown op, missing slot, empty body, unparseable fragment,
        // slot out of range: all client errors, none touch the WAL.
        for (req, expect) in [
            (
                UpdateRequest {
                    op: "explode",
                    slot: None,
                    body: "",
                },
                "unknown op",
            ),
            (
                UpdateRequest {
                    op: "remove",
                    slot: None,
                    body: "",
                },
                "slot",
            ),
            (
                UpdateRequest {
                    op: "add",
                    slot: None,
                    body: "   ",
                },
                "request body",
            ),
            (
                UpdateRequest {
                    op: "add",
                    slot: None,
                    body: "<unclosed>",
                },
                "error",
            ),
            (
                UpdateRequest {
                    op: "remove",
                    slot: Some(99),
                    body: "",
                },
                "error",
            ),
        ] {
            let reply = svc.update(&req);
            assert_eq!(reply.status, 400, "{:?}: {}", req.op, reply.body);
            assert!(reply.body.contains(expect), "{:?}: {}", req.op, reply.body);
        }
        assert_eq!(svc.live().maint().seq(), 0, "rejects must not commit");
    }
}

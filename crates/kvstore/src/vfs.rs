//! Virtual filesystem layer under the pager and the WAL.
//!
//! Every byte the store persists flows through a [`Vfs`]: [`StdVfs`]
//! forwards to the real filesystem, while [`FaultVfs`] is a
//! deterministic in-memory filesystem that can fail the Nth mutating
//! operation, persist only a prefix of a write (short write), tear a
//! `sync` in half, or cut power entirely — snapshotting the bytes that
//! would survive on disk so recovery can be exercised from *every* I/O
//! boundary.
//!
//! ## Durability model of `FaultVfs`
//!
//! Each file keeps two images: `data` (what the running process
//! observes) and `durable` (what a power cut preserves), plus the list
//! of operations pending since the last `sync_data`. The namespace
//! (which paths exist, renames, removals) is likewise split into a live
//! view and a durable view; `sync_parent_dir` promotes namespace changes
//! for one directory, mirroring POSIX crash semantics where a created or
//! renamed file is only durable once its directory entry is flushed.
//!
//! A power cut replaces the live state with a survivor picked by
//! [`SurvivalMode`]:
//!
//! * [`SurvivalMode::LoseUnsynced`] — only explicitly synced bytes and
//!   directory entries survive (write-back cache lost).
//! * [`SurvivalMode::KeepUnsynced`] — everything, including the
//!   in-flight operation, made it to the platter just in time.
//! * [`SurvivalMode::TornTail`] — half of the pending operations
//!   survive, and a write at the tear point persists only half of its
//!   bytes: the classic torn page / torn log frame.

use crate::error::{KvError, Result};
use crate::fsutil;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A positioned-I/O file handle. All methods take `&self`; handles are
/// internally synchronized.
pub trait VfsFile: Send + Sync {
    /// Reads exactly `buf.len()` bytes at `offset`.
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;
    /// Writes all of `data` at `offset`, extending the file if needed.
    fn write_all_at(&self, offset: u64, data: &[u8]) -> Result<()>;
    /// Truncates or zero-extends the file to `len` bytes.
    fn set_len(&self, len: u64) -> Result<()>;
    /// Current file length in bytes.
    fn len(&self) -> Result<u64>;
    /// True when the file is empty.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
    /// Flushes file contents to durable storage.
    fn sync_data(&self) -> Result<()>;
}

/// Filesystem operations the store needs beyond a single open file.
pub trait Vfs: Send + Sync {
    /// Opens `path` read-write, creating it empty if absent.
    fn open(&self, path: &Path) -> Result<Box<dyn VfsFile>>;
    /// True when `path` currently exists.
    fn exists(&self, path: &Path) -> bool;
    /// Removes `path`; succeeds if it does not exist.
    fn remove(&self, path: &Path) -> Result<()>;
    /// Atomically renames `from` over `to`.
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
    /// Fsyncs the directory containing `path`, making creations,
    /// renames and removals under it durable.
    fn sync_parent_dir(&self, path: &Path) -> Result<()>;
}

/// The production [`Vfs`]: real files, real fsync.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdVfs;

impl StdVfs {
    /// A shareable handle to the standard filesystem.
    pub fn arc() -> Arc<dyn Vfs> {
        Arc::new(StdVfs)
    }
}

struct StdFile {
    file: Mutex<std::fs::File>,
}

impl VfsFile for StdFile {
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let mut f = self.file.lock(); // xlint::lock(vfs.file)
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)?;
        Ok(())
    }

    fn write_all_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let mut f = self.file.lock(); // xlint::lock(vfs.file)
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(data)?;
        Ok(())
    }

    fn set_len(&self, len: u64) -> Result<()> {
        self.file.lock().set_len(len)?; // xlint::lock(vfs.file)
        Ok(())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.lock().metadata()?.len()) // xlint::lock(vfs.file)
    }

    fn sync_data(&self) -> Result<()> {
        self.file.lock().sync_data()?; // xlint::lock(vfs.file)
        Ok(())
    }
}

impl Vfs for StdVfs {
    fn open(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(StdFile {
            file: Mutex::new(file),
        }))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove(&self, path: &Path) -> Result<()> {
        match std::fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        std::fs::rename(from, to)?;
        Ok(())
    }

    fn sync_parent_dir(&self, path: &Path) -> Result<()> {
        fsutil::sync_parent_dir(path)
    }
}

/// What survives a simulated power cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurvivalMode {
    /// Only explicitly synced data and directory entries survive.
    LoseUnsynced,
    /// Every pending operation, including the in-flight one, survives.
    KeepUnsynced,
    /// Half of the pending operations survive; a write at the tear
    /// point keeps only half of its bytes (torn write).
    TornTail,
}

/// The failure injected at the chosen operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails with an I/O error; the filesystem stays up.
    Error,
    /// A write persists only half of its bytes, then fails.
    ShortWrite,
    /// A sync flushes only half of the pending operations, then fails.
    TornSync,
    /// Power is cut at this operation; every later operation fails
    /// until [`FaultVfs::power_cycle`].
    PowerCut(SurvivalMode),
}

#[derive(Debug, Clone)]
enum PendingOp {
    Write { offset: u64, data: Vec<u8> },
    SetLen(u64),
}

fn apply_op(buf: &mut Vec<u8>, op: &PendingOp) {
    match op {
        PendingOp::Write { offset, data } => {
            let offset = *offset as usize;
            let end = offset + data.len();
            if buf.len() < end {
                buf.resize(end, 0);
            }
            buf[offset..end].copy_from_slice(data);
        }
        PendingOp::SetLen(n) => buf.resize(*n as usize, 0),
    }
}

#[derive(Debug, Default)]
struct Node {
    data: Vec<u8>,
    durable: Vec<u8>,
    pending: Vec<PendingOp>,
}

impl Node {
    fn sync(&mut self) {
        self.durable = self.data.clone();
        self.pending.clear();
    }

    /// Applies a prefix of the pending operations to the durable image,
    /// tearing a write at the boundary, then makes that the live state.
    fn torn_apply(&mut self) {
        let keep_full = self.pending.len() / 2;
        for op in &self.pending[..keep_full] {
            apply_op(&mut self.durable, op);
        }
        if let Some(PendingOp::Write { offset, data }) = self.pending.get(keep_full) {
            let torn = PendingOp::Write {
                offset: *offset,
                data: data[..data.len() / 2].to_vec(),
            };
            apply_op(&mut self.durable, &torn);
        }
        self.data = self.durable.clone();
        self.pending.clear();
    }
}

#[derive(Debug, Default)]
struct FsInner {
    nodes: Vec<Node>,
    /// Volatile namespace: what the running process sees.
    live: HashMap<PathBuf, usize>,
    /// Durable namespace: what a power cut preserves.
    durable_ns: HashMap<PathBuf, usize>,
    /// Mutating operations performed so far.
    ops: u64,
    /// Fire `fault.1` when the op counter reaches `fault.0`.
    fault: Option<(u64, Fault)>,
    fired: bool,
    /// True between a power cut and `power_cycle`.
    dead: bool,
}

impl FsInner {
    /// Counts one mutating operation and reports the fault to inject,
    /// if this is the chosen operation.
    fn begin_op(&mut self) -> Result<Option<Fault>> {
        if self.dead {
            return Err(power_off());
        }
        let hit = match self.fault {
            Some((at, f)) if !self.fired && self.ops == at => {
                self.fired = true;
                Some(f)
            }
            _ => None,
        };
        self.ops += 1;
        Ok(hit)
    }

    /// Cuts power. `complete` applies the in-flight operation in full
    /// (used by `KeepUnsynced`); `tear` queues it as pending so
    /// `TornTail` can tear it.
    fn power_cut(
        &mut self,
        mode: SurvivalMode,
        complete: impl FnOnce(&mut FsInner),
        tear: impl FnOnce(&mut FsInner),
    ) {
        match mode {
            SurvivalMode::KeepUnsynced => {
                complete(self);
                for node in &mut self.nodes {
                    node.sync();
                }
                self.durable_ns = self.live.clone();
            }
            SurvivalMode::LoseUnsynced => {
                for node in &mut self.nodes {
                    node.data = node.durable.clone();
                    node.pending.clear();
                }
                self.live = self.durable_ns.clone();
            }
            SurvivalMode::TornTail => {
                tear(self);
                for node in &mut self.nodes {
                    node.torn_apply();
                }
                self.live = self.durable_ns.clone();
            }
        }
        self.dead = true;
    }
}

fn injected(what: &str) -> KvError {
    KvError::Io(std::io::Error::other(format!("injected fault: {what}")))
}

fn power_off() -> KvError {
    KvError::Io(std::io::Error::other(
        "simulated power failure: filesystem is down until power_cycle",
    ))
}

/// Deterministic in-memory filesystem with fault injection. Cloning
/// shares the filesystem.
#[derive(Debug, Default, Clone)]
pub struct FaultVfs {
    inner: Arc<Mutex<FsInner>>,
}

impl FaultVfs {
    /// A fresh, empty, fault-free filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shareable trait-object handle to this filesystem.
    pub fn as_dyn(&self) -> Arc<dyn Vfs> {
        Arc::new(self.clone())
    }

    /// Arms `fault` to fire on the `at`-th mutating operation
    /// (0-based, counted from filesystem creation).
    pub fn set_fault(&self, at: u64, fault: Fault) {
        let mut inner = self.inner.lock(); // xlint::lock(vfs.state)
        inner.fault = Some((at, fault));
        inner.fired = false;
    }

    /// Disarms any pending fault.
    pub fn clear_fault(&self) {
        self.inner.lock().fault = None; // xlint::lock(vfs.state)
    }

    /// Number of mutating operations performed so far.
    pub fn op_count(&self) -> u64 {
        self.inner.lock().ops // xlint::lock(vfs.state)
    }

    /// True if the armed fault has fired.
    pub fn fault_fired(&self) -> bool {
        self.inner.lock().fired // xlint::lock(vfs.state)
    }

    /// True between a power cut and [`Self::power_cycle`].
    pub fn is_dead(&self) -> bool {
        self.inner.lock().dead // xlint::lock(vfs.state)
    }

    /// Restores power after a [`Fault::PowerCut`]. The surviving state
    /// was already selected at cut time; old handles remain usable but
    /// refer to the post-cut images.
    pub fn power_cycle(&self) {
        self.inner.lock().dead = false; // xlint::lock(vfs.state)
    }

    /// Test hook: flips the byte at `offset` of `path` in place,
    /// bypassing fault accounting (simulates at-rest bit-rot).
    pub fn corrupt_byte(&self, path: &Path, offset: usize) -> Result<()> {
        let mut inner = self.inner.lock(); // xlint::lock(vfs.state)
        let node = *inner
            .live
            .get(path)
            .ok_or_else(|| KvError::corrupt(format!("corrupt_byte: no such file {path:?}")))?;
        let node = &mut inner.nodes[node];
        for image in [&mut node.data, &mut node.durable] {
            if let Some(b) = image.get_mut(offset) {
                *b ^= 0xFF;
            }
        }
        Ok(())
    }

    /// Test hook: a snapshot of the live bytes of `path`.
    pub fn read_file(&self, path: &Path) -> Option<Vec<u8>> {
        let inner = self.inner.lock(); // xlint::lock(vfs.state)
        inner.live.get(path).map(|&n| inner.nodes[n].data.clone())
    }
}

struct FaultFile {
    inner: Arc<Mutex<FsInner>>,
    node: usize,
}

impl VfsFile for FaultFile {
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let inner = self.inner.lock(); // xlint::lock(vfs.state)
        if inner.dead {
            return Err(power_off());
        }
        let data = &inner.nodes[self.node].data;
        let offset = offset as usize;
        let end = offset.checked_add(buf.len()).filter(|&e| e <= data.len());
        match end {
            Some(end) => {
                buf.copy_from_slice(&data[offset..end]);
                Ok(())
            }
            None => Err(KvError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "read of {} bytes at {offset} past end of {}-byte file",
                    buf.len(),
                    data.len()
                ),
            ))),
        }
    }

    fn write_all_at(&self, offset: u64, data: &[u8]) -> Result<()> {
        let mut inner = self.inner.lock(); // xlint::lock(vfs.state)
        let op = PendingOp::Write {
            offset,
            data: data.to_vec(),
        };
        match inner.begin_op()? {
            None => {
                let node = &mut inner.nodes[self.node];
                apply_op(&mut node.data, &op);
                node.pending.push(op);
                Ok(())
            }
            Some(Fault::ShortWrite) => {
                let short = PendingOp::Write {
                    offset,
                    data: data[..data.len() / 2].to_vec(),
                };
                let node = &mut inner.nodes[self.node];
                apply_op(&mut node.data, &short);
                node.pending.push(short);
                Err(injected("short write"))
            }
            Some(Fault::PowerCut(mode)) => {
                let node = self.node;
                inner.power_cut(
                    mode,
                    |fs| {
                        let n = &mut fs.nodes[node];
                        apply_op(&mut n.data, &op);
                        n.pending.push(op.clone());
                    },
                    |fs| fs.nodes[node].pending.push(op.clone()),
                );
                Err(power_off())
            }
            Some(Fault::Error) | Some(Fault::TornSync) => Err(injected("write failed")),
        }
    }

    fn set_len(&self, len: u64) -> Result<()> {
        let mut inner = self.inner.lock(); // xlint::lock(vfs.state)
        let op = PendingOp::SetLen(len);
        match inner.begin_op()? {
            None => {
                let node = &mut inner.nodes[self.node];
                apply_op(&mut node.data, &op);
                node.pending.push(op);
                Ok(())
            }
            Some(Fault::PowerCut(mode)) => {
                let node = self.node;
                inner.power_cut(
                    mode,
                    |fs| {
                        let n = &mut fs.nodes[node];
                        apply_op(&mut n.data, &op);
                        n.pending.push(op.clone());
                    },
                    |fs| fs.nodes[node].pending.push(op.clone()),
                );
                Err(power_off())
            }
            Some(_) => Err(injected("set_len failed")),
        }
    }

    fn len(&self) -> Result<u64> {
        let inner = self.inner.lock(); // xlint::lock(vfs.state)
        if inner.dead {
            return Err(power_off());
        }
        Ok(inner.nodes[self.node].data.len() as u64)
    }

    fn sync_data(&self) -> Result<()> {
        let mut inner = self.inner.lock(); // xlint::lock(vfs.state)
        match inner.begin_op()? {
            None => {
                inner.nodes[self.node].sync();
                Ok(())
            }
            Some(Fault::TornSync) => {
                let node = &mut inner.nodes[self.node];
                let keep = node.pending.len() / 2;
                let rest = node.pending.split_off(keep);
                let flushed = std::mem::replace(&mut node.pending, rest);
                for op in &flushed {
                    apply_op(&mut node.durable, op);
                }
                Err(injected("torn sync"))
            }
            Some(Fault::PowerCut(mode)) => {
                let node = self.node;
                inner.power_cut(mode, |fs| fs.nodes[node].sync(), |_| {});
                Err(power_off())
            }
            Some(_) => Err(injected("sync failed")),
        }
    }
}

fn parent_of(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

impl Vfs for FaultVfs {
    fn open(&self, path: &Path) -> Result<Box<dyn VfsFile>> {
        let mut inner = self.inner.lock(); // xlint::lock(vfs.state)
        if let Some(&node) = inner.live.get(path) {
            if inner.dead {
                return Err(power_off());
            }
            return Ok(Box::new(FaultFile {
                inner: self.inner.clone(),
                node,
            }));
        }
        // Creation mutates the (volatile) namespace.
        match inner.begin_op()? {
            None => {
                let node = inner.nodes.len();
                inner.nodes.push(Node::default());
                inner.live.insert(path.to_path_buf(), node);
                Ok(Box::new(FaultFile {
                    inner: self.inner.clone(),
                    node,
                }))
            }
            Some(Fault::PowerCut(mode)) => {
                let path = path.to_path_buf();
                inner.power_cut(
                    mode,
                    |fs| {
                        let node = fs.nodes.len();
                        fs.nodes.push(Node::default());
                        fs.live.insert(path, node);
                    },
                    |_| {},
                );
                Err(power_off())
            }
            Some(_) => Err(injected("create failed")),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.lock().live.contains_key(path) // xlint::lock(vfs.state)
    }

    fn remove(&self, path: &Path) -> Result<()> {
        let mut inner = self.inner.lock(); // xlint::lock(vfs.state)
        match inner.begin_op()? {
            None => {
                inner.live.remove(path);
                Ok(())
            }
            Some(Fault::PowerCut(mode)) => {
                let path = path.to_path_buf();
                inner.power_cut(
                    mode,
                    |fs| {
                        fs.live.remove(&path);
                    },
                    |_| {},
                );
                Err(power_off())
            }
            Some(_) => Err(injected("remove failed")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        let mut inner = self.inner.lock(); // xlint::lock(vfs.state)
        match inner.begin_op()? {
            None => {
                let node = inner.live.remove(from).ok_or_else(|| {
                    KvError::Io(std::io::Error::new(
                        std::io::ErrorKind::NotFound,
                        format!("rename: no such file {from:?}"),
                    ))
                })?;
                inner.live.insert(to.to_path_buf(), node);
                Ok(())
            }
            Some(Fault::PowerCut(mode)) => {
                let (from, to) = (from.to_path_buf(), to.to_path_buf());
                inner.power_cut(
                    mode,
                    |fs| {
                        if let Some(node) = fs.live.remove(&from) {
                            fs.live.insert(to, node);
                        }
                    },
                    |_| {},
                );
                Err(power_off())
            }
            Some(_) => Err(injected("rename failed")),
        }
    }

    fn sync_parent_dir(&self, path: &Path) -> Result<()> {
        let mut inner = self.inner.lock(); // xlint::lock(vfs.state)
        let dir = parent_of(path);
        let promote = move |fs: &mut FsInner| {
            fs.durable_ns.retain(|p, _| parent_of(p) != dir);
            let adds: Vec<(PathBuf, usize)> = fs
                .live
                .iter()
                .filter(|(p, _)| parent_of(p) == dir)
                .map(|(p, &n)| (p.clone(), n))
                .collect();
            fs.durable_ns.extend(adds);
        };
        match inner.begin_op()? {
            None => {
                promote(&mut inner);
                Ok(())
            }
            Some(Fault::PowerCut(mode)) => {
                inner.power_cut(mode, promote, |_| {});
                Err(power_off())
            }
            Some(_) => Err(injected("directory sync failed")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn write_read_roundtrip() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("a")).unwrap();
        f.write_all_at(0, b"hello").unwrap();
        f.write_all_at(5, b" world").unwrap();
        let mut buf = [0u8; 11];
        f.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
        assert_eq!(f.len().unwrap(), 11);
    }

    #[test]
    fn read_past_eof_is_an_error() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("a")).unwrap();
        f.write_all_at(0, b"abc").unwrap();
        let mut buf = [0u8; 4];
        assert!(f.read_exact_at(0, &mut buf).is_err());
    }

    #[test]
    fn nth_op_fails_and_filesystem_stays_up() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("a")).unwrap(); // op 0: create
        vfs.set_fault(2, Fault::Error);
        f.write_all_at(0, b"one").unwrap(); // op 1
        assert!(f.write_all_at(3, b"two").is_err()); // op 2: injected
        f.write_all_at(3, b"two").unwrap(); // op 3: fault is one-shot
        assert_eq!(vfs.read_file(&p("a")).unwrap(), b"onetwo");
    }

    #[test]
    fn short_write_persists_half_the_bytes() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("a")).unwrap();
        vfs.set_fault(1, Fault::ShortWrite);
        assert!(f.write_all_at(0, b"abcdefgh").is_err());
        assert_eq!(vfs.read_file(&p("a")).unwrap(), b"abcd");
    }

    #[test]
    fn power_cut_losing_unsynced_reverts_to_last_sync() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("a")).unwrap();
        f.write_all_at(0, b"durable").unwrap();
        f.sync_data().unwrap();
        vfs.sync_parent_dir(&p("a")).unwrap();
        f.write_all_at(0, b"VOLATIL").unwrap();
        vfs.set_fault(vfs.op_count(), Fault::PowerCut(SurvivalMode::LoseUnsynced));
        assert!(f.write_all_at(7, b"x").is_err());
        assert!(f.len().is_err(), "filesystem is down until power_cycle");
        vfs.power_cycle();
        assert_eq!(vfs.read_file(&p("a")).unwrap(), b"durable");
    }

    #[test]
    fn power_cut_keeping_unsynced_retains_the_in_flight_write() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("a")).unwrap();
        vfs.sync_parent_dir(&p("a")).unwrap();
        f.write_all_at(0, b"abc").unwrap();
        vfs.set_fault(vfs.op_count(), Fault::PowerCut(SurvivalMode::KeepUnsynced));
        assert!(f.write_all_at(3, b"def").is_err());
        vfs.power_cycle();
        assert_eq!(vfs.read_file(&p("a")).unwrap(), b"abcdef");
    }

    #[test]
    fn power_cut_torn_tail_tears_the_boundary_write() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("a")).unwrap();
        vfs.sync_parent_dir(&p("a")).unwrap();
        f.write_all_at(0, b"base").unwrap();
        f.sync_data().unwrap();
        // One pending write, then the cut arrives on a second write:
        // pending = [w1, w2(in flight)] -> w1 survives whole, w2 torn.
        f.write_all_at(4, b"1111").unwrap();
        vfs.set_fault(vfs.op_count(), Fault::PowerCut(SurvivalMode::TornTail));
        assert!(f.write_all_at(8, b"2222").is_err());
        vfs.power_cycle();
        assert_eq!(vfs.read_file(&p("a")).unwrap(), b"base111122");
    }

    #[test]
    fn unsynced_directory_entry_loses_the_file_on_power_cut() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("wal")).unwrap();
        f.write_all_at(0, b"records").unwrap();
        f.sync_data().unwrap(); // file bytes durable, dir entry not
        vfs.set_fault(vfs.op_count(), Fault::PowerCut(SurvivalMode::LoseUnsynced));
        assert!(vfs.remove(&p("other")).is_err()); // any op triggers the cut
        vfs.power_cycle();
        assert!(!vfs.exists(&p("wal")), "creation was never made durable");
    }

    #[test]
    fn rename_becomes_durable_only_after_dir_sync() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("db.new")).unwrap();
        f.write_all_at(0, b"new tree").unwrap();
        f.sync_data().unwrap();
        vfs.sync_parent_dir(&p("db.new")).unwrap();
        vfs.rename(&p("db.new"), &p("db")).unwrap();
        // Cut before the directory sync: the rename is rolled back.
        vfs.set_fault(vfs.op_count(), Fault::PowerCut(SurvivalMode::LoseUnsynced));
        assert!(vfs.sync_parent_dir(&p("db")).is_err());
        vfs.power_cycle();
        assert!(vfs.exists(&p("db.new")));
        assert!(!vfs.exists(&p("db")));

        // Redo the rename, sync the directory, cut after: it sticks.
        vfs.rename(&p("db.new"), &p("db")).unwrap();
        vfs.sync_parent_dir(&p("db")).unwrap();
        vfs.set_fault(vfs.op_count(), Fault::PowerCut(SurvivalMode::LoseUnsynced));
        let g = vfs.open(&p("db")).unwrap();
        assert!(g.set_len(0).is_err());
        vfs.power_cycle();
        assert!(vfs.exists(&p("db")));
        assert!(!vfs.exists(&p("db.new")));
        assert_eq!(vfs.read_file(&p("db")).unwrap(), b"new tree");
    }

    #[test]
    fn torn_sync_flushes_half_the_pending_ops() {
        let vfs = FaultVfs::new();
        let f = vfs.open(&p("a")).unwrap();
        vfs.sync_parent_dir(&p("a")).unwrap();
        f.write_all_at(0, b"11").unwrap();
        f.write_all_at(2, b"22").unwrap();
        f.write_all_at(4, b"33").unwrap();
        f.write_all_at(6, b"44").unwrap();
        vfs.set_fault(vfs.op_count(), Fault::TornSync);
        assert!(f.sync_data().is_err());
        // First two writes are durable; the rest are still pending, so a
        // LoseUnsynced cut drops exactly them.
        vfs.set_fault(vfs.op_count(), Fault::PowerCut(SurvivalMode::LoseUnsynced));
        assert!(f.write_all_at(8, b"x").is_err());
        vfs.power_cycle();
        assert_eq!(vfs.read_file(&p("a")).unwrap(), b"1122");
    }
}

//! Crash-recovery torture: replay a recorded 500-operation `DurableKv`
//! workload and cut power at *every* injected I/O boundary, under each
//! [`SurvivalMode`]. After each cut the store is reopened and must hold
//! exactly a consistent prefix of the acknowledged history:
//!
//! * `model(acked)` — every acknowledged operation, nothing else; or
//! * `model(acked + 1)` — additionally the one operation that was in
//!   flight when power died, and only if that operation was a put or a
//!   delete (an in-flight checkpoint must never change contents).
//!
//! Recovery must then be able to *continue*: re-issuing the remainder of
//! the workload (idempotent by construction), checkpointing, and
//! reopening must all land on the full-history state.
//!
//! Debug builds stride the sweep to keep `cargo test` responsive; the CI
//! torture job runs this in release, where every boundary is covered.

mod common;

use common::{apply_op, contents, models, workload};
use kvstore::{DurableKv, Fault, FaultVfs, KvStore, SurvivalMode};
use std::path::Path;

const MODES: [SurvivalMode; 3] = [
    SurvivalMode::LoseUnsynced,
    SurvivalMode::KeepUnsynced,
    SurvivalMode::TornTail,
];

#[test]
fn power_cut_at_every_io_boundary_leaves_a_consistent_recoverable_prefix() {
    let ops = workload(500);
    assert!(ops.len() >= 500);
    let snapshots = models(&ops);
    let full = snapshots.last().unwrap();

    let stride: u64 = if cfg!(debug_assertions) { 7 } else { 1 };
    let base = Path::new("store");
    let mut cut: u64 = 0;
    let mut boundaries = 0u64;

    'sweep: loop {
        for mode in MODES {
            let vfs = FaultVfs::new();
            vfs.set_fault(cut, Fault::PowerCut(mode));
            let dyn_vfs = vfs.as_dyn();

            // Run the workload until the cut kills an operation (or the
            // whole workload survives, meaning the sweep is past the last
            // boundary).
            let mut acked = 0usize;
            let mut in_flight_mutation = false;
            if let Ok(mut store) = DurableKv::open_with_vfs(dyn_vfs.clone(), base) {
                for op in &ops {
                    match apply_op(&mut store, op) {
                        Ok(()) => acked += 1,
                        Err(_) => {
                            in_flight_mutation = op.is_mutation();
                            break;
                        }
                    }
                }
            }
            if !vfs.fault_fired() {
                assert_eq!(acked, ops.len(), "no fault, yet the workload failed");
                break 'sweep;
            }
            boundaries += 1;
            assert!(vfs.is_dead(), "a power cut must take the filesystem down");

            // Power comes back; recovery must see a consistent prefix.
            vfs.power_cycle();
            let store = DurableKv::open_with_vfs(dyn_vfs.clone(), base).unwrap_or_else(|e| {
                panic!("recovery open failed after cut at op {cut} ({mode:?}): {e}")
            });
            let recovered = contents(&store);
            let consistent = recovered == snapshots[acked]
                || (in_flight_mutation && recovered == snapshots[acked + 1]);
            assert!(
                consistent,
                "cut at op {cut} ({mode:?}): recovered {} keys, but the state matches \
                 neither model({acked}) nor an acknowledged in-flight mutation",
                recovered.len(),
            );
            assert_eq!(
                store.len(),
                recovered.len() as u64,
                "cut at op {cut} ({mode:?}): live_count disagrees with contents"
            );

            // The survivor must be able to finish the job: re-issue the
            // rest of the history (single-key puts/deletes are idempotent,
            // so the possibly-persisted in-flight op is harmless).
            let mut store = store;
            for (i, op) in ops.iter().enumerate().skip(acked) {
                apply_op(&mut store, op).unwrap_or_else(|e| {
                    panic!("cut at op {cut} ({mode:?}): replaying op {i} failed: {e}")
                });
            }
            store.checkpoint().unwrap_or_else(|e| {
                panic!("cut at op {cut} ({mode:?}): final checkpoint failed: {e}")
            });
            assert_eq!(
                &contents(&store),
                full,
                "cut at op {cut} ({mode:?}): continued history diverged"
            );
            drop(store);
            let reopened = DurableKv::open_with_vfs(dyn_vfs, base).unwrap();
            assert_eq!(
                &contents(&reopened),
                full,
                "cut at op {cut} ({mode:?}): reopen after continuation diverged"
            );
        }
        cut += stride;
    }
    assert!(
        boundaries >= 100,
        "sweep covered only {boundaries} boundaries — workload too small?"
    );
}

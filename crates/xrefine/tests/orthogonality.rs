//! Lemma 3 (§VI-B): the partition and short-list-eager algorithms are
//! orthogonal to the SLCA computation method — plugging in any of the
//! four implementations yields identical refinements and results.

use invindex::Index;
use lexicon::RuleSet;
use std::sync::Arc;
use xrefine::{partition_refine, sle_refine, PartitionOptions, Query, RefineSession, SleOptions};

fn queries() -> Vec<Vec<&'static str>> {
    vec![
        vec!["on", "line", "data", "base"],
        vec!["database", "publication"],
        vec!["xml", "john", "2003"],
        vec!["john", "fishing"],
        vec!["mecin", "learning"],
    ]
}

fn methods() -> Vec<(&'static str, xrefine::SlcaMethod)> {
    vec![
        ("scan_eager", slca::slca_scan_eager),
        ("indexed_lookup_eager", slca::slca_indexed_lookup_eager),
        ("stack", slca::slca_stack),
        ("multiway", slca::slca_multiway),
    ]
}

fn render(out: &xrefine::RefineOutcome) -> Vec<(Vec<String>, f64, Vec<String>)> {
    out.refinements
        .iter()
        .map(|r| {
            (
                r.candidate.keywords.clone(),
                r.candidate.dissimilarity,
                r.slcas.iter().map(|d| d.to_string()).collect(),
            )
        })
        .collect()
}

#[test]
fn partition_is_orthogonal_to_the_slca_method() {
    let idx = Index::build(Arc::new(xmldom::fixtures::figure1()));
    for q in queries() {
        let mut reference: Option<Vec<_>> = None;
        for (name, method) in methods() {
            let session = RefineSession::new(
                &idx,
                Query::from_keywords(q.iter().map(|s| s.to_string())),
                RuleSet::table2(),
            )
            .unwrap();
            let out = partition_refine(
                &session,
                &PartitionOptions {
                    k: 2,
                    slca: method,
                    ..Default::default()
                },
            );
            let r = render(&out);
            match &reference {
                None => reference = Some(r),
                Some(expected) => {
                    assert_eq!(expected, &r, "method {name} diverged on {q:?}")
                }
            }
        }
    }
}

#[test]
fn sle_is_orthogonal_to_the_slca_method() {
    let idx = Index::build(Arc::new(xmldom::fixtures::figure1()));
    for q in queries() {
        let mut reference: Option<Vec<_>> = None;
        for (name, method) in methods() {
            let session = RefineSession::new(
                &idx,
                Query::from_keywords(q.iter().map(|s| s.to_string())),
                RuleSet::table2(),
            )
            .unwrap();
            let out = sle_refine(
                &session,
                &SleOptions {
                    k: 2,
                    slca: method,
                    ..Default::default()
                },
            );
            let r = render(&out);
            match &reference {
                None => reference = Some(r),
                Some(expected) => {
                    assert_eq!(expected, &r, "method {name} diverged on {q:?}")
                }
            }
        }
    }
}

//! The strongest form of the parallel-build determinism contract:
//! persisting a parallel-built index must produce *byte-identical* store
//! files to persisting the sequential build — same keys, same values,
//! same on-disk pages. Anything weaker (e.g. "same lists under
//! string-keyed lookup") would let keyword ids drift with the thread
//! count, silently breaking store interchangeability and incremental
//! backup/diff tooling.

use datagen::{generate_dblp, DblpConfig};
use invindex::{build_parallel, persist, Index};
use kvstore::{DiskKv, KvStore, MemKv};
use std::path::PathBuf;
use std::sync::Arc;
use xmldom::Document;

fn corpus() -> Arc<Document> {
    Arc::new(generate_dblp(&DblpConfig {
        authors: 60,
        ..Default::default()
    }))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parallel_persist_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let p = dir.join(name);
    let _ = std::fs::remove_file(&p);
    p
}

/// Every key/value pair of a store, in key order.
fn dump(store: &dyn KvStore) -> Vec<(Vec<u8>, Vec<u8>)> {
    store.scan_range(b"", None).unwrap()
}

#[test]
fn parallel_and_sequential_builds_persist_identical_kv_contents() {
    let doc = corpus();
    let seq = Index::build(Arc::clone(&doc));
    for threads in [2, 3, 8] {
        let par = build_parallel(Arc::clone(&doc), threads);
        let mut seq_store = MemKv::new();
        let mut par_store = MemKv::new();
        persist::persist(&seq, &mut seq_store).unwrap();
        persist::persist(&par, &mut par_store).unwrap();
        let a = dump(&seq_store);
        let b = dump(&par_store);
        assert_eq!(a.len(), b.len(), "{threads} threads: entry count differs");
        for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
            assert_eq!(ka, kb, "{threads} threads: key sequence diverges");
            assert_eq!(
                va,
                vb,
                "{threads} threads: value differs at key {:?}",
                String::from_utf8_lossy(ka)
            );
        }
    }
}

#[test]
fn parallel_and_sequential_builds_persist_byte_identical_files() {
    let doc = corpus();
    let seq = Index::build(Arc::clone(&doc));
    let par = build_parallel(Arc::clone(&doc), 4);

    let seq_path = tmp("seq.db");
    let par_path = tmp("par.db");
    {
        let mut store = DiskKv::open(&seq_path).unwrap();
        persist::persist(&seq, &mut store).unwrap();
    }
    {
        let mut store = DiskKv::open(&par_path).unwrap();
        persist::persist(&par, &mut store).unwrap();
    }
    let seq_bytes = std::fs::read(&seq_path).unwrap();
    let par_bytes = std::fs::read(&par_path).unwrap();
    assert_eq!(
        seq_bytes.len(),
        par_bytes.len(),
        "store files differ in size"
    );
    assert!(
        seq_bytes == par_bytes,
        "store files are not byte-identical (first divergence at offset {})",
        seq_bytes
            .iter()
            .zip(par_bytes.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(0)
    );
    std::fs::remove_file(&seq_path).unwrap();
    std::fs::remove_file(&par_path).unwrap();
}

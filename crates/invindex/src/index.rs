//! Index construction (§VII of the paper).
//!
//! A single parse-order pass assigns postings and accumulates `N_T`,
//! `tf(k,T)`; a second pass over each posting list derives `f^T_k` and
//! `G_T` using the shared-prefix structure of document-ordered Dewey
//! labels (each new ancestor of a posting appears exactly once across the
//! list, so distinct-ancestor counting is linear in `Σ|L_k| · depth`).

use crate::cooccur::CoOccurrence;
use crate::postings::{Posting, PostingList};
use crate::reader::{typed_ancestors_in, IndexReader, ListHandle};
use crate::stats::{KeywordId, KeywordTable, TypeStats};
use std::collections::HashMap;
use std::sync::Arc;
use xmldom::{tokenize, Dewey, Document, NodeTypeId};

/// The complete in-memory index over one document: keyword inverted lists
/// plus the frequency tables the ranking model consumes.
///
/// Lists are individually `Arc`-shared so [`ListHandle`]s hand out the
/// resident allocation without copying.
pub struct InMemoryIndex {
    doc: Arc<Document>,
    vocab: KeywordTable,
    lists: Vec<Arc<PostingList>>,
    stats: TypeStats,
    cooccur: CoOccurrence,
}

/// Historical name of [`InMemoryIndex`] (pre-`IndexReader`); kept so the
/// ubiquitous `Index::build` call sites stay valid.
pub type Index = InMemoryIndex;

impl InMemoryIndex {
    /// Builds the index over `doc`.
    pub fn build(doc: Arc<Document>) -> Self {
        let num_types = doc.node_types().len();
        let mut vocab = KeywordTable::new();
        let mut lists: Vec<PostingList> = Vec::new();
        let mut stats = TypeStats::new(num_types);

        // Pass 1: postings, N_T and tf(k,T).
        let mut counts: HashMap<KeywordId, u64> = HashMap::new();
        for (id, node) in doc.nodes() {
            stats.bump_n_nodes(node.node_type);

            counts.clear();
            for tok in tokenize(doc.tag_name(id)) {
                let k = vocab.intern(&tok);
                *counts.entry(k).or_insert(0) += 1;
            }
            for tok in tokenize(&node.text) {
                let k = vocab.intern(&tok);
                *counts.entry(k).or_insert(0) += 1;
            }
            // attribute names and values are value terms too (§III)
            for (name, value) in &node.attributes {
                for tok in tokenize(name).into_iter().chain(tokenize(value)) {
                    let k = vocab.intern(&tok);
                    *counts.entry(k).or_insert(0) += 1;
                }
            }
            if counts.is_empty() {
                continue;
            }

            let type_path = doc.node_types().path(node.node_type).to_vec();
            for (&k, &c) in counts.iter() {
                // Posting for the node itself.
                while lists.len() <= k.0 as usize {
                    lists.push(PostingList::new());
                }
                lists[k.0 as usize].push(Posting::new(node.dewey.clone(), node.node_type));
                // tf accumulates at every ancestor-or-self type.
                for m in 1..=type_path.len() {
                    let t = doc
                        .node_types()
                        .get(&type_path[..m])
                        .expect("every prefix of an interned path is interned");
                    stats.add_tf(t, k, c);
                }
            }
        }
        // Postings were appended per-node in arena (document) order, but a
        // node may emit several keywords; each list individually is pushed
        // in document order, so the invariant holds.

        // Pass 2: f^T_k and G_T via distinct-ancestor counting.
        for (kid, list) in lists.iter().enumerate() {
            let k = KeywordId(kid as u32);
            let mut prev: Option<&Posting> = None;
            for p in list.iter() {
                let shared = prev
                    .map(|q| q.dewey.common_prefix_len(&p.dewey))
                    .unwrap_or(0);
                let path = doc.node_types().path(p.node_type);
                for m in (shared + 1)..=p.dewey.len() {
                    let t = doc
                        .node_types()
                        .get(&path[..m])
                        .expect("every prefix of an interned path is interned");
                    stats.add_df(t, k, 1);
                }
                prev = Some(p);
            }
        }

        InMemoryIndex::from_parts(doc, vocab, lists, stats)
    }

    pub fn document(&self) -> &Arc<Document> {
        &self.doc
    }

    pub fn vocabulary(&self) -> &KeywordTable {
        &self.vocab
    }

    pub fn stats(&self) -> &TypeStats {
        &self.stats
    }

    /// The inverted list of a keyword string, if the keyword occurs at all.
    pub fn list(&self, keyword: &str) -> Option<&PostingList> {
        self.vocab.get(keyword).map(|k| self.list_by_id(k))
    }

    pub fn list_by_id(&self, k: KeywordId) -> &PostingList {
        static EMPTY: std::sync::OnceLock<PostingList> = std::sync::OnceLock::new();
        self.lists
            .get(k.0 as usize)
            .map(|l| l.as_ref())
            .unwrap_or_else(|| EMPTY.get_or_init(PostingList::new))
    }

    /// True if the keyword occurs anywhere in the document (tag or text).
    pub fn contains_keyword(&self, keyword: &str) -> bool {
        self.list(keyword).map(|l| !l.is_empty()).unwrap_or(false)
    }

    /// `f^T_{ki,kj}` (Formula 7's numerator input), memoized.
    pub fn co_occur(&self, t: NodeTypeId, ki: KeywordId, kj: KeywordId) -> u64 {
        self.cooccur.co_occur(self, t, ki, kj)
    }

    /// The distinct `T`-typed ancestors-or-self of the postings of `k`:
    /// exactly the `T`-typed nodes whose subtree contains `k`, in document
    /// order. (Public for the co-occurrence provider and for tests; the
    /// count of this list equals `f^T_k`.)
    pub fn typed_ancestors(&self, k: KeywordId, t: NodeTypeId) -> Vec<Dewey> {
        typed_ancestors_in(&self.doc, self.list_by_id(k).as_slice(), t)
    }

    /// Total number of postings across all lists.
    pub fn total_postings(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }

    pub(crate) fn from_parts(
        doc: Arc<Document>,
        vocab: KeywordTable,
        lists: Vec<PostingList>,
        stats: TypeStats,
    ) -> Self {
        InMemoryIndex {
            doc,
            vocab,
            lists: lists.into_iter().map(Arc::new).collect(),
            stats,
            cooccur: CoOccurrence::new(),
        }
    }

    pub(crate) fn lists(&self) -> &[Arc<PostingList>] {
        &self.lists
    }
}

impl IndexReader for InMemoryIndex {
    fn document(&self) -> &Arc<Document> {
        &self.doc
    }

    fn vocabulary(&self) -> &KeywordTable {
        &self.vocab
    }

    fn stats(&self) -> &TypeStats {
        &self.stats
    }

    fn list_handle_by_id(&self, k: KeywordId) -> kvstore::Result<ListHandle> {
        Ok(self
            .lists
            .get(k.0 as usize)
            .map(|l| ListHandle::new(Arc::clone(l)))
            .unwrap_or_default())
    }

    fn co_occur(&self, t: NodeTypeId, ki: KeywordId, kj: KeywordId) -> u64 {
        InMemoryIndex::co_occur(self, t, ki, kj)
    }

    fn contains_keyword(&self, keyword: &str) -> bool {
        InMemoryIndex::contains_keyword(self, keyword)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::fixtures::figure1;

    fn fig1_index() -> Index {
        Index::build(Arc::new(figure1()))
    }

    fn type_by_display(idx: &Index, display: &str) -> NodeTypeId {
        let doc = idx.document();
        doc.node_types()
            .iter()
            .find(|&t| doc.node_types().display(t, doc.symbols()) == display)
            .unwrap_or_else(|| panic!("no node type {display}"))
    }

    #[test]
    fn inverted_lists_are_document_ordered_and_complete() {
        let idx = fig1_index();
        let xml = idx.list("xml").expect("xml occurs");
        let labels: Vec<String> = xml.iter().map(|p| p.dewey.to_string()).collect();
        // titles "base line XML query processing" (0.0.2.0.0) and
        // "XML keyword search" (0.1.1.0.0)
        assert_eq!(labels, ["0.0.2.0.0", "0.1.1.0.0"]);
        assert!(idx.list("publication").is_none());
        assert!(idx.contains_keyword("database"));
        assert!(idx.contains_keyword("hobby")); // tag names are keywords too
    }

    #[test]
    fn xml_df_matches_paper_example() {
        // Paper, Definition 3.2 example: f^inproceedings_XML = 2.
        let idx = fig1_index();
        let k = idx.vocabulary().get("xml").unwrap();
        let t1 = type_by_display(&idx, "bib/author/publications/inproceedings");
        let t2 = type_by_display(&idx, "bib/author/proceedings/inproceedings");
        assert_eq!(idx.stats().df(t1, k) + idx.stats().df(t2, k), 2);
    }

    #[test]
    fn author_df_counts_subtree_containment() {
        let idx = fig1_index();
        let author = type_by_display(&idx, "bib/author");
        let s = idx.stats();
        let k_xml = idx.vocabulary().get("xml").unwrap();
        let k_john = idx.vocabulary().get("john").unwrap();
        let k_2003 = idx.vocabulary().get("2003").unwrap();
        assert_eq!(s.n_nodes(author), 2);
        assert_eq!(s.df(author, k_xml), 2); // both authors have xml somewhere
        assert_eq!(s.df(author, k_john), 1);
        assert_eq!(s.df(author, k_2003), 1); // only Mike's pubs have 2003
    }

    #[test]
    fn tf_counts_multiplicity_through_ancestors() {
        let idx = fig1_index();
        let s = idx.stats();
        let root_t = {
            let doc = idx.document();
            doc.node(doc.root()).node_type
        };
        let k_2003 = idx.vocabulary().get("2003").unwrap();
        // "2003" occurs twice (two year leaves under Mike).
        assert_eq!(s.tf(root_t, k_2003), 2);
        let author = type_by_display(&idx, "bib/author");
        assert_eq!(s.tf(author, k_2003), 2);
        let k_database = idx.vocabulary().get("database").unwrap();
        // "database" occurs in two titles under author 0.0 only.
        assert_eq!(s.tf(author, k_database), 2);
    }

    #[test]
    fn distinct_keywords_counts_g_t() {
        let idx = fig1_index();
        let s = idx.stats();
        let hobby_t = type_by_display(&idx, "bib/author/hobby");
        // subtree of hobby: tag "hobby" + text "fishing"
        assert_eq!(s.distinct_keywords(hobby_t), 2);
    }

    #[test]
    fn typed_ancestors_lists_containing_nodes() {
        let idx = fig1_index();
        let author = type_by_display(&idx, "bib/author");
        let k_xml = idx.vocabulary().get("xml").unwrap();
        let ancs: Vec<String> = idx
            .typed_ancestors(k_xml, author)
            .iter()
            .map(|d| d.to_string())
            .collect();
        assert_eq!(ancs, ["0.0", "0.1"]);
    }

    #[test]
    fn co_occurrence_counts_joint_containment() {
        let idx = fig1_index();
        let author = type_by_display(&idx, "bib/author");
        let v = idx.vocabulary();
        let xml = v.get("xml").unwrap();
        let john = v.get("john").unwrap();
        let database = v.get("database").unwrap();
        // xml & john co-occur under author 0.1 only.
        assert_eq!(idx.co_occur(author, xml, john), 1);
        assert_eq!(idx.co_occur(author, john, xml), 1); // symmetric
                                                        // xml & database co-occur under author 0.0 only (author 0.1 has no
                                                        // "database" token).
        assert_eq!(idx.co_occur(author, xml, database), 1);
        // john & database never share an author subtree... author 0.1 has
        // "data base" as separate tokens, not "database".
        assert_eq!(idx.co_occur(author, john, database), 0);
    }

    #[test]
    fn empty_text_document_still_indexes_tags() {
        let mut b = xmldom::DocumentBuilder::new();
        b.open_element("root");
        b.open_element("child");
        b.close_element();
        b.close_element();
        let idx = Index::build(Arc::new(b.finish()));
        assert!(idx.contains_keyword("root"));
        assert!(idx.contains_keyword("child"));
        assert_eq!(idx.total_postings(), 2);
    }
}

#[cfg(test)]
mod attribute_tests {
    use super::*;

    #[test]
    fn attribute_names_and_values_are_indexed() {
        let doc = xmldom::parse_document(
            r#"<catalog><book isbn="12345" genre="fantasy dragons"><title>tale</title></book></catalog>"#,
        )
        .unwrap();
        let idx = Index::build(Arc::new(doc));
        for kw in [
            "isbn", "12345", "genre", "fantasy", "dragons", "tale", "book",
        ] {
            assert!(idx.contains_keyword(kw), "{kw} missing");
        }
        // the attribute posting points at the owning element
        let list = idx.list("fantasy").unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list.first().unwrap().dewey.to_string(), "0.0");
    }
}

//! A page-based B+-tree with variable-length keys and values.
//!
//! This is the workspace's stand-in for Berkeley DB (§VII of the paper):
//! ordered keyed storage with `O(log n)` point lookups, range scans via
//! chained leaves, and values of arbitrary size through overflow chains.
//!
//! Layout (all integers little-endian):
//!
//! * **header** (page 0): magic, version, root page id, entry count;
//! * **branch**: `\[1\][nkeys:u16][child0:u64]` then `nkeys` × `[klen:u16][key][child:u64]`,
//!   where `child_i` holds keys `>= key_i` and `< key_{i+1}`;
//! * **leaf**: `\[2\][nkeys:u16][next:u64]` then entries
//!   `[klen:u16][vinfo:u32][key][payload]` — if the top bit of `vinfo` is
//!   set the payload is `[head:u64][total:u32]` naming an overflow chain,
//!   otherwise the payload is the `vinfo`-byte inline value;
//! * **overflow**: `\[3\][next:u64][len:u16][data]`.
//!
//! Deletion removes entries from leaves without rebalancing (lazy
//! deletion); pages emptied of live data are only reclaimed through
//! overflow-chain freeing. This matches the build-once/read-mostly index
//! workload of the paper.

use crate::codec;
use crate::error::{KvError, Result};
use crate::pager::{PageId, Pager, PAGE_SIZE};

/// Callback type for streaming range scans: receives `(key, value)` and
/// returns `Ok(false)` to stop early.
pub type ScanVisitor<'a> = &'a mut dyn FnMut(&[u8], Vec<u8>) -> Result<bool>;

/// Maximum key length in bytes; guarantees a branch page holds several keys.
pub const MAX_KEY_LEN: usize = 768;
/// Values whose leaf entry would exceed this many bytes go to overflow pages.
const MAX_INLINE_ENTRY: usize = 1024;
/// Usable payload bytes in an overflow page.
const OVERFLOW_CAPACITY: usize = PAGE_SIZE - 1 - 8 - 2;

const MAGIC: u32 = 0x5852_4B56; // "XRKV"
const VERSION: u16 = 1;

const TYPE_BRANCH: u8 = 1;
const TYPE_LEAF: u8 = 2;
const TYPE_OVERFLOW: u8 = 3;

/// A B+-tree over any [`Pager`].
pub struct BTree<P: Pager> {
    pager: P,
    root: PageId,
    count: u64,
}

#[derive(Debug, Clone)]
enum TreeNode {
    Branch {
        keys: Vec<Vec<u8>>,
        children: Vec<PageId>,
    },
    Leaf {
        entries: Vec<(Vec<u8>, ValueRef)>,
        next: PageId,
    },
}

#[derive(Debug, Clone)]
enum ValueRef {
    Inline(Vec<u8>),
    Overflow { head: PageId, len: u32 },
}

/// Bounds-checked cursor over a page buffer: on-disk lengths are
/// untrusted, so out-of-range reads become [`KvError::Corrupt`].
struct PageReader<'a> {
    buf: &'a [u8],
    pos: usize,
    page: PageId,
}

impl<'a> PageReader<'a> {
    fn new(buf: &'a [u8], page: PageId) -> Self {
        PageReader { buf, pos: 0, page }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let out = &self.buf[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(KvError::corrupt_page(self.page.0, "truncated node record")),
        }
    }

    fn u16(&mut self, what: &str) -> Result<u16> {
        let v = codec::u16_at(self.buf, self.pos, what)
            .map_err(|_| KvError::corrupt_page(self.page.0, format!("truncated {what}")))?;
        self.pos += 2;
        Ok(v)
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        let v = codec::u32_at(self.buf, self.pos, what)
            .map_err(|_| KvError::corrupt_page(self.page.0, format!("truncated {what}")))?;
        self.pos += 4;
        Ok(v)
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        let v = codec::u64_at(self.buf, self.pos, what)
            .map_err(|_| KvError::corrupt_page(self.page.0, format!("truncated {what}")))?;
        self.pos += 8;
        Ok(v)
    }
}

enum InsertOutcome {
    Done {
        replaced: bool,
    },
    Split {
        sep: Vec<u8>,
        right: PageId,
        replaced: bool,
    },
}

impl<P: Pager> BTree<P> {
    /// Opens a tree over `pager`, initializing a fresh store if the header
    /// page is blank.
    pub fn new(mut pager: P) -> Result<Self> {
        let header = pager.read(PageId(0))?;
        let magic = codec::u32_at(&header, 0, "tree header magic")?;
        if magic == 0 {
            // Fresh store: allocate an empty root leaf.
            let root = pager.allocate()?;
            let mut tree = BTree {
                pager,
                root,
                count: 0,
            };
            tree.write_node(
                root,
                &TreeNode::Leaf {
                    entries: Vec::new(),
                    next: PageId::NULL,
                },
            )?;
            tree.write_header()?;
            Ok(tree)
        } else {
            if magic != MAGIC {
                return Err(KvError::corrupt_page(0, format!("bad magic {magic:#x}")));
            }
            let version = codec::u16_at(&header, 4, "tree header version")?;
            if version != VERSION {
                return Err(KvError::corrupt_page(
                    0,
                    format!("unsupported version {version}"),
                ));
            }
            let root = PageId(codec::u64_at(&header, 6, "tree root id")?);
            let count = codec::u64_at(&header, 14, "tree entry count")?;
            if root.is_null() {
                return Err(KvError::corrupt_page(0, "null root"));
            }
            Ok(BTree { pager, root, count })
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let mut page = self.root;
        loop {
            match self.read_node(page)? {
                TreeNode::Branch { keys, children } => {
                    page = children[child_index(&keys, key)];
                }
                TreeNode::Leaf { entries, .. } => {
                    return match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                        Ok(i) => Ok(Some(self.load_value(&entries[i].1)?)),
                        Err(_) => Ok(None),
                    };
                }
            }
        }
    }

    /// True if the key exists (no value materialization).
    pub fn contains(&self, key: &[u8]) -> Result<bool> {
        let mut page = self.root;
        loop {
            match self.read_node(page)? {
                TreeNode::Branch { keys, children } => {
                    page = children[child_index(&keys, key)];
                }
                TreeNode::Leaf { entries, .. } => {
                    return Ok(entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .is_ok());
                }
            }
        }
    }

    /// Inserts or replaces. Returns `true` if an existing value was replaced.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<bool> {
        if key.len() > MAX_KEY_LEN {
            return Err(KvError::KeyTooLarge(key.len()));
        }
        if value.len() > u32::MAX as usize / 2 {
            return Err(KvError::ValueTooLarge(value.len()));
        }
        let outcome = self.insert_rec(self.root, key, value)?;
        let replaced = match outcome {
            InsertOutcome::Done { replaced } => replaced,
            InsertOutcome::Split {
                sep,
                right,
                replaced,
            } => {
                // Grow a new root.
                let new_root = self.pager.allocate()?;
                let node = TreeNode::Branch {
                    keys: vec![sep],
                    children: vec![self.root, right],
                };
                self.write_node(new_root, &node)?;
                self.root = new_root;
                replaced
            }
        };
        if !replaced {
            self.count += 1;
        }
        // The header (root id, count) is flushed by `sync()`; durability
        // is only promised there.
        Ok(replaced)
    }

    /// Removes a key. Returns `true` if it was present.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        let mut page = self.root;
        loop {
            match self.read_node(page)? {
                TreeNode::Branch { keys, children } => {
                    page = children[child_index(&keys, key)];
                }
                TreeNode::Leaf { mut entries, next } => {
                    match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                        Ok(i) => {
                            let (_, vref) = entries.remove(i);
                            if let ValueRef::Overflow { head, .. } = vref {
                                self.free_overflow(head)?;
                            }
                            self.write_node(page, &TreeNode::Leaf { entries, next })?;
                            self.count -= 1;
                            return Ok(true);
                        }
                        Err(_) => return Ok(false),
                    }
                }
            }
        }
    }

    /// All entries with `key >= start` (inclusive) and, if given,
    /// `key < end` (exclusive), in key order.
    pub fn scan_range(
        &self,
        start: &[u8],
        end_exclusive: Option<&[u8]>,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each_in_range(start, end_exclusive, &mut |k, v| {
            out.push((k.to_vec(), v));
            Ok(true)
        })?;
        Ok(out)
    }

    /// All entries whose key starts with `prefix`.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.for_each_in_range(prefix, None, &mut |k, v| {
            if !k.starts_with(prefix) {
                return Ok(false);
            }
            out.push((k.to_vec(), v));
            Ok(true)
        })?;
        Ok(out)
    }

    /// Streams entries in `[start, end)` to `f`; `f` returns `false` to stop.
    pub fn for_each_in_range(
        &self,
        start: &[u8],
        end_exclusive: Option<&[u8]>,
        f: ScanVisitor<'_>,
    ) -> Result<()> {
        // Descend to the leaf that may contain `start`.
        let mut page = self.root;
        while let TreeNode::Branch { keys, children } = self.read_node(page)? {
            page = children[child_index(&keys, start)];
        }
        loop {
            let (entries, next) = match self.read_node(page)? {
                TreeNode::Leaf { entries, next } => (entries, next),
                TreeNode::Branch { .. } => {
                    return Err(KvError::corrupt_page(page.0, "branch in leaf chain"))
                }
            };
            for (k, vref) in &entries {
                if k.as_slice() < start {
                    continue;
                }
                if let Some(end) = end_exclusive {
                    if k.as_slice() >= end {
                        return Ok(());
                    }
                }
                let v = self.load_value(vref)?;
                if !f(k, v)? {
                    return Ok(());
                }
            }
            if next.is_null() {
                return Ok(());
            }
            page = next;
        }
    }

    /// Flushes the header and all dirty pages.
    pub fn sync(&mut self) -> Result<()> {
        self.write_header()?;
        self.pager.sync()
    }

    /// Consumes the tree, returning its pager (used by tests).
    pub fn into_pager(mut self) -> Result<P> {
        self.sync()?;
        Ok(self.pager)
    }

    /// Borrows the underlying pager (used for integrity checks).
    pub fn pager(&self) -> &P {
        &self.pager
    }

    // ----- internals -------------------------------------------------

    fn insert_rec(&mut self, page: PageId, key: &[u8], value: &[u8]) -> Result<InsertOutcome> {
        match self.read_node(page)? {
            TreeNode::Branch {
                mut keys,
                mut children,
            } => {
                let idx = child_index(&keys, key);
                match self.insert_rec(children[idx], key, value)? {
                    InsertOutcome::Done { replaced } => Ok(InsertOutcome::Done { replaced }),
                    InsertOutcome::Split {
                        sep,
                        right,
                        replaced,
                    } => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if branch_size(&keys) <= PAGE_SIZE {
                            self.write_node(page, &TreeNode::Branch { keys, children })?;
                            return Ok(InsertOutcome::Done { replaced });
                        }
                        // Split the branch: the key at the byte midpoint
                        // moves up (count midpoints can leave a half
                        // overflowing when key sizes are skewed).
                        obs::counter!("kvstore_btree_splits_total").inc();
                        obs::trace::count("btree.splits", 1);
                        let sizes: Vec<usize> = keys.iter().map(|k| 2 + k.len() + 8).collect();
                        // mid ∈ [1, len-2]: both halves keep ≥ 1 key
                        // (the separator itself moves up, not sideways)
                        let mid = byte_midpoint(&sizes).min(keys.len().saturating_sub(2).max(1));
                        let sep_up = keys[mid].clone();
                        let right_keys = keys[mid + 1..].to_vec();
                        let right_children = children[mid + 1..].to_vec();
                        let left_keys = keys[..mid].to_vec();
                        let left_children = children[..=mid].to_vec();
                        let right_page = self.pager.allocate()?;
                        self.write_node(
                            right_page,
                            &TreeNode::Branch {
                                keys: right_keys,
                                children: right_children,
                            },
                        )?;
                        self.write_node(
                            page,
                            &TreeNode::Branch {
                                keys: left_keys,
                                children: left_children,
                            },
                        )?;
                        Ok(InsertOutcome::Split {
                            sep: sep_up,
                            right: right_page,
                            replaced,
                        })
                    }
                }
            }
            TreeNode::Leaf { mut entries, next } => {
                let vref = self.store_value(key.len(), value)?;
                let replaced = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        if let ValueRef::Overflow { head, .. } = &entries[i].1 {
                            self.free_overflow(*head)?;
                        }
                        entries[i].1 = vref;
                        true
                    }
                    Err(i) => {
                        entries.insert(i, (key.to_vec(), vref));
                        false
                    }
                };
                if leaf_size(&entries) <= PAGE_SIZE {
                    self.write_node(page, &TreeNode::Leaf { entries, next })?;
                    return Ok(InsertOutcome::Done { replaced });
                }
                // Split the leaf at the *byte* midpoint: entries differ in
                // size by up to ~MAX_INLINE_ENTRY, so the count midpoint
                // can leave one half still overflowing the page.
                obs::counter!("kvstore_btree_splits_total").inc();
                obs::trace::count("btree.splits", 1);
                let sizes: Vec<usize> =
                    entries.iter().map(|(k, v)| leaf_entry_size(k, v)).collect();
                let mid = byte_midpoint(&sizes);
                let right_entries = entries[mid..].to_vec();
                let left_entries = entries[..mid].to_vec();
                let sep = right_entries[0].0.clone();
                let right_page = self.pager.allocate()?;
                self.write_node(
                    right_page,
                    &TreeNode::Leaf {
                        entries: right_entries,
                        next,
                    },
                )?;
                self.write_node(
                    page,
                    &TreeNode::Leaf {
                        entries: left_entries,
                        next: right_page,
                    },
                )?;
                Ok(InsertOutcome::Split {
                    sep,
                    right: right_page,
                    replaced,
                })
            }
        }
    }

    fn store_value(&mut self, key_len: usize, value: &[u8]) -> Result<ValueRef> {
        if key_len + value.len() + 6 <= MAX_INLINE_ENTRY {
            return Ok(ValueRef::Inline(value.to_vec()));
        }
        // Spill to an overflow chain, last chunk first so `next` links are
        // known when each page is written.
        let mut next = PageId::NULL;
        let chunks: Vec<&[u8]> = value.chunks(OVERFLOW_CAPACITY).collect();
        for chunk in chunks.iter().rev() {
            let page = self.pager.allocate()?;
            let mut buf = vec![0u8; PAGE_SIZE];
            buf[0] = TYPE_OVERFLOW;
            buf[1..9].copy_from_slice(&next.0.to_le_bytes());
            buf[9..11].copy_from_slice(&(chunk.len() as u16).to_le_bytes());
            buf[11..11 + chunk.len()].copy_from_slice(chunk);
            self.pager.write(page, &buf)?;
            next = page;
        }
        Ok(ValueRef::Overflow {
            head: next,
            len: value.len() as u32,
        })
    }

    fn load_value(&self, vref: &ValueRef) -> Result<Vec<u8>> {
        match vref {
            ValueRef::Inline(v) => Ok(v.clone()),
            ValueRef::Overflow { head, len } => {
                let mut out = Vec::with_capacity(*len as usize);
                let mut page = *head;
                while !page.is_null() {
                    let buf = self.pager.read(page)?;
                    if buf.first() != Some(&TYPE_OVERFLOW) {
                        return Err(KvError::corrupt_page(page.0, "bad overflow page"));
                    }
                    let next = PageId(codec::u64_at(&buf, 1, "overflow next link")?);
                    let n = codec::u16_at(&buf, 9, "overflow chunk length")? as usize;
                    if n == 0 || 11 + n > buf.len() {
                        return Err(KvError::corrupt_page(
                            page.0,
                            format!("bad overflow chunk length {n}"),
                        ));
                    }
                    out.extend_from_slice(&buf[11..11 + n]);
                    if out.len() > *len as usize {
                        return Err(KvError::corrupt_page(
                            page.0,
                            "overflow chain exceeds recorded length",
                        ));
                    }
                    page = next;
                }
                if out.len() != *len as usize {
                    return Err(KvError::corrupt(format!(
                        "overflow chain length {} != recorded {}",
                        out.len(),
                        len
                    )));
                }
                Ok(out)
            }
        }
    }

    fn free_overflow(&mut self, head: PageId) -> Result<()> {
        let mut page = head;
        while !page.is_null() {
            let buf = self.pager.read(page)?;
            let next = PageId(codec::u64_at(&buf, 1, "overflow next link")?);
            self.pager.free(page)?;
            page = next;
        }
        Ok(())
    }

    fn write_header(&mut self) -> Result<()> {
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        buf[4..6].copy_from_slice(&VERSION.to_le_bytes());
        buf[6..14].copy_from_slice(&self.root.0.to_le_bytes());
        buf[14..22].copy_from_slice(&self.count.to_le_bytes());
        self.pager.write(PageId(0), &buf)
    }

    fn read_node(&self, page: PageId) -> Result<TreeNode> {
        let buf = self.pager.read(page)?;
        // Every length below comes from disk, so it is untrusted: a bad
        // byte must surface as `Corrupt`, never as a slice panic.
        let mut r = PageReader::new(&buf, page);
        let ty = r.take(1)?[0];
        match ty {
            TYPE_BRANCH => {
                let nkeys = r.u16("branch key count")? as usize;
                let child0 = PageId(r.u64("branch child id")?);
                let mut keys = Vec::new();
                let mut children = Vec::new();
                children.push(child0);
                for _ in 0..nkeys {
                    let klen = r.u16("branch key length")? as usize;
                    keys.push(r.take(klen)?.to_vec());
                    children.push(PageId(r.u64("branch child id")?));
                }
                Ok(TreeNode::Branch { keys, children })
            }
            TYPE_LEAF => {
                let nkeys = r.u16("leaf entry count")? as usize;
                let next = PageId(r.u64("leaf next link")?);
                let mut entries = Vec::new();
                for _ in 0..nkeys {
                    let klen = r.u16("leaf key length")? as usize;
                    let vinfo = r.u32("leaf value info")?;
                    let key = r.take(klen)?.to_vec();
                    let vref = if vinfo & 0x8000_0000 != 0 {
                        let head = PageId(r.u64("overflow head id")?);
                        let len = r.u32("overflow value length")?;
                        ValueRef::Overflow { head, len }
                    } else {
                        ValueRef::Inline(r.take(vinfo as usize)?.to_vec())
                    };
                    entries.push((key, vref));
                }
                Ok(TreeNode::Leaf { entries, next })
            }
            other => Err(KvError::corrupt_page(
                page.0,
                format!("unknown page type {other}"),
            )),
        }
    }

    fn write_node(&mut self, page: PageId, node: &TreeNode) -> Result<()> {
        // xlint::allow(no-panic-paths): deliberate hard abort — an overflowing node would silently truncate on disk, which is far worse than aborting the writer
        assert!(node_size(node) <= PAGE_SIZE, "node overflows page");
        let mut buf = vec![0u8; PAGE_SIZE];
        let mut pos = 0usize;
        match node {
            TreeNode::Branch { keys, children } => {
                buf[pos] = TYPE_BRANCH;
                pos += 1;
                buf[pos..pos + 2].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                pos += 2;
                buf[pos..pos + 8].copy_from_slice(&children[0].0.to_le_bytes());
                pos += 8;
                for (k, &c) in keys.iter().zip(children.iter().skip(1)) {
                    buf[pos..pos + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    pos += 2;
                    buf[pos..pos + k.len()].copy_from_slice(k);
                    pos += k.len();
                    buf[pos..pos + 8].copy_from_slice(&c.0.to_le_bytes());
                    pos += 8;
                }
            }
            TreeNode::Leaf { entries, next } => {
                buf[pos] = TYPE_LEAF;
                pos += 1;
                buf[pos..pos + 2].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                pos += 2;
                buf[pos..pos + 8].copy_from_slice(&next.0.to_le_bytes());
                pos += 8;
                for (k, vref) in entries {
                    buf[pos..pos + 2].copy_from_slice(&(k.len() as u16).to_le_bytes());
                    pos += 2;
                    match vref {
                        ValueRef::Inline(v) => {
                            buf[pos..pos + 4].copy_from_slice(&(v.len() as u32).to_le_bytes());
                            pos += 4;
                            buf[pos..pos + k.len()].copy_from_slice(k);
                            pos += k.len();
                            buf[pos..pos + v.len()].copy_from_slice(v);
                            pos += v.len();
                        }
                        ValueRef::Overflow { head, len } => {
                            buf[pos..pos + 4].copy_from_slice(&(0x8000_0000u32).to_le_bytes());
                            pos += 4;
                            buf[pos..pos + k.len()].copy_from_slice(k);
                            pos += k.len();
                            buf[pos..pos + 8].copy_from_slice(&head.0.to_le_bytes());
                            pos += 8;
                            buf[pos..pos + 4].copy_from_slice(&len.to_le_bytes());
                            pos += 4;
                        }
                    }
                }
            }
        }
        self.pager.write(page, &buf)
    }
}

/// Index of the child subtree of a branch node that may contain `key`.
/// `keys` are separators: child `i` holds keys in `[keys[i-1], keys[i])`.
fn child_index(keys: &[Vec<u8>], key: &[u8]) -> usize {
    match keys.binary_search_by(|k| k.as_slice().cmp(key)) {
        Ok(i) => i + 1, // separator equals key: key lives in the right child
        Err(i) => i,
    }
}

/// Serialized size of one leaf entry.
fn leaf_entry_size(key: &[u8], v: &ValueRef) -> usize {
    2 + 4
        + key.len()
        + match v {
            ValueRef::Inline(v) => v.len(),
            ValueRef::Overflow { .. } => 12,
        }
}

/// Index splitting `sizes` into two halves of near-equal summed bytes
/// (the left half is the first to reach half the total). Always in
/// `[1, len - 1]` for `len >= 2`, so neither half is empty; because no
/// single entry approaches `PAGE_SIZE / 2`, both halves of an
/// overflowing node are guaranteed to fit a page again.
fn byte_midpoint(sizes: &[usize]) -> usize {
    let total: usize = sizes.iter().sum();
    let mut acc = 0usize;
    for (i, s) in sizes.iter().enumerate() {
        acc += s;
        if 2 * acc >= total {
            return (i + 1).clamp(1, sizes.len().saturating_sub(1).max(1));
        }
    }
    (sizes.len() / 2).max(1)
}

/// Serialized size of a node in bytes.
fn branch_size(keys: &[Vec<u8>]) -> usize {
    1 + 2 + 8 + keys.iter().map(|k| 2 + k.len() + 8).sum::<usize>()
}

fn leaf_size(entries: &[(Vec<u8>, ValueRef)]) -> usize {
    1 + 2
        + 8
        + entries
            .iter()
            .map(|(k, v)| leaf_entry_size(k, v))
            .sum::<usize>()
}

fn node_size(node: &TreeNode) -> usize {
    match node {
        TreeNode::Branch { keys, .. } => branch_size(keys),
        TreeNode::Leaf { entries, .. } => leaf_size(entries),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn mem_tree() -> BTree<MemPager> {
        BTree::new(MemPager::new()).unwrap()
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = mem_tree();
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.get(b"x").unwrap(), None);
        assert!(!t.contains(b"x").unwrap());
        assert!(t.scan_prefix(b"").unwrap().is_empty());
    }

    #[test]
    fn put_get_replace_delete() {
        let mut t = mem_tree();
        assert!(!t.put(b"alpha", b"1").unwrap());
        assert!(!t.put(b"beta", b"2").unwrap());
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(b"alpha").unwrap().unwrap(), b"1");
        assert!(t.put(b"alpha", b"one").unwrap()); // replace
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(b"alpha").unwrap().unwrap(), b"one");
        assert!(t.delete(b"alpha").unwrap());
        assert!(!t.delete(b"alpha").unwrap());
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"alpha").unwrap(), None);
    }

    #[test]
    fn many_keys_force_splits() {
        let mut t = mem_tree();
        let n = 5000u32;
        for i in 0..n {
            let k = format!("key{i:08}");
            let v = format!("value-{i}");
            t.put(k.as_bytes(), v.as_bytes()).unwrap();
        }
        assert_eq!(t.len(), n as u64);
        for i in (0..n).step_by(97) {
            let k = format!("key{i:08}");
            assert_eq!(
                t.get(k.as_bytes()).unwrap().unwrap(),
                format!("value-{i}").as_bytes()
            );
        }
        // full ordered scan
        let all = t.scan_range(b"", None).unwrap();
        assert_eq!(all.len(), n as usize);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn reverse_and_random_insert_order() {
        let mut t = mem_tree();
        let mut keys: Vec<u32> = (0..2000).collect();
        // deterministic shuffle
        let mut state = 0x9E3779B9u64;
        for i in (1..keys.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            keys.swap(i, j);
        }
        for &k in &keys {
            t.put(&k.to_be_bytes(), &k.to_le_bytes()).unwrap();
        }
        let all = t.scan_range(b"", None).unwrap();
        assert_eq!(all.len(), 2000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        for &k in keys.iter().take(50) {
            assert_eq!(t.get(&k.to_be_bytes()).unwrap().unwrap(), k.to_le_bytes());
        }
    }

    #[test]
    fn large_values_use_overflow_chains() {
        let mut t = mem_tree();
        let big = vec![0xCDu8; 3 * PAGE_SIZE + 123];
        t.put(b"big", &big).unwrap();
        t.put(b"small", b"s").unwrap();
        assert_eq!(t.get(b"big").unwrap().unwrap(), big);
        // replace big value with small: chain is freed and value readable
        t.put(b"big", b"tiny").unwrap();
        assert_eq!(t.get(b"big").unwrap().unwrap(), b"tiny");
        // replace small with big again
        let big2 = vec![0x11u8; 2 * PAGE_SIZE];
        t.put(b"big", &big2).unwrap();
        assert_eq!(t.get(b"big").unwrap().unwrap(), big2);
        assert!(t.delete(b"big").unwrap());
        assert_eq!(t.get(b"big").unwrap(), None);
        assert_eq!(t.get(b"small").unwrap().unwrap(), b"s");
    }

    #[test]
    fn skewed_entry_sizes_split_without_overflowing_a_page() {
        // Regression: a count-midpoint leaf split can leave one half over
        // PAGE_SIZE when near-MAX_INLINE_ENTRY entries cluster at one end
        // of a leaf whose other end holds many tiny entries (the midpoint
        // lands among the tiny ones and the big half keeps too many
        // bytes). This is exactly the shape `invindex::persist` produces:
        // big `L/*` list values sort before a crowd of tiny `V/*` keys.
        // The split is byte-balanced now; this workload panicked before.
        let mut t = mem_tree();
        for i in 0..100u32 {
            t.put(format!("z/{i:03}").as_bytes(), b"t").unwrap();
        }
        let near_max = vec![0xABu8; MAX_INLINE_ENTRY - 16];
        for i in 0..8u32 {
            t.put(format!("a/{i:03}").as_bytes(), &near_max).unwrap();
        }
        for i in 0..100u32 {
            assert_eq!(
                t.get(format!("z/{i:03}").as_bytes()).unwrap().unwrap(),
                b"t",
                "tiny {i}"
            );
        }
        for i in 0..8u32 {
            assert_eq!(
                t.get(format!("a/{i:03}").as_bytes()).unwrap().unwrap(),
                near_max,
                "big {i}"
            );
        }
    }

    #[test]
    fn scan_range_bounds() {
        let mut t = mem_tree();
        for k in ["a", "b", "c", "d", "e"] {
            t.put(k.as_bytes(), k.as_bytes()).unwrap();
        }
        let got = t.scan_range(b"b", Some(b"d")).unwrap();
        let keys: Vec<&[u8]> = got.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, [b"b".as_slice(), b"c".as_slice()]);
        assert!(t.scan_range(b"x", None).unwrap().is_empty());
        assert!(t.scan_range(b"b", Some(b"b")).unwrap().is_empty());
    }

    #[test]
    fn scan_prefix_selects_only_prefixed() {
        let mut t = mem_tree();
        for k in ["app", "apple", "apply", "banana", "ap"] {
            t.put(k.as_bytes(), b"v").unwrap();
        }
        let got = t.scan_prefix(b"app").unwrap();
        let keys: Vec<String> = got
            .iter()
            .map(|(k, _)| String::from_utf8(k.clone()).unwrap())
            .collect();
        assert_eq!(keys, ["app", "apple", "apply"]);
    }

    #[test]
    fn oversized_key_is_rejected() {
        let mut t = mem_tree();
        let huge = vec![b'k'; MAX_KEY_LEN + 1];
        assert!(matches!(t.put(&huge, b"v"), Err(KvError::KeyTooLarge(_))));
    }

    #[test]
    fn persistence_roundtrip_via_file_pager() {
        use crate::pager::FilePager;
        let dir = std::env::temp_dir().join(format!("kvstore_bt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.db");
        let _ = std::fs::remove_file(&path);
        {
            let pager = FilePager::open(&path).unwrap();
            let mut t = BTree::new(pager).unwrap();
            for i in 0..500u32 {
                t.put(format!("k{i:05}").as_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            t.sync().unwrap();
        }
        {
            let pager = FilePager::open(&path).unwrap();
            let t = BTree::new(pager).unwrap();
            assert_eq!(t.len(), 500);
            assert_eq!(
                t.get(b"k00042").unwrap().unwrap(),
                42u32.to_le_bytes().to_vec()
            );
            let all = t.scan_range(b"", None).unwrap();
            assert_eq!(all.len(), 500);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn for_each_early_stop() {
        let mut t = mem_tree();
        for i in 0..100u32 {
            t.put(format!("{i:03}").as_bytes(), b"v").unwrap();
        }
        let mut seen = 0;
        t.for_each_in_range(b"", None, &mut |_, _| {
            seen += 1;
            Ok(seen < 10)
        })
        .unwrap();
        assert_eq!(seen, 10);
    }
}

//! xcheck — deterministic concurrency model checker (loom-lite).
//!
//! The runtime lock-rank checker (`obs::lockrank`) catches ordering
//! violations that happen to occur in a given run; xcheck *explores*
//! runs. Model code executes on real OS threads, but a cooperative
//! token-passing scheduler ([`sched`]) admits exactly one runnable
//! thread at a time and treats every operation on the instrumented
//! shims ([`shim`]) as a yield point. The scheduler then backtracks
//! depth-first over its own decisions until the bounded interleaving
//! space is exhausted — so within the bounds, a clean result is a
//! proof, not a sample.
//!
//! The shims degrade to plain `Mutex`/SeqCst atomics when no checker
//! context is installed, so model code also runs (and is typecheckable)
//! under plain `cargo test`. Exploration models sequential consistency:
//! it finds interleaving bugs, not weak-memory bugs.
//!
//! [`models`] holds distilled copies of three real synchronization
//! patterns in this workspace, each with a seeded-bug variant the
//! checker must catch; DESIGN.md §6c maps each model to its production
//! counterpart.

pub mod models;
pub mod sched;
pub mod shim;

pub use sched::{explore, Config, Kind, Outcome, Violation};
pub use shim::{XAtomicBool, XAtomicU64, XGuard, XMutex};

//! `checked-arithmetic-on-untrusted`: inside the no-panic decode scope,
//! raw `+` / `*` / `<<` (and their compound-assignment forms) on values
//! derived from disk or network bytes are forbidden — in a debug build
//! they panic on overflow, in release they wrap silently; either way a
//! crafted length field turns into a wrong slice bound. Use the
//! `checked_*` / `saturating_*` / `wrapping_*` method forms (which this
//! rule passes naturally: they contain no raw operator) and map
//! overflow to `KvError::Corrupt`.
//!
//! "Derived from untrusted bytes" is a per-function taint pass, not
//! type-checking: taint seeds are (a) the results of the configured
//! byte-reader functions (`read_varint` and friends) and (b) the
//! configured raw-buffer parameter names (`bytes`, `payload`, …) inside
//! functions whose name marks them as decode entry points (`decode_*`,
//! `parse_*`, …). Taint propagates through `let` bindings, plain and
//! compound assignments, and `as` casts, to a fixpoint. The pass is a
//! heuristic on purpose — where it over-approximates, a justified
//! `xlint::allow` pragma documents why the site cannot overflow.

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::{Token, TokenKind};
use crate::model;
use crate::source::SourceFile;
use std::collections::BTreeSet;

pub const RULE: &str = "checked-arithmetic-on-untrusted";

/// Identifiers never collected as operands or tainted bindings.
const KEYWORDS: &[&str] = &[
    "mut", "ref", "let", "if", "else", "while", "for", "in", "match", "return", "break",
    "continue", "as", "move", "loop", "fn", "self", "Self",
];

pub fn check(file: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
    if !Config::in_scope(&file.path, &config.untrusted_paths) {
        return;
    }
    let toks = file.code_tokens();
    for fun in model::functions_of(&toks) {
        let Some((open, close)) = fun.body else {
            continue;
        };
        let marked = config
            .untrusted_fn_markers
            .iter()
            .any(|m| fun.name.contains(m.as_str()));
        let mut tainted: BTreeSet<String> = BTreeSet::new();
        if marked {
            for p in &fun.params {
                if config.untrusted_params.iter().any(|u| u == p) {
                    tainted.insert(p.clone());
                }
            }
        }
        propagate(&toks, open, close, config, &mut tainted);
        flag_ops(file, &toks, open, close, config, &tainted, out);
    }
}

/// Runs the `let`-binding and assignment taint transfer to a fixpoint.
fn propagate(
    toks: &[&Token],
    open: usize,
    close: usize,
    config: &Config,
    tainted: &mut BTreeSet<String>,
) {
    for _round in 0..8 {
        let before = tainted.len();
        let mut i = open + 1;
        while i < close {
            if toks[i].is_ident("let") {
                // Pattern idents up to `:` (type ascription) or `=`.
                let mut pat = Vec::new();
                let mut j = i + 1;
                let mut depth = 0usize;
                let mut collecting = true;
                while j < close {
                    let t = toks[j];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth = depth.saturating_sub(1);
                    } else if depth == 0 && t.is_punct(':') {
                        collecting = false;
                    } else if depth == 0 && (t.is_punct('=') || t.is_punct(';')) {
                        break;
                    } else if collecting
                        && t.kind == TokenKind::Ident
                        && !KEYWORDS.contains(&t.text.as_str())
                    {
                        pat.push(t.text.clone());
                    }
                    j += 1;
                }
                if j < close
                    && toks[j].is_punct('=')
                    && rhs_tainted(toks, j + 1, close, config, tainted)
                {
                    tainted.extend(pat);
                }
                i = j + 1;
                continue;
            }
            // Plain or compound assignment: taint the target when the
            // right-hand side is tainted.
            if toks[i].is_punct('=') && is_assignment(toks, i) {
                if let Some(target) = assign_target(toks, i) {
                    if !tainted.contains(&target)
                        && rhs_tainted(toks, i + 1, close, config, tainted)
                    {
                        tainted.insert(target);
                    }
                }
            }
            i += 1;
        }
        if tainted.len() == before {
            break;
        }
    }
}

/// Is the `=` at `i` an assignment (not `==`, `<=`, `>=`, `!=`, `=>`,
/// or a `let` initializer — those are handled by the caller)?
fn is_assignment(toks: &[&Token], i: usize) -> bool {
    if i + 1 < toks.len() && (toks[i + 1].is_punct('=') || toks[i + 1].is_punct('>')) {
        return false;
    }
    if i == 0 {
        return false;
    }
    let prev = toks[i - 1];
    !(prev.is_punct('=') || prev.is_punct('<') || prev.is_punct('>') || prev.is_punct('!'))
        || is_compound_op(toks, i).is_some()
}

/// For `op=` / `<<=`, the operator character(s) preceding the `=`.
fn is_compound_op(toks: &[&Token], eq: usize) -> Option<char> {
    if eq == 0 {
        return None;
    }
    match toks[eq - 1].kind {
        TokenKind::Punct(c) if "+-*/%&|^".contains(c) => Some(c),
        TokenKind::Punct('<') if eq >= 2 && toks[eq - 2].is_punct('<') => Some('<'),
        TokenKind::Punct('>') if eq >= 2 && toks[eq - 2].is_punct('>') => Some('>'),
        _ => None,
    }
}

/// The identifier being assigned through an `=` at `i`: the nearest
/// ident walking left past deref `*`, compound-op chars and field `.`s.
fn assign_target(toks: &[&Token], eq: usize) -> Option<String> {
    let mut k = eq;
    while k > 0 {
        k -= 1;
        match &toks[k].kind {
            TokenKind::Punct(c) if "+-*/%&|^<>.".contains(*c) => continue,
            TokenKind::Ident if !KEYWORDS.contains(&toks[k].text.as_str()) => {
                return Some(toks[k].text.clone());
            }
            _ => return None,
        }
    }
    None
}

/// Does the expression starting at `start` (ending at `;` or `{` at
/// bracket depth 0, or `close`) mention a tainted ident or a configured
/// untrusted source function?
fn rhs_tainted(
    toks: &[&Token],
    start: usize,
    close: usize,
    config: &Config,
    tainted: &BTreeSet<String>,
) -> bool {
    let mut depth = 0usize;
    let mut k = start;
    while k < close {
        let t = toks[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            if depth == 0 {
                break;
            }
            depth -= 1;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{')) {
            break;
        } else if t.kind == TokenKind::Ident
            && (tainted.contains(&t.text) || config.untrusted_sources.contains(&t.text))
        {
            return true;
        }
        k += 1;
    }
    false
}

/// Emits a finding for every raw `+` / `*` / `<<` (and compound form)
/// whose operand neighbourhood mentions tainted data.
#[allow(clippy::too_many_arguments)]
fn flag_ops(
    file: &SourceFile,
    toks: &[&Token],
    open: usize,
    close: usize,
    config: &Config,
    tainted: &BTreeSet<String>,
    out: &mut Vec<Finding>,
) {
    let mut i = open + 1;
    while i < close {
        let t = toks[i];
        if file.is_test_line(t.line) {
            i += 1;
            continue;
        }
        let op: Option<(&'static str, usize)> = if t.is_punct('+') {
            Some(("+", i + 1))
        } else if t.is_punct('*') && is_multiplication(toks, i) {
            Some(("*", i + 1))
        } else if t.is_punct('<')
            && i + 1 < close
            && toks[i + 1].is_punct('<')
            && toks[i + 1].line == t.line
            && toks[i + 1].col == t.col + 1
        {
            Some(("<<", i + 2))
        } else {
            None
        };
        let Some((sym, mut rhs)) = op else {
            i += 1;
            continue;
        };
        // Compound form: skip the trailing `=` of `+=` / `*=` / `<<=`.
        if rhs < close && toks[rhs].is_punct('=') {
            rhs += 1;
        }
        if span_tainted_left(toks, open, i, config, tainted)
            || span_tainted_right(toks, rhs, close, config, tainted)
        {
            super::emit(
                out,
                file,
                RULE,
                t.line,
                t.col,
                format!("unchecked `{sym}` on a value derived from untrusted bytes"),
                "use a checked_/saturating_ form and map overflow to `KvError::Corrupt`".into(),
            );
        }
        // Advance past a recognised `<<` pair entirely.
        i = if sym == "<<" { i + 2 } else { i + 1 };
    }
}

/// Is the `*` at `i` a multiplication (prev token ends an expression)
/// rather than a deref or raw-pointer sigil?
fn is_multiplication(toks: &[&Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let prev = toks[i - 1];
    match &prev.kind {
        TokenKind::Number => true,
        TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
        TokenKind::Punct(c) => matches!(c, ')' | ']'),
        _ => false,
    }
}

/// Walks left from the operator collecting operand identifiers until an
/// expression boundary; true if any is tainted.
fn span_tainted_left(
    toks: &[&Token],
    open: usize,
    op: usize,
    config: &Config,
    tainted: &BTreeSet<String>,
) -> bool {
    let mut depth = 0usize;
    let mut k = op;
    while k > open + 1 {
        k -= 1;
        let t = toks[k];
        match &t.kind {
            TokenKind::Punct(c) => match c {
                ')' | ']' => depth += 1,
                '(' | '[' => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                '.' | ':' | '?' | '!' => {}
                _ if depth > 0 => {}
                _ => return false,
            },
            TokenKind::Ident
                if tainted.contains(&t.text) || config.untrusted_sources.contains(&t.text) =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Walks right from the operator collecting operand identifiers until an
/// expression boundary; true if any is tainted.
fn span_tainted_right(
    toks: &[&Token],
    start: usize,
    close: usize,
    config: &Config,
    tainted: &BTreeSet<String>,
) -> bool {
    let mut depth = 0usize;
    let mut k = start;
    while k < close {
        let t = toks[k];
        match &t.kind {
            TokenKind::Punct(c) => match c {
                '(' | '[' => depth += 1,
                ')' | ']' => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                '.' | ':' | '?' | '!' => {}
                _ if depth > 0 => {}
                _ => return false,
            },
            TokenKind::Ident
                if tainted.contains(&t.text) || config.untrusted_sources.contains(&t.text) =>
            {
                return true;
            }
            _ => {}
        }
        k += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn findings(src: &str) -> Vec<(usize, String)> {
        let file = SourceFile::parse("crates/invindex/src/postings.rs", src, FileKind::Production);
        let config = Config::workspace_defaults();
        let mut out = Vec::new();
        check(&file, &config, &mut out);
        out.into_iter().map(|f| (f.line, f.message)).collect()
    }

    #[test]
    fn source_derived_values_flag_raw_ops_but_not_checked_forms() {
        let fs = findings(
            "fn next(p: &mut usize) -> Option<u64> {\n\
                 let d0 = read_varint(b, p)?;\n\
                 let v = base + d0;\n\
                 let w = base.checked_add(d0)?;\n\
                 let s = d0 << 3;\n\
                 let m = d0 * 2;\n\
                 Some(v)\n\
             }\n",
        );
        assert_eq!(
            fs.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![3, 5, 6],
            "{fs:?}"
        );
    }

    #[test]
    fn taint_flows_through_bindings_and_compound_assignment() {
        let fs = findings(
            "fn decode(p: &mut usize) -> u64 {\n\
                 let n = read_varint(b, p).unwrap_or(0);\n\
                 let copy = n as usize;\n\
                 let mut acc = 0u64;\n\
                 acc += copy as u64;\n\
                 acc\n\
             }\n",
        );
        assert_eq!(fs.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn marked_fn_params_are_tainted_but_unmarked_are_not() {
        let fs = findings(
            "fn parse_header(payload: &[u8]) -> usize {\n\
                 payload.len() * 4\n\
             }\n\
             fn build_frame(payload: &[u8]) -> usize {\n\
                 payload.len() * 4\n\
             }\n",
        );
        assert_eq!(fs.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn untainted_arithmetic_and_out_of_scope_files_are_clean() {
        let fs = findings(
            "fn fill(&mut self) {\n\
                 self.base += self.decoded.len();\n\
                 self.block += 1;\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");

        let file = SourceFile::parse(
            "crates/slca/src/lib.rs",
            "fn f(p: &mut usize) { let d = read_varint(b, p); let v = d + 1; }\n",
            FileKind::Production,
        );
        let mut out = Vec::new();
        check(&file, &Config::workspace_defaults(), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn pragma_suppresses_with_justification() {
        let fs = findings(
            "fn read_one(p: &mut usize) -> u64 {\n\
                 let d = read_varint(b, p).unwrap_or(0);\n\
                 // xlint::allow(checked-arithmetic-on-untrusted): d is masked to 7 bits above\n\
                 let v = d + 1;\n\
                 v\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }
}

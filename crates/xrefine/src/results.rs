//! Output types of the refinement algorithms.

use crate::query::RqCandidate;
use xmldom::Dewey;

/// One refined query with its score and matching results.
#[derive(Debug, Clone)]
pub struct Refinement {
    pub candidate: RqCandidate,
    /// `Rank(RQ)` under the full ranking model (Formula 10); `0.0` when
    /// the algorithm ranks by dissimilarity only (stack-refine).
    pub rank_score: f64,
    /// Meaningful SLCA results, in document order.
    pub slcas: Vec<Dewey>,
}

/// The outcome of processing one query.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    /// True when the original query itself had meaningful results (its
    /// zero-dissimilarity candidate won): no refinement was necessary
    /// (Definition 3.4).
    pub original_ok: bool,
    /// Ranked refinements (best first). When `original_ok`, the first
    /// entry is the original query with its results.
    pub refinements: Vec<Refinement>,
    /// Sequential posting advances consumed (one-scan verification).
    pub advances: u64,
    /// Random accesses into the lists (SLE's probes).
    pub random_accesses: u64,
}

impl RefineOutcome {
    /// The best refinement, if any.
    pub fn best(&self) -> Option<&Refinement> {
        self.refinements.first()
    }

    /// Convenience: does the outcome propose an actual change to the
    /// query?
    pub fn needs_refinement(&self) -> bool {
        !self.original_ok
    }
}

//! Span-based per-query tracer.
//!
//! Tracing is opt-in per thread: [`capture`] installs a thread-local
//! collector, runs a closure, and returns the structured span tree it
//! produced. When no collector is installed every tracing call is a cheap
//! no-op (one thread-local read), so production query paths can stay
//! instrumented unconditionally.
//!
//! Spans are scoped guards, which makes the recorded tree well-nested by
//! construction: a child guard created inside a parent's scope must drop
//! before the parent does. [`QueryTrace::is_well_nested`] re-checks the
//! interval algebra for tests.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// A timestamped point event inside a span (e.g. one keyword's list load).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    pub name: String,
    /// Offset from the start of the capture.
    pub at: Duration,
    pub attrs: Vec<(String, String)>,
}

/// One node of the recorded span tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Span {
    pub name: String,
    /// Offset from the start of the capture.
    pub start: Duration,
    pub duration: Duration,
    pub attrs: Vec<(String, String)>,
    /// Named counters accumulated while this span was innermost
    /// (e.g. `slca.steps`, `wal.syncs`).
    pub counts: BTreeMap<String, u64>,
    pub events: Vec<Event>,
    pub children: Vec<Span>,
}

impl Span {
    fn new(name: &str, start: Duration) -> Span {
        Span {
            name: name.to_string(),
            start,
            ..Span::default()
        }
    }

    pub fn end(&self) -> Duration {
        self.start + self.duration
    }

    /// Depth-first search for the first span with this name.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Total of a named counter over this span and all descendants.
    pub fn total_count(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
            + self
                .children
                .iter()
                .map(|c| c.total_count(key))
                .sum::<u64>()
    }

    fn well_nested(&self) -> bool {
        let mut prev_end = self.start;
        for c in &self.children {
            if c.start < prev_end || c.end() > self.end() || !c.well_nested() {
                return false;
            }
            prev_end = c.end();
        }
        true
    }

    fn render_into(&self, out: &mut String, prefix: &str, last: bool, root: bool) {
        let (branch, cont) = if root {
            ("", "")
        } else if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        let _ = write!(
            out,
            "{prefix}{branch}{} {}",
            self.name,
            fmt_duration(self.duration)
        );
        for (k, v) in &self.attrs {
            let _ = write!(out, " {k}={v}");
        }
        if !self.counts.is_empty() {
            let counts: Vec<String> = self
                .counts
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let _ = write!(out, " [{}]", counts.join(" "));
        }
        out.push('\n');
        let child_prefix = format!("{prefix}{cont}");
        for e in &self.events {
            let _ = write!(
                out,
                "{child_prefix}• {} @{}",
                e.name,
                fmt_duration(e.at - self.start)
            );
            for (k, v) in &e.attrs {
                let _ = write!(out, " {k}={v}");
            }
            out.push('\n');
        }
        let n = self.children.len();
        for (i, c) in self.children.iter().enumerate() {
            c.render_into(out, &child_prefix, i + 1 == n, false);
        }
    }
}

/// The result of a [`capture`]: the root of the recorded span tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryTrace {
    pub root: Span,
}

impl QueryTrace {
    /// Pretty-print the span tree with durations, attributes, accumulated
    /// counters and events.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.root.render_into(&mut out, "", true, true);
        out
    }

    /// Check the interval algebra of the tree: every child lies inside its
    /// parent and siblings are ordered and non-overlapping.
    pub fn is_well_nested(&self) -> bool {
        self.root.well_nested()
    }

    pub fn find(&self, name: &str) -> Option<&Span> {
        self.root.find(name)
    }
}

fn fmt_duration(d: Duration) -> String {
    let n = d.as_nanos();
    if n < 1_000 {
        format!("{n}ns")
    } else if n < 1_000_000 {
        format!("{:.1}us", n as f64 / 1_000.0)
    } else if n < 1_000_000_000 {
        format!("{:.2}ms", n as f64 / 1_000_000.0)
    } else {
        format!("{:.3}s", n as f64 / 1_000_000_000.0)
    }
}

struct Collector {
    epoch: Instant,
    /// `stack[0]` is the capture root; deeper entries are open spans.
    stack: Vec<Span>,
}

thread_local! {
    static ACTIVE: RefCell<Option<Collector>> = const { RefCell::new(None) };
}

/// Whether a trace capture is active on this thread.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Uninstalls the collector even if the traced closure panics, so a poisoned
/// thread (e.g. inside `cargo test`) does not leak a collector into the next
/// test body that runs on it.
struct CaptureReset;

impl Drop for CaptureReset {
    fn drop(&mut self) {
        ACTIVE.with(|a| a.borrow_mut().take());
    }
}

/// Run `f` with tracing enabled on this thread and return its output plus
/// the recorded span tree. The root span is named `name`; if the closure
/// opened exactly one top-level span and the root recorded nothing else, that
/// span is promoted to root (so tracing an engine call yields its "query"
/// span directly). Nested captures are not supported: an inner capture
/// replaces the outer collector for its extent.
pub fn capture<T>(name: &str, f: impl FnOnce() -> T) -> (T, QueryTrace) {
    let epoch = Instant::now();
    let previous = ACTIVE.with(|a| {
        a.borrow_mut().replace(Collector {
            epoch,
            stack: vec![Span::new(name, Duration::ZERO)],
        })
    });
    drop(previous);
    let reset = CaptureReset;
    let out = f();
    let collector = ACTIVE.with(|a| a.borrow_mut().take());
    std::mem::forget(reset);
    let mut root = match collector {
        Some(mut c) => {
            // Fold any spans left open (a traced closure that early-returns
            // with guards alive cannot happen with scoped guards, but be
            // defensive) back into their parents.
            while c.stack.len() > 1 {
                let mut s = c.stack.pop().expect("stack len checked");
                s.duration = c.epoch.elapsed() - s.start;
                c.stack.last_mut().expect("root present").children.push(s);
            }
            let mut root = c.stack.pop().expect("root present");
            root.duration = c.epoch.elapsed();
            root
        }
        None => Span::new(name, Duration::ZERO),
    };
    if root.children.len() == 1
        && root.attrs.is_empty()
        && root.counts.is_empty()
        && root.events.is_empty()
    {
        root = root.children.pop().expect("len checked");
    }
    (out, QueryTrace { root })
}

/// Guard for an open span. Created by [`span`]; closing happens on drop.
#[must_use = "a span guard records its duration when dropped"]
pub struct SpanGuard {
    active: bool,
}

/// Open a span on the current thread's trace (no-op without a capture).
pub fn span(name: &str) -> SpanGuard {
    ACTIVE.with(|a| {
        let mut borrow = a.borrow_mut();
        match borrow.as_mut() {
            Some(c) => {
                let at = c.epoch.elapsed();
                c.stack.push(Span::new(name, at));
                SpanGuard { active: true }
            }
            None => SpanGuard { active: false },
        }
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        ACTIVE.with(|a| {
            let mut borrow = a.borrow_mut();
            if let Some(c) = borrow.as_mut() {
                if c.stack.len() > 1 {
                    let mut s = c.stack.pop().expect("stack len checked");
                    s.duration = c.epoch.elapsed() - s.start;
                    c.stack.last_mut().expect("root present").children.push(s);
                }
            }
        });
    }
}

/// Attach a key/value attribute to the innermost open span.
pub fn attr(key: &str, value: impl std::fmt::Display) {
    ACTIVE.with(|a| {
        let mut borrow = a.borrow_mut();
        if let Some(c) = borrow.as_mut() {
            let top = c.stack.last_mut().expect("root present");
            top.attrs.push((key.to_string(), value.to_string()));
        }
    });
}

/// Accumulate `n` into a named counter on the innermost open span. This is
/// the deep-layer hook: the pager, WAL and cursors call it so that per-query
/// I/O shows up on the phase that caused it.
pub fn count(key: &str, n: u64) {
    if n == 0 {
        return;
    }
    ACTIVE.with(|a| {
        let mut borrow = a.borrow_mut();
        if let Some(c) = borrow.as_mut() {
            let top = c.stack.last_mut().expect("root present");
            *top.counts.entry(key.to_string()).or_insert(0) += n;
        }
    });
}

/// Record a point event (with attributes) on the innermost open span.
pub fn event(name: &str, attrs: &[(&str, &dyn std::fmt::Display)]) {
    ACTIVE.with(|a| {
        let mut borrow = a.borrow_mut();
        if let Some(c) = borrow.as_mut() {
            let at = c.epoch.elapsed();
            let attrs = attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect();
            let top = c.stack.last_mut().expect("root present");
            top.events.push(Event {
                name: name.to_string(),
                at,
                attrs,
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untraced_calls_are_noops() {
        assert!(!is_active());
        let g = span("orphan");
        count("x", 3);
        attr("k", "v");
        event("e", &[]);
        drop(g);
        assert!(!is_active());
    }

    #[test]
    fn capture_builds_a_nested_tree() {
        let ((), trace) = capture("query", || {
            let _q = span("query");
            attr("algorithm", "partition");
            {
                let _s = span("session");
                event("list", &[("keyword", &"xml"), ("len", &42u64)]);
                count("cache.misses", 1);
            }
            {
                let _a = span("algorithm");
                count("slca.steps", 10);
                count("slca.steps", 5);
            }
        });
        assert_eq!(trace.root.name, "query");
        assert_eq!(
            trace.root.attrs,
            vec![("algorithm".into(), "partition".into())]
        );
        let names: Vec<&str> = trace
            .root
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(names, ["session", "algorithm"]);
        assert_eq!(trace.find("session").unwrap().counts["cache.misses"], 1);
        assert_eq!(trace.find("session").unwrap().events[0].name, "list");
        assert_eq!(trace.find("algorithm").unwrap().counts["slca.steps"], 15);
        assert_eq!(trace.root.total_count("slca.steps"), 15);
        assert!(trace.is_well_nested());
        let rendered = trace.render();
        assert!(rendered.contains("query"));
        assert!(rendered.contains("├─ session"));
        assert!(rendered.contains("└─ algorithm"));
        assert!(rendered.contains("[cache.misses=1]"));
        assert!(rendered.contains("• list"));
    }

    #[test]
    fn capture_without_single_top_span_keeps_synthetic_root() {
        let ((), trace) = capture("trace", || {
            let _a = span("a");
            drop(_a);
            let _b = span("b");
        });
        assert_eq!(trace.root.name, "trace");
        assert_eq!(trace.root.children.len(), 2);
        assert!(trace.is_well_nested());
    }

    #[test]
    fn well_nested_rejects_bad_interval_algebra() {
        let mut parent = Span::new("p", Duration::from_nanos(10));
        parent.duration = Duration::from_nanos(100);
        let mut child = Span::new("c", Duration::from_nanos(50));
        child.duration = Duration::from_nanos(100); // overruns the parent
        parent.children.push(child);
        assert!(!QueryTrace { root: parent }.is_well_nested());
    }

    #[test]
    fn collector_is_removed_after_a_panicking_capture() {
        let result = std::panic::catch_unwind(|| {
            capture("boom", || {
                let _s = span("inner");
                panic!("traced closure panics");
            })
        });
        assert!(result.is_err());
        assert!(!is_active());
    }
}

//! The streaming (SAX-style) parse API: consumers that never build a DOM.

use xmldom::{parse_document, parse_with, XmlHandler};

/// A handler that computes corpus statistics in one streaming pass.
#[derive(Default, Debug)]
struct StatsCollector {
    elements: usize,
    attributes: usize,
    text_chunks: usize,
    max_depth: usize,
    depth: usize,
    tag_trace: Vec<String>,
}

impl XmlHandler for StatsCollector {
    fn start_element(&mut self, name: &str) {
        self.elements += 1;
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        self.tag_trace.push(format!("+{name}"));
    }

    fn attribute(&mut self, _name: &str, _value: &str) {
        self.attributes += 1;
    }

    fn text(&mut self, _text: &str) {
        self.text_chunks += 1;
    }

    fn end_element(&mut self) {
        self.depth -= 1;
        self.tag_trace.push("-".to_string());
    }
}

#[test]
fn streaming_pass_collects_statistics() {
    let xml =
        r#"<bib><author id="1"><name>Ann</name><year>2003</year></author><author id="2"/></bib>"#;
    let mut stats = StatsCollector::default();
    parse_with(xml, &mut stats).unwrap();
    assert_eq!(stats.elements, 5);
    assert_eq!(stats.attributes, 2);
    assert_eq!(stats.text_chunks, 2);
    assert_eq!(stats.max_depth, 3);
    assert_eq!(stats.depth, 0, "events balanced");
    assert_eq!(
        stats.tag_trace,
        ["+bib", "+author", "+name", "-", "+year", "-", "-", "+author", "-", "-"]
    );
}

#[test]
fn streaming_enforces_well_formedness() {
    let mut stats = StatsCollector::default();
    assert!(parse_with("<a><b></a>", &mut stats).is_err());
    let mut stats = StatsCollector::default();
    assert!(parse_with("", &mut stats).is_err());
    let mut stats = StatsCollector::default();
    assert!(parse_with("<a/><b/>", &mut stats).is_err());
}

#[test]
fn streaming_and_dom_agree_on_element_count() {
    let doc = xmldom::fixtures::figure1();
    let xml = doc.to_xml();
    let mut stats = StatsCollector::default();
    parse_with(&xml, &mut stats).unwrap();
    assert_eq!(stats.elements, parse_document(&xml).unwrap().len());
}

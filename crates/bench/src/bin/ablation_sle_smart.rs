//! Ablation: the "smart choice" heuristic of Algorithm 3 (§VI-C
//! Discussion): preferring anchors that appear on rule RHSs or need no
//! refinement should let SLE terminate its Top-K exploration earlier
//! (fewer random accesses).

use bench::{dblp, f3, time_ms, Table};
use datagen::{generate_workload, PerturbKind, WorkloadConfig};
use xrefine::{sle_refine, Query, RefineSession, SleOptions, XRefineEngine};

fn main() {
    let doc = dblp(0.5);
    let workload: Vec<_> = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 6,
            ..Default::default()
        },
    )
    .into_iter()
    .filter(|q| q.kind != PerturbKind::None)
    .collect();

    let engine = XRefineEngine::from_document(doc.clone(), Default::default());
    let index = engine.index();

    let mut t = Table::new(&["variant", "avg time (ms)", "avg random accesses"]);
    for smart in [true, false] {
        let mut total_ra = 0u64;
        let ms = time_ms(
            || {
                for wq in &workload {
                    let q = Query::from_keywords(wq.keywords.iter().cloned());
                    let rules = engine.rules_for(&q);
                    let session = RefineSession::new(index, q, rules).expect("session built");
                    let out = sle_refine(
                        &session,
                        &SleOptions {
                            k: 3,
                            smart_choice: smart,
                            ..Default::default()
                        },
                    );
                    total_ra += out.random_accesses;
                }
            },
            2,
        ) / workload.len() as f64;
        // total_ra accumulated over warmup + reps; normalize per query run
        let avg_ra = total_ra as f64 / (3 * workload.len()) as f64;
        t.row(vec![
            if smart {
                "smart choice"
            } else {
                "naive shortest"
            }
            .into(),
            f3(ms),
            f3(avg_ra),
        ]);
    }
    println!("== Ablation: SLE anchor-choice heuristic ==\n");
    t.print();
}

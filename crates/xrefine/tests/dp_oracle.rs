//! Differential oracle for the `getOptimalRQ` dynamic program: random
//! small instances (≤ 4 keywords × ≤ 4 rules) compared against the
//! exponential `brute_force_rqs` enumeration.
//!
//! Plain seeded `#[test]` loops (not proptest) so the >= 500 cases per
//! property actually execute. Rule costs are drawn from dyadic values, so
//! both implementations sum them exactly and costs compare with `==`.

use lexicon::{RefineOp, Rule, RuleSet, RuleSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use xrefine::dp::{brute_force_rqs, get_optimal_rq, get_top_optimal_rqs};
use xrefine::Query;

const VOCAB: [&str; 8] = [
    "alpha", "beta", "gamma", "delta", "omega", "sigma", "kappa", "theta",
];

struct Instance {
    query: Query,
    rules: RuleSet,
    available: HashSet<String>,
}

fn random_instance(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let qlen = rng.random_range(1..=4usize);
    let keywords: Vec<String> = (0..qlen)
        .map(|_| VOCAB[rng.random_range(0..6usize)].to_string())
        .collect();

    let mut rules = RuleSet::new().with_deletion_cost([1.0, 2.0][rng.random_range(0..2usize)]);
    let nrules = rng.random_range(0..=4usize);
    for _ in 0..nrules {
        let lhs: Vec<&str> = (0..rng.random_range(1..=2usize))
            .map(|_| VOCAB[rng.random_range(0..6usize)])
            .collect();
        let rhs: Vec<&str> = (0..rng.random_range(1..=2usize))
            .map(|_| VOCAB[rng.random_range(0..8usize)])
            .collect();
        let op =
            [RefineOp::Substitute, RefineOp::Merge, RefineOp::Split][rng.random_range(0..3usize)];
        // Dyadic costs, duplicates allowed: exercises exact-cost ties.
        let cost = [0.5, 1.0, 1.5, 2.0][rng.random_range(0..4usize)];
        rules.add(Rule::new(&lhs, &rhs, op, RuleSource::Manual, cost));
    }

    let available: HashSet<String> = VOCAB
        .iter()
        .filter(|_| rng.random_range(0..2u32) == 0)
        .map(|w| w.to_string())
        .collect();

    Instance {
        query: Query::from_keywords(keywords),
        rules,
        available,
    }
}

#[test]
fn dp_optimum_matches_brute_force_on_random_instances() {
    const CASES: u64 = 700;
    for seed in 0..CASES {
        let inst = random_instance(seed);
        let avail = |w: &str| inst.available.contains(w);
        let bf = brute_force_rqs(&inst.query, &avail, &inst.rules);
        let dp = get_optimal_rq(&inst.query, &avail, &inst.rules);
        let ctx = format!(
            "seed={seed} query={:?} available={:?}",
            inst.query.keywords(),
            inst.available
        );
        match (dp, bf.first()) {
            (None, None) => {}
            (Some(dp), Some(bf)) => {
                assert_eq!(
                    dp.dissimilarity, bf.dissimilarity,
                    "optimum cost differs: {ctx}"
                );
                assert_eq!(dp.keywords, bf.keywords, "optimum RQ differs: {ctx}");
            }
            (dp, bf) => panic!("reachability differs: dp={dp:?} bf={bf:?} ({ctx})"),
        }
    }
}

#[test]
fn every_dp_candidate_cost_is_the_brute_force_cost_for_that_set() {
    const CASES: u64 = 500;
    for seed in 10_000..10_000 + CASES {
        let inst = random_instance(seed);
        let avail = |w: &str| inst.available.contains(w);
        let bf = brute_force_rqs(&inst.query, &avail, &inst.rules);
        let dp = get_top_optimal_rqs(&inst.query, &avail, &inst.rules, 8);
        let ctx = format!(
            "seed={seed} query={:?} available={:?}",
            inst.query.keywords(),
            inst.available
        );
        assert!(
            dp.candidates
                .windows(2)
                .all(|w| w[0].dissimilarity <= w[1].dissimilarity),
            "candidates not cost-ordered: {ctx}"
        );
        for c in &dp.candidates {
            let reference = bf
                .iter()
                .find(|b| b.keywords == c.keywords)
                .unwrap_or_else(|| {
                    panic!("DP emitted a set brute force cannot reach: {c:?} {ctx}")
                });
            assert_eq!(
                c.dissimilarity, reference.dissimilarity,
                "cost mismatch for {:?}: {ctx}",
                c.keywords
            );
        }
    }
}

//! CLI: `xlint --workspace [--root PATH]` lints the tree and prints
//! rustc-style diagnostics; `xlint --fixtures` self-tests the rules.
//! Exit codes: 0 clean, 1 findings/fixture failures, 2 usage or I/O
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode: Option<&str> = None;
    let mut root: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" | "--fixtures" | "--list-rules" => {
                if mode.is_some() {
                    return usage("pass exactly one of --workspace, --fixtures, --list-rules");
                }
                mode = Some(match args[i].as_str() {
                    "--workspace" => "workspace",
                    "--fixtures" => "fixtures",
                    _ => "list-rules",
                });
            }
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = Some(PathBuf::from(p)),
                    None => return usage("--root needs a path"),
                }
            }
            "-h" | "--help" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    let root = root.unwrap_or_else(xlint::workspace::default_root);
    match mode {
        Some("workspace") => run_workspace(&root),
        Some("fixtures") => run_fixtures(&root),
        Some("list-rules") => {
            for rule in xlint::rules::RULE_NAMES {
                println!("{rule}");
            }
            println!("pragma");
            ExitCode::SUCCESS
        }
        _ => usage("pass one of --workspace, --fixtures, --list-rules"),
    }
}

fn run_workspace(root: &std::path::Path) -> ExitCode {
    let findings = match xlint::workspace::lint_workspace(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xlint: {e}");
            return ExitCode::from(2);
        }
    };
    if findings.is_empty() {
        println!("xlint: workspace clean");
        return ExitCode::SUCCESS;
    }
    // Re-read each file once for diagnostic source lines.
    let mut cache: std::collections::HashMap<String, Vec<String>> = Default::default();
    for f in &findings {
        let lines = cache.entry(f.path.clone()).or_insert_with(|| {
            std::fs::read_to_string(root.join(&f.path))
                .map(|t| t.lines().map(str::to_string).collect())
                .unwrap_or_default()
        });
        let src = lines
            .get(f.line.saturating_sub(1))
            .map(String::as_str)
            .unwrap_or("");
        eprint!("{}", f.render(src));
        eprintln!();
    }
    eprintln!("xlint: {} finding(s)", findings.len());
    ExitCode::from(1)
}

fn run_fixtures(root: &std::path::Path) -> ExitCode {
    let dir = root.join("crates/xlint/tests/fixtures");
    let config = xlint::fixtures::fixture_config();
    let outcomes = match xlint::fixtures::run_fixtures(&dir, &config) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xlint: {e}");
            return ExitCode::from(2);
        }
    };
    let mut failed = 0;
    for o in &outcomes {
        if o.passed {
            println!("fixture {} ... ok", o.name);
        } else {
            failed += 1;
            println!("fixture {} ... FAILED", o.name);
            print!("{}", o.details);
        }
    }
    println!("{} fixture(s), {} failed", outcomes.len(), failed);
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("xlint: {err}");
    }
    eprintln!("usage: xlint --workspace [--root PATH] | --fixtures [--root PATH] | --list-rules");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

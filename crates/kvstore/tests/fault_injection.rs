//! Fault-injection sweeps over the `DurableKv` I/O path: transient
//! errors, short writes and torn syncs injected at every mutating
//! filesystem operation of a recorded 500-op workload. All injected
//! faults are one-shot, so the contract under test is *retry once and
//! carry on*: the failed logical operation is re-issued, the workload
//! completes, and the final state must equal the reference model — no
//! acknowledged write may be lost and no unacknowledged write may
//! half-apply.
//!
//! Also covers at-rest bit rot: a flipped byte in a checksummed page
//! surfaces as `KvError::Corrupt` with page attribution, never as a
//! wrong answer.
//!
//! Debug builds stride the sweeps; the CI torture job runs them in
//! release with every boundary covered.

mod common;

use common::{apply_op, contents, models, workload};
use kvstore::{DiskKv, DurableKv, Fault, FaultVfs, KvStore, SurvivalMode, PHYS_PAGE_SIZE};
use std::path::Path;
use std::sync::Arc;

/// Opens the store, retrying once if the one-shot fault lands inside
/// the open itself.
fn open_retrying(vfs: &FaultVfs, dyn_vfs: &Arc<dyn kvstore::Vfs>, base: &Path) -> DurableKv {
    match DurableKv::open_with_vfs(dyn_vfs.clone(), base) {
        Ok(s) => s,
        Err(e) => {
            assert!(vfs.fault_fired(), "open failed without a fault: {e}");
            DurableKv::open_with_vfs(dyn_vfs.clone(), base)
                .expect("reopen after a one-shot transient fault")
        }
    }
}

/// Injects `fault` at every I/O boundary (one run per boundary) and
/// requires a single retry of the failed operation to be enough for the
/// full workload to complete and persist exactly the reference state.
fn sweep_transient(fault: Fault) {
    let ops = workload(500);
    let snapshots = models(&ops);
    let full = snapshots.last().unwrap();

    let stride: u64 = if cfg!(debug_assertions) { 7 } else { 1 };
    let base = Path::new("store");
    let mut cut: u64 = 0;
    let mut boundaries = 0u64;

    loop {
        let vfs = FaultVfs::new();
        vfs.set_fault(cut, fault);
        let dyn_vfs = vfs.as_dyn();

        let mut store = open_retrying(&vfs, &dyn_vfs, base);
        let mut retried = false;
        for (i, op) in ops.iter().enumerate() {
            if let Err(e) = apply_op(&mut store, op) {
                assert!(vfs.fault_fired(), "op {i} failed without a fault: {e}");
                assert!(!retried, "the one-shot fault at op {cut} failed twice");
                retried = true;
                apply_op(&mut store, op).unwrap_or_else(|e| {
                    panic!("{fault:?} at op {cut}: retry of workload op {i} failed: {e}")
                });
            }
        }
        if let Err(e) = store.checkpoint() {
            assert!(vfs.fault_fired(), "checkpoint failed without a fault: {e}");
            store
                .checkpoint()
                .unwrap_or_else(|e| panic!("{fault:?} at op {cut}: checkpoint retry failed: {e}"));
        }
        assert_eq!(
            &contents(&store),
            full,
            "{fault:?} at op {cut}: final state diverged"
        );
        drop(store);
        let reopened = open_retrying(&vfs, &dyn_vfs, base);
        assert_eq!(
            &contents(&reopened),
            full,
            "{fault:?} at op {cut}: reopened state diverged"
        );

        if !vfs.fault_fired() {
            // The whole run, final checkpoint and reopen included, needed
            // fewer than `cut` operations: the sweep is complete.
            break;
        }
        boundaries += 1;
        cut += stride;
    }
    assert!(
        boundaries >= 100,
        "sweep covered only {boundaries} boundaries — workload too small?"
    );
}

#[test]
fn transient_error_at_every_io_boundary_needs_only_one_retry() {
    sweep_transient(Fault::Error);
}

#[test]
fn short_write_at_every_io_boundary_needs_only_one_retry() {
    sweep_transient(Fault::ShortWrite);
}

#[test]
fn torn_sync_at_every_io_boundary_needs_only_one_retry() {
    sweep_transient(Fault::TornSync);
}

#[test]
fn acknowledged_put_survives_an_immediate_power_cut() {
    let vfs = FaultVfs::new();
    let dyn_vfs = vfs.as_dyn();
    let base = Path::new("store");
    {
        let mut store = DurableKv::open_with_vfs(dyn_vfs.clone(), base).unwrap();
        store.put(b"acked", b"yes").unwrap();
        // The very next mutating operation is the cut: nothing after the
        // acknowledged put reaches the disk.
        vfs.set_fault(vfs.op_count(), Fault::PowerCut(SurvivalMode::LoseUnsynced));
        assert!(store.put(b"in-flight", b"lost").is_err());
    }
    vfs.power_cycle();
    let store = DurableKv::open_with_vfs(dyn_vfs, base).unwrap();
    assert_eq!(store.get(b"acked").unwrap().unwrap(), b"yes");
    assert_eq!(store.get(b"in-flight").unwrap(), None);
}

#[test]
fn short_written_put_is_rolled_back_not_half_applied() {
    let vfs = FaultVfs::new();
    let dyn_vfs = vfs.as_dyn();
    let base = Path::new("store");
    let mut store = DurableKv::open_with_vfs(dyn_vfs.clone(), base).unwrap();
    store.put(b"before", b"ok").unwrap();

    vfs.set_fault(vfs.op_count(), Fault::ShortWrite);
    assert!(store.put(b"torn", &[0xAB; 256]).is_err());

    // The store stays serviceable and the torn key was never applied.
    assert_eq!(store.get(b"torn").unwrap(), None);
    assert_eq!(store.get(b"before").unwrap().unwrap(), b"ok");
    store.put(b"after", b"ok").unwrap();
    drop(store);

    let store = DurableKv::open_with_vfs(dyn_vfs, base).unwrap();
    assert_eq!(store.get(b"torn").unwrap(), None);
    assert_eq!(store.get(b"before").unwrap().unwrap(), b"ok");
    assert_eq!(store.get(b"after").unwrap().unwrap(), b"ok");
}

#[test]
fn at_rest_bit_rot_surfaces_as_corrupt_never_a_wrong_answer() {
    // Learn the store's size once, then flip a byte in *every* page (one
    // fresh store per page — layouts may differ between builds, which is
    // fine: the invariants are per-instance).
    let path = Path::new("kv.db");
    let build = |vfs: &Arc<dyn kvstore::Vfs>| {
        let mut kv = DiskKv::open_with_vfs(vfs, path).unwrap();
        for i in 0..200u32 {
            kv.put(format!("key{i:04}").as_bytes(), &i.to_le_bytes().repeat(8))
                .unwrap();
        }
        kv.sync().unwrap();
        assert!(kv.verify_pages().unwrap().is_clean());
    };

    let probe = FaultVfs::new();
    build(&probe.as_dyn());
    let total_pages = probe.read_file(path).unwrap().len() / PHYS_PAGE_SIZE;
    assert!(
        total_pages >= 3,
        "store too small to be a meaningful target"
    );

    let mut corrupt_reads = 0u32;
    for page in 1..total_pages {
        let vfs = FaultVfs::new();
        let dyn_vfs = vfs.as_dyn();
        build(&dyn_vfs);
        vfs.corrupt_byte(path, page * PHYS_PAGE_SIZE + 100).unwrap();

        // Damage may be fatal at open (root/meta pages) or surface on
        // reads — but never as a panic or a wrong answer.
        let kv = match DiskKv::open_with_vfs(&dyn_vfs, path) {
            Ok(kv) => kv,
            Err(e) => {
                assert!(e.is_corrupt(), "page {page}: expected Corrupt, got {e}");
                corrupt_reads += 1;
                continue;
            }
        };
        let report = kv.verify_pages().unwrap();
        assert!(report.checksummed());
        assert!(
            report.bad_pages.iter().any(|(id, _)| *id == page as u64),
            "page {page}: verify_pages missed the damage: {:?}",
            report.bad_pages
        );
        for i in 0..200u32 {
            match kv.get(format!("key{i:04}").as_bytes()) {
                Ok(Some(v)) => assert_eq!(v, i.to_le_bytes().repeat(8), "page {page}: key{i:04}"),
                Ok(None) => panic!("page {page}: key{i:04} silently vanished"),
                Err(e) => {
                    assert!(e.is_corrupt(), "page {page}: expected Corrupt, got {e}");
                    corrupt_reads += 1;
                }
            }
        }
    }
    assert!(
        corrupt_reads > 0,
        "no read ever hit the damage — the sweep proved nothing"
    );
}

//! Online index maintenance: WAL-backed document insert/delete with
//! epoch/snapshot reader handoff.
//!
//! [`MaintIndex`] owns a [`kvstore::DurableKv`] and keeps a published
//! [`KvBackedIndex`] *epoch* that readers pin via [`MaintIndex::snapshot`].
//! The corpus model is a root element containing *records* (its direct
//! children, kept as canonical XML fragments); a maintenance transaction
//! ([`MaintTxn`]) appends and/or removes records, commits the resulting
//! store delta as **one atomic WAL transaction group**, and publishes a
//! fresh generation.
//!
//! # Commit protocol (rebuild-diff)
//!
//! A commit reconstructs the post-transaction corpus, rebuilds the full
//! index in memory, persists it to a scratch store, and diffs that
//! against the live store; only the differing keys ship as the WAL
//! batch. This is deliberately the *strongest* maintenance discipline:
//! after every commit the durable store is byte-identical to a
//! from-scratch rebuild of the same corpus (the differential oracle in
//! `tests/maint_differential.rs` holds by construction), and crash
//! recovery is exactly [`kvstore::DurableKv`]'s committed-prefix replay.
//! The cost is a rebuild per transaction — acceptable for the paper's
//! corpus scale, and an explicit trade the DESIGN.md section records.
//!
//! # Epoch lifecycle
//!
//! ```text
//! commit:  writer lock → apply_batch (WAL) → gen+1
//!            → cache.set_current_gen(gen+1)   (stale inserts now refused)
//!            → cache.invalidate(changed ids)  (stale entries dropped)
//!            → StoreGen{gen+1, base, frozen overlay} → new KvBackedIndex
//!            → epoch pointer swap
//! ```
//!
//! Readers holding the previous epoch keep serving from their pinned
//! [`StoreGen`] — they are never blocked and never see mixed state;
//! their re-decodes of invalidated lists are admitted to the cache only
//! if their generation is still current (see [`crate::cache`]).
//!
//! # Compaction
//!
//! [`MaintIndex::compact`] folds the WAL overlay into the base store via
//! [`kvstore::DurableKv::checkpoint`] (write `.db.new`, fsync, rename
//! over `.db`, fsync dir, then reset the WAL), reopens a fresh read
//! handle on the new base, and publishes it as a new generation with an
//! empty overlay and **no cache invalidation** — the merged bytes are
//! identical, so entries stamped by older generations keep hitting.
//! Prior epochs still read the old inode through their pinned handle.

use crate::cache::ShardedListCache;
use crate::index::Index;
use crate::kvindex::{KvBackedIndex, StoreGen, DEFAULT_CACHE_BUDGET, DEFAULT_CACHE_SHARDS};
use crate::persist;
use crate::postings::{read_varint, write_varint};
use kvstore::{BatchOp, DiskKv, DurableKv, KvError, KvStore, MemKv, Result, StdVfs, Vfs};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use xmldom::{parse_document, Document, NodeId};

/// The store key holding maintenance metadata (committed transaction
/// sequence number and record count), framed like every other persisted
/// value.
pub const MAINT_KEY: &[u8] = b"M/maint";

/// One staged corpus mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaintOp {
    /// Append a record (an XML fragment that parses as one element) to
    /// the corpus.
    Add { fragment: String },
    /// Remove the record at this root-child ordinal (0-based, evaluated
    /// against the corpus state *within* the transaction, in op order).
    Remove { slot: usize },
}

/// What a committed maintenance transaction did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintReport {
    /// Maintenance sequence number of this commit (1-based, monotonic
    /// across compactions and restarts).
    pub seq: u64,
    /// Generation the commit published (process-local, restarts at 0).
    pub generation: u64,
    /// Records in the corpus after the commit.
    pub records: usize,
    /// Store keys the WAL transaction touched.
    pub batch_ops: usize,
    /// Records added / removed by the transaction.
    pub added: usize,
    pub removed: usize,
}

/// The single-writer state behind the writer mutex.
struct Writer {
    vfs: Arc<dyn Vfs>,
    durable: DurableKv,
    /// Independent read handle on the base `.db` file, shared by every
    /// snapshot published since the last compaction. Checkpoint renames
    /// a new file over the path, so old handles keep reading the old
    /// inode and this handle is reopened after each compaction.
    base_handle: Arc<dyn KvStore>,
    /// Current corpus document (reparsed on every commit).
    doc: Arc<Document>,
    /// Canonical record fragments — `doc`'s root children rendered back
    /// to XML. Invariant: reopening the store re-derives exactly this.
    records: Vec<String>,
    root_tag: String,
    root_attrs: Vec<(String, String)>,
    root_text: String,
    seq: u64,
    gen: u64,
}

/// A live, updatable index: a durable store plus the epoch pointer
/// readers pin snapshots from. All methods take `&self`; commits are
/// serialized by the writer mutex, reads are never blocked.
pub struct MaintIndex {
    writer: Mutex<Writer>,
    epoch: Mutex<Arc<KvBackedIndex>>,
    cache: Arc<ShardedListCache>,
}

/// A staged maintenance transaction: accumulate ops, then
/// [`MaintTxn::commit`] them as one atomic WAL transaction.
pub struct MaintTxn<'a> {
    maint: &'a MaintIndex,
    ops: Vec<MaintOp>,
}

impl MaintTxn<'_> {
    /// Stages a record append.
    pub fn add(&mut self, fragment: &str) -> &mut Self {
        self.ops.push(MaintOp::Add {
            fragment: fragment.to_string(),
        });
        self
    }

    /// Stages a record removal by root-child ordinal.
    pub fn remove(&mut self, slot: usize) -> &mut Self {
        self.ops.push(MaintOp::Remove { slot });
        self
    }

    /// Commits the staged ops atomically.
    pub fn commit(self) -> Result<MaintReport> {
        self.maint.commit(&self.ops)
    }
}

impl MaintIndex {
    /// Opens (or creates the WAL beside) a durable store at `base` for
    /// online maintenance, replaying any committed-but-uncheckpointed
    /// transactions.
    pub fn open(base: &Path) -> Result<Self> {
        Self::open_with_vfs(StdVfs::arc(), base)
    }

    /// [`Self::open`] through an explicit [`Vfs`] (fault injection,
    /// crash-recovery testing).
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, base: &Path) -> Result<Self> {
        let durable = DurableKv::open_with_vfs(Arc::clone(&vfs), base)?;
        let version = persist::read_version(&durable)?;
        let blob = durable.get(b"D/doc")?.ok_or_else(|| {
            KvError::corrupt(format!(
                "store (version {version}) has no embedded document; \
                 online maintenance needs a version 2+ store"
            ))
        })?;
        let doc = Arc::new(persist::decode_document(
            version,
            persist::decode_value(version, &blob, "D/doc")?,
        )?);
        let (records, root_tag, root_attrs, root_text) = derive_records(&doc);
        let seq = match durable.get(MAINT_KEY)? {
            Some(value) => {
                let (seq, count) = decode_maint_meta(version, &value)?;
                if count != records.len() as u64 {
                    return Err(KvError::corrupt(format!(
                        "maintenance metadata claims {count} records but the \
                         embedded document has {}",
                        records.len()
                    )));
                }
                seq
            }
            None => 0,
        };
        let db_path = base.with_extension("db");
        let base_handle: Arc<dyn KvStore> = Arc::new(DiskKv::open_with_vfs(&vfs, &db_path)?);
        let cache = Arc::new(ShardedListCache::new(
            DEFAULT_CACHE_BUDGET,
            DEFAULT_CACHE_SHARDS,
        ));
        let snap = Arc::new(StoreGen::new(
            0,
            Arc::clone(&base_handle),
            Arc::new(durable.overlay_snapshot()),
        )?);
        let reader = Arc::new(KvBackedIndex::open_snapshot_with_document(
            Arc::clone(&doc),
            snap,
            Arc::clone(&cache),
        )?);
        obs::gauge!("maint_overlay_entries").set(durable.overlay_len() as i64);
        Ok(MaintIndex {
            writer: Mutex::new(Writer {
                vfs,
                durable,
                base_handle,
                doc,
                records,
                root_tag,
                root_attrs,
                root_text,
                seq,
                gen: 0,
            }),
            epoch: Mutex::new(reader),
            cache,
        })
    }

    /// Begins a staged transaction.
    pub fn txn(&self) -> MaintTxn<'_> {
        MaintTxn {
            maint: self,
            ops: Vec::new(),
        }
    }

    /// The epoch readers currently pin. Cheap: one mutex, one
    /// `Arc` clone; the returned reader stays valid (served from its
    /// pinned snapshot) across any number of later commits.
    pub fn snapshot(&self) -> Arc<KvBackedIndex> {
        let _rank = obs::lockrank::acquire(obs::lockrank::rank::MAINT_EPOCH, "maint.epoch");
        Arc::clone(&self.epoch.lock()) // xlint::lock(maint.epoch)
    }

    /// Commits `ops` as one atomic WAL transaction and publishes the
    /// new generation. On any error the store and the published epoch
    /// are unchanged (a failed WAL append is rolled back by recovery).
    pub fn commit(&self, ops: &[MaintOp]) -> Result<MaintReport> {
        let started = Instant::now();
        let report = {
            let _rank = obs::lockrank::acquire(obs::lockrank::rank::MAINT_WRITER, "maint.writer");
            let mut w = self.writer.lock(); // xlint::lock(maint.writer)
            self.commit_locked(&mut w, ops)
        };
        match &report {
            Ok(r) => {
                obs::counter!("maint_txns_total").inc();
                obs::counter!("maint_batch_ops_total").add(r.batch_ops as u64);
                if r.added > 0 {
                    obs::counter!("maint_records_added_total").add(r.added as u64);
                }
                if r.removed > 0 {
                    obs::counter!("maint_records_removed_total").add(r.removed as u64);
                }
                obs::counter!("maint_epochs_total").inc();
                obs::histogram!("maint_commit_nanos").observe_duration(started.elapsed());
            }
            Err(_) => {
                obs::counter!("maint_txn_failures_total").inc();
            }
        }
        report
    }

    fn commit_locked(&self, w: &mut Writer, ops: &[MaintOp]) -> Result<MaintReport> {
        // 1. Apply the ops to a working copy of the record list.
        let mut records = w.records.clone();
        let (mut added, mut removed) = (0usize, 0usize);
        for op in ops {
            match op {
                MaintOp::Add { fragment } => {
                    let frag_doc = parse_document(fragment).map_err(|e| {
                        KvError::corrupt(format!("maintenance fragment does not parse: {e}"))
                    })?;
                    records.push(frag_doc.to_xml());
                    added += 1;
                }
                MaintOp::Remove { slot } => {
                    if *slot >= records.len() {
                        return Err(KvError::corrupt(format!(
                            "maintenance remove slot {slot} out of range \
                             ({} records at that point in the transaction)",
                            records.len()
                        )));
                    }
                    records.remove(*slot);
                    removed += 1;
                }
            }
        }

        // 2. Rebuild the post-transaction index in memory.
        let xml = compose_corpus(&w.root_tag, &w.root_attrs, &w.root_text, &records);
        let doc =
            Arc::new(parse_document(&xml).map_err(|e| {
                KvError::corrupt(format!("reconstructed corpus does not parse: {e}"))
            })?);
        let built = Index::build(Arc::clone(&doc));
        // Preserve the store's format version: incremental updates to a
        // v3 store must stay byte-identical to a v3 scratch build, and
        // likewise for v4 (see tests/maint_differential.rs).
        let version = persist::read_version(&w.durable)?;
        let mut target = MemKv::new();
        persist::persist_versioned(&built, &mut target, version)?;
        let seq = w.seq + 1;
        // Re-derive the canonical records from the parsed corpus so the
        // in-memory list always matches what a reopen would derive.
        let (canonical, root_tag, root_attrs, root_text) = derive_records(&doc);
        target.put(
            MAINT_KEY,
            &encode_maint_meta(version, seq, canonical.len() as u64),
        )?;

        // 3. Diff against the live store; ship only the delta.
        let batch = diff_stores(&w.durable, &target)?;
        let changed_lists = changed_list_ids(&batch);
        w.durable.apply_batch(&batch)?;

        // 4. Commit the in-memory state and publish the new epoch.
        w.records = canonical;
        w.root_tag = root_tag;
        w.root_attrs = root_attrs;
        w.root_text = root_text;
        w.doc = Arc::clone(&doc);
        w.seq = seq;
        self.publish(w, &changed_lists)?;
        obs::gauge!("maint_overlay_entries").set(w.durable.overlay_len() as i64);
        Ok(MaintReport {
            seq,
            generation: w.gen,
            records: w.records.len(),
            batch_ops: batch.len(),
            added,
            removed,
        })
    }

    /// Bumps the generation, invalidates the changed posting lists, and
    /// swaps the epoch pointer to a reader over the new snapshot.
    /// Ordering matters: the generation bump is published to the cache
    /// *before* invalidation, so a stale reader that races the sweep
    /// cannot re-seed an entry we just dropped (its insert carries the
    /// old generation and is refused under the shard mutex).
    fn publish(&self, w: &mut Writer, changed_lists: &[u32]) -> Result<()> {
        w.gen += 1;
        self.cache.set_current_gen(w.gen);
        for &id in changed_lists {
            self.cache.invalidate(id);
        }
        let snap = Arc::new(StoreGen::new(
            w.gen,
            Arc::clone(&w.base_handle),
            Arc::new(w.durable.overlay_snapshot()),
        )?);
        let reader = Arc::new(KvBackedIndex::open_snapshot_with_document(
            Arc::clone(&w.doc),
            snap,
            Arc::clone(&self.cache),
        )?);
        let _rank = obs::lockrank::acquire(obs::lockrank::rank::MAINT_EPOCH, "maint.epoch");
        *self.epoch.lock() = reader; // xlint::lock(maint.epoch)
        Ok(())
    }

    /// Folds the WAL overlay into the base store and publishes the
    /// compacted state as a new generation (no cache invalidation: the
    /// merged bytes are identical). Returns whether anything was folded.
    pub fn compact(&self) -> Result<bool> {
        let _rank = obs::lockrank::acquire(obs::lockrank::rank::MAINT_WRITER, "maint.writer");
        let mut w = self.writer.lock(); // xlint::lock(maint.writer)
        if w.durable.overlay_len() == 0 {
            return Ok(false);
        }
        w.durable.checkpoint()?;
        // The checkpoint renamed a fresh tree over the `.db` path; prior
        // snapshots keep reading the old inode through their pinned
        // handle, new snapshots need a handle on the new file.
        let db_path = w.durable.base_path().with_extension("db");
        w.base_handle = Arc::new(DiskKv::open_with_vfs(&w.vfs, &db_path)?);
        self.publish(&mut w, &[])?;
        obs::counter!("maint_compactions_total").inc();
        obs::counter!("maint_epochs_total").inc();
        obs::gauge!("maint_overlay_entries").set(0);
        Ok(true)
    }

    /// Compacts once the overlay holds at least `threshold` entries.
    pub fn compact_if_needed(&self, threshold: usize) -> Result<bool> {
        if threshold == 0 || self.overlay_len() >= threshold {
            self.compact()
        } else {
            Ok(false)
        }
    }

    /// Committed maintenance transactions so far (monotonic across
    /// compactions and restarts).
    pub fn seq(&self) -> u64 {
        let _rank = obs::lockrank::acquire(obs::lockrank::rank::MAINT_WRITER, "maint.writer");
        self.writer.lock().seq // xlint::lock(maint.writer)
    }

    /// Records currently in the corpus.
    pub fn record_count(&self) -> usize {
        let _rank = obs::lockrank::acquire(obs::lockrank::rank::MAINT_WRITER, "maint.writer");
        self.writer.lock().records.len() // xlint::lock(maint.writer)
    }

    /// Canonical record fragments, in slot order.
    pub fn records(&self) -> Vec<String> {
        let _rank = obs::lockrank::acquire(obs::lockrank::rank::MAINT_WRITER, "maint.writer");
        self.writer.lock().records.clone() // xlint::lock(maint.writer)
    }

    /// The full corpus as one XML document (what a from-scratch build
    /// of the current state would ingest).
    pub fn full_xml(&self) -> String {
        let _rank = obs::lockrank::acquire(obs::lockrank::rank::MAINT_WRITER, "maint.writer");
        let w = self.writer.lock(); // xlint::lock(maint.writer)
        compose_corpus(&w.root_tag, &w.root_attrs, &w.root_text, &w.records)
    }

    /// Entries (puts and deletes) accumulated in the WAL overlay since
    /// the last compaction.
    pub fn overlay_len(&self) -> usize {
        let _rank = obs::lockrank::acquire(obs::lockrank::rank::MAINT_WRITER, "maint.writer");
        self.writer.lock().durable.overlay_len() // xlint::lock(maint.writer)
    }

    /// The shared list cache (one instance across all epochs).
    pub fn cache(&self) -> &Arc<ShardedListCache> {
        &self.cache
    }
}

/// Renders `doc`'s root children back to canonical XML fragments,
/// returning them with the root element's tag, attributes and direct
/// text (everything needed to recompose the corpus).
fn derive_records(doc: &Document) -> (Vec<String>, String, Vec<(String, String)>, String) {
    let root = doc.root();
    let node = doc.node(root);
    let records: Vec<String> = node
        .children
        .iter()
        .map(|&c: &NodeId| doc.subtree_to_xml(c))
        .collect();
    (
        records,
        doc.tag_name(root).to_string(),
        node.attributes.clone(),
        node.text.clone(),
    )
}

/// Recomposes the corpus document from its root envelope and records.
fn compose_corpus(
    root_tag: &str,
    root_attrs: &[(String, String)],
    root_text: &str,
    records: &[String],
) -> String {
    let mut xml = String::with_capacity(64 + records.iter().map(String::len).sum::<usize>());
    xml.push('<');
    xml.push_str(root_tag);
    for (k, v) in root_attrs {
        xml.push(' ');
        xml.push_str(k);
        xml.push_str("=\"");
        xmldom::tree::escape_into(v, &mut xml);
        xml.push('"');
    }
    xml.push('>');
    if !root_text.is_empty() {
        xml.push('\n');
        xmldom::tree::escape_into(root_text, &mut xml);
    }
    xml.push('\n');
    for r in records {
        xml.push_str(r);
    }
    xml.push_str("</");
    xml.push_str(root_tag);
    xml.push('>');
    xml
}

/// Minimal batch turning the live store's contents into `target`'s.
fn diff_stores(live: &dyn KvStore, target: &dyn KvStore) -> Result<Vec<BatchOp>> {
    let mut ops = Vec::new();
    let current: BTreeMap<Vec<u8>, Vec<u8>> = live.scan_range(b"", None)?.into_iter().collect();
    let desired: BTreeMap<Vec<u8>, Vec<u8>> = target.scan_range(b"", None)?.into_iter().collect();
    for (key, value) in &desired {
        if current.get(key) != Some(value) {
            ops.push(BatchOp::Put(key.clone(), value.clone()));
        }
    }
    for key in current.keys() {
        if !desired.contains_key(key) {
            ops.push(BatchOp::Delete(key.clone()));
        }
    }
    Ok(ops)
}

/// Keyword ids of the posting lists a batch touches (the entries the
/// cache must drop at publish).
fn changed_list_ids(batch: &[BatchOp]) -> Vec<u32> {
    let mut ids = Vec::new();
    for op in batch {
        let key = match op {
            BatchOp::Put(k, _) => k,
            BatchOp::Delete(k) => k,
        };
        if key.starts_with(b"L/") {
            if let Some(raw) = key.get(2..6) {
                if let Ok(be) = <[u8; 4]>::try_from(raw) {
                    ids.push(u32::from_be_bytes(be));
                }
            }
        }
    }
    ids
}

/// `M/maint` value: persist-framed `varint(seq) ‖ varint(record_count)`.
fn encode_maint_meta(version: u64, seq: u64, records: u64) -> Vec<u8> {
    let mut payload = Vec::with_capacity(8);
    write_varint(&mut payload, seq);
    write_varint(&mut payload, records);
    persist::encode_value(version, payload)
}

/// Decodes an `M/maint` value into (seq, record_count). Public to the
/// crate so the CLI `scrub` path can report maintenance state.
pub fn decode_maint_meta(version: u64, value: &[u8]) -> Result<(u64, u64)> {
    let raw = persist::decode_value(version, value, "M/maint")?;
    let mut pos = 0;
    let seq = read_varint(raw, &mut pos)
        .ok_or_else(|| KvError::corrupt("M/maint: bad sequence varint"))?;
    let records = read_varint(raw, &mut pos)
        .ok_or_else(|| KvError::corrupt("M/maint: bad record-count varint"))?;
    if pos != raw.len() {
        return Err(KvError::corrupt("M/maint: trailing bytes"));
    }
    Ok((seq, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::IndexReader;
    use crate::stream::build_streaming;
    use kvstore::{FaultVfs, MemTreeKv};
    use std::path::PathBuf;

    const CORPUS: &str = "<bib>\
        <paper><title>xml keyword search</title><year>2003</year></paper>\
        <paper><title>query refinement</title><year>2009</year></paper>\
        </bib>";

    /// Builds a version-2 store for CORPUS at `base` (vfs-backed).
    fn seed_store(vfs: &Arc<dyn Vfs>, base: &Path) -> PathBuf {
        let built = build_streaming(CORPUS, 1).unwrap();
        let db = base.with_extension("db");
        let mut disk = DiskKv::open_with_vfs(vfs, &db).unwrap();
        persist::persist(&built, &mut disk).unwrap();
        disk.sync().unwrap();
        base.to_path_buf()
    }

    fn fresh() -> (FaultVfs, PathBuf) {
        let vfs = FaultVfs::new();
        let base = PathBuf::from("/maint/store.db");
        seed_store(&vfs.as_dyn(), &base);
        (vfs, base)
    }

    #[test]
    fn add_and_remove_round_trip_through_commits() {
        let (vfs, base) = fresh();
        let maint = MaintIndex::open_with_vfs(vfs.as_dyn(), &base).unwrap();
        assert_eq!(maint.record_count(), 2);
        assert_eq!(maint.seq(), 0);

        let mut txn = maint.txn();
        txn.add("<paper><title>stack algorithms</title></paper>");
        let r = txn.commit().unwrap();
        assert_eq!((r.seq, r.records, r.added, r.removed), (1, 3, 1, 0));
        assert!(r.batch_ops > 0);

        let snap = maint.snapshot();
        assert!(!snap.list_handle("stack").unwrap().is_empty());
        assert_eq!(snap.generation(), 1);

        let mut txn = maint.txn();
        txn.remove(2);
        let r = txn.commit().unwrap();
        assert_eq!((r.seq, r.records, r.removed), (2, 2, 1));
        let snap = maint.snapshot();
        assert!(snap.list_handle("stack").unwrap().is_empty());
    }

    #[test]
    fn committed_store_is_byte_identical_to_a_fresh_build() {
        let (vfs, base) = fresh();
        let maint = MaintIndex::open_with_vfs(vfs.as_dyn(), &base).unwrap();
        let mut txn = maint.txn();
        txn.add("<paper><title>stack algorithms</title><year>2004</year></paper>");
        txn.remove(0);
        txn.commit().unwrap();

        let final_xml = maint.full_xml();
        let rebuilt = build_streaming(&final_xml, 1).unwrap();
        let mut scratch = MemTreeKv::new().unwrap();
        persist::persist(&rebuilt, &mut scratch).unwrap();

        let reopened = DurableKv::open_with_vfs(vfs.as_dyn(), &base).unwrap();
        let mut live: BTreeMap<Vec<u8>, Vec<u8>> = reopened
            .scan_range(b"", None)
            .unwrap()
            .into_iter()
            .collect();
        assert!(live.remove(MAINT_KEY).is_some());
        let fresh: BTreeMap<Vec<u8>, Vec<u8>> =
            scratch.scan_range(b"", None).unwrap().into_iter().collect();
        assert_eq!(live, fresh, "maintained store diverged from rebuild");
    }

    #[test]
    fn old_snapshot_keeps_answering_across_commits_and_compaction() {
        let (vfs, base) = fresh();
        let maint = MaintIndex::open_with_vfs(vfs.as_dyn(), &base).unwrap();
        let old = maint.snapshot();
        let old_refinement = old.list_handle("refinement").unwrap().len();
        assert!(old_refinement > 0);

        let mut txn = maint.txn();
        txn.remove(1); // drops the "query refinement" paper
        txn.commit().unwrap();
        assert!(maint.compact().unwrap());

        // New epoch: the keyword is gone.
        let new = maint.snapshot();
        assert!(new.list_handle("refinement").unwrap().is_empty());
        // Old epoch: still pinned to its generation, still answering.
        assert_eq!(old.list_handle("refinement").unwrap().len(), old_refinement);
    }

    #[test]
    fn reopen_after_commits_restores_seq_and_records() {
        let (vfs, base) = fresh();
        {
            let maint = MaintIndex::open_with_vfs(vfs.as_dyn(), &base).unwrap();
            let mut txn = maint.txn();
            txn.add("<paper><title>third</title></paper>");
            txn.commit().unwrap();
        }
        let maint = MaintIndex::open_with_vfs(vfs.as_dyn(), &base).unwrap();
        assert_eq!(maint.seq(), 1);
        assert_eq!(maint.record_count(), 3);
        // seq survives a compaction + reopen too.
        assert!(maint.compact().unwrap());
        drop(maint);
        let maint = MaintIndex::open_with_vfs(vfs.as_dyn(), &base).unwrap();
        assert_eq!(maint.seq(), 1);
        assert_eq!(maint.record_count(), 3);
        assert_eq!(maint.overlay_len(), 0, "compaction folded the overlay");
    }

    #[test]
    fn failed_ops_leave_store_and_epoch_untouched() {
        let (vfs, base) = fresh();
        let maint = MaintIndex::open_with_vfs(vfs.as_dyn(), &base).unwrap();
        let before = maint.snapshot();
        let mut txn = maint.txn();
        txn.add("<unclosed>");
        assert!(txn.commit().is_err());
        let mut txn = maint.txn();
        txn.remove(7);
        assert!(txn.commit().is_err());
        assert_eq!(maint.seq(), 0);
        assert!(Arc::ptr_eq(&before, &maint.snapshot()));
    }

    #[test]
    fn maint_meta_codec_round_trips_and_rejects_garbage() {
        let v = persist::FORMAT_VERSION;
        let enc = encode_maint_meta(v, 42, 7);
        assert_eq!(decode_maint_meta(v, &enc).unwrap(), (42, 7));
        let mut bad = enc.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        assert!(decode_maint_meta(v, &bad).is_err());
    }
}

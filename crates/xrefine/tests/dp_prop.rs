//! Property tests for the §V dynamic program: optimality against the
//! brute-force enumerator (Lemma 2) under random queries, rule sets and
//! availability.

use lexicon::{RefineOp, Rule, RuleSet, RuleSource};
use proptest::prelude::*;
use std::collections::HashSet;
use xrefine::{brute_force_rqs, get_top_optimal_rqs, Query};

/// A compact universe so rules/availability collide frequently.
const UNIVERSE: [&str; 8] = ["a", "b", "c", "d", "e", "f", "g", "h"];

fn word() -> impl Strategy<Value = String> {
    (0..UNIVERSE.len()).prop_map(|i| UNIVERSE[i].to_string())
}

#[derive(Debug, Clone)]
struct RuleSpec {
    lhs: Vec<String>,
    rhs: Vec<String>,
    ds: f64,
}

fn rule_strategy() -> impl Strategy<Value = RuleSpec> {
    (
        proptest::collection::vec(word(), 1..3),
        proptest::collection::vec(word(), 1..3),
        1u32..4,
    )
        .prop_map(|(lhs, rhs, ds)| RuleSpec {
            lhs,
            rhs,
            ds: ds as f64 * 0.5,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dp_optimum_equals_brute_force(
        query in proptest::collection::vec(word(), 1..5),
        rule_specs in proptest::collection::vec(rule_strategy(), 0..6),
        available in proptest::collection::btree_set(word(), 0..6),
    ) {
        let q = Query::from_keywords(query);
        let mut rules = RuleSet::new();
        for spec in &rule_specs {
            let lhs: Vec<&str> = spec.lhs.iter().map(|s| s.as_str()).collect();
            let rhs: Vec<&str> = spec.rhs.iter().map(|s| s.as_str()).collect();
            rules.add(Rule::new(&lhs, &rhs, RefineOp::Substitute, RuleSource::Manual, spec.ds));
        }
        let avail_set: HashSet<String> = available.into_iter().collect();
        let avail = |w: &str| avail_set.contains(w);

        let dp = get_top_optimal_rqs(&q, &avail, &rules, 8);
        let bf = brute_force_rqs(&q, &avail, &rules);

        match (dp.candidates.first(), bf.first()) {
            (Some(d), Some(b)) => {
                // Lemma 2(2): the DP's best has the minimum dissimilarity.
                prop_assert_eq!(d.dissimilarity, b.dissimilarity,
                    "dp={:?} bf={:?}", dp.candidates, bf);
                // Lemma 2(1): the optimal RQ only uses available keywords.
                for w in &d.keywords {
                    prop_assert!(avail(w), "{w} unavailable in {:?}", d);
                }
            }
            (None, None) => {}
            (d, b) => prop_assert!(false, "existence mismatch: dp={d:?} bf={b:?}"),
        }

        // every reported candidate carries its true minimal cost and is a
        // subset of T
        for c in &dp.candidates {
            for w in &c.keywords {
                prop_assert!(avail(w));
            }
            if let Some(reference) = bf.iter().find(|b| b.keywords == c.keywords) {
                prop_assert_eq!(c.dissimilarity, reference.dissimilarity);
            } else {
                prop_assert!(false, "DP invented candidate {c:?}");
            }
        }

        // prefix costs are monotone in the sense that C[0] = 0 and each
        // step adds at most the deletion cost
        prop_assert_eq!(dp.prefix_costs[0], 0.0);
        for w in dp.prefix_costs.windows(2) {
            prop_assert!(w[1] <= w[0] + rules.deletion_cost() + 1e-9);
        }
    }

    #[test]
    fn dp_is_insensitive_to_keyword_order_for_the_optimum(
        mut query in proptest::collection::vec(word(), 1..5),
        available in proptest::collection::btree_set(word(), 1..6),
    ) {
        // With no rules (deletion/keep only), the optimal dissimilarity is
        // permutation-invariant (the paper notes getOptimalRQ is
        // insensitive to keyword order).
        let rules = RuleSet::new();
        let avail_set: HashSet<String> = available.into_iter().collect();
        let avail = |w: &str| avail_set.contains(w);
        let a = get_top_optimal_rqs(&Query::from_keywords(query.clone()), &avail, &rules, 1);
        query.reverse();
        let b = get_top_optimal_rqs(&Query::from_keywords(query), &avail, &rules, 1);
        match (a.candidates.first(), b.candidates.first()) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x.dissimilarity, y.dissimilarity);
                prop_assert_eq!(&x.keywords, &y.keywords);
            }
            (None, None) => {}
            other => prop_assert!(false, "{other:?}"),
        }
    }
}

//! Integration invariants of the metrics registry and the tracer: bucket
//! monotonicity, merge/sum agreement, delta attribution, and span-tree
//! well-nestedness under thread pressure. These use private `Registry`
//! instances and never flip the process-global kill switch, so they are
//! safe to run in parallel.

use obs::metrics::{bucket_bound, bucket_index, BUCKET_COUNT};
use obs::{Histogram, HistogramSnapshot, Registry};

/// The deterministic per-thread sample stream used by the concurrency
/// tests (a splitmix-style scramble, spread across bucket magnitudes).
fn sample(tid: u64, i: u64) -> u64 {
    let mut z = (tid << 32).wrapping_add(i).wrapping_mul(0x9e3779b97f4a7c15);
    z ^= z >> 31;
    // Spread over magnitudes so every run touches many buckets.
    z >> (i % 60)
}

#[test]
fn histogram_buckets_are_monotone_and_account_for_every_observe() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = Histogram::default();
    let mut expected_sum = 0u64;
    for t in 0..THREADS {
        for i in 0..PER_THREAD {
            // fetch_add wraps, so the oracle wraps identically
            expected_sum = expected_sum.wrapping_add(sample(t, i));
        }
    }
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = &h;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    h.observe(sample(t, i));
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.buckets.len(), BUCKET_COUNT);
    // Cumulative counts are non-decreasing by construction; the real
    // invariant is that the buckets account for exactly every observe.
    let total: u64 = snap.buckets.iter().sum();
    assert_eq!(total, snap.count);
    let mut cum = 0u64;
    for (i, &b) in snap.buckets.iter().enumerate() {
        let prev = cum;
        cum += b;
        assert!(cum >= prev, "cumulative count decreased at bucket {i}");
    }
    assert_eq!(cum, snap.count);
}

#[test]
fn every_bucket_holds_only_values_in_its_range() {
    let h = Histogram::default();
    let values = [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX];
    for &v in &values {
        h.observe(v);
    }
    let snap = h.snapshot();
    for &v in &values {
        let i = bucket_index(v);
        assert!(v <= bucket_bound(i), "value {v} above bound of bucket {i}");
        if i > 0 {
            assert!(
                v > bucket_bound(i - 1),
                "value {v} also fits bucket {}",
                i - 1
            );
        }
        assert!(snap.buckets[i] > 0, "bucket {i} empty despite value {v}");
    }
}

#[test]
fn merged_snapshot_equals_the_snapshot_of_all_traffic() {
    const SHARDS: u64 = 8;
    const PER_SHARD: u64 = 2_000;
    // The same stream observed (a) sharded into 8 histograms and (b)
    // into one histogram; merging the shard snapshots must reproduce
    // the monolithic snapshot field for field.
    let shards: Vec<Histogram> = (0..SHARDS).map(|_| Histogram::default()).collect();
    let all = Histogram::default();
    for t in 0..SHARDS {
        for i in 0..PER_SHARD {
            let v = sample(t, i);
            shards[t as usize].observe(v);
            all.observe(v);
        }
    }
    let mut merged = HistogramSnapshot::empty();
    for s in &shards {
        merged.merge(&s.snapshot());
    }
    assert_eq!(merged, all.snapshot());
    // Quantiles of the merged histogram are the monolithic quantiles.
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(merged.quantile(q), all.snapshot().quantile(q), "q={q}");
    }
}

#[test]
fn registry_snapshot_delta_attributes_only_new_traffic() {
    let r = Registry::new();
    r.counter("reqs_total").add(5);
    r.gauge("level").set(11);
    r.histogram("lat").observe(100);
    let base = r.snapshot();

    r.counter("reqs_total").add(2);
    r.counter("fresh_total").add(1);
    r.gauge("level").set(7);
    r.histogram("lat").observe(100_000);
    let delta = r.snapshot().delta_since(&base);

    assert_eq!(delta.counters["reqs_total"], 2);
    assert_eq!(delta.counters["fresh_total"], 1);
    // Gauges are levels, not rates: the delta keeps the current value.
    assert_eq!(delta.gauges["level"], 7);
    assert_eq!(delta.histograms["lat"].count, 1);
    assert_eq!(delta.histograms["lat"].sum, 100_000);
}

#[test]
fn concurrent_registration_yields_one_counter_per_name() {
    const THREADS: usize = 8;
    const NAMES: usize = 32;
    let r = Registry::new();
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let r = &r;
            s.spawn(move || {
                for n in 0..NAMES {
                    r.counter(&format!("c{n}")).inc();
                }
            });
        }
    });
    let snap = r.snapshot();
    assert_eq!(snap.counters.len(), NAMES);
    for n in 0..NAMES {
        assert_eq!(snap.counters[&format!("c{n}")], THREADS as u64);
    }
}

#[test]
fn traces_are_well_nested_and_thread_isolated_under_the_8_thread_hammer() {
    const THREADS: usize = 8;
    const CAPTURES: usize = 200;
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            s.spawn(move || {
                for i in 0..CAPTURES {
                    let depth = i % 5;
                    let ((), trace) = obs::trace::capture("root", || {
                        let _a = obs::trace::span(if tid % 2 == 0 { "even" } else { "odd" });
                        obs::trace::count("work", (i + 1) as u64);
                        for _ in 0..depth {
                            let _b = obs::trace::span("inner");
                            obs::trace::event("tick", &[("tid", &tid)]);
                        }
                    });
                    assert!(
                        trace.is_well_nested(),
                        "thread {tid} capture {i} not well nested"
                    );
                    // The tracer is thread-local: only this thread's spans
                    // appear, under this thread's parity name.
                    let other = if tid % 2 == 0 { "odd" } else { "even" };
                    assert!(trace.find(other).is_none(), "cross-thread span leaked");
                    let own = trace
                        .find(if tid % 2 == 0 { "even" } else { "odd" })
                        .expect("own span present");
                    assert_eq!(own.counts.get("work"), Some(&((i + 1) as u64)));
                }
            });
        }
    });
}

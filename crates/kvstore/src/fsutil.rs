//! Filesystem durability helpers shared by the WAL and the pager.

use crate::error::Result;
use std::path::Path;

/// Fsyncs the directory containing `path`.
///
/// Creating, truncating or renaming a file only becomes durable once the
/// *directory* entry is flushed; fsyncing the file alone is not enough. A
/// crash between file creation and the directory fsync can lose the file
/// entirely, which for a WAL means silently losing every record in it.
/// Callers invoke this after creating a log/store file and after
/// checkpoint truncation.
pub(crate) fn sync_parent_dir(path: &Path) -> Result<()> {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        std::fs::File::open(parent)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        // Directories cannot be opened/fsynced portably elsewhere; the
        // file-level syncs remain in place.
        let _ = path;
    }
    Ok(())
}

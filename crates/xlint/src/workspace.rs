//! Workspace discovery: find the `.rs` files to lint, classify them as
//! production or test code, and load the config (lock hierarchy +
//! DESIGN.md catalogue) from the tree being linted.

use crate::config::{self, Config};
use crate::diag::Finding;
use crate::model::WorkspaceModel;
use crate::rules::unsafe_audit;
use crate::source::{FileKind, SourceFile};
use std::fs;
use std::path::{Path, PathBuf};

/// Markers fencing the generated inventory section in SAFETY.md.
const SAFETY_BEGIN: &str = "<!-- xlint:safety:begin -->";
const SAFETY_END: &str = "<!-- xlint:safety:end -->";

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// The workspace root, resolved from this crate's manifest dir
/// (`crates/xlint` → two levels up).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// Every `.rs` file under `root`, as `(workspace-relative path, kind)`.
/// Files under `tests/`, `benches/` or `examples/` are [`FileKind::Test`];
/// xlint's own golden fixtures are excluded (they contain violations on
/// purpose).
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<(PathBuf, FileKind)>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<(PathBuf, FileKind)>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if name == "fixtures" && dir.ends_with("crates/xlint/tests") {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            let kind = if rel_str.contains("/tests/")
                || rel_str.contains("/benches/")
                || rel_str.contains("/examples/")
                || rel_str.starts_with("tests/")
            {
                FileKind::Test
            } else {
                FileKind::Production
            };
            files.push((rel, kind));
        }
    }
    Ok(())
}

/// Loads the full workspace config: path-scope policy from
/// [`Config::workspace_defaults`], the lock hierarchy from
/// `crates/xlint/lockorder.toml`, and the metric catalogue from
/// `DESIGN.md`.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let mut cfg = Config::workspace_defaults();
    let lockorder_path = root.join("crates/xlint/lockorder.toml");
    let lockorder = fs::read_to_string(&lockorder_path)
        .map_err(|e| format!("cannot read {}: {e}", lockorder_path.display()))?;
    cfg.lock_ranks = config::parse_lockorder(&lockorder)?;
    let design_path = root.join("DESIGN.md");
    let design = fs::read_to_string(&design_path)
        .map_err(|e| format!("cannot read {}: {e}", design_path.display()))?;
    cfg.catalogue = config::parse_catalogue(&design)?;
    cfg.protocol = config::parse_protocol(&design)?;
    Ok(cfg)
}

/// Parses every source file in the workspace into the per-file model.
fn parse_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let files = collect_rs_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut parsed = Vec::new();
    for (rel, kind) in files {
        let text = fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("cannot read {}: {e}", rel.display()))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        parsed.push(SourceFile::parse(&rel_str, &text, kind));
    }
    Ok(parsed)
}

/// Lints every source file in the workspace: per-file rules first, then
/// the graph rules over the whole-workspace model, then the SAFETY.md
/// inventory staleness check. Findings come back sorted.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let config = load_config(root)?;
    let parsed = parse_workspace(root)?;
    let mut findings = Vec::new();
    for file in &parsed {
        findings.extend(crate::rules::run_all(file, &config));
    }
    let model = WorkspaceModel::build(&parsed);
    crate::rules::run_workspace(&model, &config, &mut findings);
    if let Some(f) = safety_md_finding(root, &parsed) {
        findings.push(f);
    }
    crate::diag::sort_findings(&mut findings);
    Ok(findings)
}

/// Checks that SAFETY.md's generated section matches the live `unsafe`
/// inventory; `None` when current.
fn safety_md_finding(root: &Path, parsed: &[SourceFile]) -> Option<Finding> {
    let want = unsafe_audit::render_inventory(&unsafe_audit::inventory(parsed));
    let stale = |msg: String| {
        Some(Finding {
            rule: unsafe_audit::RULE,
            path: "SAFETY.md".into(),
            line: 1,
            col: 1,
            message: msg,
            help: "run `cargo run -p xlint -- --write-safety` to regenerate".into(),
        })
    };
    let text = match fs::read_to_string(root.join("SAFETY.md")) {
        Ok(t) => t,
        Err(_) => return stale("SAFETY.md is missing".into()),
    };
    let (Some(begin), Some(end)) = (text.find(SAFETY_BEGIN), text.find(SAFETY_END)) else {
        return stale("SAFETY.md is missing its xlint:safety markers".into());
    };
    if end < begin {
        return stale("SAFETY.md safety markers are out of order".into());
    }
    let current = text[begin + SAFETY_BEGIN.len()..end].trim();
    if current != want.trim() {
        return stale("SAFETY.md inventory is out of date with the live `unsafe` sites".into());
    }
    None
}

/// Regenerates the SAFETY.md inventory section in place (creating the
/// file with a preamble if absent).
pub fn write_safety(root: &Path) -> Result<(), String> {
    let parsed = parse_workspace(root)?;
    let body = unsafe_audit::render_inventory(&unsafe_audit::inventory(&parsed));
    let path = root.join("SAFETY.md");
    let existing = fs::read_to_string(&path).unwrap_or_else(|_| {
        format!(
            "# Unsafe inventory\n\n\
             Every production `unsafe` in this workspace carries a\n\
             `// xlint::safety(<invariant>)` annotation (rule `unsafe-audit`), and the\n\
             table below is generated from those annotations. Regenerate with\n\
             `cargo run -p xlint -- --write-safety`; `--workspace` fails when it drifts.\n\n\
             {SAFETY_BEGIN}\n{SAFETY_END}\n"
        )
    });
    let (Some(begin), Some(end)) = (existing.find(SAFETY_BEGIN), existing.find(SAFETY_END)) else {
        return Err("SAFETY.md exists but lacks the xlint:safety markers".into());
    };
    if end < begin {
        return Err("SAFETY.md safety markers are out of order".into());
    }
    let updated = format!(
        "{}\n{}\n{}",
        &existing[..begin + SAFETY_BEGIN.len()],
        body.trim_end(),
        &existing[end..]
    );
    fs::write(&path, updated).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

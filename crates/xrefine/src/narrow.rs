//! Narrowing refinement — the paper's stated future work (§IX): "how to
//! refine a query which has *too many* matching results over XML data".
//!
//! This is the mirror image of the main system: the query is fine but
//! under-constrained, so instead of deleting/substituting keywords we
//! *add* one. Candidate keywords are harvested from the query's own
//! meaningful result subtrees (so every suggestion is guaranteed to have
//! matching results), scored by the same keyword-dependence machinery the
//! ranking model uses (Formula 7's association confidence), and filtered
//! to suggestions that actually shrink the result set below the caller's
//! threshold.

use crate::query::{Query, RqCandidate};
use crate::results::Refinement;
use invindex::{IndexReader, ListHandle};
use slca::{slca_scan_eager, MeaningfulFilter, SearchForConfig};
use std::collections::HashMap;
use xmldom::tokenize;

/// Options for narrowing refinement.
#[derive(Debug, Clone)]
pub struct NarrowOptions {
    /// How many suggestions to return.
    pub k: usize,
    /// A query "has too many results" above this count.
    pub max_results: usize,
    /// Cap on how many result subtrees are mined for candidate keywords.
    pub sample_subtrees: usize,
    pub search_for: SearchForConfig,
}

impl Default for NarrowOptions {
    fn default() -> Self {
        NarrowOptions {
            k: 3,
            max_results: 10,
            sample_subtrees: 64,
            search_for: SearchForConfig::default(),
        }
    }
}

/// One narrowing suggestion: the query plus one keyword.
#[derive(Debug, Clone)]
pub struct Narrowing {
    /// The keyword added to the original query.
    pub added: String,
    /// The narrowed query with its results.
    pub refinement: Refinement,
    /// Result count of the *original* query (context for the caller).
    pub original_results: usize,
}

/// Attempts to narrow `query`. Returns `Ok(None)` when the query does
/// not have "too many" meaningful results (nothing to do),
/// `Ok(Some(vec![]))` when it does but no single added keyword brings it
/// under the threshold. Storage errors from a kv-backed reader surface
/// as `Err`.
pub fn narrow_refine(
    index: &dyn IndexReader,
    query: &Query,
    options: &NarrowOptions,
) -> kvstore::Result<Option<Vec<Narrowing>>> {
    let ids: Vec<invindex::KeywordId> = query
        .keywords()
        .iter()
        .filter_map(|k| index.vocabulary().get(k))
        .collect();
    if ids.len() != query.keywords().len() || ids.is_empty() {
        return Ok(None); // broken queries are the main system's job
    }
    let filter = MeaningfulFilter::infer(index, &ids, &options.search_for);

    let lists: Vec<ListHandle> = query
        .keywords()
        .iter()
        .map(|k| index.list_handle(k))
        .collect::<kvstore::Result<_>>()?;
    let slcas = filter.filter(slca_scan_eager(&lists));
    if slcas.len() <= options.max_results {
        return Ok(None);
    }

    // Mine candidate keywords from a sample of the result subtrees. Each
    // SLCA is lifted to its enclosing *search-for entity* (the highest
    // ancestor-or-self of a candidate search-for type): users constrain
    // entities, not minimal text nodes.
    let doc = index.document();
    let mut containing: HashMap<String, usize> = HashMap::new();
    let sampled = slcas.len().min(options.sample_subtrees);
    for dewey in slcas.iter().take(sampled) {
        let Some(mut node) = doc.node_by_dewey(dewey) else {
            continue;
        };
        let mut cur = node;
        loop {
            if filter.candidates().contains(&doc.node(cur).node_type) {
                node = cur;
            }
            match doc.node(cur).parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        let mut seen: std::collections::HashSet<String> = Default::default();
        for id in doc.descendants_or_self(node) {
            for t in tokenize(doc.tag_name(id)) {
                seen.insert(t);
            }
            for t in tokenize(&doc.node(id).text) {
                seen.insert(t);
            }
        }
        for t in seen {
            *containing.entry(t).or_insert(0) += 1;
        }
    }

    // Score candidates: dependence with the query keywords (Formula 7
    // reused) weighted toward keywords that split the result set well.
    let top_type = filter.candidates().first().copied();
    let mut scored: Vec<(String, f64)> = containing
        .into_iter()
        .filter(|(t, n)| {
            // appears in several but not all sampled subtrees: singletons
            // (page numbers, ids) over-narrow, universals don't narrow
            *n >= 2 && *n < sampled && !query.keywords().contains(t)
        })
        .map(|(t, n)| {
            let dep = match (top_type, index.vocabulary().get(&t)) {
                (Some(ty), Some(kid)) => {
                    let mut total = 0.0;
                    for &qi in &ids {
                        let denom = index.stats().df(ty, qi);
                        if denom > 0 {
                            total += index.co_occur(ty, qi, kid) as f64 / denom as f64;
                        }
                    }
                    total / ids.len() as f64
                }
                _ => 0.0,
            };
            let fraction = n as f64 / sampled as f64;
            // favour balanced splits: a keyword in ~half the results cuts
            // the set decisively without starving it
            let balance = fraction * (1.0 - fraction) * 4.0;
            (t, dep * 0.5 + balance)
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

    let mut out = Vec::new();
    for (keyword, score) in scored {
        if out.len() >= options.k {
            break;
        }
        let extra = index.list_handle(&keyword)?;
        if extra.is_empty() {
            continue;
        }
        let mut narrowed_lists = lists.clone();
        narrowed_lists.push(extra);
        let narrowed = filter.filter(slca_scan_eager(&narrowed_lists));
        if narrowed.is_empty() || narrowed.len() > options.max_results {
            continue;
        }
        let mut keywords: Vec<String> = query.keywords().to_vec();
        keywords.push(keyword.clone());
        out.push(Narrowing {
            added: keyword,
            refinement: Refinement {
                candidate: RqCandidate::new(keywords, 1.0),
                rank_score: score,
                slcas: narrowed,
            },
            original_results: slcas.len(),
        });
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use invindex::Index;
    use std::sync::Arc;

    fn wide_index() -> Index {
        // 30 reports, all containing "report" and "status"; half also
        // mention "urgent", a few mention "network".
        let mut b = xmldom::DocumentBuilder::new();
        b.open_element("log");
        for i in 0..30 {
            b.open_element("report");
            b.leaf("title", &format!("status report {i}"));
            if i % 2 == 0 {
                b.leaf("severity", "urgent issue");
            }
            if i % 10 == 0 {
                b.leaf("area", "network outage");
            }
            b.close_element();
        }
        b.close_element();
        Index::build(Arc::new(b.finish()))
    }

    #[test]
    fn over_broad_query_gets_narrowed() {
        let idx = wide_index();
        let q = Query::from_keywords(["status", "report"]);
        let suggestions = narrow_refine(
            &idx,
            &q,
            &NarrowOptions {
                k: 3,
                max_results: 5,
                ..Default::default()
            },
        )
        .unwrap()
        .expect("query is over-broad");
        assert!(!suggestions.is_empty());
        for s in &suggestions {
            assert!(s.refinement.slcas.len() <= 5);
            assert!(s.original_results > 5);
            assert!(!q.keywords().contains(&s.added));
            // the narrowed query's keyword set extends the original
            for k in q.keywords() {
                assert!(s.refinement.candidate.keywords.contains(k));
            }
        }
        // "network" (3 of 30) is the natural narrowing under max 5
        assert!(suggestions.iter().any(|s| s.added == "network"));
    }

    #[test]
    fn focused_query_needs_no_narrowing() {
        let idx = wide_index();
        let q = Query::from_keywords(["network", "outage"]);
        assert!(narrow_refine(&idx, &q, &NarrowOptions::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn broken_queries_are_left_to_the_main_system() {
        let idx = wide_index();
        let q = Query::from_keywords(["statuss", "report"]);
        assert!(narrow_refine(&idx, &q, &NarrowOptions::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn threshold_controls_activation() {
        let idx = wide_index();
        let q = Query::from_keywords(["status", "report"]);
        // generous threshold: nothing to do
        assert!(narrow_refine(
            &idx,
            &q,
            &NarrowOptions {
                max_results: 100,
                ..Default::default()
            }
        )
        .unwrap()
        .is_none());
    }
}

//! The XKSearch SLCA algorithms (\[3\] in the paper): *Indexed Lookup Eager*
//! and *Scan Eager*.
//!
//! Both anchor the computation on the elements of the shortest list. For
//! each anchor, the closest match from every other list (predecessor or
//! successor — whichever shares the longer prefix) is found; the SLCA
//! candidate is the shortest of the resulting per-list LCAs (all are
//! prefixes of the anchor, so they are totally ordered). Indexed Lookup
//! Eager locates closest matches by binary probes (`O(|S1| k log |Smax|)`);
//! Scan Eager advances one forward cursor per list instead, which wins when
//! list lengths are comparable.

use crate::common::{closest_match, minimal_candidates};
use invindex::Posting;
use xmldom::Dewey;

/// Indexed-Lookup-Eager SLCA. Accepts anything list-shaped — `&[Posting]`,
/// `Vec<Posting>`, or an [`invindex::ListHandle`] from any backend.
pub fn slca_indexed_lookup_eager<S: AsRef<[Posting]>>(lists: &[S]) -> Vec<Dewey> {
    obs::counter!("slca_invocations_total").inc();
    let lists: Vec<&[Posting]> = lists.iter().map(AsRef::as_ref).collect();
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }
    let shortest = lists
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| l.len())
        .map(|(i, _)| i)
        .expect("non-empty list set");

    // Steps (anchor × other-list probes) accumulate locally and flush as a
    // single atomic add so instrumentation stays off the inner loop.
    let mut steps = 0u64;
    let mut candidates = Vec::with_capacity(lists[shortest].len());
    for anchor in lists[shortest] {
        steps += lists.len() as u64 - 1;
        if let Some(c) = candidate_for_anchor(&lists, shortest, &anchor.dewey, |list, a| {
            closest_match(list, a)
        }) {
            candidates.push(c);
        }
    }
    obs::counter!("slca_eager_steps_total").add(steps);
    obs::trace::count("slca.steps", steps);
    minimal_candidates(candidates)
}

/// Scan-Eager SLCA: identical candidates, but closest matches come from
/// forward cursors rather than binary probes.
pub fn slca_scan_eager<S: AsRef<[Posting]>>(lists: &[S]) -> Vec<Dewey> {
    obs::counter!("slca_invocations_total").inc();
    let lists: Vec<&[Posting]> = lists.iter().map(AsRef::as_ref).collect();
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }
    let shortest = lists
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| l.len())
        .map(|(i, _)| i)
        .expect("non-empty list set");

    // One forward position per list: index of the first element > the
    // previous anchor. Anchors ascend, so positions only move forward.
    let mut pos = vec![0usize; lists.len()];
    let mut steps = 0u64;
    let mut candidates = Vec::with_capacity(lists[shortest].len());
    for anchor in lists[shortest] {
        let a = &anchor.dewey;
        // The per-list LCA is a prefix of the anchor, so only the minimum
        // common-prefix length is tracked; the candidate label is built once
        // per anchor instead of once per list.
        let mut min_prefix: Option<usize> = None;
        let mut dead = false;
        for (i, list) in lists.iter().enumerate() {
            if i == shortest {
                continue;
            }
            steps += 1;
            // advance cursor while the next element is still <= anchor
            while pos[i] < list.len() && list[pos[i]].dewey <= *a {
                pos[i] += 1;
                steps += 1;
            }
            let pred = pos[i].checked_sub(1).map(|j| &list[j].dewey);
            let succ = list.get(pos[i]).map(|p| &p.dewey);
            let best = match (pred, succ) {
                (Some(p), Some(s)) => {
                    if a.common_prefix_len(p) >= a.common_prefix_len(s) {
                        p
                    } else {
                        s
                    }
                }
                (Some(p), None) => p,
                (None, Some(s)) => s,
                (None, None) => {
                    dead = true;
                    break;
                }
            };
            let n = a.common_prefix_len(best);
            min_prefix = Some(min_prefix.map_or(n, |cur| cur.min(n)));
        }
        if dead {
            continue;
        }
        candidates.push(match min_prefix {
            Some(n) => a.prefix(n).expect("same document"),
            None => a.clone(),
        });
    }
    obs::counter!("slca_eager_steps_total").add(steps);
    obs::trace::count("slca.steps", steps);
    minimal_candidates(candidates)
}

/// Shared anchor-candidate computation for probe-based variants.
///
/// Every per-list LCA is a prefix of the anchor, so the shortest one is
/// identified by the minimum common-prefix length — compared as plain
/// `usize`s — and materialized as a `Dewey` exactly once on return.
fn candidate_for_anchor<'a>(
    lists: &[&'a [Posting]],
    anchor_list: usize,
    anchor: &Dewey,
    locate: impl Fn(&'a [Posting], &Dewey) -> Option<&'a Dewey>,
) -> Option<Dewey> {
    let mut min_prefix: Option<usize> = None;
    for (i, list) in lists.iter().enumerate() {
        if i == anchor_list {
            continue;
        }
        let m = locate(list, anchor)?;
        let n = anchor.common_prefix_len(m);
        min_prefix = Some(min_prefix.map_or(n, |cur| cur.min(n)));
    }
    match min_prefix {
        Some(n) => Some(anchor.prefix(n).expect("same document")),
        None => Some(anchor.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::slca_brute_force;
    use xmldom::NodeTypeId;

    fn ps(labels: &[&str]) -> Vec<Posting> {
        labels
            .iter()
            .map(|s| Posting::new(s.parse().unwrap(), NodeTypeId(0)))
            .collect()
    }

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    #[test]
    fn both_agree_with_brute_force_on_fixture() {
        let a = ps(&["0.0.2.0.0", "0.1.1.0.0"]); // xml
        let b = ps(&["0.0.2.1.1", "0.0.2.2.1"]); // 2003
        let c = ps(&["0.1.0"]); // john
        let cases: Vec<Vec<&[Posting]>> = vec![
            vec![&a],
            vec![&a, &b],
            vec![&a, &c],
            vec![&a, &b, &c],
            vec![&b, &c],
        ];
        for lists in cases {
            let expected = slca_brute_force(&lists);
            assert_eq!(slca_indexed_lookup_eager(&lists), expected);
            assert_eq!(slca_scan_eager(&lists), expected);
        }
    }

    #[test]
    fn single_keyword_returns_deepest_matches() {
        let a = ps(&["0.0", "0.0.1", "0.3"]);
        let expected = vec![d("0.0.1"), d("0.3")];
        assert_eq!(slca_indexed_lookup_eager(&[&a]), expected);
        assert_eq!(slca_scan_eager(&[&a]), expected);
    }

    #[test]
    fn disjoint_lists_meet_at_root() {
        let a = ps(&["0.0.0"]);
        let b = ps(&["0.1.0"]);
        let expected = vec![d("0")];
        assert_eq!(slca_indexed_lookup_eager(&[&a, &b]), expected);
        assert_eq!(slca_scan_eager(&[&a, &b]), expected);
    }

    #[test]
    fn empty_list_means_no_result() {
        let a = ps(&["0.0"]);
        let pair: [&[Posting]; 2] = [&a, &[]];
        assert!(slca_indexed_lookup_eager(&pair).is_empty());
        assert!(slca_scan_eager(&pair).is_empty());
        let none: [&[Posting]; 0] = [];
        assert!(slca_indexed_lookup_eager(&none).is_empty());
    }

    #[test]
    fn same_node_in_all_lists() {
        let a = ps(&["0.0.1"]);
        let b = ps(&["0.0.1"]);
        let expected = vec![d("0.0.1")];
        assert_eq!(slca_indexed_lookup_eager(&[&a, &b]), expected);
        assert_eq!(slca_scan_eager(&[&a, &b]), expected);
    }
}

//! End-to-end lifecycle tests for the serving layer: differential
//! correctness under concurrency, load shedding, graceful drain, the
//! ISSUE-3 corruption-degradation semantics over HTTP, and a real
//! SIGTERM delivered to the spawned `xrefine-serve` binary.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use invindex::{Index, IndexReader, KeywordId, ListHandle};
use xmldom::fixtures::figure1;
use xrefine::{EngineConfig, XRefineEngine};
use xserve::service::render_outcome;
use xserve::{EngineService, QueryService, ServeConfig, ServiceReply};

// ---------------------------------------------------------------- helpers

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 16,
        max_connections: 32,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_secs(5),
        request_timeout: Duration::from_secs(5),
        drain_grace: Duration::from_secs(10),
    }
}

/// One-shot GET returning (status, raw head, body).
fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(
        s,
        "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read");
    let raw = String::from_utf8_lossy(&raw).into_owned();
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

/// Keep-alive client: sends sequential requests over one connection.
struct KeepAlive {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KeepAlive {
    fn connect(addr: SocketAddr) -> KeepAlive {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        KeepAlive {
            stream,
            buf: Vec::new(),
        }
    }

    fn get(&mut self, target: &str) -> (u16, String) {
        write!(self.stream, "GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        let mut tmp = [0u8; 4096];
        let head_end = loop {
            if let Some(p) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p + 4;
            }
            let n = self.stream.read(&mut tmp).expect("read head");
            assert!(n > 0, "connection closed mid-head");
            self.buf.extend_from_slice(&tmp[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .expect("status");
        let clen: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .and_then(|v| v.trim().parse().ok())
            })
            .unwrap_or(0);
        while self.buf.len() < head_end + clen {
            let n = self.stream.read(&mut tmp).expect("read body");
            assert!(n > 0, "connection closed mid-body");
            self.buf.extend_from_slice(&tmp[..n]);
        }
        let body = String::from_utf8_lossy(&self.buf[head_end..head_end + clen]).into_owned();
        self.buf.drain(..head_end + clen);
        (status, body)
    }
}

fn encode(q: &str) -> String {
    q.replace(' ', "+")
}

fn figure1_engine() -> Arc<XRefineEngine> {
    Arc::new(XRefineEngine::from_document(
        Arc::new(figure1()),
        EngineConfig::default(),
    ))
}

// ------------------------------------------------- differential under load

#[test]
fn concurrent_clients_match_direct_engine_answers() {
    let engine = figure1_engine();
    let handle = xserve::start(
        test_config(),
        Arc::new(EngineService::new(Arc::clone(&engine))),
    )
    .expect("start");
    let addr = handle.addr();

    let queries = [
        "data base",
        "on line data base",
        "database",
        "line",
        "nosuchword at all",
    ];
    thread::scope(|s| {
        for t in 0..6 {
            let engine = Arc::clone(&engine);
            let queries = &queries;
            s.spawn(move || {
                let mut client = KeepAlive::connect(addr);
                for i in 0..10 {
                    let q = queries[(t + i) % queries.len()];
                    let (status, body) = client.get(&format!("/query?q={}", encode(q)));
                    assert_eq!(status, 200, "{q}: {body}");
                    // The served answer must be byte-identical to what
                    // the engine returns directly: the serving layer
                    // may queue and shed, but never alter results.
                    let direct = engine.answer_detailed(q).expect("healthy engine");
                    assert_eq!(body, render_outcome(q, &direct), "{q}");
                }
            });
        }
    });
    assert_eq!(handle.join(), 0, "clean drain after differential load");
}

// ------------------------------------------------------------ load shedding

/// A service that holds every request for a fixed delay — makes queue
/// saturation and in-flight windows deterministic without a huge corpus.
struct SlowService {
    delay: Duration,
}

impl QueryService for SlowService {
    fn answer(&self, query: &str) -> ServiceReply {
        thread::sleep(self.delay);
        ServiceReply {
            status: 200,
            body: format!("{{\"slow\":{}}}", obs::metrics::json_string(query)),
        }
    }
}

#[test]
fn saturated_queue_sheds_with_503_and_retry_after() {
    let config = ServeConfig {
        workers: 1,
        queue_capacity: 1,
        ..test_config()
    };
    let handle = xserve::start(
        config,
        Arc::new(SlowService {
            delay: Duration::from_millis(300),
        }),
    )
    .expect("start");
    let addr = handle.addr();

    let results: Vec<(u16, String)> = thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                s.spawn(move || {
                    let (status, head, _) = get(addr, "/query?q=x");
                    (status, head)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    let ok = results.iter().filter(|(s, _)| *s == 200).count();
    let shed: Vec<&String> = results
        .iter()
        .filter(|(s, _)| *s == 503)
        .map(|(_, head)| head)
        .collect();
    // 1 worker (slow) + 1 queue slot: of 8 simultaneous requests at
    // most a handful are admitted; the rest must shed, not block.
    assert!(ok >= 1, "at least one request served: {results:?}");
    assert!(!shed.is_empty(), "expected sheds: {results:?}");
    for head in shed {
        assert!(
            head.contains("Retry-After:"),
            "503 must carry Retry-After: {head}"
        );
    }
    // Shedding must show up in the serve metrics.
    let (st, _, metrics) = get(addr, "/metrics");
    assert_eq!(st, 200);
    assert!(
        metrics.contains("serve_requests_shed_total"),
        "metrics endpoint lists shed counter:\n{metrics}"
    );
    assert_eq!(handle.join(), 0);
}

// ---------------------------------------------------------------- draining

#[test]
fn drain_completes_in_flight_requests() {
    let handle = xserve::start(
        test_config(),
        Arc::new(SlowService {
            delay: Duration::from_millis(400),
        }),
    )
    .expect("start");
    let addr = handle.addr();

    let worker = thread::spawn(move || {
        let started = Instant::now();
        let (status, _, body) = get(addr, "/query?q=inflight");
        (status, body, started.elapsed())
    });
    // Let the request reach the queue, then drain underneath it.
    thread::sleep(Duration::from_millis(100));
    handle.begin_drain();
    let stragglers = handle.join();

    let (status, body, elapsed) = worker.join().expect("client");
    assert_eq!(
        status, 200,
        "in-flight request must be answered, not dropped: {body}"
    );
    assert!(body.contains("inflight"), "{body}");
    assert!(
        elapsed >= Duration::from_millis(300),
        "the answer really went through the slow worker"
    );
    assert_eq!(stragglers, 0, "drain left connections behind");

    // After the drain completes the listener is gone.
    assert!(
        TcpStream::connect(addr).is_err(),
        "drained server must not accept new connections"
    );
}

#[test]
fn admin_drain_endpoint_triggers_drain() {
    let handle = xserve::start(
        test_config(),
        Arc::new(SlowService {
            delay: Duration::ZERO,
        }),
    )
    .expect("start");
    let addr = handle.addr();
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "POST /admin/drain HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .expect("send");
    let mut raw = String::new();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.read_to_string(&mut raw).expect("read");
    assert!(raw.contains("\"draining\":true"), "{raw}");
    assert!(handle.drain_requested());
    // The acceptor promotes the request to a real drain within ~1ms.
    let deadline = Instant::now() + Duration::from_secs(2);
    while !handle.is_draining() && Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.is_draining());
    assert_eq!(handle.join(), 0);
}

// --------------------------------------- corruption degradation (ISSUE-3)

/// Wraps the resident figure-1 index but serves one keyword's posting
/// list as a corrupt-page error — the serving-path equivalent of a
/// store with one damaged frame.
struct SabotagedReader {
    inner: Index,
    bad: KeywordId,
}

impl IndexReader for SabotagedReader {
    fn document(&self) -> &Arc<xmldom::Document> {
        self.inner.document()
    }

    fn vocabulary(&self) -> &invindex::KeywordTable {
        self.inner.vocabulary()
    }

    fn stats(&self) -> &invindex::TypeStats {
        self.inner.stats()
    }

    fn list_handle_by_id(&self, k: KeywordId) -> kvstore::Result<ListHandle> {
        if k == self.bad {
            return Err(kvstore::KvError::corrupt_page(
                7,
                "injected: posting frame checksum mismatch",
            ));
        }
        self.inner.list_handle_by_id(k)
    }

    fn co_occur(&self, t: xmldom::NodeTypeId, ki: KeywordId, kj: KeywordId) -> u64 {
        self.inner.co_occur(t, ki, kj)
    }
}

#[test]
fn corrupt_keyword_fails_its_query_but_not_the_connection() {
    let index = Index::build(Arc::new(figure1()));
    let bad = index
        .vocabulary()
        .get("data")
        .expect("'data' is in figure 1");
    let reader: Arc<dyn IndexReader> = Arc::new(SabotagedReader { inner: index, bad });
    let engine = Arc::new(XRefineEngine::from_reader(reader, EngineConfig::default()));
    let handle = xserve::start(test_config(), Arc::new(EngineService::new(engine))).expect("start");

    let mut client = KeepAlive::connect(handle.addr());
    // A query touching the damaged original keyword fails — ISSUE-3
    // semantics: damage to an original query keyword changes what the
    // query means, so *this query* gets a structured 500 …
    let (status, body) = client.get("/query?q=data+base");
    assert_eq!(status, 500, "{body}");
    assert!(body.contains("\"keyword\":\"data\""), "{body}");
    assert!(body.contains("checksum mismatch"), "{body}");
    // … while the same connection keeps serving healthy queries: the
    // engine, worker and connection all survive per-query corruption.
    let (status, body) = client.get("/query?q=line");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"refinements\""), "{body}");
    // And the failure repeats deterministically rather than poisoning.
    let (status, _) = client.get("/query?q=data");
    assert_eq!(status, 500);
    drop(client);
    assert_eq!(handle.join(), 0);
}

// ------------------------------------------------------- SIGTERM, for real

#[test]
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
fn spawned_binary_drains_on_sigterm() {
    use std::process::{Command, Stdio};

    let mut child = Command::new(env!("CARGO_BIN_EXE_xrefine-serve"))
        .args(["--dblp", "0.005", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn xrefine-serve");

    let mut stdout = BufReader::new(child.stdout.take().expect("stdout"));
    let mut line = String::new();
    let addr: SocketAddr = loop {
        line.clear();
        let n = stdout.read_line(&mut line).expect("read stdout");
        assert!(n > 0, "server exited before listening");
        if let Some(rest) = line.trim().strip_prefix("xrefine-serve listening on ") {
            break rest.parse().expect("addr");
        }
    };

    // The server answers over TCP…
    let (status, _, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");

    // …then receives a real SIGTERM and must exit 0 after draining.
    // Delivered via the raw kill syscall — no dependence on a `kill`
    // binary being present in the environment.
    let ret: i64;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 62i64 => ret, // SYS_kill
            in("rdi") child.id() as u64,
            in("rsi") 15u64, // SIGTERM
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    assert_eq!(ret, 0, "kill syscall failed");

    let mut rest = String::new();
    stdout.read_to_string(&mut rest).expect("drain output");
    let status = child.wait().expect("wait");
    assert!(
        status.success(),
        "SIGTERM must drain and exit 0; output:\n{rest}"
    );
    assert!(rest.contains("drained cleanly"), "{rest}");
}

//! `durability-protocol`: in persistence paths, a namespace-changing
//! call (e.g. `rename`) is durable only once its declared successor
//! (e.g. `sync_parent_dir`) has run — a crash between the two leaves
//! the directory entry volatile. The trigger/successor pairs are
//! machine-read from the marker-fenced protocol table in DESIGN.md, the
//! same pattern as the metric catalogue.
//!
//! A trigger call is satisfied when a successor call appears *after it*
//! (token order) in the same function, or — for helpers that delegate
//! the sync to their caller — when **every** production caller of the
//! enclosing function calls the successor after the call site. The
//! escalation is one level deep on purpose: a sync obligation that
//! travels further than one call edge is an architecture smell this
//! rule is meant to surface, not paper over.
//!
//! The Vfs layer itself (`vfs.rs`, `fsutil.rs`) is exempt: it
//! *implements* the primitives the protocol is stated in terms of.

use crate::config::Config;
use crate::diag::Finding;
use crate::model::WorkspaceModel;
use crate::source::SourceFile;

pub const RULE: &str = "durability-protocol";

pub fn check(model: &WorkspaceModel, config: &Config, out: &mut Vec<Finding>) {
    for (trigger, successor) in &config.protocol {
        for (fx, fun) in model.functions.iter().enumerate() {
            let file = &model.files[fun.file];
            if !Config::in_scope(&file.path, &config.durability_paths)
                || config.durability_exempt.contains(&file.path)
            {
                continue;
            }
            let calls = model.calls_in(fx);
            for c in &calls {
                if c.callee != *trigger || file.is_test_line(c.line) {
                    continue;
                }
                let satisfied_here = calls
                    .iter()
                    .any(|s| s.callee == *successor && s.tok > c.tok);
                if satisfied_here {
                    continue;
                }
                if callers_cover(model, fun, successor) {
                    continue;
                }
                super::emit(
                    out,
                    file,
                    RULE,
                    c.line,
                    c.col,
                    format!(
                        "`{trigger}` is not followed by `{successor}` here or in every caller \
                         of `{}`",
                        fun.name
                    ),
                    format!(
                        "call `{successor}` after `{trigger}` (see the durability protocol \
                         table in DESIGN.md)"
                    ),
                );
            }
        }
    }
}

/// Does every production caller of `fun` call `successor` after its call
/// site? No callers at all means nobody discharges the obligation.
fn callers_cover(model: &WorkspaceModel, fun: &crate::model::FnDef, successor: &str) -> bool {
    let mut seen_caller = false;
    for site in model.callers_of(&fun.name) {
        let caller = &model.functions[site.caller];
        let caller_file: &SourceFile = &model.files[caller.file];
        if caller_file.is_test_line(site.line) {
            continue;
        }
        // A call to a same-named method on an unrelated type would be
        // over-matched here; that only makes the check conservative in
        // the caller's favour, never silently lenient.
        seen_caller = true;
        let covered = model
            .calls_in(site.caller)
            .iter()
            .any(|s| s.callee == successor && s.tok > site.tok);
        if !covered {
            return false;
        }
    }
    seen_caller
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileKind, SourceFile};

    fn findings(src: &str) -> Vec<usize> {
        let file = SourceFile::parse("crates/kvstore/src/durable.rs", src, FileKind::Production);
        let files = [file];
        let model = WorkspaceModel::build(&files);
        let mut config = Config::workspace_defaults();
        config.protocol = vec![("rename".into(), "sync_parent_dir".into())];
        let mut out = Vec::new();
        check(&model, &config, &mut out);
        out.into_iter().map(|f| f.line).collect()
    }

    #[test]
    fn same_function_successor_satisfies() {
        let fs = findings(
            "fn checkpoint(vfs: &V) {\n\
                 vfs.rename(&tmp, &db);\n\
                 vfs.sync_parent_dir(&db);\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn missing_successor_is_flagged() {
        let fs = findings(
            "fn checkpoint(vfs: &V) {\n\
                 vfs.sync_parent_dir(&db);\n\
                 vfs.rename(&tmp, &db);\n\
             }\n",
        );
        assert_eq!(
            fs,
            vec![3],
            "a successor *before* the trigger does not count"
        );
    }

    #[test]
    fn every_caller_covering_satisfies_but_one_gap_flags() {
        let fs = findings(
            "fn swap(vfs: &V) { vfs.rename(&tmp, &db); }\n\
             fn good_caller(vfs: &V) { swap(vfs); vfs.sync_parent_dir(&db); }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");

        let fs = findings(
            "fn swap(vfs: &V) { vfs.rename(&tmp, &db); }\n\
             fn good_caller(vfs: &V) { swap(vfs); vfs.sync_parent_dir(&db); }\n\
             fn bad_caller(vfs: &V) { swap(vfs); }\n",
        );
        assert_eq!(fs, vec![1]);
    }

    #[test]
    fn exempt_files_and_test_regions_are_skipped() {
        let file = SourceFile::parse(
            "crates/kvstore/src/vfs.rs",
            "fn imp(vfs: &V) { vfs.rename(&a, &b); }\n",
            FileKind::Production,
        );
        let files = [file];
        let model = WorkspaceModel::build(&files);
        let mut config = Config::workspace_defaults();
        config.protocol = vec![("rename".into(), "sync_parent_dir".into())];
        let mut out = Vec::new();
        check(&model, &config, &mut out);
        assert!(out.is_empty());

        let fs =
            findings("#[cfg(test)]\nmod tests {\n  fn t(vfs: &V) { vfs.rename(&a, &b); }\n}\n");
        assert!(fs.is_empty(), "{fs:?}");
    }
}

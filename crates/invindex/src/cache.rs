//! The sharded LRU posting-list cache behind [`crate::KvBackedIndex`].
//!
//! The cache is the hot path of the concurrent query engine: every list
//! touch probes it, and under N serving threads a single cache-wide lock
//! would serialize them all. [`ShardedListCache`] therefore splits the
//! byte budget across `S` independently locked shards, selected by
//! keyword-id modulo — two threads only contend when they touch keywords
//! in the same shard, and a hit never takes more than one shard mutex.
//!
//! Policy (per shard, identical to the former monolithic cache):
//!
//! * cost of an entry is its *stored* (encoded) size — the quantity the
//!   budget protects is decode work and resident bytes, both proportional
//!   to it;
//! * eviction never invalidates handles already given out (entries are
//!   `Arc`-shared);
//! * a list larger than its shard's budget is returned uncached and
//!   re-decoded on its next touch — degraded speed, never degraded
//!   answers.
//!
//! Per-shard budgets sum exactly to the global budget (the remainder of
//! the division lands on the first shards), so `ShardedListCache::new(b,
//! s)` holds at most `b` encoded bytes no matter the shard count.
//!
//! # Generations
//!
//! Since the index became updatable the cache is shared between reader
//! snapshots of *different* store generations. Every entry is stamped
//! with the generation that decoded it; a reader pinned at generation
//! `g` only accepts entries stamped `<= g` ([`ShardedListCache::get_at`])
//! and its decodes are only admitted while `g` is still the current
//! generation ([`ShardedListCache::insert_at`] checks under the shard
//! mutex, so a stale reader racing a publish cannot re-seed an entry the
//! writer just invalidated). A committing writer bumps the current
//! generation *first*, then invalidates the keyword ids it changed —
//! unchanged entries keep serving every generation.

use crate::postings::PostingList;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default shard count: enough to make contention between a handful of
/// serving threads unlikely, small enough that per-shard budgets stay
/// useful.
pub const DEFAULT_CACHE_SHARDS: usize = 8;

/// A snapshot of the list-cache counters, aggregated over all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to touch the store.
    pub misses: u64,
    /// Lists decoded from stored pages (misses that found the key).
    pub lists_decoded: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Encoded bytes currently held by the cache.
    pub cached_bytes: usize,
}

struct CacheEntry {
    list: Arc<PostingList>,
    cost: usize,
    tick: u64,
    /// Store generation whose bytes this list was decoded from.
    gen: u64,
}

/// One shard: an LRU over decoded posting lists, keyed by keyword id,
/// bounded by the summed encoded size of the entries.
struct Shard {
    budget: usize,
    used: usize,
    tick: u64,
    map: HashMap<u32, CacheEntry>,
    /// tick -> keyword id; the smallest tick is the eviction victim.
    lru: BTreeMap<u64, u32>,
    hits: u64,
    misses: u64,
    lists_decoded: u64,
    evictions: u64,
}

impl Shard {
    fn new(budget: usize) -> Self {
        Shard {
            budget,
            used: 0,
            tick: 0,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            hits: 0,
            misses: 0,
            lists_decoded: 0,
            evictions: 0,
        }
    }

    /// Looks up `id`, promoting it to most-recently-used on a hit. An
    /// entry stamped with a generation newer than `reader_gen` is a
    /// miss for this reader — but the entry stays resident, because the
    /// newer snapshot that decoded it is still serving.
    fn get(&mut self, id: u32, reader_gen: u64) -> Option<Arc<PostingList>> {
        match self.map.get_mut(&id) {
            Some(entry) if entry.gen <= reader_gen => {
                self.hits += 1;
                self.lru.remove(&entry.tick);
                self.tick += 1;
                entry.tick = self.tick;
                self.lru.insert(entry.tick, id);
                Some(Arc::clone(&entry.list))
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly decoded list stamped with `gen`. Oversize lists
    /// (cost > budget) are not cached at all; otherwise LRU entries are
    /// evicted until the budget holds.
    fn insert(&mut self, id: u32, list: Arc<PostingList>, cost: usize, gen: u64) {
        self.lists_decoded += 1;
        if cost > self.budget {
            return;
        }
        if let Some(old) = self.map.remove(&id) {
            self.lru.remove(&old.tick);
            self.used -= old.cost;
        }
        while self.used + cost > self.budget {
            let (&tick, &victim) = self.lru.iter().next().expect("used > 0 implies entries");
            self.lru.remove(&tick);
            let evicted = self.map.remove(&victim).expect("lru and map agree");
            self.used -= evicted.cost;
            self.evictions += 1;
        }
        self.tick += 1;
        self.lru.insert(self.tick, id);
        self.map.insert(
            id,
            CacheEntry {
                list,
                cost,
                tick: self.tick,
                gen,
            },
        );
        self.used += cost;
    }

    /// Drops `id` if resident, returning its cost.
    fn invalidate(&mut self, id: u32) -> Option<usize> {
        let entry = self.map.remove(&id)?;
        self.lru.remove(&entry.tick);
        self.used -= entry.cost;
        Some(entry.cost)
    }

    /// Drops every entry, returning (entries dropped, bytes freed).
    fn invalidate_all(&mut self) -> (u64, usize) {
        let dropped = self.map.len() as u64;
        let freed = self.used;
        self.map.clear();
        self.lru.clear();
        self.used = 0;
        (dropped, freed)
    }

    fn add_to(&self, total: &mut CacheStats) {
        total.hits += self.hits;
        total.misses += self.misses;
        total.lists_decoded += self.lists_decoded;
        total.evictions += self.evictions;
        total.cached_bytes += self.used;
    }

    /// Panics if the shard's bookkeeping disagrees with itself.
    fn check_invariants(&self) {
        assert!(self.used <= self.budget, "used exceeds shard budget");
        assert_eq!(self.map.len(), self.lru.len(), "map/lru size mismatch");
        let mut summed = 0usize;
        for (&tick, &id) in &self.lru {
            let entry = self.map.get(&id).expect("lru id missing from map");
            assert_eq!(entry.tick, tick, "lru tick disagrees with entry tick");
            summed += entry.cost;
        }
        assert_eq!(summed, self.used, "used differs from summed entry costs");
    }
}

/// The sharded, independently locked list cache. All methods take
/// `&self`; a lookup or insert locks exactly one shard.
pub struct ShardedListCache {
    shards: Vec<Mutex<Shard>>,
    budget: usize,
    /// The latest published store generation. Bumped by a committing
    /// writer *before* it invalidates the entries it changed; checked
    /// under the shard mutex on insert so the bump is visible to any
    /// reader that locks a shard after the writer's invalidation pass.
    current_gen: AtomicU64,
}

impl ShardedListCache {
    /// A cache of `shards` shards whose per-shard budgets sum to
    /// `budget` bytes. `shards` is clamped to at least 1; a budget of 0
    /// disables caching entirely.
    pub fn new(budget: usize, shards: usize) -> Self {
        let n = shards.max(1);
        let base = budget / n;
        let remainder = budget % n;
        let shards = (0..n)
            .map(|i| Mutex::new(Shard::new(base + usize::from(i < remainder))))
            .collect();
        ShardedListCache {
            shards,
            budget,
            current_gen: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: u32) -> &Mutex<Shard> {
        &self.shards[id as usize % self.shards.len()]
    }

    /// Looks up `id` at the current generation, promoting it to
    /// most-recently-used in its shard.
    pub fn get(&self, id: u32) -> Option<Arc<PostingList>> {
        self.get_at(id, self.current_gen())
    }

    /// Inserts a freshly decoded list of stored size `cost`, stamped
    /// with the current generation.
    pub fn insert(&self, id: u32, list: Arc<PostingList>, cost: usize) {
        self.insert_at(id, list, cost, self.current_gen());
    }

    /// Looks up `id` on behalf of a reader pinned at `reader_gen`.
    /// Entries stamped with a newer generation miss (without being
    /// evicted — the newer snapshot still wants them).
    pub fn get_at(&self, id: u32, reader_gen: u64) -> Option<Arc<PostingList>> {
        let got = {
            let _rank = obs::lockrank::acquire(obs::lockrank::rank::CACHE_SHARD, "cache.shard");
            self.shard(id).lock().get(id, reader_gen) // xlint::lock(cache.shard)
        };
        if got.is_some() {
            obs::counter!("invindex_cache_hits_total").inc();
        } else {
            obs::counter!("invindex_cache_misses_total").inc();
        }
        got
    }

    /// Inserts a list decoded by a reader pinned at `gen`. The insert is
    /// admitted only while `gen` is still the current generation; the
    /// check runs under the shard mutex, so a stale reader that lost a
    /// race with a publish cannot re-seed an entry the writer already
    /// invalidated. A rejected insert still counts as a decode.
    pub fn insert_at(&self, id: u32, list: Arc<PostingList>, cost: usize, gen: u64) {
        // Block scope: the metric updates below must happen outside the
        // shard lock (registration takes the registry mutex).
        let (used_delta, evicted) = {
            let _rank = obs::lockrank::acquire(obs::lockrank::rank::CACHE_SHARD, "cache.shard");
            let mut shard = self.shard(id).lock(); // xlint::lock(cache.shard)
            if gen != self.current_gen.load(Ordering::SeqCst) {
                shard.lists_decoded += 1;
                (0, 0)
            } else {
                let (used_before, evictions_before) = (shard.used, shard.evictions);
                shard.insert(id, list, cost, gen);
                let evicted = shard.evictions - evictions_before;
                (shard.used as i64 - used_before as i64, evicted)
            }
        };
        obs::counter!("invindex_cache_lists_decoded_total").inc();
        if evicted > 0 {
            obs::counter!("invindex_cache_evictions_total").add(evicted);
        }
        obs::gauge!("invindex_cache_resident_bytes").add(used_delta);
    }

    /// Drops the entry for `id` if resident. Returns whether an entry
    /// was dropped.
    pub fn invalidate(&self, id: u32) -> bool {
        let freed = {
            let _rank = obs::lockrank::acquire(obs::lockrank::rank::CACHE_SHARD, "cache.shard");
            self.shard(id).lock().invalidate(id) // xlint::lock(cache.shard)
        };
        match freed {
            Some(cost) => {
                obs::counter!("invindex_cache_invalidations_total").inc();
                obs::gauge!("invindex_cache_resident_bytes").add(-(cost as i64));
                true
            }
            None => false,
        }
    }

    /// Flushes every shard. Returns the number of entries dropped.
    pub fn invalidate_all(&self) -> u64 {
        let mut dropped = 0u64;
        let mut freed = 0usize;
        for shard in &self.shards {
            let (d, f) = {
                let _rank = obs::lockrank::acquire(obs::lockrank::rank::CACHE_SHARD, "cache.shard");
                shard.lock().invalidate_all() // xlint::lock(cache.shard)
            };
            dropped += d;
            freed += f;
        }
        if dropped > 0 {
            obs::counter!("invindex_cache_invalidations_total").add(dropped);
            obs::gauge!("invindex_cache_resident_bytes").add(-(freed as i64));
        }
        dropped
    }

    /// Publishes `gen` as the current generation. Called by the writer
    /// *before* it invalidates the ids the new generation changed.
    pub fn set_current_gen(&self, gen: u64) {
        self.current_gen.store(gen, Ordering::SeqCst);
    }

    /// The latest published store generation.
    pub fn current_gen(&self) -> u64 {
        self.current_gen.load(Ordering::SeqCst)
    }

    /// Aggregated counters across all shards. The snapshot is *per
    /// shard* consistent; concurrent traffic may move counters between
    /// the shard reads.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let _rank = obs::lockrank::acquire(obs::lockrank::rank::CACHE_SHARD, "cache.shard");
            shard.lock().add_to(&mut total); // xlint::lock(cache.shard)
        }
        total
    }

    /// Per-shard counter snapshots, in shard order. The aggregated
    /// [`ShardedListCache::stats`] must equal the field-wise sum of these —
    /// the merge invariant the obs test suite checks.
    pub fn per_shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|shard| {
                let _rank = obs::lockrank::acquire(obs::lockrank::rank::CACHE_SHARD, "cache.shard");
                let mut one = CacheStats::default();
                shard.lock().add_to(&mut one); // xlint::lock(cache.shard)
                one
            })
            .collect()
    }

    /// The global byte budget (the per-shard budgets sum to this).
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Asserts every shard's internal bookkeeping (`used` = Σ entry
    /// costs ≤ budget, `lru` and `map` agree). For tests.
    pub fn check_invariants(&self) {
        for shard in &self.shards {
            let _rank = obs::lockrank::acquire(obs::lockrank::rank::CACHE_SHARD, "cache.shard");
            shard.lock().check_invariants(); // xlint::lock(cache.shard)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list_of(len: usize) -> Arc<PostingList> {
        let postings = (0..len)
            .map(|i| {
                crate::postings::Posting::new(
                    xmldom::Dewey::new(vec![0, i as u32]).unwrap(),
                    xmldom::NodeTypeId(0),
                )
            })
            .collect();
        Arc::new(PostingList::from_sorted(postings))
    }

    #[test]
    fn per_shard_budgets_sum_to_global() {
        for (budget, shards) in [(0, 1), (1, 8), (64, 8), (1023, 8), (1 << 20, 7)] {
            let cache = ShardedListCache::new(budget, shards);
            let per_shard: usize = cache.shards.iter().map(|s| s.lock().budget).sum();
            assert_eq!(per_shard, budget, "budget {budget} over {shards} shards");
        }
    }

    #[test]
    fn zero_shards_is_clamped_to_one() {
        let cache = ShardedListCache::new(100, 0);
        assert_eq!(cache.shard_count(), 1);
        cache.insert(0, list_of(1), 10);
        assert!(cache.get(0).is_some());
    }

    #[test]
    fn keys_route_by_modulo_and_do_not_collide_across_shards() {
        let cache = ShardedListCache::new(8 * 100, 8);
        // ids 0..8 land in distinct shards; each shard holds its entry.
        for id in 0..8u32 {
            cache.insert(id, list_of(1), 50);
        }
        for id in 0..8u32 {
            assert!(cache.get(id).is_some(), "id {id} missing");
        }
        let s = cache.stats();
        assert_eq!(s.cached_bytes, 8 * 50);
        assert_eq!(s.evictions, 0);
        cache.check_invariants();
    }

    #[test]
    fn eviction_is_per_shard() {
        // Shard budget = 100: two 60-cost entries in the same shard evict,
        // entries in other shards are untouched.
        let cache = ShardedListCache::new(8 * 100, 8);
        cache.insert(0, list_of(1), 60);
        cache.insert(1, list_of(1), 60); // different shard: no eviction
        cache.insert(8, list_of(1), 60); // shard of id 0: evicts id 0
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert!(cache.get(0).is_none());
        assert!(cache.get(1).is_some());
        assert!(cache.get(8).is_some());
        cache.check_invariants();
    }

    #[test]
    fn newer_generation_entry_misses_for_pinned_reader_without_eviction() {
        let cache = ShardedListCache::new(1 << 20, 4);
        cache.set_current_gen(3);
        cache.insert(7, list_of(1), 10); // stamped gen 3
                                         // A reader pinned at gen 2 must not see it; the entry survives.
        assert!(cache.get_at(7, 2).is_none());
        assert!(cache.get_at(7, 3).is_some());
        assert!(cache.get_at(7, 9).is_some(), "old entries serve new gens");
        assert_eq!(cache.stats().cached_bytes, 10);
        cache.check_invariants();
    }

    #[test]
    fn stale_generation_insert_is_rejected_but_counts_the_decode() {
        let cache = ShardedListCache::new(1 << 20, 4);
        cache.set_current_gen(5);
        cache.insert_at(7, list_of(1), 10, 4); // decoded under gen 4: stale
        assert!(cache.get_at(7, 5).is_none());
        let s = cache.stats();
        assert_eq!(s.lists_decoded, 1, "rejected insert still decoded");
        assert_eq!(s.cached_bytes, 0);
        cache.insert_at(7, list_of(1), 10, 5);
        assert!(cache.get_at(7, 5).is_some());
        cache.check_invariants();
    }

    #[test]
    fn invalidate_drops_one_entry_and_frees_its_bytes() {
        let cache = ShardedListCache::new(1 << 20, 4);
        cache.insert(1, list_of(1), 30);
        cache.insert(2, list_of(1), 40);
        assert!(cache.invalidate(1));
        assert!(!cache.invalidate(1), "second invalidation is a no-op");
        assert!(cache.get(1).is_none());
        assert!(cache.get(2).is_some());
        assert_eq!(cache.stats().cached_bytes, 40);
        cache.check_invariants();
    }

    #[test]
    fn invalidate_all_flushes_every_shard() {
        let cache = ShardedListCache::new(1 << 20, 4);
        for id in 0..9u32 {
            cache.insert(id, list_of(1), 10);
        }
        assert_eq!(cache.invalidate_all(), 9);
        assert_eq!(cache.invalidate_all(), 0);
        assert_eq!(cache.stats().cached_bytes, 0);
        for id in 0..9u32 {
            assert!(cache.get(id).is_none());
        }
        cache.check_invariants();
    }

    #[test]
    fn stats_aggregate_over_shards() {
        let cache = ShardedListCache::new(1 << 20, 4);
        for id in 0..12u32 {
            assert!(cache.get(id).is_none());
            cache.insert(id, list_of(1), 10);
        }
        for id in 0..12u32 {
            assert!(cache.get(id).is_some());
        }
        let s = cache.stats();
        assert_eq!(s.misses, 12);
        assert_eq!(s.hits, 12);
        assert_eq!(s.lists_decoded, 12);
        assert_eq!(s.cached_bytes, 120);
    }
}

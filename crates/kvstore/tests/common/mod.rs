//! Shared workload machinery for the fault-injection and crash-recovery
//! torture tests: a deterministic `DurableKv` workload, its reference
//! model, and helpers to replay it against a store.
#![allow(dead_code)]

use kvstore::{DurableKv, KvStore};
use std::collections::BTreeMap;

/// One logical store operation of the recorded workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Checkpoint,
}

impl Op {
    /// True for operations that change the logical contents. A power cut
    /// during one of these may legitimately persist it (the WAL frame
    /// reached the platter) or not; a checkpoint in flight must never
    /// change what the store contains.
    pub fn is_mutation(&self) -> bool {
        matches!(self, Op::Put(..) | Op::Delete(..))
    }
}

/// xorshift64 — the workspace has no RNG dependency, and the workload
/// must be identical on every run for the sweep to mean anything.
pub struct XorShift(pub u64);

impl XorShift {
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A deterministic `n`-operation workload: ~25% deletes, the rest puts
/// over a 48-key pool; every 16th value is 2-3 KiB so checkpoints also
/// exercise overflow pages; a checkpoint every 150 operations.
pub fn workload(n: usize) -> Vec<Op> {
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    let mut ops = Vec::with_capacity(n);
    for i in 0..n {
        if i > 0 && i % 150 == 0 {
            ops.push(Op::Checkpoint);
            continue;
        }
        let r = rng.next();
        let key = format!("k{:02}", r % 48).into_bytes();
        if r % 100 < 25 {
            ops.push(Op::Delete(key));
        } else {
            let len = if i % 16 == 5 {
                2048 + ((r >> 8) % 1024) as usize
            } else {
                8 + ((r >> 8) % 24) as usize
            };
            ops.push(Op::Put(key, vec![(r >> 16) as u8; len]));
        }
    }
    ops
}

/// Logical store contents.
pub type Model = BTreeMap<Vec<u8>, Vec<u8>>;

/// `models(ops)[i]` = the contents after exactly the first `i` operations.
pub fn models(ops: &[Op]) -> Vec<Model> {
    let mut snapshots = Vec::with_capacity(ops.len() + 1);
    let mut state = Model::new();
    snapshots.push(state.clone());
    for op in ops {
        match op {
            Op::Put(k, v) => {
                state.insert(k.clone(), v.clone());
            }
            Op::Delete(k) => {
                state.remove(k);
            }
            Op::Checkpoint => {}
        }
        snapshots.push(state.clone());
    }
    snapshots
}

/// Applies one workload operation to a live store.
pub fn apply_op(store: &mut DurableKv, op: &Op) -> kvstore::Result<()> {
    match op {
        Op::Put(k, v) => store.put(k, v),
        Op::Delete(k) => store.delete(k).map(|_| ()),
        Op::Checkpoint => store.checkpoint(),
    }
}

/// Full contents of a store, for comparison against a [`Model`].
pub fn contents(store: &DurableKv) -> Model {
    store
        .scan_range(b"", None)
        .expect("scan of a recovered store")
        .into_iter()
        .collect()
}

//! End-to-end live maintenance over HTTP: `POST /admin/update` against
//! a running server while `GET /query` keeps answering — updates land
//! atomically, queries never see a torn index, and a server started
//! read-only refuses updates with `501`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use invindex::{build_streaming, persist};
use kvstore::{DiskKv, FaultVfs, KvStore};
use xrefine::{EngineConfig, LiveEngine, XRefineEngine};
use xserve::{EngineService, LiveEngineService, ServeConfig};

const SEED_CORPUS: &str = "<bib>\
    <paper><title>xml keyword search</title></paper>\
    <paper><title>query refinement ranking</title></paper>\
    </bib>";

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_capacity: 16,
        max_connections: 32,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_secs(5),
        request_timeout: Duration::from_secs(5),
        drain_grace: Duration::from_secs(10),
    }
}

fn live_service() -> LiveEngineService {
    let vfs = FaultVfs::new().as_dyn();
    let base = std::path::PathBuf::from("/serve-live/store.db");
    let built = build_streaming(SEED_CORPUS, 1).unwrap();
    let mut disk = DiskKv::open_with_vfs(&vfs, &base.with_extension("db")).unwrap();
    persist::persist(&built, &mut disk).unwrap();
    disk.sync().unwrap();
    let live = LiveEngine::open_with_vfs(vfs, &base, EngineConfig::default()).unwrap();
    LiveEngineService::new(Arc::new(live))
}

/// One-shot request returning (status, body).
fn roundtrip(addr: SocketAddr, request: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.write_all(request.as_bytes()).expect("send");
    let mut raw = Vec::new();
    s.read_to_end(&mut raw).expect("read");
    let raw = String::from_utf8_lossy(&raw).into_owned();
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    roundtrip(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    roundtrip(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn updates_apply_over_http_while_queries_keep_serving() {
    let handle = xserve::start(test_config(), Arc::new(live_service())).unwrap();
    let addr = handle.addr();

    // Background readers hammer /query for the whole test: every reply
    // must be a complete 200 — never a torn index, never a 5xx.
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (status, body) = get(addr, "/query?q=xml%20keyword");
                    assert_eq!(status, 200, "{body}");
                    assert!(body.ends_with('}'), "torn body: {body}");
                    served += 1;
                }
                served
            })
        })
        .collect();

    // A mixed update stream: adds, a remove, a compaction.
    let (status, body) = post(
        addr,
        "/admin/update?op=add",
        "<paper><title>epoch handoff protocol</title></paper>",
    );
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"seq\":1"), "{body}");

    let (status, body) = get(addr, "/query?q=epoch%20handoff");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"original_ok\":true"), "{body}");

    let (status, body) = post(addr, "/admin/update?op=remove&slot=0", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"records\":2"), "{body}");

    let (status, body) = post(addr, "/admin/update?op=compact", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"compacted\":true"), "{body}");

    // Client mistakes are 400s and never wedge the server.
    let (status, _) = post(addr, "/admin/update?op=add", "");
    assert_eq!(status, 400);
    let (status, _) = post(addr, "/admin/update?op=remove&slot=banana", "");
    assert_eq!(status, 400);
    let (status, _) = post(addr, "/admin/update", "");
    assert_eq!(status, 400);

    // Maintenance metrics are live on /metrics.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("maint_txns_total"), "{metrics}");
    assert!(metrics.contains("serve_update_requests_total"), "{metrics}");

    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let served = r.join().expect("reader thread");
        assert!(served > 0, "reader never got a query through");
    }
    handle.begin_drain();
    assert_eq!(handle.join(), 0);
}

#[test]
fn read_only_server_answers_update_with_501() {
    let engine = XRefineEngine::from_xml(SEED_CORPUS, EngineConfig::default()).unwrap();
    let service = Arc::new(EngineService::new(Arc::new(engine)));
    let handle = xserve::start(test_config(), service).unwrap();
    let addr = handle.addr();

    let (status, body) = post(
        addr,
        "/admin/update?op=add",
        "<paper><title>nope</title></paper>",
    );
    assert_eq!(status, 501, "{body}");
    assert!(body.contains("--live"), "{body}");
    // And the read path is untouched.
    let (status, _) = get(addr, "/query?q=xml");
    assert_eq!(status, 200);

    handle.begin_drain();
    assert_eq!(handle.join(), 0);
}

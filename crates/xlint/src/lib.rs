//! xlint — a from-scratch static analyzer for this workspace.
//!
//! Rustc and clippy enforce language-level invariants; xlint enforces
//! *architecture-level* ones that only this codebase knows about:
//!
//! * `no-panic-paths` — storage/decode paths return `KvError::Corrupt`,
//!   they never panic;
//! * `lock-order` — annotated lock sites respect the declared hierarchy
//!   in `crates/xlint/lockorder.toml`;
//! * `metric-catalogue` — metric and span names match DESIGN.md;
//! * `no-wallclock-in-hot-paths` — no clock reads in query evaluation;
//! * `error-context` — corruption errors always say what went wrong;
//! * `durability-protocol` — renames in persistence paths are followed
//!   by a parent-directory sync, per the DESIGN.md protocol table;
//! * `unsafe-audit` — every production `unsafe` carries an
//!   `xlint::safety(...)` invariant, inventoried into SAFETY.md;
//! * `checked-arithmetic-on-untrusted` — decode-path arithmetic on
//!   disk/network-derived values uses `checked_*` forms.
//!
//! The analyzer is zero-dependency: a hand-rolled lexer
//! ([`lexer`]) feeds token-pattern rules ([`rules`]) over a per-file
//! model ([`source`]) that tracks test regions, suppression pragmas and
//! lock annotations, plus a workspace model ([`model`]) with a
//! name-level call graph for the protocol rules. Exemptions are
//! `// xlint::allow(rule): why` pragmas with a *required*
//! justification.
//!
//! `cargo run -p xlint -- --workspace` lints the live tree;
//! `-- --fixtures` self-tests the rules against golden fixtures.

pub mod config;
pub mod diag;
pub mod fixtures;
pub mod lexer;
pub mod model;
pub mod rules;
pub mod source;
pub mod workspace;

use config::Config;
use diag::Finding;
use source::{FileKind, SourceFile};

/// Lints one in-memory source text under a workspace-relative path.
/// Graph rules run over a degenerate single-file model, so callers must
/// escalate to the caller only within this file.
pub fn lint_source(path: &str, text: &str, kind: FileKind, config: &Config) -> Vec<Finding> {
    let file = SourceFile::parse(path, text, kind);
    let mut findings = rules::run_all(&file, config);
    let files = [file];
    let model = model::WorkspaceModel::build(&files);
    rules::run_workspace(&model, config, &mut findings);
    diag::sort_findings(&mut findings);
    findings
}

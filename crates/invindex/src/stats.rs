//! Document statistics backing the paper's ranking model.
//!
//! All quantities of §IV are served from here:
//!
//! * `N_T` — number of `T`-typed nodes (Formula 3);
//! * `G_T` — number of distinct keywords in subtrees of type `T`
//!   (Formula 2's normalization factor);
//! * `tf(k, T)` — term count of `k` within subtrees rooted at `T`-typed
//!   nodes (Formula 2);
//! * `f^T_k` — *XML DF*: number of `T`-typed nodes containing `k` in their
//!   subtrees (Definition 3.2, Formulas 1 and 3);
//! * `f^T_{ki,kj}` — co-occurrence: number of `T`-typed nodes whose
//!   subtrees contain both keywords (Formula 7), served by
//!   [`crate::cooccur::CoOccurrence`].

use std::collections::HashMap;
use xmldom::NodeTypeId;

/// Dense id of a keyword in the index vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KeywordId(pub u32);

/// Interner for the index vocabulary.
#[derive(Debug, Default, Clone)]
pub struct KeywordTable {
    by_text: HashMap<String, KeywordId>,
    texts: Vec<String>,
}

impl KeywordTable {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn intern(&mut self, keyword: &str) -> KeywordId {
        if let Some(&id) = self.by_text.get(keyword) {
            return id;
        }
        let id = KeywordId(self.texts.len() as u32);
        self.texts.push(keyword.to_string());
        self.by_text.insert(keyword.to_string(), id);
        id
    }

    /// Lookup without interning; `None` means the keyword does not occur
    /// anywhere in the document.
    pub fn get(&self, keyword: &str) -> Option<KeywordId> {
        self.by_text.get(keyword).copied()
    }

    pub fn resolve(&self, id: KeywordId) -> &str {
        &self.texts[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.texts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Iterates the whole vocabulary in id order.
    pub fn iter(&self) -> impl Iterator<Item = (KeywordId, &str)> {
        self.texts
            .iter()
            .enumerate()
            .map(|(i, t)| (KeywordId(i as u32), t.as_str()))
    }
}

/// The frequency tables of §VII ("frequent table").
#[derive(Debug, Default, Clone)]
pub struct TypeStats {
    /// `N_T` indexed by `NodeTypeId`.
    n_nodes: Vec<u64>,
    /// `G_T` indexed by `NodeTypeId`.
    distinct_keywords: Vec<u64>,
    /// `tf(k, T)`.
    tf: HashMap<(NodeTypeId, KeywordId), u64>,
    /// `f^T_k`.
    df: HashMap<(NodeTypeId, KeywordId), u64>,
}

impl TypeStats {
    pub fn new(num_types: usize) -> Self {
        TypeStats {
            n_nodes: vec![0; num_types],
            distinct_keywords: vec![0; num_types],
            tf: HashMap::new(),
            df: HashMap::new(),
        }
    }

    pub(crate) fn bump_n_nodes(&mut self, t: NodeTypeId) {
        self.n_nodes[t.0 as usize] += 1;
    }

    pub(crate) fn add_tf(&mut self, t: NodeTypeId, k: KeywordId, count: u64) {
        *self.tf.entry((t, k)).or_insert(0) += count;
    }

    pub(crate) fn add_df(&mut self, t: NodeTypeId, k: KeywordId, count: u64) {
        let slot = self.df.entry((t, k)).or_insert(0);
        if *slot == 0 && count > 0 {
            self.distinct_keywords[t.0 as usize] += 1;
        }
        *slot += count;
    }

    /// `N_T`: number of nodes of this type.
    pub fn n_nodes(&self, t: NodeTypeId) -> u64 {
        self.n_nodes.get(t.0 as usize).copied().unwrap_or(0)
    }

    /// `G_T`: distinct keywords within subtrees of this type.
    pub fn distinct_keywords(&self, t: NodeTypeId) -> u64 {
        self.distinct_keywords
            .get(t.0 as usize)
            .copied()
            .unwrap_or(0)
    }

    /// `tf(k, T)`.
    pub fn tf(&self, t: NodeTypeId, k: KeywordId) -> u64 {
        self.tf.get(&(t, k)).copied().unwrap_or(0)
    }

    /// `f^T_k` (XML document frequency, Definition 3.2).
    pub fn df(&self, t: NodeTypeId, k: KeywordId) -> u64 {
        self.df.get(&(t, k)).copied().unwrap_or(0)
    }

    /// Number of (type, keyword) entries — the "frequent table" size.
    pub fn df_entries(&self) -> usize {
        self.df.len()
    }

    /// Iterates all `(T, k) -> f^T_k` entries (persistence).
    pub fn iter_df(&self) -> impl Iterator<Item = (NodeTypeId, KeywordId, u64)> + '_ {
        self.df.iter().map(|(&(t, k), &v)| (t, k, v))
    }

    /// Iterates all `(T, k) -> tf(k,T)` entries (persistence).
    pub fn iter_tf(&self) -> impl Iterator<Item = (NodeTypeId, KeywordId, u64)> + '_ {
        self.tf.iter().map(|(&(t, k), &v)| (t, k, v))
    }

    pub(crate) fn set_from_parts(
        n_nodes: Vec<u64>,
        distinct_keywords: Vec<u64>,
        tf: HashMap<(NodeTypeId, KeywordId), u64>,
        df: HashMap<(NodeTypeId, KeywordId), u64>,
    ) -> Self {
        TypeStats {
            n_nodes,
            distinct_keywords,
            tf,
            df,
        }
    }

    pub(crate) fn n_nodes_vec(&self) -> &[u64] {
        &self.n_nodes
    }

    pub(crate) fn distinct_keywords_vec(&self) -> &[u64] {
        &self.distinct_keywords
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_table_interns_and_resolves() {
        let mut t = KeywordTable::new();
        let a = t.intern("xml");
        let b = t.intern("database");
        assert_eq!(t.intern("xml"), a);
        assert_ne!(a, b);
        assert_eq!(t.resolve(b), "database");
        assert_eq!(t.get("nope"), None);
        assert_eq!(t.len(), 2);
        let all: Vec<&str> = t.iter().map(|(_, s)| s).collect();
        assert_eq!(all, ["xml", "database"]);
    }

    #[test]
    fn type_stats_accumulate() {
        let mut s = TypeStats::new(2);
        let t0 = NodeTypeId(0);
        let t1 = NodeTypeId(1);
        let k = KeywordId(7);
        s.bump_n_nodes(t0);
        s.bump_n_nodes(t0);
        s.bump_n_nodes(t1);
        assert_eq!(s.n_nodes(t0), 2);
        assert_eq!(s.n_nodes(t1), 1);

        s.add_tf(t0, k, 3);
        s.add_tf(t0, k, 2);
        assert_eq!(s.tf(t0, k), 5);
        assert_eq!(s.tf(t1, k), 0);

        s.add_df(t0, k, 1);
        s.add_df(t0, k, 1);
        assert_eq!(s.df(t0, k), 2);
        assert_eq!(s.distinct_keywords(t0), 1); // counted once
        assert_eq!(s.distinct_keywords(t1), 0);
        assert_eq!(s.df_entries(), 1);
    }

    #[test]
    fn missing_entries_default_to_zero() {
        let s = TypeStats::new(1);
        assert_eq!(s.n_nodes(NodeTypeId(5)), 0);
        assert_eq!(s.tf(NodeTypeId(0), KeywordId(0)), 0);
        assert_eq!(s.df(NodeTypeId(0), KeywordId(0)), 0);
    }
}

//! Generation-stamped cache insert vs invalidate (production: the
//! `ShardedListCache` in `xrefine`).
//!
//! A cache fill computed under generation `g` may only be inserted if
//! the cache is still at generation `g` — the check happens under the
//! shard lock, so a concurrent invalidation (bump generation, then clear
//! the shard) can never leave a stale entry behind. The seeded bug drops
//! the generation-stamp check at insert: an entry computed before the
//! bump slips in after the clear and survives as a stale hit.

use crate::sched::{explore, Config, Outcome};
use crate::shim::{XAtomicU64, XMutex};

use super::Bug;

pub struct State {
    /// Current cache generation; bumped by the invalidator.
    generation: XAtomicU64,
    /// One cache slot: `(generation it was computed under, value)`.
    slot: XMutex<Option<(u64, u64)>>,
    bug: Bug,
}

fn inserter(s: &State) {
    // Compute a fill under the generation observed at start.
    let g = s.generation.load();
    let value = 7;
    let mut slot = s.slot.lock();
    match s.bug {
        Bug::None => {
            // Production shape: re-check the generation under the lock.
            if s.generation.load() == g {
                *slot = Some((g, value));
            }
        }
        Bug::Seeded => {
            // Seeded bug: no gen-stamp check — insert unconditionally.
            *slot = Some((g, value));
        }
    }
}

fn invalidator(s: &State) {
    // Production order: bump first so in-flight fills fail their
    // re-check, then clear whatever was already inserted.
    s.generation.fetch_add(1);
    let mut slot = s.slot.lock();
    *slot = None;
}

/// Explores insert-vs-invalidate; a violation is a stale entry — one
/// stamped with an older generation than current — surviving to the end.
pub fn check(bug: Bug) -> Outcome {
    explore(
        &Config::default(),
        move || State {
            generation: XAtomicU64::new(0),
            slot: XMutex::new(None),
            bug,
        },
        &[inserter, invalidator],
        |s| {
            let current = s.generation.load();
            match *s.slot.lock() {
                Some((g, _)) if g != current => Err(format!(
                    "stale cache entry: stamped gen {g}, current gen {current}"
                )),
                _ => Ok(()),
            }
        },
    )
}

//! SIGTERM/SIGINT → drain flag, with no signal-handling crate.
//!
//! The zero-dependency discipline extends to process signals: on
//! x86_64 Linux the handler is installed with a raw `rt_sigaction`
//! syscall (`core::arch::asm!`), using a tiny `global_asm!` trampoline
//! as the `SA_RESTORER` (the kernel requires one when libc's is not
//! supplied; it just issues `rt_sigreturn`). The handler body is a
//! single atomic store — the only thing that is async-signal-safe to
//! do — and the serving binary polls [`shutdown_requested`] from its
//! main loop to begin the graceful drain.
//!
//! `SA_RESTART` is set so the acceptor's syscalls resume instead of
//! failing with `EINTR`; the 1ms accept poll notices the flag anyway.
//! On other platforms [`install_handlers`] is a no-op returning
//! `false`, and shutdown is driven by `POST /admin/drain` instead.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the signal handler; never cleared.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Has SIGTERM/SIGINT been delivered since [`install_handlers`]?
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Test/embedding hook: trip the flag as if a signal had arrived.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: u64 = 2;
    const SIGTERM: u64 = 15;
    const SYS_RT_SIGACTION: u64 = 13;
    const SA_RESTORER: u64 = 0x0400_0000;
    const SA_RESTART: u64 = 0x1000_0000;
    /// The kernel's sigset_t is 64 bits on x86_64.
    const SIGSET_BYTES: u64 = 8;

    /// Matches the kernel's `struct sigaction` layout for x86_64 (NOT
    /// libc's — the kernel puts `sa_mask` last).
    #[repr(C)]
    struct KernelSigaction {
        handler: u64,
        flags: u64,
        restorer: u64,
        mask: u64,
    }

    /// Async-signal-safe: one relaxed-free atomic store, nothing else.
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    // SA_RESTORER target: the kernel returns here after the handler and
    // expects an immediate rt_sigreturn (syscall 15).
    std::arch::global_asm!(
        ".global xserve_sigreturn_trampoline",
        "xserve_sigreturn_trampoline:",
        "mov rax, 15",
        "syscall",
    );

    extern "C" {
        fn xserve_sigreturn_trampoline();
    }

    pub fn install() -> bool {
        let act = KernelSigaction {
            handler: on_signal as *const () as usize as u64,
            flags: SA_RESTORER | SA_RESTART,
            restorer: xserve_sigreturn_trampoline as *const () as usize as u64,
            mask: 0,
        };
        let mut ok = true;
        for sig in [SIGINT, SIGTERM] {
            let ret: i64;
            // SAFETY: `act` lives across the syscall; the layout above
            // is the x86_64 kernel ABI; rcx/r11 are clobbered by
            // `syscall` and declared so.
            // xlint::safety(act outlives the syscall; KernelSigaction matches the x86_64 kernel ABI layout; rcx/r11 clobbers are declared)
            unsafe {
                std::arch::asm!(
                    "syscall",
                    inlateout("rax") SYS_RT_SIGACTION as i64 => ret,
                    in("rdi") sig,
                    in("rsi") &act as *const KernelSigaction,
                    in("rdx") 0u64,
                    in("r10") SIGSET_BYTES,
                    lateout("rcx") _,
                    lateout("r11") _,
                    options(nostack),
                );
            }
            ok &= ret == 0;
        }
        ok
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    /// No raw-syscall path on this platform; drain via `/admin/drain`.
    pub fn install() -> bool {
        false
    }
}

/// Installs SIGTERM and SIGINT handlers that set the shutdown flag.
/// Returns `false` when unsupported on this platform (or if the
/// syscall failed) — callers should fall back to `/admin/drain`.
pub fn install_handlers() -> bool {
    imp::install()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_shutdown_trips_the_flag() {
        // The flag is process-global and sticky; this test must not
        // assume it starts clear if another test signalled first.
        request_shutdown();
        assert!(shutdown_requested());
    }

    #[test]
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    fn handlers_install_and_survive_a_real_signal() {
        assert!(install_handlers());
        // Deliver a real SIGTERM to ourselves through the raw kill
        // syscall and confirm the handler (not the default action,
        // which would kill the process) runs and sets the flag.
        let pid = std::process::id() as u64;
        let ret: i64;
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 62i64 => ret, // SYS_kill
                in("rdi") pid,
                in("rsi") 15u64, // SIGTERM
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        assert_eq!(ret, 0);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while !shutdown_requested() && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert!(shutdown_requested());
    }
}

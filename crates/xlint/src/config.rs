//! Analyzer configuration: rule path scopes, the declared lock
//! hierarchy, and the documentation-derived metric/span catalogue.
//!
//! Path scopes are workspace policy and live here as code — they change
//! when the architecture changes, which is a reviewed event. The lock
//! hierarchy lives in `crates/xlint/lockorder.toml` (one rank per named
//! lock) because it must be diffable next to the lock-site annotations
//! it governs, and the metric catalogue is *extracted from DESIGN.md*
//! so the docs are the single source of truth the code is checked
//! against.

use std::collections::{BTreeMap, BTreeSet};

/// Everything the rules consult.
#[derive(Debug, Clone)]
pub struct Config {
    /// Lock name -> rank. Locks must be acquired in strictly increasing
    /// rank order.
    pub lock_ranks: BTreeMap<String, u32>,
    /// Path prefixes where every bare `.lock()`/`.read()`/`.write()`
    /// call must carry an `xlint::lock(...)` annotation.
    pub lock_paths: Vec<String>,
    /// Paths where panicking constructs are forbidden outside tests.
    pub no_panic_paths: Vec<String>,
    /// Subset of `no_panic_paths` where data-dependent `[]` indexing is
    /// also forbidden (buffers there come from disk).
    pub index_paths: Vec<String>,
    /// Paths where `Instant::now`/`SystemTime::now` are forbidden.
    pub wallclock_paths: Vec<String>,
    /// Paths where `KvError::Corrupt` must carry non-empty context.
    pub error_context_paths: Vec<String>,
    /// Metric and span names the documentation declares.
    pub catalogue: BTreeSet<String>,
    /// Valid `<crate>_` prefixes for metric names.
    pub metric_crates: Vec<String>,
    /// Valid `_<unit>` suffixes for metric names.
    pub metric_units: Vec<String>,
    /// Durability protocol: `(trigger, successor)` call pairs from the
    /// DESIGN.md protocol table. A call to `trigger` must be followed by
    /// a call to `successor` in the same function or in every caller.
    pub protocol: Vec<(String, String)>,
    /// Paths where the durability protocol applies.
    pub durability_paths: Vec<String>,
    /// Files exempt from it: the Vfs layer *implements* the primitives
    /// the protocol is stated in terms of.
    pub durability_exempt: Vec<String>,
    /// Decode-path files whose inputs are raw disk/network bytes; the
    /// checked-arithmetic rule applies here.
    pub untrusted_paths: Vec<String>,
    /// Function names whose return values are untrusted (varint and
    /// label readers over raw bytes).
    pub untrusted_sources: Vec<String>,
    /// Parameter names treated as raw untrusted bytes inside decode
    /// entry points (see `untrusted_fn_markers`).
    pub untrusted_params: Vec<String>,
    /// Substrings that mark a function as a decode entry point: its
    /// `untrusted_params` start out tainted.
    pub untrusted_fn_markers: Vec<String>,
}

impl Config {
    /// The workspace policy, with an empty hierarchy and catalogue (fill
    /// those from `lockorder.toml` / `DESIGN.md`, or set them directly
    /// in tests).
    pub fn workspace_defaults() -> Config {
        Config {
            lock_ranks: BTreeMap::new(),
            lock_paths: vec![
                "crates/kvstore/src/".into(),
                "crates/invindex/src/".into(),
                "crates/obs/src/".into(),
                "crates/xserve/src/".into(),
            ],
            no_panic_paths: vec![
                "crates/kvstore/src/codec.rs".into(),
                "crates/kvstore/src/pager.rs".into(),
                "crates/kvstore/src/wal.rs".into(),
                "crates/kvstore/src/btree.rs".into(),
                "crates/kvstore/src/durable.rs".into(),
                "crates/invindex/src/persist.rs".into(),
                "crates/invindex/src/postings.rs".into(),
                "crates/invindex/src/cursor.rs".into(),
                "crates/invindex/src/kvindex.rs".into(),
                "crates/xmldom/src/scan.rs".into(),
                "crates/xserve/src/http.rs".into(),
                "crates/xserve/src/conn.rs".into(),
                "crates/xserve/src/queue.rs".into(),
            ],
            index_paths: vec![
                "crates/kvstore/src/codec.rs".into(),
                "crates/kvstore/src/pager.rs".into(),
                "crates/kvstore/src/wal.rs".into(),
                "crates/invindex/src/persist.rs".into(),
                "crates/invindex/src/postings.rs".into(),
                "crates/invindex/src/cursor.rs".into(),
                "crates/xserve/src/http.rs".into(),
            ],
            wallclock_paths: vec!["crates/slca/src/".into(), "crates/xrefine/src/".into()],
            error_context_paths: vec!["crates/kvstore/src/".into(), "crates/invindex/src/".into()],
            catalogue: BTreeSet::new(),
            metric_crates: vec![
                "kvstore".into(),
                "invindex".into(),
                "slca".into(),
                "xrefine".into(),
                "obs".into(),
                "xmldom".into(),
                "lexicon".into(),
                "serve".into(),
                "maint".into(),
                "compress".into(),
            ],
            metric_units: vec![
                "total".into(),
                "bytes".into(),
                "nanos".into(),
                "seconds".into(),
                "requests".into(),
                "connections".into(),
                "entries".into(),
            ],
            protocol: Vec::new(),
            durability_paths: vec!["crates/kvstore/src/".into(), "crates/invindex/src/".into()],
            durability_exempt: vec![
                "crates/kvstore/src/vfs.rs".into(),
                "crates/kvstore/src/fsutil.rs".into(),
            ],
            untrusted_paths: vec![
                "crates/invindex/src/postings.rs".into(),
                "crates/invindex/src/persist.rs".into(),
                "crates/invindex/src/cursor.rs".into(),
                "crates/xserve/src/http.rs".into(),
            ],
            untrusted_sources: vec![
                "read_varint".into(),
                "read_u32_varint".into(),
                "read_dewey_abs".into(),
                "read_dewey_front_coded".into(),
                "from_le_bytes".into(),
                "from_be_bytes".into(),
            ],
            untrusted_params: vec![
                "bytes".into(),
                "payload".into(),
                "buf".into(),
                "data".into(),
                "raw".into(),
            ],
            untrusted_fn_markers: vec![
                "decode".into(),
                "parse".into(),
                "read".into(),
                "unframe".into(),
                "scan".into(),
            ],
        }
    }

    /// Does `path` fall under any of the given scope prefixes?
    pub fn in_scope(path: &str, scopes: &[String]) -> bool {
        scopes.iter().any(|s| path.starts_with(s.as_str()))
    }
}

/// Parses the `lockorder.toml` subset: comments, a `[locks]` section
/// header, and `"name" = rank` entries (names are quoted because they
/// contain dots).
pub fn parse_lockorder(text: &str) -> Result<BTreeMap<String, u32>, String> {
    let mut ranks = BTreeMap::new();
    let mut in_locks = false;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            in_locks = line == "[locks]";
            continue;
        }
        if !in_locks {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("lockorder.toml:{}: expected `\"name\" = rank`", i + 1))?;
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim();
        let rank: u32 = value
            .parse()
            .map_err(|_| format!("lockorder.toml:{}: rank `{value}` is not an integer", i + 1))?;
        if ranks.values().any(|&r| r == rank) {
            return Err(format!(
                "lockorder.toml:{}: rank {rank} assigned to more than one lock",
                i + 1
            ));
        }
        if ranks.insert(key.clone(), rank).is_some() {
            return Err(format!(
                "lockorder.toml:{}: lock `{key}` declared twice",
                i + 1
            ));
        }
    }
    if ranks.is_empty() {
        return Err("lockorder.toml declares no locks".into());
    }
    Ok(ranks)
}

/// Extracts the metric/span catalogue from DESIGN.md: every
/// backtick-quoted name between the `<!-- xlint:catalogue:begin -->` and
/// `<!-- xlint:catalogue:end -->` markers that looks like a metric
/// (`snake_case`), a count key (`dotted.name`) or a span name
/// (`kebab-case` / bare word).
pub fn parse_catalogue(design_md: &str) -> Result<BTreeSet<String>, String> {
    let begin = design_md
        .find("<!-- xlint:catalogue:begin -->")
        .ok_or("DESIGN.md is missing the `<!-- xlint:catalogue:begin -->` marker")?;
    let end = design_md
        .find("<!-- xlint:catalogue:end -->")
        .ok_or("DESIGN.md is missing the `<!-- xlint:catalogue:end -->` marker")?;
    if end < begin {
        return Err("DESIGN.md catalogue markers are out of order".into());
    }
    let section = &design_md[begin..end];
    let mut names = BTreeSet::new();
    let mut rest = section;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        let candidate = &after[..close];
        if !candidate.is_empty()
            && candidate
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._-".contains(c))
        {
            names.insert(candidate.to_string());
        }
        rest = &after[close + 1..];
    }
    if names.is_empty() {
        return Err("DESIGN.md catalogue section quotes no names".into());
    }
    Ok(names)
}

/// Extracts the durability-protocol table from DESIGN.md: every table
/// row between the `<!-- xlint:protocol:begin -->` and
/// `<!-- xlint:protocol:end -->` markers contributes its first two
/// backtick-quoted names as a `(trigger, required successor)` pair.
/// Header and divider rows quote nothing, so they drop out naturally.
pub fn parse_protocol(design_md: &str) -> Result<Vec<(String, String)>, String> {
    let begin = design_md
        .find("<!-- xlint:protocol:begin -->")
        .ok_or("DESIGN.md is missing the `<!-- xlint:protocol:begin -->` marker")?;
    let end = design_md
        .find("<!-- xlint:protocol:end -->")
        .ok_or("DESIGN.md is missing the `<!-- xlint:protocol:end -->` marker")?;
    if end < begin {
        return Err("DESIGN.md protocol markers are out of order".into());
    }
    let mut pairs = Vec::new();
    for line in design_md[begin..end].lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let mut names = Vec::new();
        let mut rest = line;
        while let Some(open) = rest.find('`') {
            let after = &rest[open + 1..];
            let Some(close) = after.find('`') else { break };
            let candidate = &after[..close];
            if !candidate.is_empty()
                && candidate
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            {
                names.push(candidate.to_string());
            }
            rest = &after[close + 1..];
        }
        if names.len() >= 2 {
            pairs.push((names[0].clone(), names[1].clone()));
        }
    }
    if pairs.is_empty() {
        return Err("DESIGN.md protocol section declares no trigger/successor pairs".into());
    }
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lockorder_parses_quoted_names_and_rejects_duplicates() {
        let ranks =
            parse_lockorder("# hierarchy\n[locks]\n\"kvindex.store\" = 10\n\"cache.shard\" = 20\n")
                .unwrap();
        assert_eq!(ranks["kvindex.store"], 10);
        assert_eq!(ranks["cache.shard"], 20);

        assert!(parse_lockorder("[locks]\n\"a\" = 1\n\"a\" = 2\n").is_err());
        assert!(parse_lockorder("[locks]\n\"a\" = 1\n\"b\" = 1\n").is_err());
        assert!(parse_lockorder("[locks]\n\"a\" = x\n").is_err());
        assert!(parse_lockorder("").is_err());
    }

    #[test]
    fn catalogue_extraction_is_marker_scoped() {
        let md = "\
intro `not_collected_here`\n\
<!-- xlint:catalogue:begin -->\n\
| kvstore | `kvstore_pager_syncs_total`, `invindex_cache_resident_bytes` |\n\
count keys `pages.read`; spans `query`, `stack-refine`.\n\
Ignores `CamelCase` and `has space` and `obs::counter!`.\n\
<!-- xlint:catalogue:end -->\n\
outro `also_not_collected`\n";
        let names = parse_catalogue(md).unwrap();
        assert!(names.contains("kvstore_pager_syncs_total"));
        assert!(names.contains("invindex_cache_resident_bytes"));
        assert!(names.contains("pages.read"));
        assert!(names.contains("query"));
        assert!(names.contains("stack-refine"));
        assert!(!names.contains("not_collected_here"));
        assert!(!names.contains("also_not_collected"));
        assert!(!names.iter().any(|n| n.contains(':') || n.contains(' ')));
    }

    #[test]
    fn catalogue_requires_markers() {
        assert!(parse_catalogue("no markers at all").is_err());
    }

    #[test]
    fn protocol_extraction_skips_headers_and_prose() {
        let md = "\
prose mentioning `rename` outside the table\n\
<!-- xlint:protocol:begin -->\n\
| trigger | required successor | why |\n\
|---|---|---|\n\
| `rename` | `sync_parent_dir` | the dirent is volatile until synced |\n\
prose row-free line quoting `only_one_name`\n\
<!-- xlint:protocol:end -->\n";
        let pairs = parse_protocol(md).unwrap();
        assert_eq!(
            pairs,
            vec![("rename".to_string(), "sync_parent_dir".to_string())]
        );
    }

    #[test]
    fn protocol_requires_markers_and_rows() {
        assert!(parse_protocol("no markers").is_err());
        assert!(parse_protocol(
            "<!-- xlint:protocol:begin -->\nno rows\n<!-- xlint:protocol:end -->\n"
        )
        .is_err());
    }
}

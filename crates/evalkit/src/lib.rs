//! `evalkit` — effectiveness evaluation (§VIII-C).
//!
//! * [`cg`]: Cumulated Gain / DCG vectors and cross-query averaging;
//! * [`oracle`]: the deterministic graded-relevance oracle substituting
//!   for the paper's six human judges (ground truth comes from the
//!   workload generator);
//! * [`harness`]: runs ranking-model variants (RS0–RS4, α/β sweeps) over
//!   a workload and produces the CG@K rows of Tables IX and X.

pub mod cg;
pub mod harness;
pub mod oracle;

pub use cg::{
    average_cg, cumulated_gain, discounted_cumulated_gain, ideal_gains, ndcg, reciprocal_rank,
};
pub use harness::{evaluate_ranking, evaluate_with_engine, refinement_pool, CgRow};
pub use oracle::{gain_vector, grade};

//! Crash-torture for the updating store: a mixed read/update/compact
//! workload with a power cut at **every mutating I/O boundary**, under
//! all three [`SurvivalMode`]s.
//!
//! Protocol per cut position and mode:
//!
//! 1. replay the deterministic plan fault-free once, recording the
//!    merged store dump after every committed transaction (`dumps[s]`);
//! 2. rebuild the same filesystem, arm a power cut at the boundary,
//!    rerun the plan until the filesystem dies, noting how many commits
//!    were acknowledged (`A`);
//! 3. restore power, reopen the store (WAL recovery) and assert
//!    **committed-prefix consistency**: the recovered maintenance
//!    sequence `s` is `A` or `A + 1` (a cut can land after the commit
//!    record hit the log but before the call returned) and the merged
//!    dump is byte-identical to `dumps[s]` — never a torn mixture;
//! 4. assert **recovery continues to completion**: re-issue the rest of
//!    the plan from commit `s + 1` and end byte-identical to the
//!    fault-free final state.
//!
//! The plan holds 500+ logical operations (reads dominate, ~60 commits,
//! periodic compactions). Debug builds stride the cut sweep to keep
//! tier-1 fast; the `maintenance` suite and CI run the full sweep in
//! release (`MAINT_TORTURE_STRIDE=1`).
//!
//! The seed persists at the *current* format version, so since v4 the
//! whole sweep tortures a **compressed** store: every recovery dump
//! byte-compare covers blocked posting lists, the DAG document blob and
//! the packed stat tables (`seed_store` asserts the version to keep
//! this guarantee visible).

use invindex::maint::{MaintIndex, MaintOp};
use invindex::{build_streaming, persist, IndexReader};
use kvstore::{DiskKv, Fault, FaultVfs, KvStore, SurvivalMode, Vfs};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const SEED_CORPUS: &str = "<bib>\
    <paper><title>xml keyword search</title></paper>\
    <paper><title>query refinement ranking</title></paper>\
    </bib>";

const READ_POOL: &[&str] = &["xml", "keyword", "query", "stack", "epoch", "absent"];

#[derive(Debug, Clone)]
enum PlanOp {
    Commit(Vec<MaintOp>),
    Compact,
    Read(usize),
}

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Deterministic mixed workload: 500+ logical ops, ~60 commits with
/// interleaved removes, a compaction every 10 commits, reads between.
/// Remove slots are validated against the simulated record count so the
/// plan replays cleanly from any committed prefix.
fn build_plan() -> Vec<PlanOp> {
    const WORDS: &[&str] = &[
        "xml", "keyword", "query", "stack", "epoch", "wal", "torture",
    ];
    let mut rng = XorShift(0x70CC_0001);
    let mut plan = Vec::new();
    let mut live = 2usize; // records in SEED_CORPUS
    let mut commits = 0usize;
    while commits < 60 {
        for _ in 0..(3 + rng.below(10)) {
            plan.push(PlanOp::Read(rng.below(READ_POOL.len() as u64) as usize));
        }
        let mut ops = Vec::new();
        if live > 1 && rng.below(3) == 0 {
            ops.push(MaintOp::Remove {
                slot: rng.below(live as u64) as usize,
            });
            live -= 1;
        } else {
            let a = WORDS[rng.below(WORDS.len() as u64) as usize];
            let b = WORDS[rng.below(WORDS.len() as u64) as usize];
            ops.push(MaintOp::Add {
                fragment: format!("<paper><title>{a} {b}</title></paper>"),
            });
            live += 1;
        }
        plan.push(PlanOp::Commit(ops));
        commits += 1;
        if commits.is_multiple_of(10) {
            plan.push(PlanOp::Compact);
        }
    }
    assert!(plan.len() >= 500, "plan too small: {} ops", plan.len());
    plan
}

fn seed_store(vfs: &Arc<dyn Vfs>, base: &Path) {
    let built = build_streaming(SEED_CORPUS, 1).unwrap();
    let mut disk = DiskKv::open_with_vfs(vfs, &base.with_extension("db")).unwrap();
    persist::persist(&built, &mut disk).unwrap();
    disk.sync().unwrap();
    // The sweep must exercise the compressed (v4) format.
    assert_eq!(
        disk.get(b"M/version").unwrap().as_deref(),
        Some([persist::FORMAT_VERSION as u8].as_slice()),
        "torture seed is not a current-format store"
    );
}

/// Merged store dump through the current snapshot (pure reads: takes no
/// mutating vfs ops, so it never perturbs the cut alignment).
fn dump(maint: &MaintIndex) -> BTreeMap<Vec<u8>, Vec<u8>> {
    maint
        .snapshot()
        .store_dump()
        .expect("snapshot dump")
        .into_iter()
        .collect()
}

/// Runs the plan to completion (no faults expected). Returns the dump
/// after every commit, keyed by maintenance sequence.
fn reference_run(maint: &MaintIndex, plan: &[PlanOp]) -> BTreeMap<u64, BTreeMap<Vec<u8>, Vec<u8>>> {
    let mut dumps = BTreeMap::new();
    dumps.insert(maint.seq(), dump(maint));
    for op in plan {
        match op {
            PlanOp::Commit(ops) => {
                let r = maint.commit(ops).expect("fault-free commit");
                dumps.insert(r.seq, dump(maint));
            }
            PlanOp::Compact => {
                maint.compact().expect("fault-free compact");
            }
            PlanOp::Read(i) => {
                let h = maint
                    .snapshot()
                    .list_handle(READ_POOL[*i])
                    .expect("fault-free read");
                drop(h);
            }
        }
    }
    dumps
}

/// Runs the plan until the filesystem dies. Returns acknowledged
/// commits; panics on any error while the filesystem is still up.
fn run_until_dead(vfs: &FaultVfs, maint: &MaintIndex, plan: &[PlanOp]) -> u64 {
    let mut acked = maint.seq();
    for op in plan {
        let failed = match op {
            PlanOp::Commit(ops) => match maint.commit(ops) {
                Ok(r) => {
                    acked = r.seq;
                    false
                }
                Err(_) => true,
            },
            PlanOp::Compact => maint.compact().is_err(),
            PlanOp::Read(i) => maint.snapshot().list_handle(READ_POOL[*i]).is_err(),
        };
        if failed {
            assert!(
                vfs.is_dead(),
                "operation failed while the filesystem was up"
            );
            return acked;
        }
    }
    acked
}

/// Re-issues the plan from after the `recovered`-th commit and asserts
/// the final state matches the fault-free final dump.
fn finish_plan(
    maint: &MaintIndex,
    plan: &[PlanOp],
    recovered: u64,
    final_dump: &BTreeMap<Vec<u8>, Vec<u8>>,
) {
    let mut commit_no = 0u64;
    for op in plan {
        match op {
            PlanOp::Commit(ops) => {
                commit_no += 1;
                if commit_no <= recovered {
                    continue;
                }
                maint.commit(ops).expect("catch-up commit");
            }
            PlanOp::Compact => {
                if commit_no >= recovered {
                    maint.compact().expect("catch-up compact");
                }
            }
            PlanOp::Read(i) => {
                if commit_no >= recovered {
                    let _ = maint
                        .snapshot()
                        .list_handle(READ_POOL[*i])
                        .expect("catch-up read");
                }
            }
        }
    }
    assert_eq!(&dump(maint), final_dump, "catch-up diverged from reference");
}

fn stride() -> u64 {
    if let Ok(s) = std::env::var("MAINT_TORTURE_STRIDE") {
        return s.parse().expect("MAINT_TORTURE_STRIDE must be a number");
    }
    if cfg!(debug_assertions) {
        17
    } else {
        1
    }
}

#[test]
fn power_cut_at_every_io_boundary_recovers_to_a_committed_prefix() {
    let plan = build_plan();
    let base = PathBuf::from("/torture/store.db");

    // Fault-free reference pass: per-commit dumps + the op-count window.
    let vfs = FaultVfs::new();
    let dynvfs = vfs.as_dyn();
    seed_store(&dynvfs, &base);
    let setup_ops = vfs.op_count();
    let maint = MaintIndex::open_with_vfs(Arc::clone(&dynvfs), &base).unwrap();
    let dumps = reference_run(&maint, &plan);
    let total_ops = vfs.op_count();
    drop(maint);
    let last_seq = *dumps.keys().next_back().unwrap();
    let final_dump = &dumps[&last_seq];
    assert!(total_ops > setup_ops + 100, "workload too quiet to torture");

    let mut boundaries_cut = 0u64;
    for mode in [
        SurvivalMode::LoseUnsynced,
        SurvivalMode::KeepUnsynced,
        SurvivalMode::TornTail,
    ] {
        let mut cut = setup_ops;
        while cut < total_ops {
            // Fresh filesystem, identical seeding, cut armed at `cut`.
            let vfs = FaultVfs::new();
            let dynvfs = vfs.as_dyn();
            seed_store(&dynvfs, &base);
            assert_eq!(vfs.op_count(), setup_ops, "seeding drifted");
            vfs.set_fault(cut, Fault::PowerCut(mode));

            let acked = match MaintIndex::open_with_vfs(Arc::clone(&dynvfs), &base) {
                Ok(maint) => run_until_dead(&vfs, &maint, &plan),
                Err(_) => {
                    assert!(vfs.is_dead(), "open failed while the filesystem was up");
                    0
                }
            };
            assert!(vfs.fault_fired(), "cut {cut} ({mode:?}): fault never fired");
            vfs.power_cycle();

            // Committed-prefix consistency.
            let maint = MaintIndex::open_with_vfs(Arc::clone(&dynvfs), &base)
                .unwrap_or_else(|e| panic!("cut {cut} ({mode:?}): recovery failed: {e}"));
            let recovered = maint.seq();
            assert!(
                recovered == acked || recovered == acked + 1,
                "cut {cut} ({mode:?}): recovered seq {recovered}, acked {acked}"
            );
            let got = dump(&maint);
            assert_eq!(
                &got, &dumps[&recovered],
                "cut {cut} ({mode:?}): recovered state is not the committed prefix {recovered}"
            );

            // Recovery continues to completion.
            finish_plan(&maint, &plan, recovered, final_dump);

            boundaries_cut += 1;
            cut += stride();
        }
    }
    assert!(boundaries_cut >= 3, "sweep never cut anything");
}

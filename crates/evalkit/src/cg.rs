//! Cumulated-Gain evaluation (Järvelin & Kekäläinen \[27\], §VIII-C).
//!
//! Given a ranked result list turned into a gain vector `G` (graded
//! relevance per rank), `CG[i] = G\[1\] + ... + G[i]`. The paper reports
//! CG@1..4 averaged over queries; we also provide DCG and the ideal
//! vector for completeness.

/// Cumulated gain vector: `CG[i] = Σ_{j<=i} G[j]` (1-based in the paper;
/// index 0 here is CG@1).
pub fn cumulated_gain(gains: &[f64]) -> Vec<f64> {
    gains
        .iter()
        .scan(0.0, |acc, &g| {
            *acc += g;
            Some(*acc)
        })
        .collect()
}

/// Discounted cumulated gain with log2 discount starting at rank 2.
pub fn discounted_cumulated_gain(gains: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    gains
        .iter()
        .enumerate()
        .map(|(i, &g)| {
            let rank = i + 1;
            acc += if rank < 2 {
                g
            } else {
                g / (rank as f64).log2()
            };
            acc
        })
        .collect()
}

/// The ideal gain vector: the same gains sorted descending.
pub fn ideal_gains(gains: &[f64]) -> Vec<f64> {
    let mut v = gains.to_vec();
    v.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    v
}

/// Reciprocal rank: `1 / rank` of the first result with gain at least
/// `threshold`, or 0 when none qualifies (the binary-judgement metric the
/// paper contrasts CG against in §VIII-C).
pub fn reciprocal_rank(gains: &[f64], threshold: f64) -> f64 {
    gains
        .iter()
        .position(|&g| g >= threshold)
        .map(|i| 1.0 / (i + 1) as f64)
        .unwrap_or(0.0)
}

/// Normalized DCG: `DCG[i] / IDCG[i]`, with `nDCG[i] = 0` where the ideal
/// is zero (no relevant results exist at all).
pub fn ndcg(gains: &[f64]) -> Vec<f64> {
    let dcg = discounted_cumulated_gain(gains);
    let idcg = discounted_cumulated_gain(&ideal_gains(gains));
    dcg.iter()
        .zip(idcg.iter())
        .map(|(&d, &i)| if i > 0.0 { d / i } else { 0.0 })
        .collect()
}

/// Averages CG vectors of equal length `k` across queries (vectors
/// shorter than `k` are zero-padded: a missing result gains nothing).
pub fn average_cg(per_query: &[Vec<f64>], k: usize) -> Vec<f64> {
    if per_query.is_empty() {
        return vec![0.0; k];
    }
    let mut sums = vec![0.0; k];
    for cg in per_query {
        for (i, slot) in sums.iter_mut().enumerate() {
            // CG is monotone; pad by carrying the last value forward.
            let v = cg
                .get(i)
                .copied()
                .or_else(|| cg.last().copied())
                .unwrap_or(0.0);
            *slot += v;
        }
    }
    for s in &mut sums {
        *s /= per_query.len() as f64;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cg_accumulates() {
        assert_eq!(cumulated_gain(&[3.0, 2.0, 0.0, 1.0]), [3.0, 5.0, 5.0, 6.0]);
        assert!(cumulated_gain(&[]).is_empty());
    }

    #[test]
    fn dcg_discounts_later_ranks() {
        let d = discounted_cumulated_gain(&[3.0, 2.0, 2.0]);
        assert_eq!(d[0], 3.0);
        // rank 2 discount is log2(2)=1, rank 3 is log2(3)
        assert!((d[1] - 5.0).abs() < 1e-9);
        assert!((d[2] - (5.0 + 2.0 / 3f64.log2())).abs() < 1e-9);
    }

    #[test]
    fn ideal_sorts_descending() {
        assert_eq!(ideal_gains(&[1.0, 3.0, 2.0]), [3.0, 2.0, 1.0]);
    }

    #[test]
    fn reciprocal_rank_finds_first_relevant() {
        assert_eq!(reciprocal_rank(&[0.0, 0.0, 3.0], 2.0), 1.0 / 3.0);
        assert_eq!(reciprocal_rank(&[3.0], 2.0), 1.0);
        assert_eq!(reciprocal_rank(&[1.0, 1.0], 2.0), 0.0);
        assert_eq!(reciprocal_rank(&[], 1.0), 0.0);
    }

    #[test]
    fn ndcg_is_one_for_ideal_ordering_and_bounded() {
        let n = ndcg(&[3.0, 2.0, 1.0]);
        assert!(n.iter().all(|&v| (v - 1.0).abs() < 1e-9));
        let n = ndcg(&[1.0, 2.0, 3.0]);
        assert!(n.iter().all(|&v| v > 0.0 && v <= 1.0));
        assert!(n[0] < 1.0);
        // all-zero gains: nDCG defined as 0
        assert_eq!(ndcg(&[0.0, 0.0]), [0.0, 0.0]);
    }

    #[test]
    fn average_pads_with_carry() {
        let a = vec![vec![3.0, 5.0], vec![1.0]];
        // query 2 has one result: CG@2 carries 1.0
        assert_eq!(average_cg(&a, 2), [2.0, 3.0]);
        assert_eq!(average_cg(&[], 3), [0.0, 0.0, 0.0]);
    }
}

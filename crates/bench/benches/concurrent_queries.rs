//! Concurrent serving throughput: one kv-backed `XRefineEngine` shared
//! behind an `Arc`, the same query workload answered by 1/2/4/8 threads.
//! Reports per-configuration throughput and the speedup over the
//! single-thread run — the scaling evidence for the sharded cache +
//! RwLock'ed store read path.
//!
//! Plain `main` (harness = false): the measurement is a wall-clock
//! throughput table, not a statistical microbenchmark.

use bench::{dblp, f3, Table};
use datagen::{generate_workload, WorkloadConfig};
use invindex::{persist, Index, KvBackedIndex};
use kvstore::MemKv;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use xrefine::{EngineConfig, Query, XRefineEngine};

fn kv_engine(doc: &Arc<xmldom::Document>) -> Arc<XRefineEngine> {
    let built = Index::build(Arc::clone(doc));
    let mut store = MemKv::new();
    persist::persist(&built, &mut store).unwrap();
    let reader = KvBackedIndex::open(Box::new(store)).unwrap();
    Arc::new(XRefineEngine::from_reader(
        Arc::new(reader),
        EngineConfig::default(),
    ))
}

/// Answers the whole workload once per repetition, striped over
/// `threads` workers; returns queries-per-second.
fn run(engine: &Arc<XRefineEngine>, workload: &[Vec<String>], threads: usize, reps: usize) -> f64 {
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let engine = Arc::clone(engine);
            s.spawn(move || {
                for _ in 0..reps {
                    for kw in workload.iter().skip(tid).step_by(threads) {
                        let q = Query::from_keywords(kw.iter().cloned());
                        black_box(engine.answer_query(q).expect("query answered"));
                    }
                }
            });
        }
    });
    let answered = workload.len() * reps;
    answered as f64 / start.elapsed().as_secs_f64()
}

fn main() {
    let doc = dblp(0.05);
    let workload: Vec<Vec<String>> = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 3,
            ..Default::default()
        },
    )
    .into_iter()
    .map(|q| q.keywords)
    .collect();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "corpus: {} nodes; workload: {} queries; host parallelism: {cores}",
        doc.len(),
        workload.len()
    );
    if cores < 4 {
        println!("note: fewer than 4 cores — speedup is bounded by the host, not the engine");
    }

    let engine = kv_engine(&doc);
    // warm the cache once so every configuration sees the same
    // steady-state store (the interesting contention is cache + engine,
    // not first-touch decoding)
    run(&engine, &workload, 1, 1);

    let reps = 6;
    let mut table = Table::new(&["threads", "q/s", "speedup"]);
    let mut base = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let qps = run(&engine, &workload, threads, reps);
        if threads == 1 {
            base = qps;
        }
        table.row(vec![
            threads.to_string(),
            format!("{qps:.1}"),
            f3(qps / base),
        ]);
    }
    table.print();
}

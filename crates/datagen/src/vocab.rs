//! Term pools for the synthetic corpora.
//!
//! The DBLP generator needs realistic bibliographic vocabulary so that
//! the lexical machinery (synonyms, stemming, acronym expansion) has real
//! material to work with; the pools below include the terms every worked
//! example of the paper uses (online, database, skyline, keyword, twig,
//! machine, learning, world wide web, ...).

/// Title terms, ordered roughly by intended frequency rank (the Zipf
/// sampler maps rank 0 to the first entry).
pub const TITLE_TERMS: &[&str] = &[
    "data",
    "database",
    "query",
    "xml",
    "system",
    "efficient",
    "search",
    "keyword",
    "web",
    "processing",
    "online",
    "analysis",
    "model",
    "distributed",
    "stream",
    "optimization",
    "indexing",
    "mining",
    "learning",
    "machine",
    "algorithm",
    "semantic",
    "relational",
    "storage",
    "parallel",
    "twig",
    "pattern",
    "join",
    "skyline",
    "computation",
    "matching",
    "retrieval",
    "information",
    "ranking",
    "schema",
    "integration",
    "cache",
    "transaction",
    "adaptive",
    "scalable",
    "approximate",
    "aggregation",
    "clustering",
    "classification",
    "graph",
    "tree",
    "spatial",
    "temporal",
    "probabilistic",
    "uncertain",
    "top",
    "nearest",
    "neighbor",
    "similarity",
    "wide",
    "world",
    "service",
    "peer",
    "sensor",
    "network",
    "wireless",
    "mobile",
    "security",
    "privacy",
    "compression",
    "sampling",
    "estimation",
    "view",
    "materialized",
    "warehouse",
    "olap",
    "cube",
    "workflow",
    "provenance",
    "lineage",
    "benchmark",
    "evaluation",
    "tuning",
    "recovery",
    "concurrency",
    "locking",
    "logging",
    "partitioning",
    "replication",
    "consistency",
    "availability",
    "fault",
    "tolerance",
    "continuous",
    "window",
    "event",
    "complex",
    "detection",
    "filtering",
    "publish",
    "subscribe",
    "ontology",
    "reasoning",
    "rdf",
    "sparql",
    "xpath",
    "xquery",
    "twigstack",
    "holistic",
    "structural",
    "labeling",
    "dewey",
    "encoding",
    "numbering",
    "fragment",
    "dissemination",
    "routing",
    "selectivity",
    "cardinality",
    "histogram",
    "wavelet",
    "sketch",
    "synopsis",
    "summarization",
    "deduplication",
    "cleaning",
    "entity",
    "resolution",
    "extraction",
    "annotation",
    "crawling",
    "pagerank",
    "authority",
    "hub",
    "social",
    "recommendation",
    "collaborative",
    "content",
    "multimedia",
    "image",
    "video",
    "audio",
    "text",
    "document",
    "corpus",
    "language",
    "translation",
    "visualization",
    "interactive",
    "exploration",
    "navigation",
    "browsing",
    "interface",
    "usability",
    "keyword2",
    "proximity",
    "lca",
    "slca",
    "refinement",
    "suggestion",
    "expansion",
    "correction",
    "spelling",
    "feedback",
    "relevance",
    "precision",
    "recall",
];

/// First names for authors.
pub const FIRST_NAMES: &[&str] = &[
    "john", "mike", "wei", "jia", "anna", "david", "maria", "chen", "lucas", "sofia", "liang",
    "emma", "noah", "olivia", "li", "yun", "hans", "petra", "ivan", "elena", "raj", "priya",
    "omar", "fatima", "kenji", "yuki", "carlos", "lucia", "pierre", "claire", "marco", "giulia",
    "sven", "ingrid", "pavel", "nadia", "tom", "alice", "bob", "carol", "xiaofeng", "zhifeng",
    "jiaheng", "tok",
];

/// Last names for authors.
pub const LAST_NAMES: &[&str] = &[
    "smith", "franklin", "zhang", "wang", "li", "chen", "liu", "yang", "huang", "zhao", "wu",
    "zhou", "muller", "schmidt", "johnson", "williams", "brown", "jones", "garcia", "martinez",
    "silva", "santos", "kumar", "singh", "patel", "tanaka", "suzuki", "sato", "kim", "park", "lee",
    "nguyen", "tran", "ivanov", "petrov", "rossi", "ricci", "dubois", "laurent", "bao", "lu",
    "ling", "meng",
];

/// Conference names (booktitle values).
pub const VENUES: &[&str] = &[
    "sigmod", "vldb", "icde", "edbt", "cikm", "sigir", "www", "kdd", "icdt", "pods", "dasfaa",
    "webdb", "cidr", "sigkdd",
];

/// Journal names.
pub const JOURNALS: &[&str] = &[
    "tods",
    "vldbj",
    "tkde",
    "sigmodrecord",
    "is",
    "dke",
    "jacm",
    "ipl",
];

/// Author interests.
pub const INTERESTS: &[&str] = &[
    "database systems",
    "information retrieval",
    "data mining",
    "stream processing",
    "web search",
    "machine learning",
    "xml data management",
    "query optimization",
    "distributed systems",
    "natural language processing",
];

/// Baseball: team city names.
pub const CITIES: &[&str] = &[
    "atlanta",
    "boston",
    "chicago",
    "cleveland",
    "denver",
    "detroit",
    "houston",
    "miami",
    "milwaukee",
    "minneapolis",
    "montreal",
    "oakland",
    "philadelphia",
    "phoenix",
    "pittsburgh",
    "seattle",
    "toronto",
];

/// Baseball: team mascot names.
pub const MASCOTS: &[&str] = &[
    "braves",
    "cubs",
    "giants",
    "tigers",
    "pirates",
    "mariners",
    "expos",
    "athletics",
    "phillies",
    "brewers",
    "twins",
    "rockies",
    "marlins",
    "astros",
    "bluejays",
];

/// Baseball: player positions.
pub const POSITIONS: &[&str] = &[
    "pitcher",
    "catcher",
    "firstbase",
    "secondbase",
    "thirdbase",
    "shortstop",
    "leftfield",
    "centerfield",
    "rightfield",
    "designatedhitter",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn pools_are_nonempty_and_lowercase_tokens() {
        for pool in [
            TITLE_TERMS,
            FIRST_NAMES,
            LAST_NAMES,
            VENUES,
            JOURNALS,
            CITIES,
            MASCOTS,
            POSITIONS,
        ] {
            assert!(!pool.is_empty());
            for w in pool {
                assert!(
                    w.chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()),
                    "pool word {w:?} is not a single lowercase token"
                );
            }
        }
    }

    #[test]
    fn title_terms_are_distinct() {
        let set: HashSet<&str> = TITLE_TERMS.iter().copied().collect();
        assert_eq!(set.len(), TITLE_TERMS.len());
    }

    #[test]
    fn paper_example_terms_present() {
        for w in [
            "online",
            "database",
            "skyline",
            "keyword",
            "twig",
            "machine",
            "learning",
            "world",
            "wide",
            "web",
            "xml",
            "efficient",
            "matching",
        ] {
            assert!(TITLE_TERMS.contains(&w), "{w} missing");
        }
    }
}

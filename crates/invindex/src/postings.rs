//! Posting lists: for each keyword, the document-ordered list of elements
//! whose tag name or text contains the keyword.
//!
//! Lists are kept in memory as plain vectors for query processing and are
//! (de)serialized with delta-varint compression for storage in the
//! key-value store, mirroring how the paper keeps its keyword inverted
//! lists in Berkeley DB (§VII).

use xmldom::{Dewey, NodeTypeId};

/// One entry of an inverted list: a node containing the keyword, plus its
/// node type so statistics lookups need no document access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Posting {
    pub dewey: Dewey,
    pub node_type: NodeTypeId,
}

impl Posting {
    pub fn new(dewey: Dewey, node_type: NodeTypeId) -> Self {
        Posting { dewey, node_type }
    }
}

/// A document-ordered list of postings for one keyword.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PostingList {
    postings: Vec<Posting>,
}

impl PostingList {
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds from a vector that must already be in document order.
    pub fn from_sorted(postings: Vec<Posting>) -> Self {
        debug_assert!(
            postings.windows(2).all(|w| w[0].dewey < w[1].dewey),
            "postings must be strictly document-ordered"
        );
        PostingList { postings }
    }

    /// Appends a posting that must follow the current tail in document
    /// order.
    pub fn push(&mut self, posting: Posting) {
        debug_assert!(
            self.postings
                .last()
                .map(|p| p.dewey < posting.dewey)
                .unwrap_or(true),
            "push out of document order"
        );
        self.postings.push(posting);
    }

    pub fn len(&self) -> usize {
        self.postings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.postings.is_empty()
    }

    pub fn get(&self, i: usize) -> Option<&Posting> {
        self.postings.get(i)
    }

    pub fn first(&self) -> Option<&Posting> {
        self.postings.first()
    }

    pub fn last(&self) -> Option<&Posting> {
        self.postings.last()
    }

    pub fn iter(&self) -> std::slice::Iter<'_, Posting> {
        self.postings.iter()
    }

    pub fn as_slice(&self) -> &[Posting] {
        &self.postings
    }

    /// Index of the first posting with `dewey >= target` (lower bound).
    pub fn lower_bound(&self, target: &Dewey) -> usize {
        self.postings.partition_point(|p| p.dewey < *target)
    }

    /// Index of the first posting with `dewey > target` (upper bound).
    pub fn upper_bound(&self, target: &Dewey) -> usize {
        self.postings.partition_point(|p| p.dewey <= *target)
    }

    /// The sub-list of postings lying inside the subtree rooted at
    /// `partition_root` (postings whose Dewey has it as prefix), as an
    /// index range.
    pub fn partition_range(&self, partition_root: &Dewey) -> std::ops::Range<usize> {
        let start = self.lower_bound(partition_root);
        let tail = self.postings.get(start..).unwrap_or(&[]);
        let end = tail.partition_point(|p| partition_root.is_ancestor_or_self_of(&p.dewey)) + start;
        start..end
    }

    /// Serializes with per-posting Dewey front-coding: each posting stores
    /// the length of the component prefix shared with its predecessor, the
    /// remaining components (varint) and the node type (varint).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.postings.len() * 6 + 4);
        write_varint(&mut out, self.postings.len() as u64);
        let mut prev: &[u32] = &[];
        for p in &self.postings {
            let comps = p.dewey.components();
            let shared = comps
                .iter()
                .zip(prev.iter())
                .take_while(|(a, b)| a == b)
                .count();
            write_varint(&mut out, shared as u64);
            write_varint(&mut out, (comps.len() - shared) as u64);
            for &c in comps.iter().skip(shared) {
                write_varint(&mut out, c as u64);
            }
            write_varint(&mut out, p.node_type.0 as u64);
            prev = comps;
        }
        out
    }

    /// Inverse of [`PostingList::encode`].
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let mut pos = 0usize;
        let n = read_varint(bytes, &mut pos)? as usize;
        let mut postings = Vec::with_capacity(n);
        let mut prev: Vec<u32> = Vec::new();
        for _ in 0..n {
            let shared = read_varint(bytes, &mut pos)? as usize;
            let rest = read_varint(bytes, &mut pos)? as usize;
            let mut comps = prev.get(..shared)?.to_vec();
            for _ in 0..rest {
                comps.push(read_varint(bytes, &mut pos)? as u32);
            }
            let node_type = NodeTypeId(read_varint(bytes, &mut pos)? as u32);
            let dewey = Dewey::new(comps.clone())?;
            postings.push(Posting { dewey, node_type });
            prev = comps;
        }
        if pos != bytes.len() {
            return None;
        }
        Some(PostingList { postings })
    }
}

/// LEB128 unsigned varint.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint, advancing `pos`. `None` on truncation/overflow.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut result = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        result |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Some(result);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str, t: u32) -> Posting {
        Posting::new(s.parse().unwrap(), NodeTypeId(t))
    }

    fn sample() -> PostingList {
        PostingList::from_sorted(vec![
            p("0.0.1", 3),
            p("0.0.2.0", 4),
            p("0.1", 1),
            p("0.1.1.0", 5),
            p("0.2", 1),
        ])
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None); // truncated
    }

    #[test]
    fn encode_decode_roundtrip() {
        let list = sample();
        let bytes = list.encode();
        assert_eq!(PostingList::decode(&bytes).unwrap(), list);
        // empty list
        let empty = PostingList::new();
        assert_eq!(PostingList::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(PostingList::decode(&[]).is_none());
        assert!(PostingList::decode(&[5, 0]).is_none()); // claims 5, has none
        let mut bytes = sample().encode();
        bytes.push(0); // trailing junk
        assert!(PostingList::decode(&bytes).is_none());
    }

    #[test]
    fn bounds_and_partition_range() {
        let list = sample();
        assert_eq!(list.lower_bound(&"0.1".parse().unwrap()), 2);
        assert_eq!(list.upper_bound(&"0.1".parse().unwrap()), 3);
        assert_eq!(list.lower_bound(&"0".parse().unwrap()), 0);
        assert_eq!(list.lower_bound(&"0.9".parse().unwrap()), 5);
        // partition 0.1 covers postings 0.1 and 0.1.1.0
        assert_eq!(list.partition_range(&"0.1".parse().unwrap()), 2..4);
        assert_eq!(list.partition_range(&"0.0".parse().unwrap()), 0..2);
        assert_eq!(list.partition_range(&"0.5".parse().unwrap()), 5..5);
    }

    // the order check is a debug_assert, so the panic only exists in
    // debug builds — release runs would fail the should_panic
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "document-ordered")]
    fn from_sorted_rejects_disorder_in_debug() {
        PostingList::from_sorted(vec![p("0.1", 0), p("0.0", 0)]);
    }
}

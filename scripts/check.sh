#!/usr/bin/env bash
# The repo's pre-merge gate: formatting, lints (warnings are errors) and
# the full test suite. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo test --workspace -q

# Optimized builds reorder aggressively; rerun the multi-thread smoke
# tests in release so a data race has a real chance to surface.
cargo test --release -q --test concurrent_engine
cargo test --release -q -p invindex --test cache_prop

# Fault-injection and crash-recovery sweeps cover every I/O boundary /
# byte flip only in release (debug strides them for speed).
cargo test --release -q -p kvstore --test torture
cargo test --release -q -p kvstore --test fault_injection
cargo test --release -q --test storage_bitflips

# Observability: obs invariants, the differential oracles (SLCA
# stack/eager/multiway vs brute force; DP vs brute-force rule
# application), tracer well-nestedness under concurrent serving, and a
# quick metrics-overhead run emitting results/BENCH_obs.json.
cargo test -q -p obs
cargo test -q -p slca --test differential
cargo test -q -p xrefine --test dp_oracle
cargo test --release -q -p xrefine --test trace_concurrency
OBS_BENCH_FRACTION=0.02 OBS_BENCH_REPS=2 \
    cargo run --release -q -p bench --bin bench_obs

//! The server chassis: acceptor thread, worker pool, drain sequencing.
//!
//! Thread model (sharded accept/worker):
//!
//! ```text
//! acceptor ── accept ──> conn thread (≤ max_connections, detached)
//!                            │  push Job (two-choice, bounded)
//!                            ▼
//!                   ShardedQueue — one shard per worker
//!                            │  pop
//!                            ▼
//!                    worker 0..N  ── QueryService::answer ──┐
//!                            ▲                              │
//!                            └── reply channel (cap 1) <────┘
//! ```
//!
//! Drain ordering is the correctness argument for "zero dropped
//! in-flight requests": (1) stop accepting and close the listener;
//! (2) wait for connection threads — idle ones exit on the drain flag,
//! busy ones finish their request/response exchange (workers are still
//! running, so every queued job gets answered); (3) close the queue,
//! which lets workers drain what remains and exit. A job admitted to
//! the queue is therefore always executed or already answered `504` by
//! its own connection — never silently dropped.

use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::conn::{self, Job};
use crate::http::{self, Response};
use crate::queue::ShardedQueue;
use crate::service::QueryService;
use crate::ServeConfig;

/// State shared by the acceptor, every connection thread and every
/// worker. Lock-free: coordination is atomics plus the queue's own
/// (ranked) locks.
pub struct Shared {
    config: ServeConfig,
    queue: ShardedQueue<Job>,
    service: Arc<dyn QueryService>,
    /// Set once drain begins; acceptor exits, idle connections close,
    /// admission answers `503`.
    draining: AtomicBool,
    /// Set by `POST /admin/drain`; the acceptor promotes it to
    /// `draining` so a remote operator can initiate shutdown.
    drain_requested: AtomicBool,
    active_conns: AtomicUsize,
}

impl Shared {
    fn new(config: ServeConfig, service: Arc<dyn QueryService>) -> Shared {
        let queue = ShardedQueue::new(config.workers.max(1), config.queue_capacity.max(1));
        Shared {
            config,
            queue,
            service,
            draining: AtomicBool::new(false),
            drain_requested: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
        }
    }

    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    pub fn service(&self) -> &Arc<dyn QueryService> {
        &self.service
    }

    pub fn queue(&self) -> &ShardedQueue<Job> {
        &self.queue
    }

    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Remote drain request (`POST /admin/drain`). Takes effect at the
    /// acceptor's next poll (≤ ~1ms).
    pub fn request_drain(&self) {
        self.drain_requested.store(true, Ordering::SeqCst);
    }

    pub fn drain_requested(&self) -> bool {
        self.drain_requested.load(Ordering::SeqCst)
    }

    pub fn active_connections(&self) -> usize {
        self.active_conns.load(Ordering::SeqCst)
    }

    /// Re-publishes the depth gauges (cheap; called on push/pop and on
    /// `/metrics` render so scrapes always see a fresh value).
    pub fn refresh_gauges(&self) {
        obs::gauge!("serve_queued_requests").set(self.queue.len() as i64);
        obs::gauge!("serve_open_connections").set(self.active_conns.load(Ordering::SeqCst) as i64);
    }

    fn conn_closed(&self) {
        self.active_conns.fetch_sub(1, Ordering::SeqCst);
        self.refresh_gauges();
    }
}

/// A running server. Dropping the handle does NOT stop the server;
/// call [`ServerHandle::begin_drain`] + [`ServerHandle::join`] (or let
/// the process exit).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// Starts the drain sequence: stop accepting, shed new admissions.
    /// Idempotent; returns immediately — use [`join`](Self::join) to
    /// wait for completion.
    pub fn begin_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// True once `POST /admin/drain` was received (the embedding binary
    /// polls this alongside its signal flag).
    pub fn drain_requested(&self) -> bool {
        self.shared.drain_requested()
    }

    /// Drains and waits for the server to finish: acceptor joined,
    /// connection threads given `drain_grace` to complete their
    /// exchanges, queue closed, workers joined. Returns the number of
    /// straggler connections still open when the grace period expired
    /// (0 on a clean drain).
    pub fn join(mut self) -> usize {
        self.begin_drain();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // Connection threads finish their in-flight request/response
        // exchanges while the workers are still alive to answer them.
        let deadline = Instant::now() + self.shared.config.drain_grace;
        while self.shared.active_connections() > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(2));
        }
        // Close-then-drain: whatever is still queued is executed before
        // the workers exit (BoundedQueue::pop's contract).
        self.shared.queue.close();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        self.shared.refresh_gauges();
        self.shared.active_connections()
    }
}

/// Binds `config.addr` and starts the acceptor and worker threads.
pub fn start(config: ServeConfig, service: Arc<dyn QueryService>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    // Nonblocking accept + 1ms poll keeps drain latency bounded without
    // a self-pipe or signalfd (no external crates to provide either).
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(Shared::new(config, service));

    let workers = (0..shared.config.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("xserve-worker-{i}"))
                .spawn(move || worker_loop(&shared, i))
        })
        .collect::<io::Result<Vec<_>>>()?;

    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("xserve-accept".to_string())
            .spawn(move || accept_loop(listener, &shared))?
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
    })
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.drain_requested() {
            shared.draining.store(true, Ordering::SeqCst);
        }
        if shared.draining() {
            break; // listener drops here: no more connections
        }
        match listener.accept() {
            Ok((mut stream, _peer)) => {
                obs::counter!("serve_connections_accepted_total").inc();
                let active = shared.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
                if active > shared.config.max_connections {
                    // Over the cap: shed on the acceptor thread (one
                    // small write) rather than spawn.
                    obs::counter!("serve_connections_shed_total").inc();
                    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
                    let resp = Response::error(503, "connection limit reached")
                        .with_retry_after(1)
                        .with_close();
                    let _ = http::write_response(&mut stream, &resp, true);
                    shared.conn_closed();
                    continue;
                }
                shared.refresh_gauges();
                let sh = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name("xserve-conn".to_string())
                    .spawn(move || {
                        conn::handle(stream, &sh);
                        sh.conn_closed();
                    });
                if spawned.is_err() {
                    shared.conn_closed();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(1));
            }
            Err(_) => {
                // Transient accept errors (EMFILE, ECONNABORTED):
                // back off briefly instead of spinning.
                thread::sleep(Duration::from_millis(1));
            }
        }
    }
}

/// Worker: pops its own shard until the queue closes and is empty.
fn worker_loop(shared: &Arc<Shared>, shard: usize) {
    let Some(q) = shared.queue.shard(shard) else {
        return;
    };
    while let Some(job) = q.pop() {
        shared.refresh_gauges();
        obs::histogram!("serve_queue_wait_nanos").observe_duration(job.admitted.elapsed());
        if Instant::now() >= job.deadline {
            // The connection already answered 504 (it counted the
            // timeout); executing now would be wasted work.
            continue;
        }
        let reply = shared.service.answer(&job.query);
        // try_send: capacity-1 channel is empty (first reply) or the
        // connection gave up — either way this never blocks a worker.
        let _ = job.reply.try_send(reply);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceReply;
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    struct Echo;
    impl QueryService for Echo {
        fn answer(&self, query: &str) -> ServiceReply {
            ServiceReply {
                status: 200,
                body: format!("{{\"echo\":{}}}", obs::metrics::json_string(query)),
            }
        }
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 8,
            max_connections: 8,
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(2),
            drain_grace: Duration::from_secs(5),
        }
    }

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(
            s,
            "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        let status = raw
            .split_whitespace()
            .nth(1)
            .and_then(|c| c.parse().ok())
            .unwrap_or(0);
        let body = raw.split("\r\n\r\n").nth(1).unwrap_or("").to_string();
        (status, body)
    }

    #[test]
    fn serves_queries_and_basic_endpoints() {
        let h = start(test_config(), Arc::new(Echo)).unwrap();
        let addr = h.addr();
        let (st, body) = get(addr, "/query?q=xml+search");
        assert_eq!(st, 200, "{body}");
        assert_eq!(body, "{\"echo\":\"xml search\"}");
        let (st, body) = get(addr, "/healthz");
        assert_eq!(st, 200);
        assert!(body.contains("\"draining\":false"), "{body}");
        let (st, _) = get(addr, "/nope");
        assert_eq!(st, 404);
        let (st, _) = get(addr, "/query");
        assert_eq!(st, 400);
        assert_eq!(h.join(), 0);
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let h = start(test_config(), Arc::new(Echo)).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        for i in 0..3 {
            write!(s, "GET /query?q=k{i} HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
            let mut chunk = [0u8; 1024];
            let mut got = String::new();
            while !got.contains(&format!("{{\"echo\":\"k{i}\"}}")) {
                let n = s.read(&mut chunk).unwrap();
                assert!(n > 0, "connection closed early at request {i}: {got}");
                got.push_str(&String::from_utf8_lossy(&chunk[..n]));
            }
            assert!(got.contains("Connection: keep-alive"), "{got}");
        }
        drop(s);
        assert_eq!(h.join(), 0);
    }

    #[test]
    fn drain_stops_accepting_and_join_reports_clean() {
        let h = start(test_config(), Arc::new(Echo)).unwrap();
        let addr = h.addr();
        let (st, _) = get(addr, "/query?q=before");
        assert_eq!(st, 200);
        h.begin_drain();
        thread::sleep(Duration::from_millis(50));
        assert!(
            TcpStream::connect(addr).is_err() || {
                // Accepted by a backlog race: the request itself must fail
                // or be answered with a draining 503.
                let (st, _) = get(addr, "/query?q=after");
                st == 503 || st == 0
            }
        );
        assert_eq!(h.join(), 0);
    }
}

//! Narrowing refinement — the paper's §IX future work, implemented as an
//! extension: when a query has *too many* matching results, suggest
//! keywords to add (mined from the result entities, scored by keyword
//! dependence) that shrink the result set to a usable size.
//!
//! ```text
//! cargo run --release --example narrow_query
//! ```

use std::sync::Arc;
use xrefine_repro::datagen::{generate_dblp, DblpConfig};
use xrefine_repro::prelude::*;
use xrefine_repro::xrefine::NarrowOptions;

fn main() {
    let doc = Arc::new(generate_dblp(&DblpConfig {
        authors: 300,
        ..Default::default()
    }));
    let engine = XRefineEngine::from_document(Arc::clone(&doc), EngineConfig::default());

    for query in ["data", "xml query", "database system"] {
        println!("== {{{query}}} ==");
        match engine
            .narrow(
                query,
                &NarrowOptions {
                    k: 3,
                    max_results: 12,
                    ..Default::default()
                },
            )
            .expect("narrow")
        {
            None => {
                let out = engine.answer(query).unwrap();
                let n = out.best().map(|r| r.slcas.len()).unwrap_or(0);
                println!("  result set already manageable ({n} results)\n");
            }
            Some(suggestions) if suggestions.is_empty() => {
                println!("  too many results, but no single keyword narrows it enough\n");
            }
            Some(suggestions) => {
                println!(
                    "  {} results — too many; suggested narrowings:",
                    suggestions[0].original_results
                );
                for s in &suggestions {
                    println!(
                        "    + \"{}\" -> {{{}}}  ({} results, score {:.3})",
                        s.added,
                        s.refinement.candidate.keywords.join(", "),
                        s.refinement.slcas.len(),
                        s.refinement.rank_score
                    );
                }
                println!();
            }
        }
    }
}

//! *Search-for node* inference (§III-A, Formula 1).
//!
//! `C_for(T, Q) = ln(1 + Σ_{k∈Q} f^T_k) · r^depth(T)` scores how likely the
//! node type `T` is the entity the user searches for: it should relate to
//! as many query keywords as possible (the sum of XML DFs) while staying
//! high enough in the tree to carry whole entities (the depth reduction
//! factor `r ∈ (0,1)`).
//!
//! The inferred candidate list `L` keeps every type whose confidence is
//! *comparable* to the best one (within `comparable_ratio`), capped at
//! `max_candidates`. The document-root type is excluded: the paper calls
//! the root "a typical meaningless SLCA", and admitting it would make
//! every root-only result meaningful.

use invindex::{IndexReader, KeywordId};
use xmldom::NodeTypeId;

/// Tunables of Formula 1 and the candidate-list cut.
#[derive(Debug, Clone)]
pub struct SearchForConfig {
    /// `r` in Formula 1.
    pub reduction_factor: f64,
    /// A type stays in `L` when its confidence `>= comparable_ratio * max`.
    pub comparable_ratio: f64,
    /// Hard cap on `|L|`.
    pub max_candidates: usize,
}

impl Default for SearchForConfig {
    fn default() -> Self {
        SearchForConfig {
            reduction_factor: 0.8,
            comparable_ratio: 0.8,
            max_candidates: 3,
        }
    }
}

/// `C_for(T, Q)` for one node type.
pub fn confidence(index: &dyn IndexReader, t: NodeTypeId, query: &[KeywordId]) -> f64 {
    let sum: u64 = query.iter().map(|&k| index.stats().df(t, k)).sum();
    let depth = index.document().node_types().depth(t) as f64;
    let r = SearchForConfig::default().reduction_factor;
    confidence_with(sum, depth, r)
}

/// `C_for` from raw inputs (exposed for ranking-model ablations).
pub fn confidence_with(df_sum: u64, depth: f64, reduction_factor: f64) -> f64 {
    (1.0 + df_sum as f64).ln() * reduction_factor.powf(depth)
}

/// Infers the ranked candidate list `L` of search-for node types for a
/// keyword set. Keywords absent from the document simply contribute zero
/// (the paper sums `f^T_k` precisely so missing keywords are tolerated).
pub fn infer_search_for(
    index: &dyn IndexReader,
    query: &[KeywordId],
    config: &SearchForConfig,
) -> Vec<(NodeTypeId, f64)> {
    let doc = index.document();
    let root_type = doc.node(doc.root()).node_type;
    let mut scored: Vec<(NodeTypeId, f64)> = doc
        .node_types()
        .iter()
        .filter(|&t| t != root_type)
        .filter_map(|t| {
            let sum: u64 = query.iter().map(|&k| index.stats().df(t, k)).sum();
            if sum == 0 {
                return None;
            }
            let depth = doc.node_types().depth(t) as f64;
            Some((t, confidence_with(sum, depth, config.reduction_factor)))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let Some(&(_, max)) = scored.first() else {
        return Vec::new();
    };
    scored
        .into_iter()
        .take_while(|&(_, c)| c >= config.comparable_ratio * max)
        .take(config.max_candidates)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use invindex::Index;
    use std::sync::Arc;
    use xmldom::fixtures::figure1;

    fn index() -> Index {
        Index::build(Arc::new(figure1()))
    }

    fn kw(idx: &Index, s: &str) -> KeywordId {
        idx.vocabulary().get(s).unwrap()
    }

    fn display(idx: &Index, t: NodeTypeId) -> String {
        let doc = idx.document();
        doc.node_types().display(t, doc.symbols())
    }

    #[test]
    fn confidence_formula_shape() {
        // ln grows with df sum, depth decays.
        assert!(confidence_with(10, 1.0, 0.8) > confidence_with(5, 1.0, 0.8));
        assert!(confidence_with(10, 1.0, 0.8) > confidence_with(10, 3.0, 0.8));
        assert_eq!(confidence_with(0, 0.0, 0.8), 0.0f64.max((1.0f64).ln()));
    }

    #[test]
    fn root_type_is_never_a_candidate() {
        let idx = index();
        let q = vec![kw(&idx, "xml"), kw(&idx, "john"), kw(&idx, "2003")];
        let l = infer_search_for(&idx, &q, &SearchForConfig::default());
        assert!(!l.is_empty());
        for (t, _) in &l {
            assert_ne!(display(&idx, *t), "bib");
        }
    }

    #[test]
    fn author_leads_for_author_centric_query() {
        // {fishing, name}: hobby and name live directly under author.
        let idx = index();
        let q = vec![kw(&idx, "fishing"), kw(&idx, "john")];
        let l = infer_search_for(&idx, &q, &SearchForConfig::default());
        assert_eq!(display(&idx, l[0].0), "bib/author");
    }

    #[test]
    fn unknown_keywords_contribute_zero_but_do_not_break_inference() {
        let idx = index();
        let q = vec![kw(&idx, "xml")];
        let l1 = infer_search_for(&idx, &q, &SearchForConfig::default());
        assert!(!l1.is_empty());
        // same query plus a keyword that is absent from the document
        // (KeywordId beyond vocabulary) must give identical scores
        let ghost = KeywordId(u32::MAX);
        let q2 = vec![kw(&idx, "xml"), ghost];
        let l2 = infer_search_for(&idx, &q2, &SearchForConfig::default());
        assert_eq!(l1.len(), l2.len());
        for (a, b) in l1.iter().zip(l2.iter()) {
            assert_eq!(a.0, b.0);
            assert!((a.1 - b.1).abs() < 1e-12);
        }
    }

    #[test]
    fn candidate_list_respects_cap_and_ratio() {
        let idx = index();
        let q = vec![kw(&idx, "title")];
        let tight = SearchForConfig {
            comparable_ratio: 1.0,
            max_candidates: 1,
            ..Default::default()
        };
        let l = infer_search_for(&idx, &q, &tight);
        assert_eq!(l.len(), 1);
        let loose = SearchForConfig {
            comparable_ratio: 0.0,
            max_candidates: 100,
            ..Default::default()
        };
        let l2 = infer_search_for(&idx, &q, &loose);
        assert!(l2.len() > 1);
        // sorted descending
        assert!(l2.windows(2).all(|w| w[0].1 >= w[1].1));
    }
}

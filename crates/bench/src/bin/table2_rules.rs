//! Table II: sample refinement rules with their dissimilarity scores —
//! both the paper's hand-written table and the rules the generator
//! derives automatically for the same queries against the Figure 1
//! document.

use bench::Table;
use lexicon::RuleSet;
use std::sync::Arc;
use xrefine::{EngineConfig, Query, XRefineEngine};

fn main() {
    println!("== Table II: the paper's sample rule set ==\n");
    let mut t = Table::new(&["#", "rule", "op", "ds_r"]);
    for (i, (_, r)) in RuleSet::table2().iter().enumerate() {
        t.row(vec![
            format!("{}", i + 1),
            format!("{} -> {}", r.lhs.join(","), r.rhs.join(",")),
            r.op.to_string(),
            format!("{}", r.dissimilarity),
        ]);
    }
    t.print();

    println!("\n== Rules auto-generated for sample queries on Figure 1 ==\n");
    let engine = XRefineEngine::from_document(
        Arc::new(xmldom::fixtures::figure1()),
        EngineConfig::default(),
    );
    for q in [
        "on line data base",
        "database publication",
        "xml keyward search",
        "worldwide web",
    ] {
        let rules = engine.rules_for(&Query::parse(q));
        println!("query {{{q}}}:");
        for (_, r) in rules.iter() {
            println!("  {r}");
        }
        println!();
    }
}

//! Quickstart: index the paper's Figure 1 bibliography and run the
//! motivating queries of §I (Example 1 and query Q4 of Table I).
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;
use xrefine_repro::prelude::*;

fn main() {
    // The paper's Figure 1 document ships as a fixture; any XML string
    // works through `XRefineEngine::from_xml`.
    let engine = XRefineEngine::from_document(
        Arc::new(xrefine_repro::xmldom::fixtures::figure1()),
        EngineConfig {
            algorithm: Algorithm::Partition,
            k: 3,
            ..Default::default()
        },
    );

    // Example 1: {database, publication}. The data uses "proceedings",
    // "article" and "inproceedings", never "publication", so the query as
    // stated has no result — the engine must refine it automatically.
    println!("== Example 1: {{database, publication}} ==");
    let out = engine.answer("database publication").unwrap();
    assert!(!out.original_ok, "the query must need refinement");
    for (i, r) in out.refinements.iter().enumerate() {
        println!(
            "  RQ{} = {{{}}}  dSim={}  rank={:.3}  {} result(s)",
            i + 1,
            r.candidate.keywords.join(", "),
            r.candidate.dissimilarity,
            r.rank_score,
            r.slcas.len()
        );
    }

    // Q4 of Table I: {XML, John, 2003} — every keyword exists, but only
    // the document root covers them all, which is meaningless to a user.
    println!("\n== Q4: {{xml, john, 2003}} ==");
    let out = engine.answer("xml john 2003").unwrap();
    assert!(!out.original_ok);
    println!("  needs refinement: only the root covers all three keywords");
    let best = out.best().expect("a refinement exists");
    println!(
        "  best RQ = {{{}}} with {} meaningful result(s):",
        best.candidate.keywords.join(", "),
        best.slcas.len()
    );
    for d in &best.slcas {
        println!("--- result at {d} ---");
        print!("{}", engine.render(d).expect("result renders"));
    }

    // A query that is fine as-is returns its own results untouched.
    println!("\n== {{john, fishing}} ==");
    let out = engine.answer("john fishing").unwrap();
    assert!(out.original_ok);
    println!(
        "  no refinement needed; {} meaningful result(s)",
        out.best().unwrap().slcas.len()
    );
}

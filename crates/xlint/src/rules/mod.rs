//! The rule set. Every rule walks the token stream of one
//! [`SourceFile`] and emits [`Finding`]s; suppression, test-code
//! exemptions and path scoping are applied here so the individual rules
//! stay declarative.

pub mod checked_arith;
pub mod durability;
pub mod error_context;
pub mod lock_order;
pub mod metric_catalogue;
pub mod no_panic;
pub mod no_wallclock;
pub mod pragma;
pub mod unsafe_audit;

use crate::config::Config;
use crate::diag::Finding;
use crate::model::WorkspaceModel;
use crate::source::SourceFile;

/// Rule identifiers a pragma may name.
pub const RULE_NAMES: &[&str] = &[
    no_panic::RULE,
    lock_order::RULE,
    metric_catalogue::RULE,
    no_wallclock::RULE,
    error_context::RULE,
    durability::RULE,
    unsafe_audit::RULE,
    checked_arith::RULE,
];

/// Runs every per-file rule over one file. `findings` come back
/// unsorted.
pub fn run_all(file: &SourceFile, config: &Config) -> Vec<Finding> {
    let mut out = Vec::new();
    pragma::check(file, &mut out);
    no_panic::check(file, config, &mut out);
    lock_order::check(file, config, &mut out);
    metric_catalogue::check(file, config, &mut out);
    no_wallclock::check(file, config, &mut out);
    error_context::check(file, config, &mut out);
    unsafe_audit::check(file, config, &mut out);
    checked_arith::check(file, config, &mut out);
    out
}

/// Runs the graph-aware rules over the whole-workspace model (or a
/// degenerate single-file model, as the fixtures do).
pub fn run_workspace(model: &WorkspaceModel, config: &Config, out: &mut Vec<Finding>) {
    durability::check(model, config, out);
}

/// Emits a finding unless a justified pragma suppresses it. Rules call
/// this for every violation they detect.
pub(crate) fn emit(
    out: &mut Vec<Finding>,
    file: &SourceFile,
    rule: &'static str,
    line: usize,
    col: usize,
    message: String,
    help: String,
) {
    if file.is_suppressed(rule, line) {
        return;
    }
    out.push(Finding {
        rule,
        path: file.path.clone(),
        line,
        col,
        message,
        help,
    });
}

//! Differential oracle for online maintenance: an incrementally updated
//! index must be indistinguishable from a from-scratch rebuild of the
//! same final corpus.
//!
//! The strongest form (and the one checked first) is **store byte
//! identity**: after any interleaved sequence of add/remove commits,
//! dumping the maintained `DurableKv` (minus its `M/maint` bookkeeping
//! key) must equal the persisted store of `build_streaming` over the
//! final corpus — at 1 and at 3 ingest threads. On top of that the
//! pinned snapshot must *answer* like an in-memory index built from the
//! final document (lists, stats, co-occurrence), and a reopen of the
//! store must restore the exact same state.

use invindex::maint::{MaintIndex, MaintOp, MAINT_KEY};
use invindex::reader::IndexReader;
use invindex::{build_streaming, persist, Index};
use kvstore::{DiskKv, DurableKv, FaultVfs, KvStore, MemKv, Vfs};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use xmldom::parse_document;

const SEED_CORPUS: &str = "<bib>\
    <paper><title>xml keyword search</title><year>2003</year></paper>\
    <paper><title>effective query refinement</title><year>2009</year></paper>\
    <paper><title>stack based slca</title><year>2005</year></paper>\
    </bib>";

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn fragment(rng: &mut XorShift) -> String {
    const WORDS: &[&str] = &[
        "xml",
        "keyword",
        "query",
        "refinement",
        "index",
        "stack",
        "stream",
        "dewey",
        "slca",
        "ranking",
        "maintenance",
        "snapshot",
        "epoch",
        "compaction",
    ];
    let n = 2 + rng.below(4) as usize;
    let title: Vec<&str> = (0..n)
        .map(|_| WORDS[rng.below(WORDS.len() as u64) as usize])
        .collect();
    format!(
        "<paper><title>{}</title><year>{}</year></paper>",
        title.join(" "),
        1990 + rng.below(30)
    )
}

fn seed_store(vfs: &Arc<dyn Vfs>, base: &Path) {
    let built = build_streaming(SEED_CORPUS, 1).unwrap();
    let mut disk = DiskKv::open_with_vfs(vfs, &base.with_extension("db")).unwrap();
    persist::persist(&built, &mut disk).unwrap();
    disk.sync().unwrap();
}

/// Dump of the maintained durable store without its maintenance key.
fn maintained_dump(vfs: &Arc<dyn Vfs>, base: &Path) -> BTreeMap<Vec<u8>, Vec<u8>> {
    let durable = DurableKv::open_with_vfs(Arc::clone(vfs), base).unwrap();
    let mut dump: BTreeMap<Vec<u8>, Vec<u8>> =
        durable.scan_range(b"", None).unwrap().into_iter().collect();
    assert!(
        dump.remove(MAINT_KEY).is_some(),
        "maintained store lost its M/maint entry"
    );
    dump
}

/// Runs `txns` maintenance transactions (interleaving adds and removes,
/// compacting every few commits) and returns the final corpus XML.
fn run_workload(maint: &MaintIndex, rng: &mut XorShift, txns: usize) -> String {
    let mut live = maint.record_count();
    for t in 0..txns {
        let mut ops = Vec::new();
        for _ in 0..=rng.below(2) {
            // Bias toward adds so the corpus keeps material to delete,
            // but always interleave removes once records accumulate.
            if live > 1 && rng.below(3) == 0 {
                ops.push(MaintOp::Remove {
                    slot: rng.below(live as u64) as usize,
                });
                live -= 1;
            } else {
                ops.push(MaintOp::Add {
                    fragment: fragment(rng),
                });
                live += 1;
            }
        }
        let report = maint.commit(&ops).unwrap();
        assert_eq!(report.records, live, "txn {t}: record count drifted");
        if t % 4 == 3 {
            maint.compact().unwrap();
        }
    }
    maint.full_xml()
}

#[test]
fn maintained_store_is_byte_identical_to_scratch_rebuild_at_1_and_3_threads() {
    for seed in 0..4u64 {
        let vfs = FaultVfs::new();
        let dynvfs = vfs.as_dyn();
        let base = PathBuf::from("/diff/store.db");
        seed_store(&dynvfs, &base);

        let maint = MaintIndex::open_with_vfs(Arc::clone(&dynvfs), &base).unwrap();
        let mut rng = XorShift(0xD1FF_0000 + seed + 1);
        let final_xml = run_workload(&maint, &mut rng, 14);
        drop(maint);

        let live = maintained_dump(&dynvfs, &base);
        for threads in [1usize, 3] {
            let rebuilt = build_streaming(&final_xml, threads)
                .unwrap_or_else(|e| panic!("seed {seed}: streaming ({threads}t): {e}"));
            let mut scratch = MemKv::new();
            persist::persist(&rebuilt, &mut scratch).unwrap();
            let fresh: BTreeMap<Vec<u8>, Vec<u8>> =
                scratch.scan_range(b"", None).unwrap().into_iter().collect();
            assert_eq!(
                live.len(),
                fresh.len(),
                "seed {seed} ({threads}t): entry count differs"
            );
            for ((ka, va), (kb, vb)) in live.iter().zip(fresh.iter()) {
                assert_eq!(ka, kb, "seed {seed} ({threads}t): key sequence diverges");
                assert_eq!(
                    va,
                    vb,
                    "seed {seed} ({threads}t): value differs at key {:?}",
                    String::from_utf8_lossy(ka)
                );
            }
        }
    }
}

#[test]
fn maintenance_preserves_the_store_format_version() {
    // A store keeps the format version it was created at: incremental
    // updates against a v3 (flat) store must stay byte-identical to a
    // v3 scratch rebuild, and likewise for v4 (compressed) — committing
    // never silently migrates a store between formats. The `persist`
    // default used elsewhere in this file already covers v4; here both
    // versions are pinned explicitly.
    for seed_version in [persist::V3_FORMAT_VERSION, persist::FORMAT_VERSION] {
        let vfs = FaultVfs::new();
        let dynvfs = vfs.as_dyn();
        let base = PathBuf::from("/diff/store.db");
        {
            let built = build_streaming(SEED_CORPUS, 1).unwrap();
            let mut disk = DiskKv::open_with_vfs(&dynvfs, &base.with_extension("db")).unwrap();
            persist::persist_versioned(&built, &mut disk, seed_version).unwrap();
            disk.sync().unwrap();
        }

        let maint = MaintIndex::open_with_vfs(Arc::clone(&dynvfs), &base).unwrap();
        let mut rng = XorShift(0xF0F0_0000 + seed_version);
        let final_xml = run_workload(&maint, &mut rng, 8);
        drop(maint);

        let live = maintained_dump(&dynvfs, &base);
        // The version marker survived every commit (raw varint value).
        assert_eq!(
            live.get(b"M/version".as_slice()).map(Vec::as_slice),
            Some([seed_version as u8].as_slice()),
            "v{seed_version}: store changed format under maintenance"
        );

        let rebuilt = build_streaming(&final_xml, 1).unwrap();
        let mut scratch = MemKv::new();
        persist::persist_versioned(&rebuilt, &mut scratch, seed_version).unwrap();
        let fresh: BTreeMap<Vec<u8>, Vec<u8>> =
            scratch.scan_range(b"", None).unwrap().into_iter().collect();
        assert_eq!(
            live.len(),
            fresh.len(),
            "v{seed_version}: entry count differs"
        );
        for ((ka, va), (kb, vb)) in live.iter().zip(fresh.iter()) {
            assert_eq!(ka, kb, "v{seed_version}: key sequence diverges");
            assert_eq!(
                va,
                vb,
                "v{seed_version}: value differs at key {:?}",
                String::from_utf8_lossy(ka)
            );
        }
    }
}

#[test]
fn snapshot_answers_like_an_in_memory_index_of_the_final_corpus() {
    let vfs = FaultVfs::new();
    let dynvfs = vfs.as_dyn();
    let base = PathBuf::from("/diff/store.db");
    seed_store(&dynvfs, &base);

    let maint = MaintIndex::open_with_vfs(Arc::clone(&dynvfs), &base).unwrap();
    let mut rng = XorShift(0xD1FF_CAFE);
    let final_xml = run_workload(&maint, &mut rng, 10);

    let doc = Arc::new(parse_document(&final_xml).unwrap());
    let oracle = Index::build(Arc::clone(&doc));
    let snap = maint.snapshot();

    assert_eq!(snap.vocabulary().len(), oracle.vocabulary().len());
    for (id, text) in oracle.vocabulary().iter() {
        let h = snap.list_handle(text).unwrap();
        assert_eq!(
            h.postings(),
            oracle.list(text).unwrap().as_slice(),
            "list mismatch for {text:?}"
        );
        // Per-type statistics drive ranking: compare for every type.
        for t in doc.node_types().iter() {
            assert_eq!(
                snap.stats().tf(t, id),
                oracle.stats().tf(t, id),
                "tf mismatch for {text:?}"
            );
        }
    }
    for t in doc.node_types().iter() {
        assert_eq!(snap.stats().n_nodes(t), oracle.stats().n_nodes(t));
    }
    // Co-occurrence (computed lazily over lists) agrees too.
    let v = oracle.vocabulary();
    if let (Some(a), Some(b)) = (v.get("xml"), v.get("keyword")) {
        for t in doc.node_types().iter() {
            assert_eq!(
                IndexReader::co_occur(&oracle, t, a, b),
                IndexReader::co_occur(&*snap, t, a, b)
            );
        }
    }
}

#[test]
fn reopen_restores_the_maintained_state_exactly() {
    let vfs = FaultVfs::new();
    let dynvfs = vfs.as_dyn();
    let base = PathBuf::from("/diff/store.db");
    seed_store(&dynvfs, &base);

    let (final_xml, seq, records) = {
        let maint = MaintIndex::open_with_vfs(Arc::clone(&dynvfs), &base).unwrap();
        let mut rng = XorShift(0x5EED_5EED);
        let xml = run_workload(&maint, &mut rng, 8);
        (xml, maint.seq(), maint.records())
    };

    let reopened = MaintIndex::open_with_vfs(Arc::clone(&dynvfs), &base).unwrap();
    assert_eq!(reopened.seq(), seq);
    assert_eq!(reopened.records(), records);
    assert_eq!(reopened.full_xml(), final_xml);

    // And the reopened snapshot serves the final corpus.
    let oracle = Index::build(Arc::new(parse_document(&final_xml).unwrap()));
    let snap = reopened.snapshot();
    for (_, text) in oracle.vocabulary().iter() {
        assert_eq!(
            snap.list_handle(text).unwrap().postings(),
            oracle.list(text).unwrap().as_slice()
        );
    }
}

//! **xrefine-repro** — a from-scratch Rust reproduction of
//! *"Automatic XML Keyword Query Refinement"* (Bao, Lu, Ling, Meng; 2009).
//!
//! This facade re-exports the whole workspace; see the individual crates
//! for the subsystems:
//!
//! * [`xmldom`] — XML parser, Dewey labels, document tree;
//! * [`kvstore`] — page-based B+-tree storage (Berkeley DB substitute);
//! * [`invindex`] — keyword inverted lists + frequency statistics;
//! * [`slca`] — SLCA algorithms and meaningful-SLCA semantics;
//! * [`lexicon`] — edit distance, Porter stemmer, thesaurus, rule
//!   generation;
//! * [`xrefine`] — the refinement engine (ranking model, `getOptimalRQ`
//!   dynamic program, the three refinement algorithms);
//! * [`datagen`] — synthetic DBLP/Baseball corpora and query workloads;
//! * [`evalkit`] — Cumulated-Gain evaluation harness;
//! * [`obs`] — metrics registry and per-query span tracer.
//!
//! # Quickstart
//!
//! ```
//! use xrefine_repro::prelude::*;
//! use std::sync::Arc;
//!
//! let engine = XRefineEngine::from_xml(
//!     "<bib><author><name>Ann</name><hobby>chess</hobby></author></bib>",
//!     EngineConfig::default(),
//! ).unwrap();
//! let out = engine.answer("ann chess").unwrap();
//! assert!(out.original_ok);
//! ```

pub use datagen;
pub use evalkit;
pub use invindex;
pub use kvstore;
pub use lexicon;
pub use obs;
pub use slca;
pub use xmldom;
pub use xrefine;

/// The most common imports in one place.
pub mod prelude {
    pub use invindex::{Index, IndexReader};
    pub use lexicon::{RuleSet, Thesaurus};
    pub use xmldom::{parse_document, Dewey, Document};
    pub use xrefine::{
        Algorithm, EngineConfig, Query, RankingConfig, RefineOutcome, Refinement, XRefineEngine,
    };
}

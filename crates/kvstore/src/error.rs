//! Error type for the key-value store.

use std::fmt;
use std::io;

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum KvError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// On-disk state failed validation (bad magic, bad page type, torn
    /// entry, dangling page reference).
    Corrupt(String),
    /// Key exceeds [`crate::btree::MAX_KEY_LEN`].
    KeyTooLarge(usize),
    /// Value exceeds the maximum representable length.
    ValueTooLarge(usize),
    /// The store was opened read-only and a write was attempted.
    ReadOnly,
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Io(e) => write!(f, "I/O error: {e}"),
            KvError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            KvError::KeyTooLarge(n) => write!(f, "key of {n} bytes exceeds maximum"),
            KvError::ValueTooLarge(n) => write!(f, "value of {n} bytes exceeds maximum"),
            KvError::ReadOnly => write!(f, "store is read-only"),
        }
    }
}

impl std::error::Error for KvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KvError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for KvError {
    fn from(e: io::Error) -> Self {
        KvError::Io(e)
    }
}

/// Convenient result alias.
pub type Result<T> = std::result::Result<T, KvError>;

//! Engine-level differential oracle for online maintenance: a
//! [`LiveEngine`] that reached its corpus through incremental commits
//! must answer every query **identically** to an engine built from
//! scratch over the same final document — outcomes compared by their
//! full `Debug` rendering (refinements, scores, SLCAs, scan counters).

use kvstore::{DiskKv, FaultVfs, KvStore, Vfs};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use xrefine::{EngineConfig, LiveEngine, XRefineEngine};

use invindex::maint::MaintOp;
use invindex::{build_streaming, persist};

const SEED_CORPUS: &str = "<bib>\
    <paper><title>xml keyword search</title><year>2003</year></paper>\
    <paper><title>effective query refinement</title><year>2009</year></paper>\
    <paper><title>stack based slca computation</title><year>2005</year></paper>\
    </bib>";

const QUERIES: &[&str] = &[
    "xml keyword",
    "query refinement",
    "stack slca",
    "xml ranking",
    "snapshot epoch",
    "keyword maintenance",
    "xml query stack",
    "absentword",
];

fn seed(vfs: &Arc<dyn Vfs>, base: &Path) {
    let built = build_streaming(SEED_CORPUS, 1).unwrap();
    let mut disk = DiskKv::open_with_vfs(vfs, &base.with_extension("db")).unwrap();
    persist::persist(&built, &mut disk).unwrap();
    disk.sync().unwrap();
}

#[test]
fn incrementally_updated_engine_answers_like_a_scratch_engine() {
    let vfs = FaultVfs::new().as_dyn();
    let base = PathBuf::from("/live-diff/store.db");
    seed(&vfs, &base);

    let live = LiveEngine::open_with_vfs(Arc::clone(&vfs), &base, EngineConfig::default()).unwrap();

    // A maintenance history with adds, an interleaved remove and a
    // compaction mid-stream.
    live.update(&[MaintOp::Add {
        fragment: "<paper><title>snapshot epoch handoff</title><year>2024</year></paper>".into(),
    }])
    .unwrap();
    live.update(&[
        MaintOp::Add {
            fragment: "<paper><title>keyword maintenance ranking</title><year>2025</year></paper>"
                .into(),
        },
        MaintOp::Remove { slot: 1 },
    ])
    .unwrap();
    live.compact().unwrap();
    live.update(&[MaintOp::Add {
        fragment: "<paper><title>xml snapshot ranking</title><year>2026</year></paper>".into(),
    }])
    .unwrap();

    let final_xml = live.maint().full_xml();
    let scratch = XRefineEngine::from_xml(&final_xml, EngineConfig::default()).unwrap();
    let engine = live.engine();

    for q in QUERIES {
        let got = engine.answer_detailed(q);
        let want = scratch.answer_detailed(q);
        assert_eq!(
            format!("{got:?}"),
            format!("{want:?}"),
            "outcome diverged for query {q:?}"
        );
    }
}

#[test]
fn reopened_live_engine_still_matches_the_scratch_engine() {
    let vfs = FaultVfs::new().as_dyn();
    let base = PathBuf::from("/live-diff/store.db");
    seed(&vfs, &base);

    let final_xml = {
        let live =
            LiveEngine::open_with_vfs(Arc::clone(&vfs), &base, EngineConfig::default()).unwrap();
        live.update(&[MaintOp::Add {
            fragment: "<paper><title>durable reopen check</title></paper>".into(),
        }])
        .unwrap();
        live.update(&[MaintOp::Remove { slot: 0 }]).unwrap();
        live.maint().full_xml()
    };

    let live = LiveEngine::open_with_vfs(Arc::clone(&vfs), &base, EngineConfig::default()).unwrap();
    assert_eq!(live.maint().full_xml(), final_xml);
    let scratch = XRefineEngine::from_xml(&final_xml, EngineConfig::default()).unwrap();
    let engine = live.engine();
    for q in QUERIES {
        assert_eq!(
            format!("{:?}", engine.answer_detailed(q)),
            format!("{:?}", scratch.answer_detailed(q)),
            "reopened outcome diverged for query {q:?}"
        );
    }
}

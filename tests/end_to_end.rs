//! End-to-end integration: generated corpora → XML text → parser → index
//! → persistence → refinement → ground-truth recovery.

use std::sync::Arc;
use xrefine_repro::datagen::{
    generate_baseball, generate_dblp, generate_workload, BaseballConfig, DblpConfig, PerturbKind,
    WorkloadConfig,
};
use xrefine_repro::evalkit::grade;
use xrefine_repro::invindex::{persist, Index};
use xrefine_repro::kvstore::MemKv;
use xrefine_repro::prelude::*;

#[test]
fn full_pipeline_through_xml_text() {
    // Generate, render to text, re-parse (exercising the parser at
    // scale), index, and answer.
    let doc = generate_dblp(&DblpConfig {
        authors: 40,
        ..Default::default()
    });
    let xml = doc.to_xml();
    let engine = XRefineEngine::from_xml(&xml, EngineConfig::default()).unwrap();
    assert_eq!(engine.document().len(), doc.len());
    let out = engine.answer("xml data").unwrap();
    assert!(!out.refinements.is_empty() || out.original_ok);
}

#[test]
fn refinement_recovers_ground_truth_on_most_queries() {
    let doc = Arc::new(generate_dblp(&DblpConfig {
        authors: 80,
        ..Default::default()
    }));
    let workload = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 6,
            ..Default::default()
        },
    );
    let engine = XRefineEngine::from_document(
        doc,
        EngineConfig {
            algorithm: Algorithm::Partition,
            k: 4,
            ..Default::default()
        },
    );

    let mut graded = 0usize;
    let mut recovered = 0usize;
    for wq in workload
        .iter()
        .filter(|q| q.kind != PerturbKind::None && q.kind != PerturbKind::ExtraTerm)
    {
        let out = engine
            .answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
            .expect("query answered");
        graded += 1;
        // ground truth recovered if some Top-4 RQ grades >= 2 (fairly or
        // highly relevant per the oracle)
        if out
            .refinements
            .iter()
            .any(|r| grade(wq, &r.candidate.keywords) >= 2.0)
        {
            recovered += 1;
        }
    }
    assert!(graded >= 20, "workload too small: {graded}");
    let rate = recovered as f64 / graded as f64;
    assert!(
        rate >= 0.7,
        "only {recovered}/{graded} perturbed queries recovered their intent"
    );
}

#[test]
fn baseball_corpus_end_to_end() {
    let doc = Arc::new(generate_baseball(&BaseballConfig::default()));
    let engine = XRefineEngine::from_document(
        Arc::clone(&doc),
        EngineConfig {
            algorithm: Algorithm::ShortListEager,
            k: 2,
            ..Default::default()
        },
    );
    // straightforward query
    let out = engine.answer("pitcher wins").unwrap();
    assert!(out.original_ok, "pitchers have wins");
    // typo repaired
    let out = engine.answer("picther games").unwrap();
    assert!(!out.original_ok);
    let best = out.best().expect("refined");
    assert!(best.candidate.keywords.contains(&"pitcher".to_string()));
    assert!(!best.slcas.is_empty());
}

#[test]
fn persisted_index_supports_the_same_queries() {
    let doc = Arc::new(generate_dblp(&DblpConfig {
        authors: 25,
        ..Default::default()
    }));
    let built = Index::build(Arc::clone(&doc));
    let mut store = MemKv::new();
    persist::persist(&built, &mut store).unwrap();
    let loaded = persist::load(Arc::clone(&doc), &store).unwrap();

    // identical lists and stats imply identical SLCA/refinement behaviour;
    // spot-check a list and a frequency.
    for kw in ["data", "xml", "author", "year"] {
        assert_eq!(
            built.list(kw).map(|l| l.len()),
            loaded.list(kw).map(|l| l.len()),
            "{kw}"
        );
    }
    assert_eq!(built.total_postings(), loaded.total_postings());
}

#[test]
fn deep_pathological_documents_do_not_break_anything() {
    // A degenerate chain document (depth 200).
    let mut xml = String::new();
    for i in 0..200 {
        xml.push_str(&format!("<n{i}>"));
    }
    xml.push_str("needle haystack");
    for i in (0..200).rev() {
        xml.push_str(&format!("</n{i}>"));
    }
    let engine = XRefineEngine::from_xml(&xml, EngineConfig::default()).unwrap();
    let out = engine.answer("needle haystack").unwrap();
    // the two keywords sit on the single deepest node; whether that is
    // "meaningful" depends on search-for inference, but nothing panics
    // and any produced result must be the deep node, not the root
    if let Some(best) = out.best() {
        for d in &best.slcas {
            assert!(d.len() > 1);
        }
    }
}

// xlint-fixture: path=crates/kvstore/src/pager.rs
// Corruption errors must carry a non-empty context string in every form:
// corrupt(..), corrupt_page(.., ..) and struct-literal Corrupt { .. }.

fn fail_empty_str() -> Result<()> {
    Err(KvError::corrupt(""))
}

fn fail_string_new(page: u64) -> Result<()> {
    Err(KvError::corrupt_page(page, String::new()))
}

fn fail_empty_format() -> Result<()> {
    Err(KvError::corrupt(format!("")))
}

fn fail_literal(page: u64) -> KvError {
    KvError::Corrupt {
        page: Some(page),
        context: "".to_string(),
    }
}

fn ok_with_context(page: u64) -> Result<()> {
    Err(KvError::corrupt_page(
        page,
        format!("page {page} checksum mismatch"),
    ))
}

fn ok_literal(page: u64) -> KvError {
    KvError::Corrupt {
        page: Some(page),
        context: "trailer magic missing".to_string(),
    }
}

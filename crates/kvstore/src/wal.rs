//! Write-ahead log with CRC-checked records and torn-tail recovery.
//!
//! The index build of §VII runs against a durable store (Berkeley DB in
//! the paper). Our B+-tree alone is not crash-safe — a torn page write
//! could lose committed data — so [`crate::durable::DurableKv`] layers
//! this WAL in front of it: every mutation is appended (length-prefixed,
//! CRC32-guarded) and fsynced before being applied; on open the log is
//! replayed and any torn tail is truncated away.
//!
//! A *torn tail* is strictly the final, incompletely written record: a
//! crash can only tear the bytes that were in flight. A damaged record
//! with intact records *after* it cannot be a crash artifact — it means
//! committed data was corrupted in place — so replay reports it as
//! [`KvError::Corrupt`] instead of silently dropping the committed
//! records behind it.
//!
//! Record wire format (little-endian):
//!
//! ```text
//! [len: u32][crc32: u32][kind: u8][payload: len-5 bytes]
//! kind 1 = Put       payload = [klen: u32][key][value]
//! kind 2 = Delete    payload = [klen: u32][key]
//! kind 3 = Checkpoint (no payload)
//! kind 4 = TxnBegin  payload = [seq: u64]
//! kind 5 = TxnCommit payload = [seq: u64]
//! ```
//!
//! Records between a `TxnBegin` and its matching `TxnCommit` form one
//! atomic transaction: [`Wal::append_txn`] writes the whole group with a
//! single positional write and a single fsync, so a crash either keeps
//! the entire group or tears it. Replay drops an unterminated group at
//! the tail (it was never acknowledged) and truncates the file back to
//! the group's `TxnBegin`; an unterminated group *followed by* intact
//! records cannot be a crash artifact and is reported as corruption.

use crate::codec;
use crate::error::{KvError, Result};
use crate::vfs::{StdVfs, Vfs, VfsFile};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A logical WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    Put {
        key: Vec<u8>,
        value: Vec<u8>,
    },
    Delete {
        key: Vec<u8>,
    },
    /// Marks that all preceding records are reflected in a checkpointed
    /// base state; replay may start after the *last* checkpoint.
    Checkpoint,
    /// Opens an atomic group; `seq` must match the closing
    /// [`WalRecord::TxnCommit`].
    TxnBegin {
        seq: u64,
    },
    /// Closes the atomic group opened by the [`WalRecord::TxnBegin`]
    /// with the same `seq`.
    TxnCommit {
        seq: u64,
    },
}

/// CRC-32 (IEEE 802.3, reflected) — implemented locally; the workspace
/// keeps its dependency list minimal (DESIGN.md §5). Table-driven: the
/// page checksums guard every 4 KiB flushed by the pager, so the byte
/// loop is hot in checkpoint-heavy workloads and the torture tests.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        // xlint::allow(no-panic-paths): index is masked to 8 bits and the table has 256 entries
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Per-byte remainder table for the reflected 0xEDB88320 polynomial.
const CRC_TABLE: [u32; 256] = {
    const POLY: u32 = 0xEDB8_8320;
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            let mask = (c & 1).wrapping_neg();
            c = (c >> 1) ^ (POLY & mask);
            k += 1;
        }
        // xlint::allow(no-panic-paths): const-evaluated initializer; i < 256 is the loop bound
        table[i] = c;
        i += 1;
    }
    table
};

/// An append-only write-ahead log over one file.
pub struct Wal {
    path: PathBuf,
    file: Box<dyn VfsFile>,
    /// Byte offset where the next frame is appended. Maintained
    /// explicitly because the [`VfsFile`] interface is positional.
    tail: u64,
    /// When set, [`Self::reset_with_vfs`] refuses to run unless
    /// [`Self::note_base_durable`] was called since the last reset —
    /// the durability-ordering audit for checkpointing stores.
    audit_reset: bool,
    /// Set by the owner once the checkpointed base state is durable;
    /// consumed (cleared) by the next reset.
    base_durable_noted: bool,
}

impl Wal {
    /// Opens (creating if absent) the log at `path` on the real
    /// filesystem.
    pub fn open(path: &Path) -> Result<Self> {
        Self::open_with_vfs(&StdVfs::arc(), path)
    }

    /// Opens (creating if absent) the log at `path` through `vfs`. When
    /// the file is freshly created, the parent directory is fsynced as
    /// well — without that, a crash right after creation can lose the
    /// file (and with it every record subsequently acknowledged) even
    /// though each append fsyncs the file itself.
    pub fn open_with_vfs(vfs: &Arc<dyn Vfs>, path: &Path) -> Result<Self> {
        let existed = vfs.exists(path);
        let file = vfs.open(path)?;
        if !existed {
            file.sync_data()?;
            vfs.sync_parent_dir(path)?;
        }
        let tail = file.len()?;
        Ok(Wal {
            path: path.to_path_buf(),
            file,
            tail,
            audit_reset: false,
            base_durable_noted: false,
        })
    }

    /// Arms the durability-ordering audit: every subsequent
    /// [`Self::reset_with_vfs`] fails unless [`Self::note_base_durable`]
    /// was called first. Owners that truncate the log only after
    /// checkpointing (i.e. `DurableKv`) arm this at open so an ordering
    /// regression — truncating the log while recovery still depends on
    /// it — surfaces as a hard error instead of silent data loss.
    pub fn require_reset_audit(&mut self) {
        self.audit_reset = true;
    }

    /// Records that the checkpointed base state the log protects has
    /// been made durable (fsynced and, where relevant, its rename
    /// fsynced too), so the log may now be truncated.
    pub fn note_base_durable(&mut self) {
        self.base_durable_noted = true;
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends a record and flushes it to stable storage.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let body = encode_body(record);
        let mut frame = Vec::with_capacity(body.len() + 8);
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        if let Err(e) = self.file.write_all_at(self.tail, &frame) {
            // Best-effort rollback of a short write so the tail stays
            // parseable; the frame was never acknowledged.
            let _ = self.file.set_len(self.tail);
            return Err(e);
        }
        self.file.sync_data()?;
        obs::counter!("kvstore_wal_appends_total").inc();
        obs::counter!("kvstore_wal_appended_bytes_total").add(frame.len() as u64);
        obs::counter!("kvstore_wal_syncs_total").inc();
        obs::trace::count("wal.syncs", 1);
        self.tail += frame.len() as u64;
        Ok(())
    }

    /// Appends `ops` as one atomic group — `TxnBegin(seq)`, the ops,
    /// `TxnCommit(seq)` — with a single positional write and a single
    /// fsync. A crash mid-write leaves at worst an unterminated group,
    /// which replay rolls back wholesale; there is no interleaving in
    /// which a proper subset of `ops` survives.
    pub fn append_txn(&mut self, seq: u64, ops: &[WalRecord]) -> Result<()> {
        let mut frames = Vec::new();
        let push = |record: &WalRecord, frames: &mut Vec<u8>| {
            let body = encode_body(record);
            frames.extend_from_slice(&(body.len() as u32).to_le_bytes());
            frames.extend_from_slice(&crc32(&body).to_le_bytes());
            frames.extend_from_slice(&body);
        };
        push(&WalRecord::TxnBegin { seq }, &mut frames);
        for op in ops {
            debug_assert!(
                matches!(op, WalRecord::Put { .. } | WalRecord::Delete { .. }),
                "only Put/Delete may appear inside a transaction"
            );
            push(op, &mut frames);
        }
        push(&WalRecord::TxnCommit { seq }, &mut frames);
        if let Err(e) = self.file.write_all_at(self.tail, &frames) {
            // Best-effort rollback of a short write; the group was never
            // acknowledged (and even unrolled, replay drops it).
            let _ = self.file.set_len(self.tail);
            return Err(e);
        }
        self.file.sync_data()?;
        obs::counter!("kvstore_wal_appends_total").add(ops.len() as u64 + 2);
        obs::counter!("kvstore_wal_appended_bytes_total").add(frames.len() as u64);
        obs::counter!("kvstore_wal_syncs_total").inc();
        obs::counter!("kvstore_wal_txns_total").inc();
        obs::trace::count("wal.syncs", 1);
        self.tail += frames.len() as u64;
        Ok(())
    }

    /// Reads every intact record from the start of the log. A torn or
    /// corrupt *tail* ends replay silently (those records were never
    /// acknowledged as committed) and is truncated away; a damaged
    /// record *followed by* an intact one is mid-log corruption of
    /// committed data and is reported as [`KvError::Corrupt`].
    pub fn replay(&mut self) -> Result<Vec<WalRecord>> {
        let len = self.file.len()? as usize;
        let mut buf = vec![0u8; len];
        self.file.read_exact_at(0, &mut buf)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        // Open transaction: (index into `records` of its TxnBegin, byte
        // offset of that frame, its seq).
        let mut txn: Option<(usize, usize, u64)> = None;
        while pos < buf.len() {
            if pos + 8 > buf.len() {
                ensure_tail_only(&buf, pos)?;
                break; // torn length header
            }
            let len = codec::u32_at(&buf, pos, "WAL frame length")? as usize;
            let crc = codec::u32_at(&buf, pos + 4, "WAL frame checksum")?;
            if pos + 8 + len > buf.len() {
                ensure_tail_only(&buf, pos)?;
                break; // torn body
            }
            let body = codec::slice_at(&buf, pos + 8, len, "WAL frame body")?;
            if crc32(body) != crc {
                ensure_tail_only(&buf, pos)?;
                break; // torn final record
            }
            match decode_body(body) {
                Some(r) => {
                    match &r {
                        WalRecord::TxnBegin { seq } => {
                            if txn.is_some() {
                                return Err(KvError::corrupt(format!(
                                    "WAL transaction at byte {pos} begins inside an \
                                     unterminated transaction"
                                )));
                            }
                            txn = Some((records.len(), pos, *seq));
                        }
                        WalRecord::TxnCommit { seq } => match txn.take() {
                            Some((_, _, begin_seq)) if begin_seq == *seq => {}
                            Some((_, at, begin_seq)) => {
                                return Err(KvError::corrupt(format!(
                                    "WAL commit at byte {pos} (seq {seq}) does not match \
                                     the open transaction at byte {at} (seq {begin_seq})"
                                )));
                            }
                            None => {
                                return Err(KvError::corrupt(format!(
                                    "WAL commit at byte {pos} has no matching begin"
                                )));
                            }
                        },
                        WalRecord::Checkpoint if txn.is_some() => {
                            return Err(KvError::corrupt(format!(
                                "WAL checkpoint at byte {pos} inside an open transaction"
                            )));
                        }
                        _ => {}
                    }
                    records.push(r);
                }
                None => {
                    // A fully written, CRC-valid frame that does not
                    // decode was never a torn write.
                    return Err(KvError::corrupt(format!(
                        "WAL record at byte {pos} has a valid checksum but undecodable body"
                    )));
                }
            }
            pos += 8 + len;
        }
        // An unterminated transaction at the tail was torn mid-group
        // (the group is written with one write + one fsync, so nothing
        // in it was ever acknowledged): roll the whole group back.
        if let Some((idx, at, _)) = txn {
            records.truncate(idx);
            pos = at;
        }
        // Truncate any torn tail so appends resume at the intact prefix.
        if (pos as u64) < self.file.len()? {
            self.file.set_len(pos as u64)?;
        }
        self.tail = pos as u64;
        Ok(records)
    }

    /// Truncates the log to empty (after the state has been checkpointed
    /// elsewhere). Both the file and its directory are fsynced so the
    /// truncation — the moment recovery stops depending on the log — is
    /// itself durable.
    pub fn reset(&mut self) -> Result<()> {
        self.reset_with_vfs(&StdVfs::arc())
    }

    /// [`Self::reset`] through an explicit `vfs` (must be the one the
    /// log was opened with).
    pub fn reset_with_vfs(&mut self, vfs: &Arc<dyn Vfs>) -> Result<()> {
        if self.audit_reset && !self.base_durable_noted {
            return Err(KvError::corrupt(
                "WAL reset ordered before the checkpointed base was durable: truncating \
                 here could drop committed records"
                    .to_string(),
            ));
        }
        self.base_durable_noted = false;
        self.file.set_len(0)?;
        // Track the truncation immediately: if one of the syncs below
        // fails, the file *is* empty and a stale tail would make the next
        // append leave a zero gap that replays as corruption.
        self.tail = 0;
        self.file.sync_data()?;
        vfs.sync_parent_dir(&self.path)?;
        Ok(())
    }

    /// Current log size in bytes.
    pub fn len(&mut self) -> Result<u64> {
        self.file.len()
    }

    pub fn is_empty(&mut self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
}

/// Reports mid-log corruption: the frame at `bad_at` is damaged, so no
/// *committed* (intact, decodable) record may follow it. A torn tail —
/// the only damage a crash can cause — is always last.
fn ensure_tail_only(buf: &[u8], bad_at: usize) -> Result<()> {
    // The damaged frame's length field is untrusted, so scan every byte
    // offset behind it. An 8-zero-byte run decodes as an "intact" empty
    // frame, hence the decode check: only a frame that parses into a
    // record is evidence of committed data.
    for p in bad_at + 1..buf.len() {
        if frame_is_intact(buf, p) && decode_at(buf, p).is_some() {
            return Err(KvError::corrupt(format!(
                "WAL record at byte {bad_at} is damaged but an intact record follows at \
                 byte {p}: mid-log corruption, not a torn tail"
            )));
        }
    }
    Ok(())
}

fn encode_body(record: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        WalRecord::Put { key, value } => {
            out.push(1);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key);
            out.extend_from_slice(value);
        }
        WalRecord::Delete { key } => {
            out.push(2);
            out.extend_from_slice(&(key.len() as u32).to_le_bytes());
            out.extend_from_slice(key);
        }
        WalRecord::Checkpoint => out.push(3),
        WalRecord::TxnBegin { seq } => {
            out.push(4);
            out.extend_from_slice(&seq.to_le_bytes());
        }
        WalRecord::TxnCommit { seq } => {
            out.push(5);
            out.extend_from_slice(&seq.to_le_bytes());
        }
    }
    out
}

fn decode_body(body: &[u8]) -> Option<WalRecord> {
    match body.first()? {
        1 => {
            let klen = u32::from_le_bytes(body.get(1..5)?.try_into().ok()?) as usize;
            let key = body.get(5..5 + klen)?.to_vec();
            let value = body.get(5 + klen..)?.to_vec();
            Some(WalRecord::Put { key, value })
        }
        2 => {
            let klen = u32::from_le_bytes(body.get(1..5)?.try_into().ok()?) as usize;
            if body.len() != 5 + klen {
                return None;
            }
            let key = body.get(5..5 + klen)?.to_vec();
            Some(WalRecord::Delete { key })
        }
        3 => (body.len() == 1).then_some(WalRecord::Checkpoint),
        4 => {
            let seq = u64::from_le_bytes(body.get(1..9)?.try_into().ok()?);
            (body.len() == 9).then_some(WalRecord::TxnBegin { seq })
        }
        5 => {
            let seq = u64::from_le_bytes(body.get(1..9)?.try_into().ok()?);
            (body.len() == 9).then_some(WalRecord::TxnCommit { seq })
        }
        _ => None,
    }
}

/// Decodes the record of the frame at `buf[pos..]`, if it is intact.
fn decode_at(buf: &[u8], pos: usize) -> Option<WalRecord> {
    let len = codec::u32_at(buf, pos, "frame length").ok()? as usize;
    let body = buf.get(pos + 8..pos + 8 + len)?;
    decode_body(body)
}

/// Validates a record frame at `buf[pos..]`; exposed for fuzz-style tests.
pub fn frame_is_intact(buf: &[u8], pos: usize) -> bool {
    let Ok(len) = codec::u32_at(buf, pos, "frame length") else {
        return false;
    };
    let Ok(crc) = codec::u32_at(buf, pos + 4, "frame checksum") else {
        return false;
    };
    let len = len as usize;
    match pos
        .checked_add(8 + len)
        .and_then(|end| buf.get(pos + 8..end))
    {
        Some(body) => crc32(body) == crc,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs::OpenOptions;
    use std::io::Write;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kvwal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = tmp("roundtrip.wal");
        let records = vec![
            WalRecord::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            },
            WalRecord::Delete { key: b"a".to_vec() },
            WalRecord::Checkpoint,
            WalRecord::Put {
                key: b"b".to_vec(),
                value: vec![0xFF; 1000],
            },
        ];
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.replay().unwrap(), records);
        // replay is idempotent
        assert_eq!(wal.replay().unwrap(), records);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Put {
                key: b"k1".to_vec(),
                value: b"v1".to_vec(),
            })
            .unwrap();
            wal.append(&WalRecord::Put {
                key: b"k2".to_vec(),
                value: b"v2".to_vec(),
            })
            .unwrap();
        }
        // simulate a crash mid-write: chop bytes off the tail
        let full = std::fs::read(&path).unwrap();
        for cut in 1..full.len() {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let mut wal = Wal::open(&path).unwrap();
            let records = wal.replay().unwrap();
            assert!(records.len() <= 2);
            // the intact prefix is always a prefix of the full history
            for (i, r) in records.iter().enumerate() {
                let expected_key = if i == 0 { b"k1" } else { b"k2" };
                match r {
                    WalRecord::Put { key, .. } => assert_eq!(key, expected_key),
                    other => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn mid_log_bit_flip_is_corruption_not_a_torn_tail() {
        // A damaged record with intact records after it means committed
        // data was corrupted in place; silently truncating there would
        // drop the committed suffix. Regression for the old behavior of
        // `replay`, which treated any bad frame as a torn tail.
        let path = tmp("midlog.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            for i in 0..5u8 {
                wal.append(&WalRecord::Put {
                    key: vec![i],
                    value: vec![i; 16],
                })
                .unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        let frame = full.len() / 5;
        // Flip a byte inside the third record's body.
        let mut bytes = full.clone();
        bytes[2 * frame + 10] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        match wal.replay() {
            Err(KvError::Corrupt { context, .. }) => {
                assert!(context.contains("mid-log"), "context: {context}");
            }
            other => panic!("expected mid-log corruption, got {other:?}"),
        }

        // Flip a byte in every *other* position of the log and check the
        // verdict is always corruption (records follow) except within
        // the final frame, where truncation to the intact prefix is the
        // correct recovery.
        let last_frame_start = 4 * frame;
        for flip in 0..full.len() {
            let mut bytes = full.clone();
            bytes[flip] ^= 0xFF;
            std::fs::write(&path, &bytes).unwrap();
            let mut wal = Wal::open(&path).unwrap();
            match wal.replay() {
                Ok(records) => {
                    assert!(
                        flip >= last_frame_start,
                        "flip at {flip} silently truncated committed records"
                    );
                    assert_eq!(records.len(), 4);
                }
                Err(KvError::Corrupt { .. }) => {
                    assert!(
                        flip < last_frame_start,
                        "flip at {flip} inside the tail frame"
                    );
                }
                Err(other) => panic!("unexpected error {other}"),
            }
        }
    }

    #[test]
    fn corrupt_final_record_is_truncated_as_torn_tail() {
        let path = tmp("tailflip.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            for i in 0..3u8 {
                wal.append(&WalRecord::Put {
                    key: vec![i],
                    value: vec![i; 16],
                })
                .unwrap();
            }
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let frame = bytes.len() / 3;
        let n = bytes.len();
        bytes[2 * frame + frame / 2] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let mut wal = Wal::open(&path).unwrap();
        let records = wal.replay().unwrap();
        assert_eq!(records.len(), 2);
        // The damaged tail was truncated away.
        assert!(wal.len().unwrap() < n as u64);
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset.wal");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Checkpoint).unwrap();
        assert!(!wal.is_empty().unwrap());
        wal.reset().unwrap();
        assert!(wal.is_empty().unwrap());
        assert!(wal.replay().unwrap().is_empty());
    }

    #[test]
    fn fresh_create_then_torn_tail_then_recreate_reopens_cleanly() {
        // Exercises the creation/truncation durability path end to end:
        // every transition a crash could interrupt (fresh create, torn
        // append, checkpoint reset, re-create) must leave a log the next
        // open can replay.
        let path = tmp("fresh_create.wal");

        // 1. Fresh create (directory fsync path), no records yet.
        {
            let mut wal = Wal::open(&path).unwrap();
            assert!(wal.replay().unwrap().is_empty());
        }
        assert!(path.exists(), "create must leave a durable file");

        // 2. Append, then tear the tail mid-record.
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Put {
                key: b"survives".to_vec(),
                value: b"1".to_vec(),
            })
            .unwrap();
            wal.append(&WalRecord::Put {
                key: b"torn".to_vec(),
                value: vec![0xAB; 64],
            })
            .unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        {
            let mut wal = Wal::open(&path).unwrap();
            let records = wal.replay().unwrap();
            assert_eq!(records.len(), 1);
            assert!(matches!(&records[0], WalRecord::Put { key, .. } if key == b"survives"));
            // 3. Checkpoint-style reset (truncation durability path).
            wal.reset().unwrap();
        }

        // 4. Delete and re-create at the same path (the checkpoint-rename
        //    shape): the fresh log must open and serve appends again.
        std::fs::remove_file(&path).unwrap();
        {
            let mut wal = Wal::open(&path).unwrap();
            assert!(wal.replay().unwrap().is_empty());
            wal.append(&WalRecord::Checkpoint).unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.replay().unwrap(), vec![WalRecord::Checkpoint]);
    }

    #[test]
    fn txn_roundtrip_and_tail_rollback() {
        let path = tmp("txn.wal");
        let ops = vec![
            WalRecord::Put {
                key: b"x".to_vec(),
                value: b"1".to_vec(),
            },
            WalRecord::Delete { key: b"y".to_vec() },
        ];
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Put {
                key: b"pre".to_vec(),
                value: b"0".to_vec(),
            })
            .unwrap();
            wal.append_txn(7, &ops).unwrap();
        }
        {
            let mut wal = Wal::open(&path).unwrap();
            let records = wal.replay().unwrap();
            assert_eq!(records.len(), 5); // pre + begin + 2 ops + commit
            assert_eq!(records[1], WalRecord::TxnBegin { seq: 7 });
            assert_eq!(records[4], WalRecord::TxnCommit { seq: 7 });
        }
        // Tear the commit off: the whole group must roll back, and the
        // file must truncate to before the TxnBegin so later appends do
        // not strand a dangling group mid-log.
        let full = std::fs::read(&path).unwrap();
        for cut in 1..40 {
            std::fs::write(&path, &full[..full.len() - cut]).unwrap();
            let mut wal = Wal::open(&path).unwrap();
            let records = wal.replay().unwrap();
            if records.len() > 1 {
                // the cut spared the commit frame: all-or-nothing
                assert_eq!(records.len(), 5);
            } else {
                assert_eq!(records.len(), 1);
                // appending after the rollback keeps the log clean
                wal.append_txn(8, &ops).unwrap();
                drop(wal);
                let mut wal = Wal::open(&path).unwrap();
                let records = wal.replay().unwrap();
                assert_eq!(records.len(), 5);
                assert_eq!(records[1], WalRecord::TxnBegin { seq: 8 });
            }
        }
    }

    #[test]
    fn dangling_txn_mid_log_is_corruption() {
        let path = tmp("txn_midlog.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            // Forge an unterminated group followed by an intact record
            // (a writer never produces this; only in-place damage can).
            wal.append(&WalRecord::TxnBegin { seq: 1 }).unwrap();
            wal.append(&WalRecord::Put {
                key: b"in".to_vec(),
                value: b"txn".to_vec(),
            })
            .unwrap();
            wal.append(&WalRecord::TxnBegin { seq: 2 }).unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        match wal.replay() {
            Err(KvError::Corrupt { context, .. }) => {
                assert!(context.contains("unterminated"), "context: {context}");
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn commit_without_begin_is_corruption() {
        let path = tmp("txn_orphan_commit.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::TxnCommit { seq: 3 }).unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        assert!(matches!(wal.replay(), Err(KvError::Corrupt { .. })));
    }

    #[test]
    fn reset_audit_orders_base_sync_before_truncate() {
        let path = tmp("audit.wal");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(&WalRecord::Checkpoint).unwrap();
        wal.require_reset_audit();
        // Truncating before the base is durable must fail loudly…
        assert!(matches!(wal.reset(), Err(KvError::Corrupt { .. })));
        assert!(!wal.is_empty().unwrap(), "audit failure must not truncate");
        // …and succeed once the durability note is recorded.
        wal.note_base_durable();
        wal.reset().unwrap();
        assert!(wal.is_empty().unwrap());
        // The note is consumed: the next reset needs a fresh note.
        wal.append(&WalRecord::Checkpoint).unwrap();
        assert!(matches!(wal.reset(), Err(KvError::Corrupt { .. })));
    }

    #[test]
    fn appending_after_torn_replay_continues_cleanly() {
        let path = tmp("continue.wal");
        {
            let mut wal = Wal::open(&path).unwrap();
            wal.append(&WalRecord::Put {
                key: b"a".to_vec(),
                value: b"1".to_vec(),
            })
            .unwrap();
        }
        // torn garbage at the end
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[1, 2, 3]).unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 1);
        wal.append(&WalRecord::Put {
            key: b"b".to_vec(),
            value: b"2".to_vec(),
        })
        .unwrap();
        drop(wal);
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.replay().unwrap().len(), 2);
    }
}

//! Streaming XML emission.
//!
//! The generators historically produced an in-memory
//! [`Document`](xmldom::Document), which caps corpus size at available
//! RAM twice over (tree + rendered text). This module splits generation
//! from materialisation: generators drive an [`XmlSink`], and the caller
//! picks the backend —
//!
//! * [`BuilderSink`] reproduces the old behaviour (an arena
//!   `Document`);
//! * [`XmlStreamWriter`] renders straight to any [`io::Write`] with
//!   only the open-element stack as state, **byte-identical** to
//!   [`Document::to_xml`](xmldom::Document::to_xml) for the event
//!   shapes generators emit (attributes and text before any child
//!   element). That identity is what lets the ingest differential
//!   oracle compare DOM and streaming builds over disk-resident
//!   corpora.

use std::io::{self, Write};
use xmldom::tree::escape_into;
use xmldom::{Document, DocumentBuilder};

/// Receiver of generator events. The contract mirrors
/// [`DocumentBuilder`]: elements nest properly, and per element all
/// attributes and text precede its child elements.
pub trait XmlSink {
    fn open_element(&mut self, tag: &str) -> io::Result<()>;
    fn attribute(&mut self, name: &str, value: &str) -> io::Result<()>;
    fn text(&mut self, text: &str) -> io::Result<()>;
    fn close_element(&mut self) -> io::Result<()>;

    /// Convenience: a leaf element with text content.
    fn leaf(&mut self, tag: &str, text: &str) -> io::Result<()> {
        self.open_element(tag)?;
        self.text(text)?;
        self.close_element()
    }
}

/// Sink that materialises the classic in-memory [`Document`].
#[derive(Debug, Default)]
pub struct BuilderSink {
    builder: DocumentBuilder,
}

impl BuilderSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn finish(self) -> Document {
        self.builder.finish()
    }
}

impl XmlSink for BuilderSink {
    fn open_element(&mut self, tag: &str) -> io::Result<()> {
        self.builder.open_element(tag);
        Ok(())
    }

    fn attribute(&mut self, name: &str, value: &str) -> io::Result<()> {
        self.builder.attribute(name, value);
        Ok(())
    }

    fn text(&mut self, text: &str) -> io::Result<()> {
        self.builder.text(text);
        Ok(())
    }

    fn close_element(&mut self) -> io::Result<()> {
        self.builder.close_element();
        Ok(())
    }
}

/// An element that has been opened but whose kind (self-closing leaf,
/// text leaf, or parent) is not yet known.
#[derive(Debug)]
struct Pending {
    tag: String,
    attrs: Vec<(String, String)>,
    text: String,
    depth: usize,
}

/// Streams generator events to a writer, producing exactly the bytes of
/// [`Document::to_xml`](xmldom::Document::to_xml) while holding only
/// the open-element tag stack.
///
/// The pretty-printer needs one element of lookahead (a leaf renders as
/// `<tag/>` or `<tag>text</tag>`, a parent as an indented block), so an
/// opened element stays pending until its first child or its close.
/// Text arriving after a child element cannot be rendered identically
/// in a stream and returns [`io::ErrorKind::InvalidInput`]; generators
/// always emit text first.
pub struct XmlStreamWriter<W: Write> {
    out: W,
    /// Tags of materialised (parent) open elements.
    stack: Vec<String>,
    pending: Option<Pending>,
    /// Scratch for entity escaping.
    buf: String,
}

impl<W: Write> XmlStreamWriter<W> {
    pub fn new(out: W) -> Self {
        XmlStreamWriter {
            out,
            stack: Vec::new(),
            pending: None,
            buf: String::new(),
        }
    }

    /// Checks the document is complete and returns the writer.
    pub fn finish(mut self) -> io::Result<W> {
        if self.pending.is_some() || !self.stack.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "unclosed elements at finish",
            ));
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn indent(&mut self, depth: usize) -> io::Result<()> {
        for _ in 0..depth {
            self.out.write_all(b"  ")?;
        }
        Ok(())
    }

    fn escaped(&mut self, text: &str) -> io::Result<()> {
        self.buf.clear();
        escape_into(text, &mut self.buf);
        self.out.write_all(self.buf.as_bytes())
    }

    fn open_markup(&mut self, p: &Pending) -> io::Result<()> {
        self.indent(p.depth)?;
        self.out.write_all(b"<")?;
        self.out.write_all(p.tag.as_bytes())?;
        for (k, v) in &p.attrs {
            self.out.write_all(b" ")?;
            self.out.write_all(k.as_bytes())?;
            self.out.write_all(b"=\"")?;
            self.escaped(v)?;
            self.out.write_all(b"\"")?;
        }
        Ok(())
    }

    /// The pending element just got a child: render it as a parent
    /// block opener and push it on the stack.
    fn materialise_parent(&mut self) -> io::Result<()> {
        let Some(p) = self.pending.take() else {
            return Ok(());
        };
        self.open_markup(&p)?;
        self.out.write_all(b">\n")?;
        if !p.text.is_empty() {
            self.indent(p.depth + 1)?;
            self.escaped(&p.text)?;
            self.out.write_all(b"\n")?;
        }
        self.stack.push(p.tag);
        Ok(())
    }
}

impl<W: Write> XmlSink for XmlStreamWriter<W> {
    fn open_element(&mut self, tag: &str) -> io::Result<()> {
        self.materialise_parent()?;
        self.pending = Some(Pending {
            tag: tag.to_string(),
            attrs: Vec::new(),
            text: String::new(),
            depth: self.stack.len(),
        });
        Ok(())
    }

    fn attribute(&mut self, name: &str, value: &str) -> io::Result<()> {
        match &mut self.pending {
            Some(p) => {
                p.attrs.push((name.to_string(), value.to_string()));
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "attribute after child elements cannot be streamed",
            )),
        }
    }

    fn text(&mut self, text: &str) -> io::Result<()> {
        if text.is_empty() {
            return Ok(());
        }
        match &mut self.pending {
            Some(p) => {
                if !p.text.is_empty() {
                    p.text.push(' ');
                }
                p.text.push_str(text);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "text after child elements cannot be streamed",
            )),
        }
    }

    fn close_element(&mut self) -> io::Result<()> {
        if let Some(p) = self.pending.take() {
            // Leaf: `<tag/>` or `<tag>text</tag>`.
            self.open_markup(&p)?;
            if p.text.is_empty() {
                self.out.write_all(b"/>\n")?;
            } else {
                self.out.write_all(b">")?;
                self.escaped(&p.text)?;
                self.out.write_all(b"</")?;
                self.out.write_all(p.tag.as_bytes())?;
                self.out.write_all(b">\n")?;
            }
            return Ok(());
        }
        match self.stack.pop() {
            Some(tag) => {
                self.indent(self.stack.len())?;
                self.out.write_all(b"</")?;
                self.out.write_all(tag.as_bytes())?;
                self.out.write_all(b">\n")?;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "close without open element",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive<S: XmlSink>(s: &mut S) -> io::Result<()> {
        s.open_element("bib")?;
        s.open_element("author")?;
        s.attribute("id", "a&1")?;
        s.text("  ")?; // whitespace text is preserved by both backends
        s.leaf("name", "Mike <Franklin>")?;
        s.leaf("empty", "")?;
        s.close_element()?;
        s.leaf("note", "plain")?;
        s.close_element()
    }

    #[test]
    fn stream_writer_matches_document_to_xml() {
        let mut b = BuilderSink::new();
        drive(&mut b).expect("builder never fails");
        let doc = b.finish();

        let mut w = XmlStreamWriter::new(Vec::new());
        drive(&mut w).expect("stream");
        let bytes = w.finish().expect("complete");
        assert_eq!(String::from_utf8(bytes).unwrap(), doc.to_xml());
    }

    #[test]
    fn text_after_children_is_rejected() {
        let mut w = XmlStreamWriter::new(Vec::new());
        w.open_element("a").unwrap();
        w.leaf("b", "x").unwrap();
        assert_eq!(
            w.text("tail").unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
    }

    #[test]
    fn incomplete_document_is_rejected_at_finish() {
        let mut w = XmlStreamWriter::new(Vec::new());
        w.open_element("a").unwrap();
        assert!(w.finish().is_err());
    }

    #[test]
    fn close_without_open_is_rejected() {
        let mut w = XmlStreamWriter::new(Vec::new());
        assert!(w.close_element().is_err());
    }
}

//! `kvstore` — a page-based persistent B+-tree key-value store.
//!
//! The paper stores all of its indices (keyword inverted lists, frequency
//! table, co-occurrence table) in Berkeley DB (§VII). This crate is the
//! workspace's from-scratch substitute: ordered keyed storage with
//! `O(log n)` lookups, prefix/range scans and values of arbitrary size.
//!
//! * [`pager`]: fixed-size page storage (in-memory or file-backed).
//! * [`btree`]: the B+-tree itself.
//! * [`store`]: the [`KvStore`] trait plus [`MemKv`] (BTreeMap model),
//!   [`MemTreeKv`] (B+-tree over memory) and [`DiskKv`] (B+-tree over a
//!   file).

pub mod btree;
pub mod durable;
pub mod error;
mod fsutil;
pub mod pager;
pub mod store;
pub mod wal;

pub use btree::{BTree, MAX_KEY_LEN};
pub use durable::DurableKv;
pub use error::{KvError, Result};
pub use pager::{FilePager, MemPager, PageId, Pager, PAGE_SIZE};
pub use store::{DiskKv, KvStore, MemKv, MemTreeKv};
pub use wal::{crc32, Wal, WalRecord};

//! `DurableKv`: a crash-safe store = checkpointed B+-tree + write-ahead
//! log.
//!
//! Layout on disk: `<base>.db` (the B+-tree holding the last checkpoint)
//! and `<base>.wal` (mutations since). Every `put`/`delete` is logged and
//! fsynced before the in-memory overlay changes, so an acknowledged write
//! survives any crash; `checkpoint()` folds tree + overlay into a *new*
//! tree file and atomically renames it over the old one before resetting
//! the log. On open, the checkpoint is loaded and the WAL is replayed
//! over it.
//!
//! ## Crash-safety of checkpointing
//!
//! The checkpoint never modifies `<base>.db` in place. The merged state
//! is written to `<base>.db.new`, fsynced, renamed over `<base>.db`, and
//! the directory is fsynced — only then is the WAL truncated. A crash at
//! any point leaves either the old tree (rename not yet durable) or the
//! new tree (rename durable), and in both cases the still-intact WAL
//! replays the overlay on top, which is idempotent. A partially written
//! `<base>.db.new` left by a crash is deleted on the next open. In-place
//! tree updates would not have this property: a power cut midway through
//! flushing a multi-page update can strand the tree in a state no WAL
//! replay can repair.

use crate::btree::BTree;
use crate::error::Result;
use crate::pager::FilePager;
use crate::store::KvStore;
use crate::vfs::{StdVfs, Vfs};
use crate::wal::{Wal, WalRecord};
use std::collections::BTreeMap;
use std::ops::Bound;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One mutation inside an atomic [`DurableKv::apply_batch`] group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
}

/// A crash-safe key-value store.
pub struct DurableKv {
    vfs: Arc<dyn Vfs>,
    base: PathBuf,
    tree: BTree<FilePager>,
    /// Overlay of mutations since the last checkpoint:
    /// `Some(v)` = pending put, `None` = pending delete.
    overlay: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    wal: Wal,
    live_count: u64,
    /// Sequence number of the last committed transaction group.
    /// Monotonic while the store is open; a reopen re-derives it from
    /// the replayed log (so it restarts at 0 after a checkpoint).
    txn_seq: u64,
}

impl DurableKv {
    /// Opens (creating if absent) the store rooted at `base` — files
    /// `base.db` and `base.wal` are created next to each other.
    pub fn open(base: &Path) -> Result<Self> {
        Self::open_with_vfs(StdVfs::arc(), base)
    }

    /// [`Self::open`] through an explicit [`Vfs`] (fault injection,
    /// crash-recovery testing).
    pub fn open_with_vfs(vfs: Arc<dyn Vfs>, base: &Path) -> Result<Self> {
        let db_path = base.with_extension("db");
        let wal_path = base.with_extension("wal");
        // A crash mid-checkpoint can leave a partially written new tree.
        vfs.remove(&base.with_extension("db.new"))?;
        let tree = BTree::new(FilePager::open_with_vfs(&vfs, &db_path)?)?;
        let mut wal = Wal::open_with_vfs(&vfs, &wal_path)?;
        wal.require_reset_audit();

        let mut overlay: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        let mut txn_seq = 0u64;
        // Transaction groups arrive whole or not at all: `Wal::replay`
        // rolls back an unterminated tail group and reports a dangling
        // mid-log group as corruption, so folding member ops directly
        // into the overlay here is safe.
        for record in wal.replay()? {
            match record {
                WalRecord::Put { key, value } => {
                    overlay.insert(key, Some(value));
                }
                WalRecord::Delete { key } => {
                    overlay.insert(key, None);
                }
                // A checkpoint record would mean the tree already holds
                // everything before it; the checkpointing protocol resets
                // the log instead, so this only appears mid-crash.
                WalRecord::Checkpoint => overlay.clear(),
                WalRecord::TxnBegin { .. } => {}
                WalRecord::TxnCommit { seq } => txn_seq = txn_seq.max(seq),
            }
        }

        let mut store = DurableKv {
            vfs,
            base: base.to_path_buf(),
            tree,
            overlay,
            wal,
            live_count: 0,
            txn_seq,
        };
        store.live_count = store.recount()?;
        Ok(store)
    }

    fn recount(&self) -> Result<u64> {
        let mut count = self.tree.len();
        for (key, v) in &self.overlay {
            let in_tree = self.tree.contains(key)?;
            match (in_tree, v.is_some()) {
                (false, true) => count += 1,
                (true, false) => count -= 1,
                _ => {}
            }
        }
        Ok(count)
    }

    /// Writes the merged tree + overlay state to a fresh tree file,
    /// atomically swaps it in, and resets the WAL. After this returns,
    /// recovery no longer needs the log. On error the store is
    /// unchanged: the old tree, overlay and WAL all remain in force.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.overlay.is_empty() && self.wal.is_empty()? {
            return Ok(());
        }
        let tmp_path = self.base.with_extension("db.new");
        self.vfs.remove(&tmp_path)?;
        let mut new_tree = BTree::new(FilePager::open_with_vfs(&self.vfs, &tmp_path)?)?;
        {
            // Stream the merge of the (sorted) tree scan and the
            // (sorted) overlay without materializing either.
            let tree = &self.tree;
            let overlay = &self.overlay;
            let mut ov = overlay.iter().peekable();
            tree.for_each_in_range(b"", None, &mut |k, v| {
                while let Some(&(ov_key, ov_val)) = ov.peek() {
                    match ov_key.as_slice().cmp(k) {
                        std::cmp::Ordering::Less => {
                            if let Some(val) = ov_val {
                                new_tree.put(ov_key, val)?;
                            }
                            ov.next();
                        }
                        std::cmp::Ordering::Equal => {
                            // Overlay shadows the tree (including deletes).
                            if let Some(val) = ov_val {
                                new_tree.put(ov_key, val)?;
                            }
                            ov.next();
                            return Ok(true);
                        }
                        std::cmp::Ordering::Greater => break,
                    }
                }
                new_tree.put(k, &v)?;
                Ok(true)
            })?;
            for (ov_key, ov_val) in ov {
                if let Some(val) = ov_val {
                    new_tree.put(ov_key, val)?;
                }
            }
        }
        new_tree.sync()?;

        let db_path = self.base.with_extension("db");
        self.vfs.rename(&tmp_path, &db_path)?;
        self.vfs.sync_parent_dir(&db_path)?;
        // The swap is durable; adopt the new tree, then retire the log.
        // The note/audit pair enforces this ordering: resetting the WAL
        // before this point would fail hard (see `Wal::require_reset_audit`).
        self.wal.note_base_durable();
        self.tree = new_tree;
        self.overlay.clear();
        self.wal.reset_with_vfs(&self.vfs)
    }

    /// Applies `ops` as one atomic group: a single WAL transaction
    /// (one write, one fsync) carries all of them, so after a crash
    /// either every op is recovered or none is. Ops apply in order, so
    /// a later op on the same key shadows an earlier one.
    pub fn apply_batch(&mut self, ops: &[BatchOp]) -> Result<()> {
        if ops.is_empty() {
            return Ok(());
        }
        let records: Vec<WalRecord> = ops
            .iter()
            .map(|op| match op {
                BatchOp::Put(key, value) => WalRecord::Put {
                    key: key.clone(),
                    value: value.clone(),
                },
                BatchOp::Delete(key) => WalRecord::Delete { key: key.clone() },
            })
            .collect();
        let seq = self.txn_seq + 1;
        self.wal.append_txn(seq, &records)?;
        self.txn_seq = seq;
        for op in ops {
            match op {
                BatchOp::Put(key, value) => {
                    let existed = self.contains(key)?;
                    self.overlay.insert(key.clone(), Some(value.clone()));
                    if !existed {
                        self.live_count += 1;
                    }
                }
                BatchOp::Delete(key) => {
                    if self.contains(key)? {
                        self.overlay.insert(key.clone(), None);
                        self.live_count -= 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Sequence number of the last committed transaction group (0 when
    /// none since the last checkpoint).
    pub fn txn_seq(&self) -> u64 {
        self.txn_seq
    }

    /// A point-in-time clone of the uncheckpointed overlay (committed
    /// puts/deletes the base tree does not hold yet). Snapshot readers
    /// layer this over a read-only handle on the checkpointed tree.
    pub fn overlay_snapshot(&self) -> BTreeMap<Vec<u8>, Option<Vec<u8>>> {
        self.overlay.clone()
    }

    /// Number of unsynced overlay entries (checkpoint trigger heuristics).
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// The base path this store was opened at.
    pub fn base_path(&self) -> &Path {
        &self.base
    }
}

impl KvStore for DurableKv {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.overlay.get(key) {
            Some(Some(v)) => Ok(Some(v.clone())),
            Some(None) => Ok(None),
            None => self.tree.get(key),
        }
    }

    fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let existed = self.contains(key)?;
        self.wal.append(&WalRecord::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })?;
        self.overlay.insert(key.to_vec(), Some(value.to_vec()));
        if !existed {
            self.live_count += 1;
        }
        Ok(())
    }

    fn delete(&mut self, key: &[u8]) -> Result<bool> {
        let existed = self.contains(key)?;
        if !existed {
            return Ok(false);
        }
        self.wal.append(&WalRecord::Delete { key: key.to_vec() })?;
        self.overlay.insert(key.to_vec(), None);
        self.live_count -= 1;
        Ok(true)
    }

    fn contains(&self, key: &[u8]) -> Result<bool> {
        match self.overlay.get(key) {
            Some(v) => Ok(v.is_some()),
            None => self.tree.contains(key),
        }
    }

    fn scan_range(&self, start: &[u8], end: Option<&[u8]>) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        // Merge the tree's range with the overlay's range.
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for (k, v) in self.tree.scan_range(start, end)? {
            merged.insert(k, Some(v));
        }
        let upper = match end {
            Some(e) if e <= start => return Ok(Vec::new()),
            Some(e) => Bound::Excluded(e.to_vec()),
            None => Bound::Unbounded,
        };
        for (k, v) in self.overlay.range((Bound::Included(start.to_vec()), upper)) {
            merged.insert(k.clone(), v.clone());
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let all = self.scan_range(prefix, None)?;
        Ok(all
            .into_iter()
            .take_while(|(k, _)| k.starts_with(prefix))
            .collect())
    }

    fn len(&self) -> u64 {
        self.live_count
    }

    fn sync(&mut self) -> Result<()> {
        self.checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("durable_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        let _ = std::fs::remove_file(p.with_extension("db"));
        let _ = std::fs::remove_file(p.with_extension("db.new"));
        let _ = std::fs::remove_file(p.with_extension("wal"));
        p
    }

    #[test]
    fn basic_ops_and_reopen_without_checkpoint() {
        let base = tmp("basic");
        {
            let mut s = DurableKv::open(&base).unwrap();
            s.put(b"a", b"1").unwrap();
            s.put(b"b", b"2").unwrap();
            assert!(s.delete(b"a").unwrap());
            assert_eq!(s.len(), 1);
            // no checkpoint, no sync: the WAL alone must carry the state
        }
        let s = DurableKv::open(&base).unwrap();
        assert_eq!(s.get(b"a").unwrap(), None);
        assert_eq!(s.get(b"b").unwrap().unwrap(), b"2");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn checkpoint_then_more_writes_then_reopen() {
        let base = tmp("ckpt");
        {
            let mut s = DurableKv::open(&base).unwrap();
            for i in 0..50u32 {
                s.put(format!("k{i:03}").as_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            s.checkpoint().unwrap();
            assert_eq!(s.overlay_len(), 0);
            s.put(b"post", b"ckpt").unwrap();
            s.delete(b"k001").unwrap();
        }
        let s = DurableKv::open(&base).unwrap();
        assert_eq!(s.len(), 50); // 50 - 1 + 1
        assert_eq!(s.get(b"post").unwrap().unwrap(), b"ckpt");
        assert_eq!(s.get(b"k001").unwrap(), None);
        assert_eq!(s.get(b"k002").unwrap().unwrap(), 2u32.to_le_bytes());
    }

    #[test]
    fn repeated_checkpoints_fold_deletes_and_survive_reopen() {
        let base = tmp("reckpt");
        {
            let mut s = DurableKv::open(&base).unwrap();
            for i in 0..40u32 {
                s.put(format!("k{i:03}").as_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            s.checkpoint().unwrap();
            for i in 0..20u32 {
                s.delete(format!("k{i:03}").as_bytes()).unwrap();
            }
            s.checkpoint().unwrap();
            s.put(b"tail", b"t").unwrap();
        }
        let s = DurableKv::open(&base).unwrap();
        assert_eq!(s.len(), 21);
        assert_eq!(s.get(b"k000").unwrap(), None);
        assert_eq!(s.get(b"k039").unwrap().unwrap(), 39u32.to_le_bytes());
        assert_eq!(s.get(b"tail").unwrap().unwrap(), b"t");
        // The checkpoint fully rewrote the tree, so deleted keys are
        // genuinely gone from the base file, not just shadowed.
        assert_eq!(s.tree.len(), 20);
    }

    #[test]
    fn stale_partial_checkpoint_file_is_removed_on_open() {
        let base = tmp("stale");
        {
            let mut s = DurableKv::open(&base).unwrap();
            s.put(b"a", b"1").unwrap();
        }
        // Simulate a crash that left a partial new tree behind.
        std::fs::write(base.with_extension("db.new"), b"partial garbage").unwrap();
        let s = DurableKv::open(&base).unwrap();
        assert_eq!(s.get(b"a").unwrap().unwrap(), b"1");
        assert!(!base.with_extension("db.new").exists());
    }

    #[test]
    fn crash_simulation_torn_wal_tail() {
        let base = tmp("crash");
        {
            let mut s = DurableKv::open(&base).unwrap();
            s.put(b"committed", b"yes").unwrap();
            s.put(b"also", b"committed").unwrap();
        }
        // simulate a crash that tore the last record
        let wal_path = base.with_extension("wal");
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();

        let s = DurableKv::open(&base).unwrap();
        // the first record survives fully; the torn one is rolled back
        assert_eq!(s.get(b"committed").unwrap().unwrap(), b"yes");
        assert_eq!(s.get(b"also").unwrap(), None);
    }

    #[test]
    fn scans_merge_tree_and_overlay() {
        let base = tmp("scan");
        let mut s = DurableKv::open(&base).unwrap();
        s.put(b"a", b"tree").unwrap();
        s.put(b"c", b"tree").unwrap();
        s.checkpoint().unwrap();
        s.put(b"b", b"overlay").unwrap();
        s.put(b"a", b"shadowed").unwrap();
        s.delete(b"c").unwrap();

        let all = s.scan_range(b"", None).unwrap();
        let keys: Vec<&[u8]> = all.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, [b"a".as_slice(), b"b".as_slice()]);
        assert_eq!(all[0].1, b"shadowed");
        assert_eq!(s.scan_prefix(b"a").unwrap().len(), 1);
    }

    #[test]
    fn apply_batch_is_atomic_across_torn_tails() {
        let base = tmp("batch");
        let ops = vec![
            BatchOp::Put(b"p".to_vec(), b"1".to_vec()),
            BatchOp::Put(b"q".to_vec(), b"2".to_vec()),
            BatchOp::Delete(b"pre".to_vec()),
            BatchOp::Put(b"p".to_vec(), b"3".to_vec()), // later op shadows
        ];
        {
            let mut s = DurableKv::open(&base).unwrap();
            s.put(b"pre", b"x").unwrap();
            s.apply_batch(&ops).unwrap();
            assert_eq!(s.get(b"p").unwrap().unwrap(), b"3");
            assert_eq!(s.get(b"pre").unwrap(), None);
            assert_eq!(s.len(), 2);
            assert_eq!(s.txn_seq(), 1);
        }
        // Reopen: the group survives whole.
        {
            let s = DurableKv::open(&base).unwrap();
            assert_eq!(s.get(b"p").unwrap().unwrap(), b"3");
            assert_eq!(s.get(b"q").unwrap().unwrap(), b"2");
            assert_eq!(s.get(b"pre").unwrap(), None);
            assert_eq!(s.txn_seq(), 1);
        }
        // Tear the WAL at every byte inside the transaction group: the
        // recovered store holds either the whole group or none of it.
        let wal_path = base.with_extension("wal");
        let full = std::fs::read(&wal_path).unwrap();
        for cut in 1..full.len() - 1 {
            std::fs::write(&wal_path, &full[..cut]).unwrap();
            let s = DurableKv::open(&base).unwrap();
            match s.get(b"p").unwrap().as_deref() {
                Some(v) if v == b"3" => {
                    // whole group applied
                    assert_eq!(s.get(b"q").unwrap().unwrap(), b"2");
                    assert_eq!(s.get(b"pre").unwrap(), None);
                }
                None => {
                    // group rolled back wholesale; only the prefix of
                    // the history (or nothing, if `pre` tore too) holds
                    assert_eq!(s.get(b"q").unwrap(), None);
                }
                other => panic!("cut at {cut}: partial group visible: {other:?}"),
            }
        }
    }

    #[test]
    fn batch_survives_checkpoint_and_overlay_snapshot_matches() {
        let base = tmp("batch_ckpt");
        let mut s = DurableKv::open(&base).unwrap();
        s.apply_batch(&[
            BatchOp::Put(b"a".to_vec(), b"1".to_vec()),
            BatchOp::Put(b"b".to_vec(), b"2".to_vec()),
        ])
        .unwrap();
        let snap = s.overlay_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(
            snap.get(b"a".as_slice()).unwrap().as_deref(),
            Some(b"1".as_slice())
        );
        s.checkpoint().unwrap();
        assert!(s.overlay_snapshot().is_empty());
        s.apply_batch(&[BatchOp::Delete(b"a".to_vec())]).unwrap();
        assert_eq!(s.overlay_snapshot().get(b"a".as_slice()), Some(&None));
        drop(s);
        let s = DurableKv::open(&base).unwrap();
        assert_eq!(s.get(b"a").unwrap(), None);
        assert_eq!(s.get(b"b").unwrap().unwrap(), b"2");
    }

    #[test]
    fn power_cut_between_base_swap_and_wal_reset_keeps_committed_puts() {
        // The checkpoint satellite audit: `<base>.db.new` rename goes
        // durable strictly before the WAL truncates. Cut power at every
        // mutating-I/O boundary of `checkpoint()` (which spans tree
        // build, rename, dir sync, WAL truncate) under every survival
        // mode; no cut point may lose an acknowledged put.
        use crate::store::KvStore as _;
        use crate::vfs::{Fault, FaultVfs, SurvivalMode};
        let base = Path::new("ckpt_audit");
        for mode in [
            SurvivalMode::LoseUnsynced,
            SurvivalMode::KeepUnsynced,
            SurvivalMode::TornTail,
        ] {
            let mut cut = 0u64;
            loop {
                let vfs = FaultVfs::new();
                let dyn_vfs = vfs.as_dyn();
                let mut s = DurableKv::open_with_vfs(dyn_vfs.clone(), base).unwrap();
                for i in 0..20u32 {
                    s.put(format!("k{i:02}").as_bytes(), &i.to_le_bytes())
                        .unwrap();
                }
                vfs.set_fault(vfs.op_count() + cut, Fault::PowerCut(mode));
                let res = s.checkpoint();
                if !vfs.fault_fired() {
                    res.unwrap();
                    break;
                }
                assert!(res.is_err(), "cut fired but checkpoint succeeded");
                drop(s);
                vfs.power_cycle();
                let s = DurableKv::open_with_vfs(dyn_vfs, base).unwrap_or_else(|e| {
                    panic!("recovery open failed after cut {cut} ({mode:?}): {e}")
                });
                for i in 0..20u32 {
                    assert_eq!(
                        s.get(format!("k{i:02}").as_bytes()).unwrap().as_deref(),
                        Some(i.to_le_bytes().as_slice()),
                        "cut {cut} ({mode:?}): committed put k{i:02} lost"
                    );
                }
                assert_eq!(s.len(), 20, "cut {cut} ({mode:?}): live_count drifted");
                cut += 1;
            }
            assert!(cut >= 4, "checkpoint produced only {cut} boundaries");
        }
    }

    #[test]
    fn kvstore_trait_conformance() {
        let base = tmp("conform");
        let mut s = DurableKv::open(&base).unwrap();
        s.put(b"b", b"2").unwrap();
        s.put(b"a", b"1").unwrap();
        assert!(s.contains(b"a").unwrap());
        assert!(!s.contains(b"zz").unwrap());
        assert_eq!(s.scan_range(b"a", Some(b"b")).unwrap().len(), 1);
        assert_eq!(s.scan_range(b"b", Some(b"a")).unwrap().len(), 0);
        s.sync().unwrap();
        assert_eq!(s.len(), 2);
    }
}

//! A hand-rolled Rust lexer, just deep enough for static analysis.
//!
//! The rules in this crate match on *token* patterns (`.` `unwrap` `(`),
//! never on raw text, so occurrences inside string literals, char
//! literals and comments can never fire a rule. The lexer therefore has
//! to get exactly four things right:
//!
//! * comments — line, block, and *nested* block comments;
//! * string literals — plain, byte, and raw (`r#"…"#` with any number
//!   of `#`s), with escape sequences;
//! * char literals vs. lifetimes — `'a'` is a char, `'a` is a lifetime;
//! * line/column positions — diagnostics point at real source.
//!
//! Comments are kept as tokens: suppression pragmas and lock-site
//! annotations live in them (see [`crate::source`]).

/// What a token is. Punctuation is kept per-character; the rules only
/// ever need single-character lookahead on punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// One punctuation character (`.`, `(`, `[`, `!`, …).
    Punct(char),
    /// String literal (plain, byte or raw). `text` holds the *content*
    /// without quotes or prefixes.
    Str,
    /// Char literal (content without quotes).
    Char,
    /// Lifetime (`'a`), content without the leading quote.
    Lifetime,
    /// Numeric literal.
    Number,
    /// `// …` comment, content without the slashes.
    LineComment,
    /// `/* … */` comment, content without the delimiters.
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokenKind,
    /// For `Str`/`Char`/`Lifetime`/comments this is the *content*; for
    /// everything else, the exact source text.
    pub text: String,
    pub line: usize,
    pub col: usize,
}

impl Token {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream. The lexer never fails: unexpected
/// bytes become single-character punctuation tokens, and an unterminated
/// string or comment simply ends at EOF (the analyzer runs on code that
/// rustc already accepted, so neither case occurs in practice).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();

    while let Some(b) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                tokens.push(Token {
                    kind: TokenKind::LineComment,
                    text: src[start..cur.pos].to_string(),
                    line,
                    col,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let start = cur.pos;
                let mut depth = 1usize;
                let mut end = cur.pos;
                while let Some(c) = cur.peek() {
                    if c == b'/' && cur.peek_at(1) == Some(b'*') {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    } else if c == b'*' && cur.peek_at(1) == Some(b'/') {
                        depth -= 1;
                        end = cur.pos;
                        cur.bump();
                        cur.bump();
                        if depth == 0 {
                            break;
                        }
                    } else {
                        cur.bump();
                        end = cur.pos;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::BlockComment,
                    text: src[start..end].to_string(),
                    line,
                    col,
                });
            }
            b'"' => {
                tokens.push(lex_string(&mut cur, src, line, col));
            }
            b'r' | b'b' if starts_prefixed_literal(&cur) => {
                tokens.push(lex_prefixed_literal(&mut cur, src, line, col));
            }
            b'\'' => {
                tokens.push(lex_quote(&mut cur, src, line, col));
            }
            _ if is_ident_start(b) => {
                let start = cur.pos;
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..cur.pos].to_string(),
                    line,
                    col,
                });
            }
            _ if b.is_ascii_digit() => {
                let start = cur.pos;
                while cur
                    .peek()
                    .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                {
                    cur.bump();
                }
                // A float like `1.5` (but not `1..2` or `1.method()`).
                if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                    cur.bump();
                    while cur
                        .peek()
                        .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
                    {
                        cur.bump();
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text: src[start..cur.pos].to_string(),
                    line,
                    col,
                });
            }
            _ => {
                cur.bump();
                tokens.push(Token {
                    kind: TokenKind::Punct(b as char),
                    text: (b as char).to_string(),
                    line,
                    col,
                });
            }
        }
    }
    tokens
}

/// Does the cursor sit on `r"`, `r#"`, `b"`, `br"`, `br#"` or `b'`?
fn starts_prefixed_literal(cur: &Cursor) -> bool {
    let mut i = 0;
    if cur.peek() == Some(b'b') {
        i += 1;
    }
    if cur.peek_at(i) == Some(b'r') {
        let mut j = i + 1;
        while cur.peek_at(j) == Some(b'#') {
            j += 1;
        }
        return cur.peek_at(j) == Some(b'"');
    }
    // b"…" or b'…'
    i > 0 && matches!(cur.peek_at(i), Some(b'"') | Some(b'\''))
}

fn lex_prefixed_literal(cur: &mut Cursor, src: &str, line: usize, col: usize) -> Token {
    if cur.peek() == Some(b'b') {
        cur.bump();
    }
    if cur.peek() == Some(b'r') {
        cur.bump();
        let mut hashes = 0usize;
        while cur.peek() == Some(b'#') {
            hashes += 1;
            cur.bump();
        }
        cur.bump(); // opening quote
        let start = cur.pos;
        let mut end = cur.pos;
        'scan: while let Some(c) = cur.peek() {
            if c == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if cur.peek_at(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    end = cur.pos;
                    cur.bump();
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    break 'scan;
                }
            }
            cur.bump();
            end = cur.pos;
        }
        return Token {
            kind: TokenKind::Str,
            text: src[start..end].to_string(),
            line,
            col,
        };
    }
    if cur.peek() == Some(b'\'') {
        return lex_quote(cur, src, line, col);
    }
    lex_string(cur, src, line, col)
}

fn lex_string(cur: &mut Cursor, src: &str, line: usize, col: usize) -> Token {
    cur.bump(); // opening quote
    let start = cur.pos;
    let mut end = cur.pos;
    while let Some(c) = cur.peek() {
        if c == b'\\' {
            cur.bump();
            cur.bump();
            end = cur.pos;
        } else if c == b'"' {
            end = cur.pos;
            cur.bump();
            break;
        } else {
            cur.bump();
            end = cur.pos;
        }
    }
    Token {
        kind: TokenKind::Str,
        text: src[start..end].to_string(),
        line,
        col,
    }
}

/// Lexes `'…` as either a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor, src: &str, line: usize, col: usize) -> Token {
    cur.bump(); // the quote
    let start = cur.pos;
    // `'a` followed by anything but a closing quote is a lifetime (also
    // covers `'static`). `'a'`, `'\n'`, `'\u{1F600}'` are char literals.
    if cur.peek().is_some_and(is_ident_start) && cur.peek() != Some(b'\\') {
        let mut j = 1;
        while cur.peek_at(j).is_some_and(is_ident_continue) {
            j += 1;
        }
        if cur.peek_at(j) != Some(b'\'') {
            // lifetime
            for _ in 0..j {
                cur.bump();
            }
            return Token {
                kind: TokenKind::Lifetime,
                text: src[start..cur.pos].to_string(),
                line,
                col,
            };
        }
    }
    // char literal: consume until the closing quote, honoring escapes
    let mut end = cur.pos;
    while let Some(c) = cur.peek() {
        if c == b'\\' {
            cur.bump();
            cur.bump();
            end = cur.pos;
        } else if c == b'\'' {
            end = cur.pos;
            cur.bump();
            break;
        } else {
            cur.bump();
            end = cur.pos;
        }
    }
    Token {
        kind: TokenKind::Char,
        text: src[start..end].to_string(),
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_punct_numbers() {
        let t = kinds("let x = foo.unwrap();");
        assert_eq!(t[0], (TokenKind::Ident, "let".into()));
        assert_eq!(t[3], (TokenKind::Ident, "foo".into()));
        assert_eq!(t[4], (TokenKind::Punct('.'), ".".into()));
        assert_eq!(t[5], (TokenKind::Ident, "unwrap".into()));
    }

    #[test]
    fn strings_hide_their_content_from_token_matching() {
        let t = kinds(r#"let s = ".unwrap() // not a comment";"#);
        assert!(t
            .iter()
            .all(|(k, txt)| *k != TokenKind::Ident || txt != "unwrap"));
        let s = t.iter().find(|(k, _)| *k == TokenKind::Str).unwrap();
        assert_eq!(s.1, ".unwrap() // not a comment");
    }

    #[test]
    fn raw_and_byte_strings() {
        let t = kinds(r##"let a = r#"has "quotes" and \ raw"#; let b = b"bytes";"##);
        let strs: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(strs, [r#"has "quotes" and \ raw"#, "bytes"]);
    }

    #[test]
    fn escaped_quote_in_string() {
        let t = kinds(r#"let s = "a\"b"; x"#);
        let s = t.iter().find(|(k, _)| *k == TokenKind::Str).unwrap();
        assert_eq!(s.1, r#"a\"b"#);
        assert!(t
            .iter()
            .any(|(k, txt)| *k == TokenKind::Ident && txt == "x"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let t = kinds(r"fn f<'a>(x: &'a str) { let c = 'x'; let n = '\n'; }");
        let lifetimes: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(lifetimes, ["a", "a"]);
        let chars: Vec<&str> = t
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(chars, ["x", r"\n"]);
    }

    #[test]
    fn comments_are_tokens_with_content() {
        let t = kinds("a // xlint::allow(r): why\n/* block /* nested */ still */ b");
        assert_eq!(
            t[1],
            (TokenKind::LineComment, " xlint::allow(r): why".into())
        );
        assert_eq!(
            t[2],
            (TokenKind::BlockComment, " block /* nested */ still ".into())
        );
        assert_eq!(t[3], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn code_inside_comments_never_tokenizes() {
        let t = kinds("// foo.unwrap()\nreal");
        assert_eq!(
            t.iter().filter(|(k, _)| *k == TokenKind::Ident).count(),
            1,
            "only `real` is an identifier"
        );
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let t = lex("ab\n  cd");
        assert_eq!((t[0].line, t[0].col), (1, 1));
        assert_eq!((t[1].line, t[1].col), (2, 3));
    }

    #[test]
    fn floats_do_not_eat_ranges_or_methods() {
        let t = kinds("1.5 1..2 3.min(4)");
        assert_eq!(t[0], (TokenKind::Number, "1.5".into()));
        assert_eq!(t[1], (TokenKind::Number, "1".into()));
        assert_eq!(t[2], (TokenKind::Punct('.'), ".".into()));
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "min"));
    }
}

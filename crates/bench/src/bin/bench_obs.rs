//! Observability overhead bench: the concurrent-queries workload run
//! with the metrics/trace layer enabled vs. disabled (the `obs` kill
//! switch), interleaved to cancel drift. Emits `results/BENCH_obs.json`
//! with both throughputs, the relative overhead, and the metrics
//! snapshot accumulated by the instrumented run — the acceptance gate is
//! overhead < 5% (DESIGN.md "Observability").
//!
//! Knobs (environment): `OBS_BENCH_FRACTION` scales the DBLP corpus
//! (default 0.05), `OBS_BENCH_REPS` the interleaved repetitions
//! (default 4), `OBS_BENCH_THREADS` the worker count (default 8).

use bench::dblp;
use datagen::{generate_workload, WorkloadConfig};
use invindex::{persist, Index, KvBackedIndex};
use kvstore::MemKv;
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};
use xrefine::{EngineConfig, Query, XRefineEngine};

fn env_f64(key: &str, default: f64) -> f64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn kv_engine(doc: &Arc<xmldom::Document>) -> Arc<XRefineEngine> {
    let built = Index::build(Arc::clone(doc));
    let mut store = MemKv::new();
    persist::persist(&built, &mut store).unwrap();
    let reader = KvBackedIndex::open(Box::new(store)).unwrap();
    Arc::new(XRefineEngine::from_reader(
        Arc::new(reader),
        EngineConfig::default(),
    ))
}

/// Answers the whole workload once, striped over `threads` workers;
/// returns the wall-clock spent.
fn run_once(engine: &Arc<XRefineEngine>, workload: &[Vec<String>], threads: usize) -> Duration {
    let start = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..threads {
            let engine = Arc::clone(engine);
            s.spawn(move || {
                for kw in workload.iter().skip(tid).step_by(threads) {
                    let q = Query::from_keywords(kw.iter().cloned());
                    black_box(engine.answer_query(q).expect("query answered"));
                }
            });
        }
    });
    start.elapsed()
}

fn main() {
    let fraction = env_f64("OBS_BENCH_FRACTION", 0.05);
    let reps = env_usize("OBS_BENCH_REPS", 4);
    let threads = env_usize("OBS_BENCH_THREADS", 8);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results/BENCH_obs.json".to_string());

    let doc = dblp(fraction);
    let workload: Vec<Vec<String>> = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 3,
            ..Default::default()
        },
    )
    .into_iter()
    .map(|q| q.keywords)
    .collect();
    println!(
        "corpus: {} nodes; workload: {} queries; {threads} thread(s); {reps} rep(s)",
        doc.len(),
        workload.len()
    );

    let engine = kv_engine(&doc);
    // Warm the cache so both configurations see the same steady-state
    // store: the quantity under test is instrumentation overhead, not
    // first-touch decoding.
    run_once(&engine, &workload, 1);

    let before = obs::global().snapshot();
    let mut on = Duration::ZERO;
    let mut off = Duration::ZERO;
    // Interleave the configurations so thermal / scheduler drift hits
    // both equally.
    for _ in 0..reps {
        obs::set_enabled(true);
        on += run_once(&engine, &workload, threads);
        obs::set_enabled(false);
        off += run_once(&engine, &workload, threads);
    }
    obs::set_enabled(true);
    let metrics = obs::global().snapshot().delta_since(&before);

    let answered = (workload.len() * reps) as f64;
    let qps_on = answered / on.as_secs_f64();
    let qps_off = answered / off.as_secs_f64();
    let overhead = (qps_off - qps_on) / qps_off * 100.0;
    println!("enabled: {qps_on:.1} q/s  disabled: {qps_off:.1} q/s  overhead: {overhead:.2}%");

    let json = format!(
        "{{\n  \"workload_queries\": {},\n  \"threads\": {},\n  \"reps\": {},\n  \
         \"corpus_nodes\": {},\n  \"qps_enabled\": {:.2},\n  \"qps_disabled\": {:.2},\n  \
         \"overhead_percent\": {:.3},\n  \"metrics\": {}\n}}\n",
        workload.len(),
        threads,
        reps,
        doc.len(),
        qps_on,
        qps_off,
        overhead,
        metrics.render_json()
    );
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out_path, &json).expect("write BENCH_obs.json");
    println!("wrote {out_path}");
}

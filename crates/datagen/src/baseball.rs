//! Synthetic Baseball corpus generator — the paper's second, smaller and
//! shallower real dataset (ibiblio's baseball statistics XML). Structure:
//! `season/league/division/team/player` with statistic leaves.

use crate::vocab;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmldom::{Document, DocumentBuilder};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct BaseballConfig {
    pub leagues: usize,
    pub divisions_per_league: usize,
    pub teams_per_division: usize,
    pub players_per_team: usize,
    pub seed: u64,
}

impl Default for BaseballConfig {
    fn default() -> Self {
        BaseballConfig {
            leagues: 2,
            divisions_per_league: 3,
            teams_per_division: 5,
            players_per_team: 12,
            seed: 0xBA5E,
        }
    }
}

/// Generates the document.
pub fn generate_baseball(config: &BaseballConfig) -> Document {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = DocumentBuilder::new();
    b.open_element("season");
    b.leaf("year", "1998");

    for l in 0..config.leagues {
        b.open_element("league");
        b.leaf("name", if l == 0 { "national" } else { "american" });
        for d in 0..config.divisions_per_league {
            b.open_element("division");
            b.leaf("name", ["east", "central", "west"][d % 3]);
            for _ in 0..config.teams_per_division {
                b.open_element("team");
                let city = vocab::CITIES[rng.random_range(0..vocab::CITIES.len())];
                let mascot = vocab::MASCOTS[rng.random_range(0..vocab::MASCOTS.len())];
                b.leaf("city", city);
                b.leaf("name", mascot);
                for _ in 0..config.players_per_team {
                    b.open_element("player");
                    let first = vocab::FIRST_NAMES[rng.random_range(0..vocab::FIRST_NAMES.len())];
                    let last = vocab::LAST_NAMES[rng.random_range(0..vocab::LAST_NAMES.len())];
                    b.leaf("surname", last);
                    b.leaf("given", first);
                    let pos = vocab::POSITIONS[rng.random_range(0..vocab::POSITIONS.len())];
                    b.leaf("position", pos);
                    b.leaf("games", &format!("{}", rng.random_range(10..162)));
                    if pos == "pitcher" {
                        b.leaf("wins", &format!("{}", rng.random_range(0..22)));
                        b.leaf("losses", &format!("{}", rng.random_range(0..18)));
                    } else {
                        b.leaf("homeruns", &format!("{}", rng.random_range(0..55)));
                        b.leaf("average", &format!("0.{}", rng.random_range(180..360)));
                    }
                    b.close_element();
                }
                b.close_element();
            }
            b.close_element();
        }
        b.close_element();
    }

    b.close_element();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structure_and_determinism() {
        let c = BaseballConfig::default();
        let a = generate_baseball(&c);
        let b2 = generate_baseball(&c);
        assert_eq!(a.to_xml(), b2.to_xml());
        assert_eq!(a.tag_name(a.root()), "season");
        let tags: std::collections::HashSet<&str> =
            a.nodes().map(|(id, _)| a.tag_name(id)).collect();
        for t in ["league", "division", "team", "player", "position", "games"] {
            assert!(tags.contains(t), "{t} missing");
        }
    }

    #[test]
    fn is_shallower_than_dblp() {
        let doc = generate_baseball(&BaseballConfig::default());
        let max_depth = doc.nodes().map(|(_, n)| n.dewey.depth()).max().unwrap();
        assert!(max_depth <= 5);
    }
}

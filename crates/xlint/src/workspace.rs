//! Workspace discovery: find the `.rs` files to lint, classify them as
//! production or test code, and load the config (lock hierarchy +
//! DESIGN.md catalogue) from the tree being linted.

use crate::config::{self, Config};
use crate::diag::Finding;
use crate::source::FileKind;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "node_modules"];

/// The workspace root, resolved from this crate's manifest dir
/// (`crates/xlint` → two levels up).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."))
}

/// Every `.rs` file under `root`, as `(workspace-relative path, kind)`.
/// Files under `tests/`, `benches/` or `examples/` are [`FileKind::Test`];
/// xlint's own golden fixtures are excluded (they contain violations on
/// purpose).
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<(PathBuf, FileKind)>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<(PathBuf, FileKind)>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            if name == "fixtures" && dir.ends_with("crates/xlint/tests") {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            let rel_str = rel.to_string_lossy().replace('\\', "/");
            let kind = if rel_str.contains("/tests/")
                || rel_str.contains("/benches/")
                || rel_str.contains("/examples/")
                || rel_str.starts_with("tests/")
            {
                FileKind::Test
            } else {
                FileKind::Production
            };
            files.push((rel, kind));
        }
    }
    Ok(())
}

/// Loads the full workspace config: path-scope policy from
/// [`Config::workspace_defaults`], the lock hierarchy from
/// `crates/xlint/lockorder.toml`, and the metric catalogue from
/// `DESIGN.md`.
pub fn load_config(root: &Path) -> Result<Config, String> {
    let mut cfg = Config::workspace_defaults();
    let lockorder_path = root.join("crates/xlint/lockorder.toml");
    let lockorder = fs::read_to_string(&lockorder_path)
        .map_err(|e| format!("cannot read {}: {e}", lockorder_path.display()))?;
    cfg.lock_ranks = config::parse_lockorder(&lockorder)?;
    let design_path = root.join("DESIGN.md");
    let design = fs::read_to_string(&design_path)
        .map_err(|e| format!("cannot read {}: {e}", design_path.display()))?;
    cfg.catalogue = config::parse_catalogue(&design)?;
    Ok(cfg)
}

/// Lints every source file in the workspace. Findings come back sorted.
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let config = load_config(root)?;
    let files = collect_rs_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut findings = Vec::new();
    for (rel, kind) in files {
        let text = fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("cannot read {}: {e}", rel.display()))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        findings.extend(crate::lint_source(&rel_str, &text, kind, &config));
    }
    crate::diag::sort_findings(&mut findings);
    Ok(findings)
}

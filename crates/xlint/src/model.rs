//! A lightweight workspace model: function definitions and a
//! name-level call graph over every parsed file.
//!
//! This is deliberately *not* name resolution. Functions are identified
//! by bare name, calls by `name(` / `.name(` token patterns, and a call
//! site is attributed to the innermost function body containing it.
//! That is exactly enough for the protocol rules: "does a successor
//! call appear after this trigger, here or in every caller" is a
//! question about call *names* in token order, and false sharing of a
//! name across crates only makes the rules more conservative.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;

/// Keywords that look like a call when followed by `(`.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "impl", "where", "move", "in", "as",
    "let", "else", "unsafe",
];

/// One `fn` item in one file.
#[derive(Debug)]
pub struct FnDef {
    /// Index into the model's file list.
    pub file: usize,
    pub name: String,
    pub line: usize,
    /// Code-token index range of the body, `[open_brace, close_brace]`.
    /// `None` for bodyless declarations (trait methods, externs).
    pub body: Option<(usize, usize)>,
    /// Parameter names, in order.
    pub params: Vec<String>,
}

/// One `name(..)` or `.name(..)` call, attributed to its enclosing fn.
#[derive(Debug)]
pub struct CallSite {
    /// Index into the model's function list.
    pub caller: usize,
    pub callee: String,
    /// Code-token index of the callee name within its file.
    pub tok: usize,
    pub line: usize,
    pub col: usize,
}

/// The whole-workspace view the graph rules run against.
pub struct WorkspaceModel<'a> {
    pub files: &'a [SourceFile],
    pub functions: Vec<FnDef>,
    pub calls: Vec<CallSite>,
}

impl<'a> WorkspaceModel<'a> {
    pub fn build(files: &'a [SourceFile]) -> WorkspaceModel<'a> {
        let mut functions = Vec::new();
        let mut calls = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            let toks = file.code_tokens();
            let first = functions.len();
            extract_fns(fi, &toks, &mut functions);
            collect_calls(&toks, &functions[first..], first, &mut calls);
        }
        WorkspaceModel {
            files,
            functions,
            calls,
        }
    }

    /// Every call site whose callee name is `name`.
    pub fn callers_of(&self, name: &str) -> Vec<&CallSite> {
        self.calls.iter().filter(|c| c.callee == name).collect()
    }

    /// Call sites made from within function `fn_idx`, in token order.
    pub fn calls_in(&self, fn_idx: usize) -> Vec<&CallSite> {
        self.calls.iter().filter(|c| c.caller == fn_idx).collect()
    }
}

/// Per-file helper for rules that need function granularity without a
/// whole-workspace model (file index is always 0).
pub(crate) fn functions_of(toks: &[&Token]) -> Vec<FnDef> {
    let mut out = Vec::new();
    extract_fns(0, toks, &mut out);
    out
}

/// Finds every `fn name` item in the token stream and records its name,
/// parameter names, and body brace range. Nested fns are recorded too.
fn extract_fns(file: usize, toks: &[&Token], out: &mut Vec<FnDef>) {
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") || i + 1 >= toks.len() {
            i += 1;
            continue;
        }
        let name_tok = toks[i + 1];
        if name_tok.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        // Skip generics between the name and the parameter list.
        let mut j = i + 2;
        if j < toks.len() && toks[j].is_punct('<') {
            let mut depth = 0usize;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    depth += 1;
                } else if toks[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if j >= toks.len() || !toks[j].is_punct('(') {
            i += 1;
            continue;
        }
        // Parameter names: idents at paren depth 1 immediately followed
        // by `:` (skips `self`, types, and nested-pattern internals).
        let mut params = Vec::new();
        let mut depth = 0usize;
        while j < toks.len() {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            } else if depth == 1
                && toks[j].kind == TokenKind::Ident
                && j + 1 < toks.len()
                && toks[j + 1].is_punct(':')
                // `a::b` is a path segment, not a binding
                && !(j + 2 < toks.len() && toks[j + 2].is_punct(':'))
            {
                params.push(toks[j].text.clone());
            }
            j += 1;
        }
        // Find the body `{`, or `;` for a bodyless declaration. The
        // return type may contain braces only in impl-trait closures,
        // which this codebase does not use in signatures.
        let mut body = None;
        while j < toks.len() {
            if toks[j].is_punct(';') {
                break;
            }
            if toks[j].is_punct('{') {
                let open = j;
                let mut braces = 0usize;
                while j < toks.len() {
                    if toks[j].is_punct('{') {
                        braces += 1;
                    } else if toks[j].is_punct('}') {
                        braces -= 1;
                        if braces == 0 {
                            body = Some((open, j));
                            break;
                        }
                    }
                    j += 1;
                }
                break;
            }
            j += 1;
        }
        out.push(FnDef {
            file,
            name: name_tok.text.clone(),
            line: name_tok.line,
            body,
            params,
        });
        // Continue from just after the name so nested fns are found.
        i += 2;
    }
}

/// Records every `name(` / `.name(` pattern, attributed to the innermost
/// enclosing function body (smallest containing range).
fn collect_calls(toks: &[&Token], fns: &[FnDef], first: usize, out: &mut Vec<CallSite>) {
    for k in 0..toks.len() {
        let t = toks[k];
        if t.kind != TokenKind::Ident
            || NON_CALL_KEYWORDS.contains(&t.text.as_str())
            || k + 1 >= toks.len()
            || !toks[k + 1].is_punct('(')
        {
            continue;
        }
        // `fn name(` is a definition, not a call.
        if k > 0 && toks[k - 1].is_ident("fn") {
            continue;
        }
        let mut owner: Option<(usize, usize)> = None; // (fn index, range width)
        for (fx, f) in fns.iter().enumerate() {
            if let Some((open, close)) = f.body {
                if open < k && k < close {
                    let width = close - open;
                    let narrower = match owner {
                        Some((_, w)) => width < w,
                        None => true,
                    };
                    if narrower {
                        owner = Some((first + fx, width));
                    }
                }
            }
        }
        if let Some((caller, _)) = owner {
            out.push(CallSite {
                caller,
                callee: t.text.clone(),
                tok: k,
                line: t.line,
                col: t.col,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    #[allow(clippy::type_complexity)]
    fn model_of(src: &str) -> (Vec<(String, Vec<String>)>, Vec<(String, String)>) {
        let file = SourceFile::parse("a.rs", src, FileKind::Production);
        let files = [file];
        let m = WorkspaceModel::build(&files);
        let fns = m
            .functions
            .iter()
            .map(|f| (f.name.clone(), f.params.clone()))
            .collect();
        let calls = m
            .calls
            .iter()
            .map(|c| (m.functions[c.caller].name.clone(), c.callee.clone()))
            .collect();
        (fns, calls)
    }

    #[test]
    fn functions_params_and_calls_are_extracted() {
        let (fns, calls) = model_of(
            "fn outer(a: u32, b: &[u8]) -> u32 {\n\
                 helper(a);\n\
                 b.iter().count() as u32\n\
             }\n\
             fn helper(x: u32) {}\n",
        );
        assert_eq!(fns[0].0, "outer");
        assert_eq!(fns[0].1, vec!["a", "b"]);
        assert_eq!(fns[1].0, "helper");
        assert!(calls.contains(&("outer".into(), "helper".into())));
        assert!(calls.contains(&("outer".into(), "iter".into())));
        assert!(calls.contains(&("outer".into(), "count".into())));
    }

    #[test]
    fn nested_fns_attribute_calls_to_the_innermost_body() {
        let (fns, calls) = model_of(
            "fn outer() {\n\
                 fn inner() { leaf(); }\n\
                 other();\n\
             }\n",
        );
        assert_eq!(fns.len(), 2);
        assert!(calls.contains(&("inner".into(), "leaf".into())));
        assert!(calls.contains(&("outer".into(), "other".into())));
        assert!(!calls.contains(&("outer".into(), "leaf".into())));
    }

    #[test]
    fn generics_and_bodyless_declarations_parse() {
        let (fns, _) = model_of(
            "trait T { fn decl(&self, n: usize); }\n\
             fn generic<A: Clone>(v: Vec<A>) -> Vec<A> { v }\n",
        );
        assert_eq!(fns[0].0, "decl");
        assert_eq!(fns[0].1, vec!["n"]);
        assert_eq!(fns[1].0, "generic");
        assert_eq!(fns[1].1, vec!["v"]);
    }
}

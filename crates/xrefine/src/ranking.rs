//! The query ranking model of §IV (Formulas 1–10).
//!
//! `Rank(RQ) = α · ρ(RQ,Q) + β · Dep(RQ,Q)` where the similarity score
//! `ρ` implements Guidelines 1–4 and the dependence score `Dep`
//! implements Guideline 5. Each guideline can be disabled individually,
//! which is exactly how the paper builds the ablated ranking schemes
//! RS1–RS4 of Table IX; α/β are the tunables of Table X.

use crate::query::{Query, RqCandidate};
use invindex::{IndexReader, KeywordId};
use slca::{infer_search_for, SearchForConfig};
use std::collections::BTreeSet;
use xmldom::NodeTypeId;

/// Tunables of the ranking model.
#[derive(Debug, Clone)]
pub struct RankingConfig {
    /// Weight of the similarity score (Formula 10); default 1.
    pub alpha: f64,
    /// Weight of the dependence score (Formula 10); default 1.
    pub beta: f64,
    /// Decay factor `ρ` of Guideline 4 / Formula 6; the paper finds 0.8
    /// works best (§VIII-C).
    pub decay: f64,
    /// Formula 1 parameters for search-for inference.
    pub search_for: SearchForConfig,
    /// Guideline toggles (all on = RS0).
    pub use_guideline1: bool,
    pub use_guideline2: bool,
    pub use_guideline3: bool,
    pub use_guideline4: bool,
}

impl Default for RankingConfig {
    fn default() -> Self {
        RankingConfig {
            alpha: 1.0,
            beta: 1.0,
            decay: 0.8,
            search_for: SearchForConfig::default(),
            use_guideline1: true,
            use_guideline2: true,
            use_guideline3: true,
            use_guideline4: true,
        }
    }
}

impl RankingConfig {
    /// The original full model RS0.
    pub fn rs0() -> Self {
        Self::default()
    }

    /// RS`i`: the model with Guideline `i` removed (Table IX).
    pub fn without_guideline(i: usize) -> Self {
        let mut c = Self::default();
        match i {
            1 => c.use_guideline1 = false,
            2 => c.use_guideline2 = false,
            3 => c.use_guideline3 = false,
            4 => c.use_guideline4 = false,
            other => panic!("no guideline {other}"),
        }
        c
    }

    /// Table X variant with explicit α/β.
    pub fn with_weights(alpha: f64, beta: f64) -> Self {
        RankingConfig {
            alpha,
            beta,
            ..Self::default()
        }
    }
}

/// A ranker bound to one index and one original query. Only statistics
/// and co-occurrence queries go through the reader — no posting lists are
/// materialized by ranking itself.
pub struct Ranker<'a> {
    index: &'a dyn IndexReader,
    config: RankingConfig,
    query_set: BTreeSet<String>,
    /// Search-for candidates with their `C_for` confidence (Formula 1).
    search_for: Vec<(NodeTypeId, f64)>,
}

impl<'a> Ranker<'a> {
    pub fn new(index: &'a dyn IndexReader, query: &Query, config: RankingConfig) -> Self {
        let ids: Vec<KeywordId> = query
            .keywords()
            .iter()
            .filter_map(|k| index.vocabulary().get(k))
            .collect();
        let mut search_for = infer_search_for(index, &ids, &config.search_for);
        if !config.use_guideline3 {
            // RS3: single search-for node, unit weight.
            search_for.truncate(1);
            if let Some(first) = search_for.first_mut() {
                first.1 = 1.0;
            }
        }
        Ranker {
            index,
            config,
            query_set: query.keywords().iter().cloned().collect(),
            search_for,
        }
    }

    pub fn search_for(&self) -> &[(NodeTypeId, f64)] {
        &self.search_for
    }

    pub fn config(&self) -> &RankingConfig {
        &self.config
    }

    /// `Imp(RQ, T)` — Formula 2 (Guideline 1).
    fn imp(&self, rq: &RqCandidate, t: NodeTypeId) -> f64 {
        let g = self.index.stats().distinct_keywords(t);
        if g == 0 {
            return 0.0;
        }
        rq.keywords
            .iter()
            .filter_map(|k| self.index.vocabulary().get(k))
            .map(|k| self.index.stats().tf(t, k) as f64)
            .sum::<f64>()
            / g as f64
    }

    /// `Imp_{k_i}(Q, T)` — Formula 3 (Guideline 2).
    fn imp_k(&self, keyword: &str, t: NodeTypeId) -> f64 {
        let n = self.index.stats().n_nodes(t);
        if n == 0 {
            return 0.0;
        }
        let f = self
            .index
            .vocabulary()
            .get(keyword)
            .map(|k| self.index.stats().df(t, k))
            .unwrap_or(0);
        // Clamped at zero: `f = N_T` (the keyword is in every T-node)
        // would make the raw ln slightly negative, flipping the decay of
        // Guideline 4 — a ubiquitous keyword simply carries no
        // discriminative weight.
        ((n as f64) / (1.0 + f as f64)).ln().max(0.0)
    }

    /// `RQ Δ Q`: keywords deleted from `Q` plus keywords newly generated
    /// by the refinement (Formula 4).
    fn symmetric_difference<'b>(&'b self, rq: &'b RqCandidate) -> Vec<&'b str> {
        let rq_set: BTreeSet<&str> = rq.keywords.iter().map(|s| s.as_str()).collect();
        let mut out: Vec<&str> = Vec::new();
        for k in &self.query_set {
            if !rq_set.contains(k.as_str()) {
                out.push(k);
            }
        }
        for k in &rq_set {
            if !self.query_set.contains(*k) {
                out.push(k);
            }
        }
        out
    }

    /// `ρ(RQ, Q | T)` — Formula 4.
    fn rho_given_t(&self, rq: &RqCandidate, t: NodeTypeId) -> f64 {
        let imp = if self.config.use_guideline1 {
            self.imp(rq, t)
        } else {
            1.0
        };
        let delta = if self.config.use_guideline2 {
            self.symmetric_difference(rq)
                .iter()
                .map(|k| self.imp_k(k, t))
                .sum::<f64>()
        } else {
            1.0
        };
        imp * delta
    }

    /// `ρ(RQ, Q)` before the Guideline-4 decay — Formula 5.
    fn rho(&self, rq: &RqCandidate) -> f64 {
        self.search_for
            .iter()
            .map(|&(t, c)| c * self.rho_given_t(rq, t))
            .sum()
    }

    /// The similarity score with the dissimilarity decay — Formula 6.
    pub fn similarity(&self, rq: &RqCandidate) -> f64 {
        let base = self.rho(rq);
        if self.config.use_guideline4 {
            self.config.decay.powf(rq.dissimilarity) * base
        } else {
            base
        }
    }

    /// `C(k_i ⇒ k)` — Formula 7.
    fn confidence_pair(&self, t: NodeTypeId, ki: KeywordId, k: KeywordId) -> f64 {
        let denom = self.index.stats().df(t, ki);
        if denom == 0 {
            return 0.0;
        }
        self.index.co_occur(t, ki, k) as f64 / denom as f64
    }

    /// `Dep(RQ, Q | T)` — Formula 8.
    fn dep_given_t(&self, rq: &RqCandidate, t: NodeTypeId) -> f64 {
        let ids: Vec<KeywordId> = rq
            .keywords
            .iter()
            .filter_map(|k| self.index.vocabulary().get(k))
            .collect();
        if ids.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for &k in &ids {
            for &ki in &ids {
                if ki != k {
                    total += self.confidence_pair(t, ki, k);
                }
            }
        }
        total / ids.len() as f64
    }

    /// `Dep(RQ, Q)` — Formula 9 (Guideline 5 weighted by Guideline 3).
    pub fn dependence(&self, rq: &RqCandidate) -> f64 {
        self.search_for
            .iter()
            .map(|&(t, c)| c * self.dep_given_t(rq, t))
            .sum()
    }

    /// `Rank(RQ)` — Formula 10.
    pub fn rank(&self, rq: &RqCandidate) -> f64 {
        self.config.alpha * self.similarity(rq) + self.config.beta * self.dependence(rq)
    }

    /// Ranks candidates descending (the "elaborate ranking" of
    /// Algorithm 2 line 19), returning `(candidate, rank)` pairs.
    pub fn rank_all(&self, candidates: Vec<RqCandidate>) -> Vec<(RqCandidate, f64)> {
        let mut out: Vec<(RqCandidate, f64)> = candidates
            .into_iter()
            .map(|c| {
                let r = self.rank(&c);
                (c, r)
            })
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    a.0.dissimilarity
                        .partial_cmp(&b.0.dissimilarity)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .then_with(|| a.0.keywords.cmp(&b.0.keywords))
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use invindex::Index;
    use std::sync::Arc;
    use xmldom::fixtures::figure1;

    fn index() -> Index {
        Index::build(Arc::new(figure1()))
    }

    fn rq(words: &[&str], ds: f64) -> RqCandidate {
        RqCandidate::new(words.iter().map(|s| s.to_string()).collect(), ds)
    }

    #[test]
    fn decay_penalizes_dissimilar_queries() {
        let idx = index();
        let q = Query::from_keywords(["xml", "publication"]);
        let ranker = Ranker::new(&idx, &q, RankingConfig::default());
        let near = rq(&["xml", "inproceedings"], 1.0);
        let far = rq(&["xml", "inproceedings"], 4.0);
        assert!(ranker.similarity(&near) > ranker.similarity(&far));
        // without guideline 4 they tie
        let ranker4 = Ranker::new(&idx, &q, RankingConfig::without_guideline(4));
        assert_eq!(ranker4.similarity(&near), ranker4.similarity(&far));
    }

    #[test]
    fn dependence_rewards_co_occurring_keywords() {
        let idx = index();
        let q = Query::from_keywords(["xml", "2003"]);
        let ranker = Ranker::new(&idx, &q, RankingConfig::default());
        // "online" and "database" co-occur in one title's subtree chain;
        // "john" and "2000" never share a deep subtree.
        let tight = rq(&["online", "database"], 2.0);
        let loose = rq(&["john", "2000"], 2.0);
        assert!(ranker.dependence(&tight) >= ranker.dependence(&loose));
    }

    #[test]
    fn rank_combines_with_weights() {
        let idx = index();
        let q = Query::from_keywords(["database", "publication"]);
        let candidate = rq(&["database", "inproceedings"], 1.0);

        let full = Ranker::new(&idx, &q, RankingConfig::with_weights(1.0, 1.0));
        let sim_only = Ranker::new(&idx, &q, RankingConfig::with_weights(1.0, 0.0));
        let dep_only = Ranker::new(&idx, &q, RankingConfig::with_weights(0.0, 1.0));
        let r_full = full.rank(&candidate);
        let r_sim = sim_only.rank(&candidate);
        let r_dep = dep_only.rank(&candidate);
        assert!((r_full - (r_sim + r_dep)).abs() < 1e-9);
    }

    #[test]
    fn rank_all_sorts_descending() {
        let idx = index();
        let q = Query::from_keywords(["database", "publication"]);
        let ranker = Ranker::new(&idx, &q, RankingConfig::default());
        let ranked = ranker.rank_all(vec![
            rq(&["database", "inproceedings"], 1.0),
            rq(&["database"], 2.0),
            rq(&["database", "article"], 1.0),
        ]);
        assert_eq!(ranked.len(), 3);
        assert!(ranked.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn guideline_ablations_change_scores() {
        let idx = index();
        let q = Query::from_keywords(["database", "publication"]);
        let candidate = rq(&["database", "inproceedings"], 1.0);
        let rs0 = Ranker::new(&idx, &q, RankingConfig::rs0()).rank(&candidate);
        for i in 1..=4 {
            let ri = Ranker::new(&idx, &q, RankingConfig::without_guideline(i)).rank(&candidate);
            // ablation must actually alter the score for a candidate that
            // exercises every guideline
            assert_ne!(rs0, ri, "guideline {i} had no effect");
        }
    }

    #[test]
    fn unknown_keywords_score_zero_not_panic() {
        let idx = index();
        let q = Query::from_keywords(["zzzz"]);
        let ranker = Ranker::new(&idx, &q, RankingConfig::default());
        let ghost = rq(&["qqqq"], 2.0);
        assert_eq!(ranker.similarity(&ghost), 0.0);
        assert_eq!(ranker.dependence(&ghost), 0.0);
    }
}

//! Per-connection thread: reads requests, routes them, writes replies.
//!
//! This file is in xlint's `no-panic-paths` scope — bytes here come
//! from the network, and a malformed or malicious peer must never cost
//! more than its own connection. Reads happen in short slices
//! (`min(read_timeout, 100ms)`) so the thread observes drain promptly
//! even while a peer is idle; a request that stays half-received past
//! its read budget is answered `408` and the connection closed.
//!
//! `/query` goes through admission control: the parsed request is
//! pushed onto the sharded worker queue with a rendezvous reply channel
//! and the connection thread blocks (bounded by `request_timeout`) for
//! the worker's answer. A full queue is a `503` + `Retry-After` — the
//! shed path never blocks. `/metrics`, `/healthz` and `/admin/drain`
//! are answered inline on this thread, so observability keeps working
//! when the query queue is saturated.

use std::io::{ErrorKind, Read as _};
use std::net::TcpStream;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use crate::http::{self, Parse, Request, Response};
use crate::queue::PushError;
use crate::server::Shared;
use crate::service::ServiceReply;

/// One admitted `/query` request, queued for a worker. The reply
/// channel is a rendezvous with capacity 1: the worker's `try_send`
/// never blocks, and a reply landing after the connection gave up
/// (`504` already written) is dropped on the floor harmlessly.
pub struct Job {
    pub query: String,
    /// When admission succeeded (queue-wait and latency base).
    pub admitted: Instant,
    /// Workers skip (and conn threads stop waiting for) jobs past this.
    pub deadline: Instant,
    pub reply: mpsc::SyncSender<ServiceReply>,
}

/// Serves one connection to completion. Never panics; any socket error
/// simply ends the connection.
pub fn handle(mut stream: TcpStream, shared: &Arc<Shared>) {
    let cfg = shared.config();
    let slice = cfg
        .read_timeout
        .min(Duration::from_millis(100))
        .max(Duration::from_millis(1));
    if stream.set_read_timeout(Some(slice)).is_err() {
        return;
    }
    if stream.set_write_timeout(Some(cfg.write_timeout)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut tmp = [0u8; 4096];
    // Set when the first byte of a not-yet-complete request arrived;
    // cleared once the request is dispatched.
    let mut first_byte: Option<Instant> = None;
    let mut idle_since = Instant::now();
    // Drain race closer: a peer may have finished sending a request
    // microseconds before the drain flag flipped, with the bytes still
    // in the kernel buffer. Each connection gets exactly one extra read
    // slice at drain time so such a request is served, not dropped.
    let mut drain_grace_read = true;

    loop {
        let ready: Option<Box<Request>> = match http::parse_request(&buf) {
            Parse::Ready(req) if buf.len() >= req.frame_len() => Some(req),
            Parse::Ready(_) | Parse::Incomplete => None,
            Parse::Bad(e) => {
                obs::counter!("serve_http_errors_total").inc();
                let resp = Response::error(e.status, e.detail).with_close();
                let _ = http::write_response(&mut stream, &resp, true);
                return;
            }
        };

        if let Some(req) = ready {
            let frame = req.frame_len().min(buf.len());
            let body = buf.get(req.head_len..frame).unwrap_or(&[]);
            let resp = route(shared, &req, body);
            // During drain the response is the connection's last: tell
            // the peer instead of letting its next request race the
            // close.
            let close = resp.close || !req.keep_alive || shared.draining();
            if http::write_response(&mut stream, &resp, close).is_err() {
                return;
            }
            buf.drain(..frame);
            first_byte = None;
            idle_since = Instant::now();
            if close {
                return;
            }
            continue;
        }

        // Not a full frame yet: an idle (nothing buffered) connection
        // closes as soon as drain begins — after one final read slice
        // (see `drain_grace_read`); a partial request keeps its read
        // budget so drain never truncates bytes already in flight.
        if shared.draining() && buf.is_empty() {
            if !drain_grace_read {
                return;
            }
            drain_grace_read = false;
            match stream.read(&mut tmp) {
                Ok(n) if n > 0 => {
                    let Some(chunk) = tmp.get(..n) else { return };
                    buf.extend_from_slice(chunk);
                    first_byte = Some(Instant::now());
                    continue;
                }
                _ => return,
            }
        }

        match stream.read(&mut tmp) {
            Ok(0) => return, // peer closed
            Ok(n) => {
                let Some(chunk) = tmp.get(..n) else { return };
                buf.extend_from_slice(chunk);
                if first_byte.is_none() {
                    first_byte = Some(Instant::now());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
                ) =>
            {
                // A read slice expired with no bytes. Enforce budgets.
                if let Some(t0) = first_byte {
                    if t0.elapsed() >= cfg.read_timeout {
                        obs::counter!("serve_http_errors_total").inc();
                        let resp =
                            Response::error(408, "request not fully received within read_timeout")
                                .with_close();
                        let _ = http::write_response(&mut stream, &resp, true);
                        return;
                    }
                } else if idle_since.elapsed() >= cfg.read_timeout {
                    return; // keep-alive idle expiry; close silently
                }
            }
            Err(_) => return,
        }
    }
}

/// Maps a parsed request to its response. Everything except `/query`
/// is answered inline — including `/admin/update`: maintenance commits
/// are serialized by the store's writer lock anyway, and keeping them
/// off the query queue means a saturated queue can't starve operators.
fn route(shared: &Arc<Shared>, req: &Request, body: &[u8]) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/query") => query(shared, req),
        ("POST", "/admin/update") => update(shared, req, body),
        ("GET", "/metrics") => {
            shared.refresh_gauges();
            Response::text(200, obs::metrics::global().snapshot().render_prometheus())
        }
        ("GET", "/healthz") => Response::json(
            200,
            format!(
                "{{\"status\":\"ok\",\"draining\":{}}}",
                if shared.draining() { "true" } else { "false" }
            ),
        ),
        ("POST", "/admin/drain") => {
            shared.request_drain();
            Response::json(200, "{\"draining\":true}".to_string())
        }
        ("GET" | "POST", _) => Response::error(404, "no such endpoint"),
        _ => Response::error(405, "method not allowed"),
    }
}

/// The `/admin/update` path: decodes op/slot/body and hands the request
/// to the service. Read-only services answer `501` via the trait's
/// default implementation.
fn update(shared: &Arc<Shared>, req: &Request, body: &[u8]) -> Response {
    obs::counter!("serve_update_requests_total").inc();
    let Some(op) = req.param("op").map(str::trim).filter(|o| !o.is_empty()) else {
        obs::counter!("serve_http_errors_total").inc();
        return Response::error(400, "missing `op` parameter (add, remove or compact)");
    };
    let slot = match req.param("slot") {
        None => None,
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => {
                obs::counter!("serve_http_errors_total").inc();
                return Response::error(400, "`slot` must be a non-negative integer");
            }
        },
    };
    let Ok(body) = std::str::from_utf8(body) else {
        obs::counter!("serve_http_errors_total").inc();
        return Response::error(400, "request body must be UTF-8 XML");
    };
    let reply = shared
        .service()
        .update(&crate::service::UpdateRequest { op, slot, body });
    Response::json(reply.status, reply.body)
}

/// The `/query` path: admission control, queueing, bounded wait.
fn query(shared: &Arc<Shared>, req: &Request) -> Response {
    obs::counter!("serve_requests_total").inc();
    let Some(q) = req.param("q").map(str::trim).filter(|q| !q.is_empty()) else {
        obs::counter!("serve_http_errors_total").inc();
        return Response::error(400, "missing or empty query parameter `q`");
    };

    let admitted = Instant::now();
    let deadline = admitted
        .checked_add(shared.config().request_timeout)
        .unwrap_or(admitted);
    let (tx, rx) = mpsc::sync_channel(1);
    let job = Job {
        query: q.to_string(),
        admitted,
        deadline,
        reply: tx,
    };
    match shared.queue().push(job) {
        Ok(_shard) => shared.refresh_gauges(),
        Err(PushError::Full(_)) => {
            obs::counter!("serve_requests_shed_total").inc();
            return Response::error(503, "request queue is full").with_retry_after(1);
        }
        Err(PushError::Closed(_)) => {
            return Response::error(503, "server is draining")
                .with_retry_after(5)
                .with_close();
        }
    }

    match rx.recv_timeout(shared.config().request_timeout) {
        Ok(reply) => {
            obs::histogram!("serve_request_nanos").observe_duration(admitted.elapsed());
            Response::json(reply.status, reply.body)
        }
        Err(_) => {
            // Timed out in queue/execution, or the worker vanished.
            obs::counter!("serve_request_timeouts_total").inc();
            Response::error(504, "request did not complete within request_timeout")
        }
    }
}

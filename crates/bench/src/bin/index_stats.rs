//! Index construction statistics (§VII): sizes of the keyword inverted
//! lists vs the frequent table — the paper claims "for real dataset which
//! has well organized structures, the size of the frequent table is
//! comparable to that of the keyword inverted lists" — plus sequential
//! vs parallel build time and persisted store size.

use bench::{dblp, f3, time_ms, Table};
use invindex::{build_parallel, persist, Index};
use kvstore::{KvStore, MemKv};
use std::sync::Arc;

fn main() {
    let mut t = Table::new(&[
        "scale",
        "elements",
        "keywords",
        "postings",
        "list bytes",
        "freq entries",
        "build seq (ms)",
        "build par4 (ms)",
    ]);

    for scale in [0.1, 0.25, 0.5] {
        let doc = dblp(scale);
        let seq_ms = time_ms(
            || {
                std::hint::black_box(Index::build(Arc::clone(&doc)));
            },
            2,
        );
        let par_ms = time_ms(
            || {
                std::hint::black_box(build_parallel(Arc::clone(&doc), 4));
            },
            2,
        );
        let index = Index::build(Arc::clone(&doc));
        let list_bytes: usize = index
            .vocabulary()
            .iter()
            .map(|(k, _)| index.list_by_id(k).encode().len())
            .sum();
        t.row(vec![
            format!("{:.0}%", scale * 100.0),
            format!("{}", doc.len()),
            format!("{}", index.vocabulary().len()),
            format!("{}", index.total_postings()),
            format!("{list_bytes}"),
            format!("{}", index.stats().df_entries()),
            f3(seq_ms),
            f3(par_ms),
        ]);
    }
    println!("== Index construction statistics (§VII) ==\n");
    t.print();

    // Persisted store footprint at one scale.
    let doc = dblp(0.25);
    let index = Index::build(Arc::clone(&doc));
    let mut store = MemKv::new();
    persist::persist(&index, &mut store).unwrap();
    let total_bytes: usize = store
        .scan_range(b"", None)
        .unwrap()
        .iter()
        .map(|(k, v)| k.len() + v.len())
        .sum();
    println!(
        "\npersisted store at 25% scale: {} entries, {} KiB total \
         (lists + frequent table + vocabulary)",
        store.len(),
        total_bytes / 1024
    );
}

// xlint-fixture: path=crates/kvstore/src/wal.rs
// Seeded violations: every panicking construct no-panic-paths must catch,
// plus the constructs it must leave alone (debug_assert, const indexing,
// macros like vec![], and anything inside a test region).

fn decode(buf: &[u8], idx: usize) -> u32 {
    let a = parse(buf).unwrap();
    let b = parse(buf).expect("short buffer");
    let c = parse(buf).unwrap_err();
    if buf.is_empty() {
        panic!("empty buffer");
    }
    assert!(idx > 0);
    assert_eq!(idx % 2, 1);
    let d = buf[idx];
    let e = buf[0];
    let f = &buf[..HDR_LEN];
    let g = vec![0u8; idx];
    match idx {
        0 => todo!(),
        1 => unimplemented!(),
        _ => unreachable!(),
    }
}

fn safe(buf: &[u8]) -> Option<u8> {
    debug_assert!(!buf.is_empty());
    debug_assert_eq!(buf.len() % 2, 0);
    buf.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v = vec![1u8];
        assert_eq!(v[0], 1);
        v.get(9).unwrap();
        panic!("fine inside tests");
    }
}

//! `kvstore` — a page-based persistent B+-tree key-value store.
//!
//! The paper stores all of its indices (keyword inverted lists, frequency
//! table, co-occurrence table) in Berkeley DB (§VII). This crate is the
//! workspace's from-scratch substitute: ordered keyed storage with
//! `O(log n)` lookups, prefix/range scans and values of arbitrary size.
//!
//! * [`vfs`]: the virtual filesystem every file touch goes through —
//!   [`StdVfs`] in production, [`FaultVfs`] under fault injection.
//! * [`pager`]: fixed-size page storage (in-memory or file-backed) with
//!   per-page CRC32 trailers.
//! * [`btree`]: the B+-tree itself.
//! * [`store`]: the [`KvStore`] trait plus [`MemKv`] (BTreeMap model),
//!   [`MemTreeKv`] (B+-tree over memory) and [`DiskKv`] (B+-tree over a
//!   file).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod btree;
pub mod codec;
pub mod durable;
pub mod error;
mod fsutil;
pub mod pager;
pub mod store;
pub mod vfs;
pub mod wal;

pub use btree::{BTree, MAX_KEY_LEN};
pub use durable::{BatchOp, DurableKv};
pub use error::{KvError, Result};
pub use pager::{
    FilePager, MemPager, PageId, PageVerifyReport, Pager, PAGE_SIZE, PAGE_TRAILER_MAGIC,
    PHYS_PAGE_SIZE,
};
pub use store::{DiskKv, KvStore, MemKv, MemTreeKv};
pub use vfs::{Fault, FaultVfs, StdVfs, SurvivalMode, Vfs, VfsFile};
pub use wal::{crc32, Wal, WalRecord};

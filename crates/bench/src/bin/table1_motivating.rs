//! Table I: the paper's motivating queries on the Figure 1 document —
//! what plain SLCA returns vs what the refinement engine does.

use bench::Table;
use std::sync::Arc;
use xrefine::{Algorithm, EngineConfig, Query, XRefineEngine};

fn main() {
    let engine = XRefineEngine::from_document(
        Arc::new(xmldom::fixtures::figure1()),
        EngineConfig {
            algorithm: Algorithm::Partition,
            k: 2,
            ..Default::default()
        },
    );

    let queries = [
        ("Q0", "john fishing", "fine as-is; SLCA under author"),
        (
            "Q1",
            "database publication",
            "term mismatch: 'publication' unused in data",
        ),
        ("Q2", "on line data base", "mistaken splits"),
        ("Q3", "databse xml", "spelling error"),
        (
            "Q4",
            "xml john 2003",
            "over-constrained: only the root covers all",
        ),
    ];

    let mut t = Table::new(&["ID", "query", "issue", "plain SLCA", "engine outcome"]);
    for (id, q, issue) in queries {
        let slcas = engine
            .baseline_slca(&Query::parse(q), slca::slca_scan_eager)
            .expect("slca computed");
        let plain = if slcas.is_empty() {
            "(empty)".to_string()
        } else {
            slcas
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        };
        let out = engine.answer(q).expect("query answered");
        let outcome = if out.original_ok {
            let r = out.best().unwrap();
            format!("no refinement; {} meaningful result(s)", r.slcas.len())
        } else {
            match out.best() {
                Some(r) => format!(
                    "refined to {{{}}} (dSim {}), {} result(s)",
                    r.candidate.keywords.join(","),
                    r.candidate.dissimilarity,
                    r.slcas.len()
                ),
                None => "no refinement found".to_string(),
            }
        };
        t.row(vec![id.into(), q.into(), issue.into(), plain, outcome]);
    }
    println!("== Table I: motivating queries on the Figure 1 document ==\n");
    t.print();
}

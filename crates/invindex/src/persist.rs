//! Index persistence over any [`KvStore`] (the paper stores all indices in
//! Berkeley DB, §VII; we store them in the workspace B+-tree).
//!
//! Key space:
//!
//! * `M/version`                — format version;
//! * `V/<keyword>`              — keyword id (u32 LE);
//! * `L/<id:u32 BE>`            — encoded posting list;
//! * `S/N`, `S/G`               — `N_T` / `G_T` vectors (varints);
//! * `S/T/<type BE><kw BE>`     — `tf(k,T)` (varint);
//! * `S/D/<type BE><kw BE>`     — `f^T_k` (varint).
//!
//! Node-type and keyword ids are deterministic for a given document (both
//! interners assign ids in parse order), so an index loaded against the
//! same document is bit-identical to a rebuilt one.

use crate::index::Index;
use crate::postings::{read_varint, write_varint, PostingList};
use crate::stats::{KeywordId, KeywordTable, TypeStats};
use kvstore::{KvError, KvStore, Result};
use std::collections::HashMap;
use std::sync::Arc;
use xmldom::{Document, NodeTypeId};

const FORMAT_VERSION: u64 = 1;

/// Writes the index into `store`.
pub fn persist(index: &Index, store: &mut dyn KvStore) -> Result<()> {
    let mut buf = Vec::new();
    write_varint(&mut buf, FORMAT_VERSION);
    store.put(b"M/version", &buf)?;

    for (k, text) in index.vocabulary().iter() {
        let mut key = Vec::with_capacity(2 + text.len());
        key.extend_from_slice(b"V/");
        key.extend_from_slice(text.as_bytes());
        store.put(&key, &k.0.to_le_bytes())?;
    }

    for (i, list) in index.lists().iter().enumerate() {
        let mut key = Vec::with_capacity(6);
        key.extend_from_slice(b"L/");
        key.extend_from_slice(&(i as u32).to_be_bytes());
        store.put(&key, &list.encode())?;
    }

    let mut nbuf = Vec::new();
    for &n in index.stats().n_nodes_vec() {
        write_varint(&mut nbuf, n);
    }
    store.put(b"S/N", &nbuf)?;

    let mut gbuf = Vec::new();
    for &g in index.stats().distinct_keywords_vec() {
        write_varint(&mut gbuf, g);
    }
    store.put(b"S/G", &gbuf)?;

    for (t, k, v) in index.stats().iter_tf() {
        store.put(&stat_key(b"S/T/", t, k), &varint_vec(v))?;
    }
    for (t, k, v) in index.stats().iter_df() {
        store.put(&stat_key(b"S/D/", t, k), &varint_vec(v))?;
    }
    store.sync()
}

/// Loads an index from `store` against the (identical) source document.
pub fn load(doc: Arc<Document>, store: &dyn KvStore) -> Result<Index> {
    let vbuf = store
        .get(b"M/version")?
        .ok_or_else(|| KvError::Corrupt("missing index version".into()))?;
    let mut pos = 0;
    let version = read_varint(&vbuf, &mut pos)
        .ok_or_else(|| KvError::Corrupt("bad version encoding".into()))?;
    if version != FORMAT_VERSION {
        return Err(KvError::Corrupt(format!(
            "unsupported index version {version}"
        )));
    }

    let mut vocab = KeywordTable::new();
    let mut texts: Vec<(u32, String)> = Vec::new();
    for (key, value) in store.scan_prefix(b"V/")? {
        let text = String::from_utf8(key[2..].to_vec())
            .map_err(|_| KvError::Corrupt("non-UTF-8 keyword".into()))?;
        let id = u32::from_le_bytes(
            value
                .as_slice()
                .try_into()
                .map_err(|_| KvError::Corrupt("bad keyword id".into()))?,
        );
        texts.push((id, text));
    }
    texts.sort_by_key(|(id, _)| *id);
    for (expected, (id, text)) in texts.iter().enumerate() {
        if *id as usize != expected {
            return Err(KvError::Corrupt("keyword id gap".into()));
        }
        vocab.intern(text);
    }

    let mut lists = vec![PostingList::new(); vocab.len()];
    for (key, value) in store.scan_prefix(b"L/")? {
        let id = u32::from_be_bytes(
            key[2..]
                .try_into()
                .map_err(|_| KvError::Corrupt("bad list key".into()))?,
        ) as usize;
        if id >= lists.len() {
            return Err(KvError::Corrupt("list for unknown keyword".into()));
        }
        lists[id] = PostingList::decode(&value)
            .ok_or_else(|| KvError::Corrupt(format!("undecodable list {id}")))?;
    }

    let n_nodes = decode_varint_vec(
        &store
            .get(b"S/N")?
            .ok_or_else(|| KvError::Corrupt("missing S/N".into()))?,
    )?;
    let distinct = decode_varint_vec(
        &store
            .get(b"S/G")?
            .ok_or_else(|| KvError::Corrupt("missing S/G".into()))?,
    )?;
    if n_nodes.len() != doc.node_types().len() {
        return Err(KvError::Corrupt(
            "document does not match persisted index (type count)".into(),
        ));
    }

    let mut tf = HashMap::new();
    for (key, value) in store.scan_prefix(b"S/T/")? {
        let (t, k) = parse_stat_key(&key)?;
        tf.insert((t, k), decode_varint_scalar(&value)?);
    }
    let mut df = HashMap::new();
    for (key, value) in store.scan_prefix(b"S/D/")? {
        let (t, k) = parse_stat_key(&key)?;
        df.insert((t, k), decode_varint_scalar(&value)?);
    }

    let stats = TypeStats::set_from_parts(n_nodes, distinct, tf, df);
    Ok(Index::from_parts(doc, vocab, lists, stats))
}

fn stat_key(prefix: &[u8], t: NodeTypeId, k: KeywordId) -> Vec<u8> {
    let mut key = Vec::with_capacity(prefix.len() + 8);
    key.extend_from_slice(prefix);
    key.extend_from_slice(&t.0.to_be_bytes());
    key.extend_from_slice(&k.0.to_be_bytes());
    key
}

fn parse_stat_key(key: &[u8]) -> Result<(NodeTypeId, KeywordId)> {
    if key.len() != 4 + 8 {
        return Err(KvError::Corrupt("bad stat key".into()));
    }
    let t = u32::from_be_bytes(key[4..8].try_into().unwrap());
    let k = u32::from_be_bytes(key[8..12].try_into().unwrap());
    Ok((NodeTypeId(t), KeywordId(k)))
}

fn varint_vec(v: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2);
    write_varint(&mut buf, v);
    buf
}

fn decode_varint_scalar(bytes: &[u8]) -> Result<u64> {
    let mut pos = 0;
    let v = read_varint(bytes, &mut pos)
        .ok_or_else(|| KvError::Corrupt("bad varint".into()))?;
    if pos != bytes.len() {
        return Err(KvError::Corrupt("trailing bytes in varint".into()));
    }
    Ok(v)
}

fn decode_varint_vec(bytes: &[u8]) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        out.push(
            read_varint(bytes, &mut pos)
                .ok_or_else(|| KvError::Corrupt("bad varint vector".into()))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::MemKv;
    use xmldom::fixtures::figure1;

    #[test]
    fn persist_load_roundtrip_preserves_everything() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        let loaded = load(Arc::clone(&doc), &store).unwrap();

        assert_eq!(built.vocabulary().len(), loaded.vocabulary().len());
        for (k, text) in built.vocabulary().iter() {
            assert_eq!(loaded.vocabulary().get(text), Some(k));
            assert_eq!(built.list_by_id(k), loaded.list_by_id(k));
        }
        for t in doc.node_types().iter() {
            assert_eq!(built.stats().n_nodes(t), loaded.stats().n_nodes(t));
            assert_eq!(
                built.stats().distinct_keywords(t),
                loaded.stats().distinct_keywords(t)
            );
            for (k, _) in built.vocabulary().iter() {
                assert_eq!(built.stats().tf(t, k), loaded.stats().tf(t, k));
                assert_eq!(built.stats().df(t, k), loaded.stats().df(t, k));
            }
        }
    }

    #[test]
    fn load_rejects_missing_or_mismatched_state() {
        let doc = Arc::new(figure1());
        let store = MemKv::new();
        assert!(load(Arc::clone(&doc), &store).is_err());

        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        // Different document (different type count) must be rejected.
        let other = Arc::new(xmldom::fixtures::tiny());
        assert!(load(other, &store).is_err());
    }

    #[test]
    fn persist_works_on_disk_store_too() {
        use kvstore::DiskKv;
        let dir = std::env::temp_dir().join(format!("invindex_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.db");
        let _ = std::fs::remove_file(&path);

        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        {
            let mut store = DiskKv::open(&path).unwrap();
            persist(&built, &mut store).unwrap();
        }
        let store = DiskKv::open(&path).unwrap();
        let loaded = load(Arc::clone(&doc), &store).unwrap();
        assert_eq!(loaded.total_postings(), built.total_postings());
        std::fs::remove_file(&path).unwrap();
    }
}

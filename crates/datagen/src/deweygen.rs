//! Seeded random Dewey-label corpora for the SLCA differential-oracle
//! suite.
//!
//! A corpus is a set of keyword match lists over one synthetic document
//! tree. The tree is implicit: labels are random root-anchored paths with
//! bounded depth and fanout, so distinct lists share ancestors often enough
//! to exercise every branch of the SLCA algorithms (deep nesting, shared
//! nodes, disjoint partitions, singleton lists).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xmldom::Dewey;

/// Shape parameters for [`random_dewey_corpus`].
#[derive(Clone, Copy, Debug)]
pub struct DeweyCorpusConfig {
    /// Number of keyword match lists (>= 1).
    pub lists: usize,
    /// Maximum postings per list (>= 1); actual lengths are random in
    /// `1..=max_len`, with an occasional empty list when `allow_empty`.
    pub max_len: usize,
    /// Maximum label depth below the root (>= 1).
    pub max_depth: usize,
    /// Maximum children per node; small values force label collisions.
    pub fanout: u32,
    /// When true, roughly one corpus in eight contains an empty list
    /// (exercising the "no result" paths).
    pub allow_empty: bool,
}

impl Default for DeweyCorpusConfig {
    fn default() -> Self {
        DeweyCorpusConfig {
            lists: 3,
            max_len: 12,
            max_depth: 5,
            fanout: 3,
            allow_empty: false,
        }
    }
}

/// Generate a seeded corpus: `cfg.lists` sorted, deduplicated Dewey-label
/// lists over a shared implicit tree. Deterministic in `(seed, cfg)`.
pub fn random_dewey_corpus(seed: u64, cfg: &DeweyCorpusConfig) -> Vec<Vec<Dewey>> {
    assert!(cfg.lists >= 1 && cfg.max_len >= 1 && cfg.max_depth >= 1 && cfg.fanout >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut corpus = Vec::with_capacity(cfg.lists);
    for _ in 0..cfg.lists {
        let len = if cfg.allow_empty && rng.random_range(0..8u32) == 0 {
            0
        } else {
            rng.random_range(1..=cfg.max_len)
        };
        let mut list: Vec<Dewey> = (0..len).map(|_| random_label(&mut rng, cfg)).collect();
        list.sort();
        list.dedup();
        corpus.push(list);
    }
    corpus
}

fn random_label(rng: &mut StdRng, cfg: &DeweyCorpusConfig) -> Dewey {
    let depth = rng.random_range(1..=cfg.max_depth);
    let mut comps = Vec::with_capacity(depth + 1);
    comps.push(0); // document root
    for _ in 0..depth {
        comps.push(rng.random_range(0..cfg.fanout));
    }
    Dewey::new(comps).expect("non-empty components")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_deterministic_sorted_and_rooted() {
        let cfg = DeweyCorpusConfig::default();
        let a = random_dewey_corpus(42, &cfg);
        let b = random_dewey_corpus(42, &cfg);
        assert_eq!(a, b);
        assert_ne!(a, random_dewey_corpus(43, &cfg));
        assert_eq!(a.len(), cfg.lists);
        for list in &a {
            assert!(!list.is_empty());
            assert!(list.windows(2).all(|w| w[0] < w[1]), "sorted + deduped");
            for d in list {
                assert_eq!(d.components()[0], 0, "root-anchored");
                assert!(d.components().len() <= cfg.max_depth + 1);
            }
        }
    }

    #[test]
    fn allow_empty_eventually_produces_an_empty_list() {
        let cfg = DeweyCorpusConfig {
            allow_empty: true,
            ..DeweyCorpusConfig::default()
        };
        let saw_empty =
            (0..64u64).any(|seed| random_dewey_corpus(seed, &cfg).iter().any(|l| l.is_empty()));
        assert!(saw_empty);
    }
}

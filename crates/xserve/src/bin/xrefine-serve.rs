//! `xrefine-serve` — the long-running XRefine query server.
//!
//! ```text
//! xrefine-serve [--store PATH [--live] | --xml PATH | --dblp FRACTION]
//!               [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!               [--max-conns N] [--read-timeout-ms N]
//!               [--request-timeout-ms N] [--drain-grace-ms N]
//! ```
//!
//! Endpoints: `GET /query?q=<keywords>`, `GET /metrics` (Prometheus),
//! `GET /healthz`, `POST /admin/drain`, and — with `--live` — `POST
//! /admin/update?op=add|remove|compact[&slot=N]` (the XML fragment for
//! `add` travels as the request body; reads keep serving from their
//! pinned snapshot while a commit is in flight). Shutdown: SIGTERM/SIGINT (raw
//! rt_sigaction handler; see `xserve::signal`) or `POST /admin/drain`
//! — both trigger the graceful drain: stop accepting, finish every
//! in-flight request, exit 0.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use datagen::{generate_dblp, DblpConfig};
use xrefine::{EngineConfig, LiveEngine, XRefineEngine};
use xserve::{signal, EngineService, LiveEngineService, QueryService, ServeConfig};

struct Args {
    store: Option<String>,
    live: bool,
    xml: Option<String>,
    dblp_fraction: f64,
    config: ServeConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        store: None,
        live: false,
        xml: None,
        dblp_fraction: 0.05,
        config: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--store" => args.store = Some(val("--store")?),
            "--live" => args.live = true,
            "--xml" => args.xml = Some(val("--xml")?),
            "--dblp" => {
                args.dblp_fraction = val("--dblp")?
                    .parse()
                    .map_err(|_| "--dblp takes a fraction, e.g. 0.05".to_string())?
            }
            "--addr" => args.config.addr = val("--addr")?,
            "--workers" => args.config.workers = parse_num(&val("--workers")?, "--workers")?,
            "--queue-cap" => {
                args.config.queue_capacity = parse_num(&val("--queue-cap")?, "--queue-cap")?
            }
            "--max-conns" => {
                args.config.max_connections = parse_num(&val("--max-conns")?, "--max-conns")?
            }
            "--read-timeout-ms" => {
                args.config.read_timeout =
                    parse_ms(&val("--read-timeout-ms")?, "--read-timeout-ms")?
            }
            "--write-timeout-ms" => {
                args.config.write_timeout =
                    parse_ms(&val("--write-timeout-ms")?, "--write-timeout-ms")?
            }
            "--request-timeout-ms" => {
                args.config.request_timeout =
                    parse_ms(&val("--request-timeout-ms")?, "--request-timeout-ms")?
            }
            "--drain-grace-ms" => {
                args.config.drain_grace = parse_ms(&val("--drain-grace-ms")?, "--drain-grace-ms")?
            }
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if args.live && args.store.is_none() {
        return Err("--live requires --store (updates need a durable store)".to_string());
    }
    Ok(args)
}

fn parse_num(v: &str, name: &str) -> Result<usize, String> {
    v.parse().map_err(|_| format!("{name} takes an integer"))
}

fn parse_ms(v: &str, name: &str) -> Result<Duration, String> {
    Ok(Duration::from_millis(
        v.parse()
            .map_err(|_| format!("{name} takes milliseconds"))?,
    ))
}

fn build_service(args: &Args) -> Result<Arc<dyn QueryService>, String> {
    if args.live {
        let path = args.store.as_deref().unwrap_or_default();
        eprintln!("opening maintained store {path} (live updates enabled)");
        let live = LiveEngine::open(std::path::Path::new(path), EngineConfig::default())
            .map_err(|e| format!("cannot open maintained store {path}: {e}"))?;
        return Ok(Arc::new(LiveEngineService::new(Arc::new(live))));
    }
    Ok(Arc::new(EngineService::new(Arc::new(build_engine(args)?))))
}

fn build_engine(args: &Args) -> Result<XRefineEngine, String> {
    if let Some(path) = &args.store {
        eprintln!("opening persisted index {path}");
        return XRefineEngine::from_store(std::path::Path::new(path), EngineConfig::default())
            .map_err(|e| format!("cannot open store {path}: {e}"));
    }
    if let Some(path) = &args.xml {
        eprintln!("parsing {path}");
        let xml = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        return XRefineEngine::from_xml(&xml, EngineConfig::default())
            .map_err(|e| format!("cannot parse {path}: {e}"));
    }
    eprintln!(
        "no corpus given; generating synthetic DBLP (fraction {})",
        args.dblp_fraction
    );
    let doc = Arc::new(generate_dblp(
        &DblpConfig {
            authors: 2000,
            ..Default::default()
        }
        .scaled(args.dblp_fraction),
    ));
    Ok(XRefineEngine::from_document(doc, EngineConfig::default()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if msg == "help" {
                eprintln!("usage: see module docs (xrefine-serve --store PATH [--live] | --xml PATH | --dblp FRACTION ...)");
                return ExitCode::SUCCESS;
            }
            eprintln!("xrefine-serve: {msg}");
            return ExitCode::from(2);
        }
    };

    let service = match build_service(&args) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("xrefine-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let signals = signal::install_handlers();
    if !signals {
        eprintln!("signal handlers unavailable on this platform; use POST /admin/drain to stop");
    }

    let handle = match xserve::start(args.config, service) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("xrefine-serve: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The lifecycle tests (and humans' scripts) wait for this line.
    println!("xrefine-serve listening on {}", handle.addr());

    while !signal::shutdown_requested() && !handle.drain_requested() {
        std::thread::sleep(Duration::from_millis(20));
    }
    println!("drain requested; finishing in-flight requests");
    handle.begin_drain();
    let stragglers = handle.join();
    if stragglers > 0 {
        eprintln!("drain grace expired with {stragglers} connection(s) still open");
        return ExitCode::FAILURE;
    }
    println!("drained cleanly");
    ExitCode::SUCCESS
}

//! Compression test battery, part 2: the v3/v4 store differential.
//!
//! Over the same 200+ seeded corpus set as the ingest differential
//! (DBLP-shaped, baseball-shaped, structural edge cases), the index is
//! persisted both as a v3 (flat lists, replay document) and a v4
//! (compressed lists, DAG document) store, and the two must be
//! *behaviourally indistinguishable*: every query answered through a
//! [`KvBackedIndex`] over either store yields identical refinements,
//! SLCA result sets, and scan counters (`advances`/`random_accesses` —
//! the cursor advance sequence collapsed to its invariant), with the
//! whole comparison repeated for stores built at 1 and 3 ingest
//! threads. Each format must also be byte-deterministic across thread
//! counts, which is what keeps the maintenance rebuild-diff oracles
//! meaningful on compressed stores.

use datagen::{generate_baseball, generate_dblp, BaseballConfig, DblpConfig};
use invindex::{build_streaming, persist, KvBackedIndex};
use kvstore::{KvStore, MemKv};
use std::sync::Arc;
use xrefine::{EngineConfig, XRefineEngine};

/// Queries chosen to hit the generator vocabularies (Zipf head terms,
/// names) plus a guaranteed miss.
const QUERIES: &[&str] = &[
    "xml query",
    "database system",
    "efficient data",
    "absentword",
];

/// Every key/value pair of a store, in key order.
type Dump = Vec<(Vec<u8>, Vec<u8>)>;

fn dump(store: &dyn KvStore) -> Dump {
    store.scan_range(b"", None).unwrap()
}

fn store_at(xml: &str, threads: usize, version: u64, label: &str) -> MemKv {
    let built = build_streaming(xml, threads)
        .unwrap_or_else(|e| panic!("{label}: streaming ({threads}t): {e}"));
    let mut store = MemKv::new();
    persist::persist_versioned(&built, &mut store, version)
        .unwrap_or_else(|e| panic!("{label}: persist v{version} ({threads}t): {e}"));
    store
}

fn engine_over(store: MemKv, label: &str) -> XRefineEngine {
    let index =
        KvBackedIndex::open(Box::new(store)).unwrap_or_else(|e| panic!("{label}: open: {e}"));
    XRefineEngine::from_reader(Arc::new(index), EngineConfig::default())
}

/// The full oracle for one document.
fn check(xml: &str, label: &str) {
    let mut reference: Option<(Dump, Dump)> = None;
    for threads in [1usize, 3] {
        let v3 = store_at(xml, threads, persist::V3_FORMAT_VERSION, label);
        let v4 = store_at(xml, threads, persist::FORMAT_VERSION, label);
        let (d3, d4) = (dump(&v3), dump(&v4));

        // Each format is byte-deterministic across build thread counts.
        match &reference {
            None => reference = Some((d3, d4)),
            Some((r3, r4)) => {
                assert_eq!(r3, &d3, "{label}: v3 store differs at {threads} threads");
                assert_eq!(r4, &d4, "{label}: v4 store differs at {threads} threads");
            }
        }

        // Both stores answer every query identically — refinements,
        // SLCA sets, scores and scan counters all live in the outcome's
        // Debug rendering.
        let e3 = engine_over(v3, &format!("{label} v3"));
        let e4 = engine_over(v4, &format!("{label} v4"));
        for q in QUERIES {
            let want = e3.answer_detailed(q);
            let got = e4.answer_detailed(q);
            assert_eq!(
                format!("{want:?}"),
                format!("{got:?}"),
                "{label} ({threads}t): outcome diverged for query {q:?}"
            );
        }
    }
}

#[test]
fn dblp_corpora_across_seeds() {
    for seed in 0..150u64 {
        let cfg = DblpConfig {
            authors: 2 + (seed as usize % 5),
            seed: 0x5EED_0000 + seed,
            ..Default::default()
        };
        let xml = generate_dblp(&cfg).to_xml();
        check(&xml, &format!("dblp seed {seed}"));
    }
}

#[test]
fn baseball_corpora_across_seeds() {
    for seed in 0..40u64 {
        let cfg = BaseballConfig {
            leagues: 1,
            divisions_per_league: 1 + (seed as usize % 2),
            teams_per_division: 2,
            players_per_team: 3,
            seed: 0xBA5E_0000 + seed,
        };
        let xml = generate_baseball(&cfg).to_xml();
        check(&xml, &format!("baseball seed {seed}"));
    }
}

#[test]
fn structural_edge_cases() {
    let mut cases: Vec<(String, String)> = Vec::new();

    for depth in [5usize, 120, 600] {
        let mut xml = String::new();
        for i in 0..depth {
            xml.push_str(&format!("<level{}>", i % 7));
        }
        xml.push_str("bottom text");
        for i in (0..depth).rev() {
            xml.push_str(&format!("</level{}>", i % 7));
        }
        cases.push((format!("deep-{depth}"), xml));
    }
    for width in [50usize, 1200] {
        let mut xml = String::from("<flat>");
        for i in 0..width {
            xml.push_str(&format!("<item>value {i}</item>"));
        }
        xml.push_str("</flat>");
        cases.push((format!("wide-{width}"), xml));
    }
    cases.push((
        "cdata".into(),
        "<doc><raw><![CDATA[keep <this> & that]]></raw>\
         <mix>before <![CDATA[middle]]> after</mix></doc>"
            .into(),
    ));
    cases.push((
        "entities".into(),
        "<doc a=\"x &amp; y\"><e>&lt;tag&gt; &quot;q&quot;</e></doc>".into(),
    ));
    cases.push((
        "attributes".into(),
        "<doc><node one=\"1\" two='second value' empty=\"\"/>\
         <node one=\"repeated tokens one\"/></doc>"
            .into(),
    ));
    cases.push((
        "mixed-content".into(),
        "<p>lead <b>bold</b> middle <i>ital</i> tail</p>".into(),
    ));
    cases.push((
        "unicode".into(),
        "<livre><títul attr=\"café\">über straße 北京 données</títul></livre>".into(),
    ));
    cases.push((
        "repeated-keywords".into(),
        "<doc><x>word word word</x><x>word</x><y>word other word</y></doc>".into(),
    ));
    cases.push(("single-empty-root".into(), "<root/>".into()));

    assert!(cases.len() >= 12);
    for (label, xml) in &cases {
        check(xml, label);
    }
}

/// The v4 store is materially smaller than the v3 store on a corpus
/// with DBLP-style repetitive structure — the acceptance-size claim,
/// here at unit scale (the full-size run lives in `bench_compress`).
#[test]
fn v4_store_is_smaller_on_a_dblp_corpus() {
    let xml = generate_dblp(&DblpConfig {
        authors: 60,
        ..Default::default()
    })
    .to_xml();
    let v3 = store_at(&xml, 1, persist::V3_FORMAT_VERSION, "size");
    let v4 = store_at(&xml, 1, persist::FORMAT_VERSION, "size");
    let bytes =
        |d: &[(Vec<u8>, Vec<u8>)]| -> usize { d.iter().map(|(k, v)| k.len() + v.len()).sum() };
    let (b3, b4) = (bytes(&dump(&v3)), bytes(&dump(&v4)));
    assert!(
        b4 * 2 <= b3,
        "v4 store {b4}B not >= 2x smaller than v3 {b3}B"
    );
}

//! Lock-cheap metrics: atomic counters, gauges, and log₂-bucketed histograms
//! behind a process-global registry.
//!
//! The registry mutex is taken only on handle registration and on snapshot;
//! call sites cache their `Arc` handle in a `OnceLock` (see the `counter!`,
//! `gauge!` and `histogram!` macros in the crate root) so the steady-state
//! cost of an increment is a single relaxed atomic RMW plus one predictable
//! branch on the global kill switch.

use crate::lockrank;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Process-global kill switch. Metrics default to enabled; benches flip this
/// off to measure instrumentation overhead (see `bench/src/bin/bench_obs.rs`).
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enable or disable all metric recording process-wide. Handles stay valid;
/// increments and observations become no-ops while disabled.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether metric recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (e.g. resident cache bytes).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    #[inline]
    pub fn sub(&self, delta: i64) {
        self.add(-delta);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for the value 0, then one per power of
/// two up to `u64::MAX`.
pub const BUCKET_COUNT: usize = 65;

/// Bucket index for a value: 0 holds exactly {0}; bucket `i >= 1` holds the
/// half-open power-of-two range `[2^(i-1), 2^i)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (saturating at `u64::MAX`).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Fixed-shape log₂ histogram over `u64` samples (typically nanoseconds).
/// Concurrent `observe` calls are wait-free; `count`/`sum`/buckets may be
/// mutually torn under concurrent snapshots, which is acceptable for
/// monitoring output.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: Box<[AtomicU64; BUCKET_COUNT]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }
}

impl Histogram {
    #[inline]
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Convenience for timing: observe a duration in nanoseconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Per-bucket (non-cumulative) counts, `BUCKET_COUNT` entries.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: vec![0; BUCKET_COUNT],
        }
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) as the inclusive upper bound
    /// of the bucket containing the rank-`ceil(q*count)` sample. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKET_COUNT - 1)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Accumulate another snapshot into this one (used to merge per-shard or
    /// per-thread histograms).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        // `observe` accumulates the sum with a wrapping fetch_add, so a
        // merge of shard snapshots must wrap the same way to agree with a
        // monolithic histogram that saw all the samples.
        self.sum = self.sum.wrapping_add(other.sum);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, &b) in other.buckets.iter().enumerate() {
            self.buckets[i] += b;
        }
    }

    fn saturating_sub(&self, base: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .map(|(i, &b)| b.saturating_sub(base.buckets.get(i).copied().unwrap_or(0)))
            .collect();
        HistogramSnapshot {
            count: self.count.saturating_sub(base.count),
            sum: self.sum.saturating_sub(base.sum),
            buckets,
        }
    }
}

/// Named-metric registry. One process-global instance exists (see
/// [`global`]); independent instances can be created for tests.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get-or-create the counter with this name.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let _rank = lockrank::acquire(
            lockrank::rank::OBS_REGISTRY_COUNTERS,
            "obs.registry.counters",
        );
        let mut map = self.counters.lock().unwrap(); // xlint::lock(obs.registry.counters)
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Get-or-create the gauge with this name.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let _rank = lockrank::acquire(lockrank::rank::OBS_REGISTRY_GAUGES, "obs.registry.gauges");
        let mut map = self.gauges.lock().unwrap(); // xlint::lock(obs.registry.gauges)
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_string(), Arc::clone(&g));
        g
    }

    /// Get-or-create the histogram with this name.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let _rank = lockrank::acquire(
            lockrank::rank::OBS_REGISTRY_HISTOGRAMS,
            "obs.registry.histograms",
        );
        let mut map = self.histograms.lock().unwrap(); // xlint::lock(obs.registry.histograms)
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = {
            let _rank = lockrank::acquire(
                lockrank::rank::OBS_REGISTRY_COUNTERS,
                "obs.registry.counters",
            );
            self.counters
                // xlint::lock(obs.registry.counters)
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect()
        };
        let gauges = {
            let _rank =
                lockrank::acquire(lockrank::rank::OBS_REGISTRY_GAUGES, "obs.registry.gauges");
            self.gauges
                // xlint::lock(obs.registry.gauges)
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect()
        };
        let histograms = {
            let _rank = lockrank::acquire(
                lockrank::rank::OBS_REGISTRY_HISTOGRAMS,
                "obs.registry.histograms",
            );
            self.histograms
                // xlint::lock(obs.registry.histograms)
                .lock()
                .unwrap()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect()
        };
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The process-global registry used by the `counter!`/`gauge!`/`histogram!`
/// macros and therefore by all instrumented crates.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Point-in-time copy of every metric in a registry. This is the API the
/// bench crate and the CLI `--metrics` dump consume.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counters and histograms as deltas against `base` (gauges keep their
    /// current level). Useful to attribute activity to one workload run in a
    /// process whose global registry has older traffic in it.
    pub fn delta_since(&self, base: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                (
                    k.clone(),
                    v.saturating_sub(base.counters.get(k).copied().unwrap_or(0)),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let sub = match base.histograms.get(k) {
                    Some(b) => h.saturating_sub(b),
                    None => h.clone(),
                };
                (k.clone(), sub)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Prometheus text exposition (format version 0.0.4). Histograms are
    /// rendered with cumulative `le` buckets; empty power-of-two buckets are
    /// elided except for the terminal `+Inf`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                cum += b;
                if b == 0 {
                    continue;
                }
                if i >= 64 {
                    // Folded into the +Inf bucket below.
                    continue;
                }
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cum}\n",
                    bucket_bound(i)
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }

    /// Compact JSON rendering: counters and gauges verbatim, histograms as
    /// `{count, sum, p50, p90, p99}`. Hand-rolled to keep obs zero-dependency.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_json_map(
            &mut out,
            self.counters
                .iter()
                .map(|(k, v)| (k.as_str(), v.to_string())),
        );
        out.push_str("},\n  \"gauges\": {");
        push_json_map(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k.as_str(), v.to_string())),
        );
        out.push_str("},\n  \"histograms\": {");
        let mut first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                json_string(k),
                h.count,
                h.sum,
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99)
            ));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }
}

fn push_json_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a str, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    {}: {}", json_string(k), v));
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The kill switch is process-global, so unit tests that record metrics or
/// toggle it must not interleave with each other.
#[cfg(test)]
pub(crate) fn test_serial_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        test_serial_guard()
    }

    #[test]
    fn bucket_index_and_bounds_partition_the_domain() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKET_COUNT - 1 {
            // Every value up to the bound lands in a bucket <= i, and the
            // first value past the bound lands strictly above.
            assert!(bucket_index(bucket_bound(i)) <= i);
            assert_eq!(bucket_index(bucket_bound(i) + 1), i + 1);
        }
    }

    #[test]
    fn registry_returns_the_same_handle_for_the_same_name() {
        let _g = serial();
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counters["x"], 3);
    }

    #[test]
    fn quantiles_track_bucket_bounds() {
        let _g = serial();
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        // p50 of 1..=100 sits in the bucket holding 50, i.e. [32, 63].
        assert_eq!(s.quantile(0.5), 63);
        assert_eq!(s.quantile(1.0), 127);
        assert_eq!(s.quantile(0.0), bucket_bound(bucket_index(1)));
    }

    #[test]
    fn disabled_metrics_record_nothing() {
        let _g = serial();
        let c = Counter::default();
        let h = Histogram::default();
        set_enabled(false);
        c.inc();
        h.observe(9);
        set_enabled(true);
        c.inc();
        h.observe(9);
        assert_eq!(c.get(), 1);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn prometheus_rendering_contains_cumulative_buckets() {
        let _g = serial();
        let r = Registry::new();
        r.counter("c_total").add(7);
        r.gauge("g_bytes").set(-3);
        let h = r.histogram("lat_nanos");
        h.observe(1);
        h.observe(100);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("c_total 7"));
        assert!(text.contains("g_bytes -3"));
        assert!(text.contains("lat_nanos_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_nanos_bucket{le=\"127\"} 2"));
        assert!(text.contains("lat_nanos_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("lat_nanos_count 2"));
    }

    #[test]
    fn json_rendering_is_balanced_and_escaped() {
        let _g = serial();
        let r = Registry::new();
        r.counter("a\"b").inc();
        r.histogram("h").observe(5);
        let json = r.snapshot().render_json();
        assert!(json.contains("\"a\\\"b\": 1"));
        assert!(json.contains("\"p50\": 7"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}

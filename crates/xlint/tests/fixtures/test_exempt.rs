// xlint-fixture: path=crates/kvstore/src/btree.rs
// Test regions — #[cfg(test)] modules and #[test] functions — are
// exempt from every rule. Expected findings: none.

fn production_code(x: u64) -> u64 {
    x.saturating_add(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_freely() {
        let v = vec![1u8, 2];
        assert_eq!(v[0], 1);
        v.get(5).unwrap();
        let g = lock.lock();
        let t = Instant::now();
        panic!("all of this is fine in tests: {t:?} {g:?}");
    }
}

#[test]
fn bare_test_attribute_is_also_exempt() {
    assert!(make().unwrap().is_empty());
}

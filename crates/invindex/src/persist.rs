//! Index persistence over any [`KvStore`] (the paper stores all indices in
//! Berkeley DB, §VII; we store them in the workspace B+-tree).
//!
//! Key space (format version 4):
//!
//! * `M/version`                — format version (raw varint: it is the
//!   byte that says how everything else is framed, so it cannot itself
//!   be framed);
//! * `D/doc`                    — the source document, so
//!   [`crate::KvBackedIndex`] can open with no re-parse (v4: hash-consed
//!   subtree DAG with an interned string table; v2/v3: builder replay
//!   stream);
//! * `V/<keyword>`              — keyword id (u32 LE);
//! * `L/<id:u32 BE>`            — posting list (v4: blocked
//!   [`CompressedList`] encoding with a skip table; v1–v3: flat
//!   front-coded [`PostingList`] encoding);
//! * `S/N`, `S/G`               — `N_T` / `G_T` vectors (varints);
//! * `S/T`, `S/D`               — `tf(k,T)` / `f^T_k` tables, packed
//!   into one delta-encoded blob each (v4; v1–v3 store them as
//!   per-entry keys `S/T/<type BE><kw BE>` and `S/D/<type BE><kw BE>`,
//!   each holding one varint).
//!
//! From version 3 on **every** value except `M/version` is framed as
//! `varint(len(payload)) ‖ crc32(payload):u32 LE ‖ payload`, so a flipped
//! byte in any stored value is detected at decode time, not interpreted.
//! Version 4 keeps the framing and changes the `L/` and `D/doc`
//! payloads to the compressed encodings plus the stat-table packing
//! above. Version 2 framed only the `L/` lists; version 1 framed
//! nothing and has no `D/doc`. All remain readable. Corruption of any
//! entry yields [`KvError::Corrupt`], never a panic.
//!
//! Node-type and keyword ids are deterministic for a given document (both
//! interners assign ids in parse order, and the v4 document expansion
//! replays exactly that order), so an index loaded against the same
//! document is bit-identical to a rebuilt one — at every format version.

use crate::index::Index;
use crate::postings::{read_varint, write_varint, CompressedList, PostingList};
use crate::stats::{KeywordId, KeywordTable, TypeStats};
use kvstore::{crc32, KvError, KvStore, Result};
use std::collections::HashMap;
use std::sync::Arc;
use xmldom::{Document, DocumentBuilder, NodeId, NodeTypeId};

/// Current on-disk format: compressed posting lists (blocked front-coded
/// Dewey deltas behind a skip table) and a DAG-deduplicated document,
/// every value class framed and checksummed.
pub const FORMAT_VERSION: u64 = 4;

/// The previous format: flat front-coded posting lists and the replay-
/// stream document, fully framed. Still readable and writable (the
/// maintenance layer preserves the version a store was created at).
pub const V3_FORMAT_VERSION: u64 = 3;

/// The intermediate format: framed posting lists and the embedded
/// document, but raw vocabulary/statistics values. Still readable.
pub const V2_FORMAT_VERSION: u64 = 2;

/// The original format: raw list encodings, document supplied by the
/// caller. Still readable.
pub const LEGACY_FORMAT_VERSION: u64 = 1;

/// Damage to one statistics entry, recorded by the lenient loader
/// instead of failing the whole open: the named keyword's ranking inputs
/// are incomplete, everything else is intact.
#[derive(Debug, Clone)]
pub struct StatDamage {
    pub keyword: KeywordId,
    /// The damaged entry (`S/T/...` or `S/D/...`), human-readable.
    pub entry: String,
    pub detail: String,
}

/// Writes the index into `store` at the current format version.
pub fn persist(index: &Index, store: &mut dyn KvStore) -> Result<()> {
    persist_versioned(index, store, FORMAT_VERSION)
}

/// Writes the index at an explicit format version (the older paths keep
/// version-1/2 fixtures producible for compatibility tests).
pub fn persist_versioned(index: &Index, store: &mut dyn KvStore, version: u64) -> Result<()> {
    if !(LEGACY_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(KvError::corrupt(format!(
            "cannot write unknown index version {version}"
        )));
    }
    let mut buf = Vec::new();
    write_varint(&mut buf, version);
    store.put(b"M/version", &buf)?;

    if version >= 2 {
        store.put(
            b"D/doc",
            &encode_value(version, encode_document(version, index.document())),
        )?;
    }

    for (k, text) in index.vocabulary().iter() {
        let mut key = Vec::with_capacity(2 + text.len());
        key.extend_from_slice(b"V/");
        key.extend_from_slice(text.as_bytes());
        store.put(&key, &encode_value(version, k.0.to_le_bytes().to_vec()))?;
    }

    for (i, list) in index.lists().iter().enumerate() {
        store.put(&list_key(i as u32), &encode_list_value(version, list))?;
    }

    let mut nbuf = Vec::new();
    for &n in index.stats().n_nodes_vec() {
        write_varint(&mut nbuf, n);
    }
    store.put(b"S/N", &encode_value(version, nbuf))?;

    let mut gbuf = Vec::new();
    for &g in index.stats().distinct_keywords_vec() {
        write_varint(&mut gbuf, g);
    }
    store.put(b"S/G", &encode_value(version, gbuf))?;

    // The stat tables are hash maps; write their entries in sorted
    // (t, k) order so the put sequence — and therefore the page layout
    // of ordered stores — is a pure function of the index contents.
    // `tests/parallel_persist.rs` relies on persisted byte-identity.
    let mut tf: Vec<_> = index.stats().iter_tf().collect();
    tf.sort_unstable_by_key(|&(t, k, _)| (t.0, k.0));
    let mut df: Vec<_> = index.stats().iter_df().collect();
    df.sort_unstable_by_key(|&(t, k, _)| (t.0, k.0));
    if version >= 4 {
        // v4 packs each table into one delta-encoded blob: the per-entry
        // layout spends ~18 bytes of key + frame on a value that is
        // usually one byte, and the stat tables dominate store size on
        // real corpora. The trade-off (documented in DESIGN.md §4i): the
        // CRC now covers the whole table, so stat damage on a v4 store
        // is table-granular rather than per-keyword.
        store.put(b"S/T", &encode_value(version, encode_packed_stats(&tf)))?;
        store.put(b"S/D", &encode_value(version, encode_packed_stats(&df)))?;
    } else {
        for (t, k, v) in tf {
            store.put(
                &stat_key(b"S/T/", t, k),
                &encode_value(version, varint_vec(v)),
            )?;
        }
        for (t, k, v) in df {
            store.put(
                &stat_key(b"S/D/", t, k),
                &encode_value(version, varint_vec(v)),
            )?;
        }
    }
    store.sync()
}

/// Loads an index from `store` against the (identical) source document.
/// Accepts every known format version; any damage is an error (the
/// resident path has no way to degrade per keyword).
pub fn load(doc: Arc<Document>, store: &dyn KvStore) -> Result<Index> {
    let version = read_version(store)?;
    let vocab = load_vocab(store, version)?;

    let mut lists = vec![PostingList::new(); vocab.len()];
    for (key, value) in store.scan_prefix(b"L/")? {
        let id = u32::from_be_bytes(
            key[2..]
                .try_into()
                .map_err(|_| KvError::corrupt("bad list key"))?,
        ) as usize;
        match lists.get_mut(id) {
            Some(slot) => *slot = decode_list_value(version, &value)?,
            None => return Err(KvError::corrupt("list for unknown keyword")),
        }
    }

    let stats = load_stats(store, version)?;
    if stats.n_nodes_vec().len() != doc.node_types().len() {
        return Err(KvError::corrupt(
            "document does not match persisted index (type count)",
        ));
    }
    Ok(Index::from_parts(doc, vocab, lists, stats))
}

/// Reads and validates the format version.
pub(crate) fn read_version(store: &dyn KvStore) -> Result<u64> {
    let vbuf = store
        .get(b"M/version")?
        .ok_or_else(|| KvError::corrupt("missing index version"))?;
    let mut pos = 0;
    let version =
        read_varint(&vbuf, &mut pos).ok_or_else(|| KvError::corrupt("bad version encoding"))?;
    if !(LEGACY_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(KvError::corrupt(format!(
            "unsupported index version {version}"
        )));
    }
    Ok(version)
}

/// Rebuilds the keyword table from the `V/` entries. Vocabulary damage
/// is always fatal: keyword ids must be gapless, so a single undecodable
/// id makes every later id ambiguous.
pub(crate) fn load_vocab(store: &dyn KvStore, version: u64) -> Result<KeywordTable> {
    let mut vocab = KeywordTable::new();
    let mut texts: Vec<(u32, String)> = Vec::new();
    for (key, value) in store.scan_prefix(b"V/")? {
        let text = String::from_utf8(key[2..].to_vec())
            .map_err(|_| KvError::corrupt("non-UTF-8 keyword"))?;
        let raw = decode_value(version, &value, &format!("keyword id for {text:?}"))?;
        let id = u32::from_le_bytes(
            raw.try_into()
                .map_err(|_| KvError::corrupt(format!("bad keyword id for {text:?}")))?,
        );
        texts.push((id, text));
    }
    texts.sort_by_key(|(id, _)| *id);
    for (expected, (id, text)) in texts.iter().enumerate() {
        if *id as usize != expected {
            return Err(KvError::corrupt("keyword id gap"));
        }
        vocab.intern(text);
    }
    Ok(vocab)
}

/// Rebuilds the frequency statistics from the `S/` entries. Any damage
/// is an error (see [`load_stats_lenient`] for the serving path).
pub(crate) fn load_stats(store: &dyn KvStore, version: u64) -> Result<TypeStats> {
    let (stats, damage) = load_stats_lenient(store, version)?;
    match damage.first() {
        None => Ok(stats),
        Some(d) => Err(KvError::corrupt(format!("{}: {}", d.entry, d.detail))),
    }
}

/// Rebuilds the frequency statistics, recording per-keyword damage
/// instead of failing: a damaged `tf`/`df` entry is dropped (reads as 0)
/// and attributed to its keyword, so the serving layer can answer the
/// remaining keywords and report the degradation. The global `S/N`/`S/G`
/// vectors have no per-keyword owner, so damage there is still fatal.
pub(crate) fn load_stats_lenient(
    store: &dyn KvStore,
    version: u64,
) -> Result<(TypeStats, Vec<StatDamage>)> {
    let n_raw = store
        .get(b"S/N")?
        .ok_or_else(|| KvError::corrupt("missing S/N"))?;
    let n_nodes = decode_varint_vec(decode_value(version, &n_raw, "S/N")?)?;
    let g_raw = store
        .get(b"S/G")?
        .ok_or_else(|| KvError::corrupt("missing S/G"))?;
    let distinct = decode_varint_vec(decode_value(version, &g_raw, "S/G")?)?;

    if version >= 4 {
        // v4 packs each table into one CRC-framed blob ("S/T"/"S/D"):
        // damage there has no per-keyword owner any more, so — like the
        // global vectors — it is fatal rather than degradable.
        let load_packed = |key: &[u8], name: &str| -> Result<_> {
            let raw = store
                .get(key)?
                .ok_or_else(|| KvError::corrupt(format!("missing {name}")))?;
            decode_packed_stats(decode_value(version, &raw, name)?)
        };
        let tf = load_packed(b"S/T", "S/T")?;
        let df = load_packed(b"S/D", "S/D")?;
        return Ok((
            TypeStats::set_from_parts(n_nodes, distinct, tf, df),
            Vec::new(),
        ));
    }

    let mut damage: Vec<StatDamage> = Vec::new();
    let mut load_table =
        |prefix: &[u8], name: &str| -> Result<HashMap<(NodeTypeId, KeywordId), u64>> {
            let mut table = HashMap::new();
            for (key, value) in store.scan_prefix(prefix)? {
                let (t, k) = parse_stat_key(&key)?;
                let entry = format!("{name}(type {}, keyword {})", t.0, k.0);
                let decoded = decode_value(version, &value, &entry).and_then(decode_varint_scalar);
                match decoded {
                    Ok(v) => {
                        table.insert((t, k), v);
                    }
                    Err(e) => damage.push(StatDamage {
                        keyword: k,
                        entry,
                        detail: e.to_string(),
                    }),
                }
            }
            Ok(table)
        };
    let tf = load_table(b"S/T/", "tf")?;
    let df = load_table(b"S/D/", "df")?;
    Ok((TypeStats::set_from_parts(n_nodes, distinct, tf, df), damage))
}

/// The `L/` key of a keyword id.
pub(crate) fn list_key(id: u32) -> Vec<u8> {
    let mut key = Vec::with_capacity(6);
    key.extend_from_slice(b"L/");
    key.extend_from_slice(&id.to_be_bytes());
    key
}

/// Frames `payload` as `varint(len) ‖ crc32 ‖ payload`.
pub(crate) fn frame_value(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 9);
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a frame written by [`frame_value`] and returns its payload.
pub(crate) fn unframe_value<'a>(value: &'a [u8], what: &str) -> Result<&'a [u8]> {
    let mut pos = 0;
    let len = read_varint(value, &mut pos)
        .ok_or_else(|| KvError::corrupt(format!("{what}: bad frame length header")))?
        as usize;
    let rest = value.get(pos..).unwrap_or(&[]);
    if len.checked_add(4) != Some(rest.len()) {
        return Err(KvError::corrupt(format!(
            "{what}: frame length mismatch: header {len}, got {}",
            rest.len().saturating_sub(4)
        )));
    }
    let Some((crc_bytes, payload)) = rest.split_first_chunk::<4>() else {
        return Err(KvError::corrupt(format!(
            "{what}: frame too short for its checksum"
        )));
    };
    let stored = u32::from_le_bytes(*crc_bytes);
    let actual = crc32(payload);
    if stored != actual {
        return Err(KvError::corrupt(format!(
            "{what}: checksum mismatch: stored {stored:#010x}, computed {actual:#010x}"
        )));
    }
    Ok(payload)
}

/// Encodes a non-list stored value for `version` (framed from v3 on).
pub(crate) fn encode_value(version: u64, payload: Vec<u8>) -> Vec<u8> {
    if version >= 3 {
        frame_value(&payload)
    } else {
        payload
    }
}

/// Decodes a non-list stored value for `version`.
pub(crate) fn decode_value<'a>(version: u64, value: &'a [u8], what: &str) -> Result<&'a [u8]> {
    if version >= 3 {
        unframe_value(value, what)
    } else {
        Ok(value)
    }
}

/// Encodes one posting list as a stored value for `version` (framed
/// from v2 on; blocked compressed payload from v4 on). Public so the
/// compression test battery can corrupt framed values directly.
pub fn encode_list_value(version: u64, list: &PostingList) -> Vec<u8> {
    let payload = if version >= 4 {
        let compressed = list.encode_compressed();
        obs::counter!("compress_encoded_bytes_total").add(compressed.len() as u64);
        compressed
    } else {
        list.encode()
    };
    if version >= 2 {
        frame_value(&payload)
    } else {
        payload
    }
}

/// Decodes one stored list value, validating the frame where the
/// version has one. Public so the compression test battery can assert
/// corrupt frames surface [`KvError::Corrupt`].
pub fn decode_list_value(version: u64, value: &[u8]) -> Result<PostingList> {
    let payload = if version >= 2 {
        unframe_value(value, "posting list")?
    } else {
        value
    };
    if version >= 4 {
        return CompressedList::parse(payload)?.decode_all();
    }
    PostingList::decode(payload).ok_or_else(|| KvError::corrupt("undecodable posting list"))
}

/// Serializes the document for `version`: the hash-consed subtree DAG
/// from v4 on, the builder replay stream before that. Both expansions
/// reproduce byte-identical Dewey labels, symbols and node types (the
/// interners assign ids in first-appearance order, which both decoders
/// replay in pre-order).
pub(crate) fn encode_document(version: u64, doc: &Document) -> Vec<u8> {
    if version >= 4 {
        encode_document_dag(doc)
    } else {
        encode_document_replay(doc)
    }
}

/// Rebuilds the document from its stored payload for `version`.
pub(crate) fn decode_document(version: u64, bytes: &[u8]) -> Result<Document> {
    if version >= 4 {
        decode_document_dag(bytes)
    } else {
        decode_document_replay(bytes)
    }
}

/// Serializes the document as a builder replay stream (v2/v3): per node
/// in pre-order, its depth, tag, attributes and text.
pub(crate) fn encode_document_replay(doc: &Document) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, doc.len() as u64);
    for (id, node) in doc.nodes() {
        write_varint(&mut out, node.dewey.len() as u64);
        write_bytes(&mut out, doc.tag_name(id).as_bytes());
        write_varint(&mut out, node.attributes.len() as u64);
        for (name, value) in &node.attributes {
            write_bytes(&mut out, name.as_bytes());
            write_bytes(&mut out, value.as_bytes());
        }
        write_bytes(&mut out, node.text.as_bytes());
    }
    out
}

/// Rebuilds the document from a replay stream.
pub(crate) fn decode_document_replay(bytes: &[u8]) -> Result<Document> {
    let corrupt = |what: &str| KvError::corrupt(format!("document blob: {what}"));
    let mut pos = 0;
    let count = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing node count"))?;
    if count == 0 {
        return Err(corrupt("empty document"));
    }
    let mut builder = DocumentBuilder::new();
    let mut open_depth = 0usize;
    let mut seen_root = false;
    for _ in 0..count {
        let depth =
            read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing node depth"))? as usize;
        if depth == 0 || depth > open_depth + 1 {
            return Err(corrupt("invalid node depth"));
        }
        if depth == 1 {
            if seen_root {
                return Err(corrupt("multiple roots"));
            }
            seen_root = true;
        }
        let tag = read_string(bytes, &mut pos).ok_or_else(|| corrupt("bad tag"))?;
        while open_depth >= depth {
            builder.close_element();
            open_depth -= 1;
        }
        builder.open_element(&tag);
        open_depth += 1;
        let attrs = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing attr count"))?;
        for _ in 0..attrs {
            let name = read_string(bytes, &mut pos).ok_or_else(|| corrupt("bad attr name"))?;
            let value = read_string(bytes, &mut pos).ok_or_else(|| corrupt("bad attr value"))?;
            builder.attribute(&name, &value);
        }
        let text = read_string(bytes, &mut pos).ok_or_else(|| corrupt("bad text"))?;
        if !text.is_empty() {
            builder.text(&text);
        }
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes"));
    }
    while open_depth > 0 {
        builder.close_element();
        open_depth -= 1;
    }
    Ok(builder.finish())
}

// ----- DAG document codec (v4) ---------------------------------------
//
// Repeated subtrees (DBLP-style corpora are full of them: every
// `<paper><title>…</title></paper>` shares its shape, many share whole
// contents) are hash-consed into one tuple each, and every string — tag
// names above all — is interned once in a shared table. The payload is
//
//   varint n_strings ‖ (varint len ‖ bytes)*            string table
//   varint n_dag
//   per tuple, in construction (post-) order:
//     varint tag_sid ‖ varint n_attrs ‖ (name_sid ‖ value_sid)*
//     ‖ varint text_sid ‖ varint n_children ‖ child dag-ids
//   varint root_id ‖ varint total_nodes
//
// Child dag-ids always reference earlier tuples, so the structure is
// acyclic by construction on both ends. `total_nodes` bounds expansion:
// a forged payload whose DAG expands past it (a "DAG bomb") is rejected
// after at most `total_nodes` emitted nodes.

/// One hash-consed subtree: interned field ids plus child tuple ids.
#[derive(PartialEq, Eq, Hash)]
struct DagTuple {
    tag: u32,
    attrs: Vec<(u32, u32)>,
    text: u32,
    children: Vec<u32>,
}

/// Serializes the document as a hash-consed subtree DAG (v4).
pub(crate) fn encode_document_dag(doc: &Document) -> Vec<u8> {
    let mut strings: Vec<String> = Vec::new();
    let mut string_ids: HashMap<String, u32> = HashMap::new();
    let mut intern_str = |s: &str| -> u32 {
        if let Some(&id) = string_ids.get(s) {
            return id;
        }
        let id = strings.len() as u32;
        strings.push(s.to_string());
        string_ids.insert(s.to_string(), id);
        id
    };

    // Iterative post-order: children's tuple ids are known before the
    // parent's tuple is formed.
    enum Frame {
        Enter(NodeId),
        Exit(NodeId),
    }
    let mut tuples: Vec<DagTuple> = Vec::new();
    let mut tuple_ids: HashMap<DagTuple, u32> = HashMap::new();
    let mut node_tuple: HashMap<NodeId, u32> = HashMap::new();
    let mut stack = vec![Frame::Enter(doc.root())];
    while let Some(frame) = stack.pop() {
        match frame {
            Frame::Enter(id) => {
                stack.push(Frame::Exit(id));
                for &child in doc.node(id).children.iter().rev() {
                    stack.push(Frame::Enter(child));
                }
            }
            Frame::Exit(id) => {
                let node = doc.node(id);
                let tag = intern_str(doc.tag_name(id));
                let attrs = node
                    .attributes
                    .iter()
                    .map(|(n, v)| (intern_str(n), intern_str(v)))
                    .collect();
                let text = intern_str(&node.text);
                let children = node
                    .children
                    .iter()
                    // xlint::allow(no-panic-paths): encode side — post-order guarantees every child was assigned a tuple id before its parent exits
                    .map(|c| node_tuple[c])
                    .collect::<Vec<_>>();
                let tuple = DagTuple {
                    tag,
                    attrs,
                    text,
                    children,
                };
                let tid = match tuple_ids.get(&tuple) {
                    Some(&tid) => {
                        obs::counter!("compress_dedup_hits_total").inc();
                        tid
                    }
                    None => {
                        let tid = tuples.len() as u32;
                        tuples.push(DagTuple {
                            tag: tuple.tag,
                            attrs: tuple.attrs.clone(),
                            text: tuple.text,
                            children: tuple.children.clone(),
                        });
                        tuple_ids.insert(tuple, tid);
                        tid
                    }
                };
                node_tuple.insert(id, tid);
            }
        }
    }

    let mut out = Vec::new();
    write_varint(&mut out, strings.len() as u64);
    for s in &strings {
        write_bytes(&mut out, s.as_bytes());
    }
    write_varint(&mut out, tuples.len() as u64);
    for t in &tuples {
        write_varint(&mut out, u64::from(t.tag));
        write_varint(&mut out, t.attrs.len() as u64);
        for &(n, v) in &t.attrs {
            write_varint(&mut out, u64::from(n));
            write_varint(&mut out, u64::from(v));
        }
        write_varint(&mut out, u64::from(t.text));
        write_varint(&mut out, t.children.len() as u64);
        for &c in &t.children {
            write_varint(&mut out, u64::from(c));
        }
    }
    // xlint::allow(no-panic-paths): encode side — the traversal above visited the root last, so its tuple id is present
    write_varint(&mut out, u64::from(node_tuple[&doc.root()]));
    write_varint(&mut out, doc.len() as u64);
    obs::counter!("compress_encoded_bytes_total").add(out.len() as u64);
    out
}

/// Rebuilds the document from a v4 DAG payload, replaying pre-order
/// through [`DocumentBuilder`] so interner id assignment matches the
/// replay-stream path exactly.
pub(crate) fn decode_document_dag(bytes: &[u8]) -> Result<Document> {
    let corrupt = |what: &str| KvError::corrupt(format!("document dag: {what}"));
    let mut pos = 0usize;

    let n_strings = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing string count"))?;
    if n_strings as usize > bytes.len() {
        return Err(corrupt("string count exceeds payload size"));
    }
    let mut strings: Vec<String> = Vec::with_capacity(n_strings as usize);
    for _ in 0..n_strings {
        strings.push(read_string(bytes, &mut pos).ok_or_else(|| corrupt("bad string"))?);
    }
    let sid = |id: u64| -> Result<&str> {
        strings
            .get(id as usize)
            .map(String::as_str)
            .ok_or_else(|| corrupt("string id out of range"))
    };

    let n_dag = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing tuple count"))?;
    if n_dag as usize > bytes.len() {
        return Err(corrupt("tuple count exceeds payload size"));
    }
    let mut tuples: Vec<DagTuple> = Vec::with_capacity(n_dag as usize);
    for i in 0..n_dag {
        let tag = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing tag id"))?;
        let n_attrs = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing attr count"))?;
        if n_attrs as usize > bytes.len() {
            return Err(corrupt("attr count exceeds payload size"));
        }
        let mut attrs = Vec::with_capacity(n_attrs as usize);
        for _ in 0..n_attrs {
            let n = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing attr name"))?;
            let v = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing attr value"))?;
            attrs.push((
                u32::try_from(n).map_err(|_| corrupt("attr name id overflow"))?,
                u32::try_from(v).map_err(|_| corrupt("attr value id overflow"))?,
            ));
        }
        let text = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing text id"))?;
        let n_children =
            read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing child count"))?;
        if n_children as usize > bytes.len() {
            return Err(corrupt("child count exceeds payload size"));
        }
        let mut children = Vec::with_capacity(n_children as usize);
        for _ in 0..n_children {
            let c = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing child id"))?;
            if c >= i {
                return Err(corrupt("child id references a later tuple"));
            }
            children.push(u32::try_from(c).map_err(|_| corrupt("child id overflow"))?);
        }
        tuples.push(DagTuple {
            tag: u32::try_from(tag).map_err(|_| corrupt("tag id overflow"))?,
            attrs,
            text: u32::try_from(text).map_err(|_| corrupt("text id overflow"))?,
            children,
        });
    }

    let root_id = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing root id"))?;
    if root_id >= n_dag {
        return Err(corrupt("root id out of range"));
    }
    let total_nodes = read_varint(bytes, &mut pos).ok_or_else(|| corrupt("missing node count"))?;
    if total_nodes == 0 {
        return Err(corrupt("empty document"));
    }
    if total_nodes > u64::from(u32::MAX) {
        return Err(corrupt("node count overflow"));
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes"));
    }

    // Pre-order expansion with an explicit (tuple, child-cursor) stack,
    // capped at `total_nodes` emitted elements.
    let mut builder = DocumentBuilder::new();
    let mut emitted = 0u64;
    let mut stack: Vec<(u32, usize)> = Vec::new();
    let enter = |builder: &mut DocumentBuilder,
                 tuples: &[DagTuple],
                 tid: u32,
                 emitted: &mut u64|
     -> Result<()> {
        if *emitted >= total_nodes {
            return Err(corrupt("dag expands past its declared node count"));
        }
        *emitted += 1;
        let t = tuples
            .get(tid as usize)
            .ok_or_else(|| corrupt("tuple id out of range"))?;
        builder.open_element(sid(u64::from(t.tag))?);
        for &(n, v) in &t.attrs {
            builder.attribute(sid(u64::from(n))?, sid(u64::from(v))?);
        }
        let text = sid(u64::from(t.text))?;
        if !text.is_empty() {
            builder.text(text);
        }
        Ok(())
    };
    enter(&mut builder, &tuples, root_id as u32, &mut emitted)?;
    stack.push((root_id as u32, 0));
    while let Some((tid, cursor)) = stack.pop() {
        let t = tuples
            .get(tid as usize)
            .ok_or_else(|| corrupt("tuple id out of range"))?;
        match t.children.get(cursor) {
            Some(&child) => {
                stack.push((tid, cursor + 1));
                enter(&mut builder, &tuples, child, &mut emitted)?;
                stack.push((child, 0));
            }
            None => builder.close_element(),
        }
    }
    if emitted != total_nodes {
        return Err(corrupt("dag expands short of its declared node count"));
    }
    Ok(builder.finish())
}

// ----- integrity checking (the `scrub` path) -------------------------

/// Integrity findings for one key-space section of a persisted index.
#[derive(Debug, Clone)]
pub struct SectionReport {
    pub name: &'static str,
    /// Entries examined.
    pub entries: u64,
    /// Damaged entries: (entry description, what is wrong with it).
    pub damaged: Vec<(String, String)>,
}

impl SectionReport {
    pub fn is_clean(&self) -> bool {
        self.damaged.is_empty()
    }
}

/// The result of a full offline integrity walk over a persisted index.
#[derive(Debug, Clone)]
pub struct IntegrityReport {
    /// The format version, when the `M/version` entry itself was readable.
    pub version: Option<u64>,
    pub sections: Vec<SectionReport>,
}

impl IntegrityReport {
    pub fn is_clean(&self) -> bool {
        self.version.is_some() && self.sections.iter().all(SectionReport::is_clean)
    }

    pub fn total_entries(&self) -> u64 {
        self.sections.iter().map(|s| s.entries).sum()
    }

    pub fn total_damaged(&self) -> usize {
        self.sections.iter().map(|s| s.damaged.len()).sum()
    }
}

/// Walks every entry of a persisted index, validating frames, checksums
/// and decodability, and reports per-section damage without stopping at
/// the first hit. Storage-level read failures are reported as damage of
/// the section being walked, so one rotten page does not hide the state
/// of the rest of the store.
pub fn verify_store(store: &dyn KvStore) -> IntegrityReport {
    let mut sections = Vec::new();
    let version = match read_version(store) {
        Ok(v) => {
            sections.push(SectionReport {
                name: "meta",
                entries: 1,
                damaged: Vec::new(),
            });
            Some(v)
        }
        Err(e) => {
            sections.push(SectionReport {
                name: "meta",
                entries: 1,
                damaged: vec![("M/version".into(), e.to_string())],
            });
            None
        }
    };
    // Without a version byte, assume the current format: damage reports
    // for the rest of the store are then best-effort rather than absent.
    let v = version.unwrap_or(FORMAT_VERSION);

    // Document blob (v2+).
    let mut doc_section = SectionReport {
        name: "document",
        entries: 0,
        damaged: Vec::new(),
    };
    match store.get(b"D/doc") {
        Ok(Some(blob)) => {
            doc_section.entries = 1;
            if let Err(e) =
                decode_value(v, &blob, "D/doc").and_then(|raw| decode_document(v, raw).map(|_| ()))
            {
                doc_section.damaged.push(("D/doc".into(), e.to_string()));
            }
        }
        Ok(None) => {
            doc_section.entries = 1;
            if v >= 2 {
                doc_section
                    .damaged
                    .push(("D/doc".into(), "missing embedded document".into()));
            }
        }
        Err(e) => doc_section.damaged.push(("D/doc".into(), e.to_string())),
    }
    sections.push(doc_section);

    // Vocabulary: per-entry decode, then the global gapless-ids check.
    let mut vocab_section = SectionReport {
        name: "vocabulary",
        entries: 0,
        damaged: Vec::new(),
    };
    let mut ids: Vec<u32> = Vec::new();
    let mut names: HashMap<u32, String> = HashMap::new();
    match store.scan_prefix(b"V/") {
        Ok(entries) => {
            for (key, value) in entries {
                vocab_section.entries += 1;
                let text = String::from_utf8_lossy(&key[2..]).into_owned();
                let entry = format!("V/{text}");
                match decode_value(v, &value, &entry).and_then(|raw| {
                    raw.try_into()
                        .map(u32::from_le_bytes)
                        .map_err(|_| KvError::corrupt("keyword id is not 4 bytes"))
                }) {
                    Ok(id) => {
                        ids.push(id);
                        names.insert(id, text);
                    }
                    Err(e) => vocab_section.damaged.push((entry, e.to_string())),
                }
            }
            ids.sort_unstable();
            for (expected, id) in ids.iter().enumerate() {
                if *id as usize != expected {
                    vocab_section
                        .damaged
                        .push(("V/".into(), format!("keyword id gap at {expected}")));
                    break;
                }
            }
        }
        Err(e) => vocab_section.damaged.push(("<scan>".into(), e.to_string())),
    }
    sections.push(vocab_section);

    // Posting lists. For v4 stores the skip table is validated first,
    // then every block is decoded independently so damage is attributed
    // per block, not just per list.
    let mut list_section = SectionReport {
        name: "lists",
        entries: 0,
        damaged: Vec::new(),
    };
    match store.scan_prefix(b"L/") {
        Ok(entries) => {
            for (key, value) in entries {
                list_section.entries += 1;
                let entry = match key[2..].try_into().map(u32::from_be_bytes) {
                    Ok(id) => match names.get(&id) {
                        Some(text) => format!("L/{id} ({text:?})"),
                        None => format!("L/{id}"),
                    },
                    Err(_) => format!("L/{:?}", &key[2..]),
                };
                if v >= 4 {
                    match unframe_value(&value, "posting list").and_then(|payload| {
                        CompressedList::parse(payload).map(|c| c.check_blocks())
                    }) {
                        Ok(damaged_blocks) => {
                            for (block, detail) in damaged_blocks {
                                list_section
                                    .damaged
                                    .push((format!("{entry} block {block}"), detail));
                            }
                        }
                        Err(e) => list_section.damaged.push((entry, e.to_string())),
                    }
                } else if let Err(e) = decode_list_value(v, &value) {
                    list_section.damaged.push((entry, e.to_string()));
                }
            }
        }
        Err(e) => list_section.damaged.push(("<scan>".into(), e.to_string())),
    }
    sections.push(list_section);

    // Statistics: the global vectors, then both per-keyword tables.
    let mut stat_section = SectionReport {
        name: "stats",
        entries: 0,
        damaged: Vec::new(),
    };
    for name in ["S/N", "S/G"] {
        stat_section.entries += 1;
        match store.get(name.as_bytes()) {
            Ok(Some(value)) => {
                if let Err(e) =
                    decode_value(v, &value, name).and_then(|raw| decode_varint_vec(raw).map(|_| ()))
                {
                    stat_section.damaged.push((name.into(), e.to_string()));
                }
            }
            Ok(None) => stat_section.damaged.push((name.into(), "missing".into())),
            Err(e) => stat_section.damaged.push((name.into(), e.to_string())),
        }
    }
    if v >= 4 {
        // v4: one packed, delta-encoded blob per table.
        for (key, name) in [(b"S/T".as_slice(), "tf (packed)"), (b"S/D", "df (packed)")] {
            stat_section.entries += 1;
            match store.get(key) {
                Ok(Some(value)) => {
                    if let Err(e) = decode_value(v, &value, name)
                        .and_then(|raw| decode_packed_stats(raw).map(|_| ()))
                    {
                        stat_section.damaged.push((name.into(), e.to_string()));
                    }
                }
                Ok(None) => stat_section.damaged.push((name.into(), "missing".into())),
                Err(e) => stat_section.damaged.push((name.into(), e.to_string())),
            }
        }
        sections.push(stat_section);
        return IntegrityReport { version, sections };
    }
    for (prefix, name) in [(b"S/T/".as_slice(), "tf"), (b"S/D/".as_slice(), "df")] {
        match store.scan_prefix(prefix) {
            Ok(entries) => {
                for (key, value) in entries {
                    stat_section.entries += 1;
                    let entry = match parse_stat_key(&key) {
                        Ok((t, k)) => format!("{name}(type {}, keyword {})", t.0, k.0),
                        Err(_) => format!("{name}/{:?}", &key[4..]),
                    };
                    if let Err(e) = decode_value(v, &value, &entry)
                        .and_then(|raw| decode_varint_scalar(raw).map(|_| ()))
                    {
                        stat_section.damaged.push((entry, e.to_string()));
                    }
                }
            }
            Err(e) => stat_section.damaged.push(("<scan>".into(), e.to_string())),
        }
    }
    sections.push(stat_section);

    IntegrityReport { version, sections }
}

// ----- helpers -------------------------------------------------------

fn write_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    write_varint(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

fn read_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    let len = read_varint(bytes, pos)? as usize;
    let end = pos.checked_add(len)?;
    let raw = bytes.get(*pos..end)?;
    let s = String::from_utf8(raw.to_vec()).ok()?;
    *pos = end;
    Some(s)
}

/// v4 packed stat table. Rows must be sorted by `(t, k)`; they are
/// grouped by type with both the type and keyword axes delta-encoded:
///
/// ```text
/// varint n_groups
/// per group:  varint t_delta   (first group: t; later: t - prev_t - 1)
///             varint n_rows    (>= 1)
///             per row: varint k_delta (first row: k; later: k - prev_k - 1)
///                      varint value
/// ```
fn encode_packed_stats(rows: &[(NodeTypeId, KeywordId, u64)]) -> Vec<u8> {
    let mut groups: Vec<(u32, Vec<(u32, u64)>)> = Vec::new();
    for &(t, k, v) in rows {
        match groups.last_mut() {
            Some((gt, g)) if *gt == t.0 => g.push((k.0, v)),
            _ => groups.push((t.0, vec![(k.0, v)])),
        }
    }
    let mut out = Vec::new();
    write_varint(&mut out, groups.len() as u64);
    let mut prev_t: Option<u32> = None;
    for (t, g) in groups {
        match prev_t {
            None => write_varint(&mut out, u64::from(t)),
            Some(p) => write_varint(&mut out, u64::from(t - p - 1)),
        }
        prev_t = Some(t);
        write_varint(&mut out, g.len() as u64);
        let mut prev_k: Option<u32> = None;
        for (k, v) in g {
            match prev_k {
                None => write_varint(&mut out, u64::from(k)),
                Some(p) => write_varint(&mut out, u64::from(k - p - 1)),
            }
            prev_k = Some(k);
            write_varint(&mut out, v);
        }
    }
    out
}

/// Decodes a v4 packed stat table (see [`encode_packed_stats`]).
fn decode_packed_stats(payload: &[u8]) -> Result<HashMap<(NodeTypeId, KeywordId), u64>> {
    let bad = |what: &str| KvError::corrupt(format!("packed stat table: {what}"));
    let mut pos = 0usize;
    let mut next =
        |what: &str| -> Result<u64> { read_varint(payload, &mut pos).ok_or_else(|| bad(what)) };
    let n_groups = next("group count")?;
    let mut table = HashMap::new();
    let mut prev_t: Option<u64> = None;
    for _ in 0..n_groups {
        let delta = next("type delta")?;
        let t = match prev_t {
            None => delta,
            Some(p) => p
                .checked_add(delta)
                .and_then(|x| x.checked_add(1))
                .ok_or_else(|| bad("type overflow"))?,
        };
        if t > u64::from(u32::MAX) {
            return Err(bad("type overflow"));
        }
        prev_t = Some(t);
        let n_rows = next("row count")?;
        if n_rows == 0 {
            return Err(bad("empty type group"));
        }
        let mut prev_k: Option<u64> = None;
        for _ in 0..n_rows {
            let delta = next("keyword delta")?;
            let k = match prev_k {
                None => delta,
                Some(p) => p
                    .checked_add(delta)
                    .and_then(|x| x.checked_add(1))
                    .ok_or_else(|| bad("keyword overflow"))?,
            };
            if k > u64::from(u32::MAX) {
                return Err(bad("keyword overflow"));
            }
            prev_k = Some(k);
            let v = next("value")?;
            table.insert((NodeTypeId(t as u32), KeywordId(k as u32)), v);
        }
    }
    if pos != payload.len() {
        return Err(bad("trailing bytes"));
    }
    Ok(table)
}

fn stat_key(prefix: &[u8], t: NodeTypeId, k: KeywordId) -> Vec<u8> {
    let mut key = Vec::with_capacity(prefix.len() + 8);
    key.extend_from_slice(prefix);
    key.extend_from_slice(&t.0.to_be_bytes());
    key.extend_from_slice(&k.0.to_be_bytes());
    key
}

fn parse_stat_key(key: &[u8]) -> Result<(NodeTypeId, KeywordId)> {
    if key.len() != 4 + 8 {
        return Err(KvError::corrupt("bad stat key"));
    }
    let be = |s: &[u8]| -> Result<u32> {
        s.try_into()
            .map(u32::from_be_bytes)
            .map_err(|_| KvError::corrupt("bad stat key"))
    };
    Ok((NodeTypeId(be(&key[4..8])?), KeywordId(be(&key[8..12])?)))
}

fn varint_vec(v: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(2);
    write_varint(&mut buf, v);
    buf
}

fn decode_varint_scalar(bytes: &[u8]) -> Result<u64> {
    let mut pos = 0;
    let v = read_varint(bytes, &mut pos).ok_or_else(|| KvError::corrupt("bad varint"))?;
    if pos != bytes.len() {
        return Err(KvError::corrupt("trailing bytes in varint"));
    }
    Ok(v)
}

fn decode_varint_vec(bytes: &[u8]) -> Result<Vec<u64>> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        out.push(
            read_varint(bytes, &mut pos).ok_or_else(|| KvError::corrupt("bad varint vector"))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvstore::MemKv;
    use xmldom::fixtures::figure1;

    #[test]
    fn persist_load_roundtrip_preserves_everything() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        let loaded = load(Arc::clone(&doc), &store).unwrap();

        assert_eq!(built.vocabulary().len(), loaded.vocabulary().len());
        for (k, text) in built.vocabulary().iter() {
            assert_eq!(loaded.vocabulary().get(text), Some(k));
            assert_eq!(built.list_by_id(k), loaded.list_by_id(k));
        }
        for t in doc.node_types().iter() {
            assert_eq!(built.stats().n_nodes(t), loaded.stats().n_nodes(t));
            assert_eq!(
                built.stats().distinct_keywords(t),
                loaded.stats().distinct_keywords(t)
            );
            for (k, _) in built.vocabulary().iter() {
                assert_eq!(built.stats().tf(t, k), loaded.stats().tf(t, k));
                assert_eq!(built.stats().df(t, k), loaded.stats().df(t, k));
            }
        }
    }

    #[test]
    fn older_format_stores_remain_readable() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        for version in [LEGACY_FORMAT_VERSION, V2_FORMAT_VERSION, V3_FORMAT_VERSION] {
            let mut store = MemKv::new();
            persist_versioned(&built, &mut store, version).unwrap();
            if version == LEGACY_FORMAT_VERSION {
                // no embedded document in v1
                assert!(store.get(b"D/doc").unwrap().is_none());
            }
            let loaded = load(Arc::clone(&doc), &store).unwrap();
            assert_eq!(loaded.total_postings(), built.total_postings());
            for (k, _) in built.vocabulary().iter() {
                assert_eq!(built.list_by_id(k), loaded.list_by_id(k));
            }
        }
    }

    #[test]
    fn corrupted_list_payload_is_an_error_not_a_panic() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();

        // Flip one payload byte behind the checksum.
        let key = list_key(0);
        let mut value = store.get(&key).unwrap().unwrap();
        *value.last_mut().unwrap() ^= 0xFF;
        store.put(&key, &value).unwrap();
        match load(Arc::clone(&doc), &store) {
            Err(e) if e.is_corrupt() => assert!(e.to_string().contains("checksum"), "{e}"),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| "an index")),
        }

        // Truncate a frame: length header no longer matches.
        persist(&built, &mut store).unwrap();
        let mut value = store.get(&key).unwrap().unwrap();
        value.pop();
        store.put(&key, &value).unwrap();
        match load(doc, &store) {
            Err(e) if e.is_corrupt() => assert!(e.to_string().contains("length"), "{e}"),
            other => panic!("expected Corrupt, got {:?}", other.map(|_| "an index")),
        }
    }

    #[test]
    fn v3_frames_every_value_class() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        // Flipping a byte in a *stat* or *vocabulary* value — unframed in
        // v2 — must now be detected, not silently reinterpreted.
        for prefix in [b"V/".as_slice(), b"S/".as_slice()] {
            for (key, value) in store.scan_prefix(prefix).unwrap() {
                for pos in 0..value.len() {
                    let mut damaged = value.clone();
                    damaged[pos] ^= 0xFF;
                    let mut s2 = MemKv::new();
                    for (k2, v2) in store.scan_prefix(b"").unwrap() {
                        s2.put(&k2, if k2 == key { &damaged } else { &v2 }).unwrap();
                    }
                    let got = load(Arc::clone(&doc), &s2);
                    assert!(
                        got.is_err(),
                        "flip at {pos} of {:?} went undetected",
                        String::from_utf8_lossy(&key)
                    );
                }
            }
        }
    }

    #[test]
    fn lenient_stats_attribute_damage_to_the_keyword() {
        // Per-keyword stat entries (and therefore per-keyword damage
        // attribution) are a v1–v3 property; v4 packs the tables.
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist_versioned(&built, &mut store, V3_FORMAT_VERSION).unwrap();
        let victim = built.vocabulary().get("xml").unwrap();
        // Damage one tf entry of "xml".
        let (key, value) = store
            .scan_prefix(b"S/T/")
            .unwrap()
            .into_iter()
            .find(|(k, _)| k[8..12] == victim.0.to_be_bytes())
            .expect("xml has tf entries");
        let mut bad = value.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        store.put(&key, &bad).unwrap();

        // Strict loading fails…
        assert!(load_stats(&store, V3_FORMAT_VERSION).is_err());
        // …lenient loading degrades exactly that keyword.
        let (stats, damage) = load_stats_lenient(&store, V3_FORMAT_VERSION).unwrap();
        assert_eq!(damage.len(), 1);
        assert_eq!(damage[0].keyword, victim);
        // The damaged entry reads as 0; undamaged keywords are untouched.
        let john = built.vocabulary().get("john").unwrap();
        for t in doc.node_types().iter() {
            assert_eq!(stats.tf(t, john), built.stats().tf(t, john));
        }
    }

    #[test]
    fn packed_stat_tables_roundtrip_and_fail_whole_on_damage() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();

        // Exactly two stat-table keys, no per-entry residue.
        let packed = store.scan_prefix(b"S/T").unwrap();
        assert_eq!(packed.len(), 1, "one packed tf key");
        assert_eq!(store.scan_prefix(b"S/D").unwrap().len(), 1);

        // Round-trip: every tf/df cell matches the built index.
        let (stats, damage) = load_stats_lenient(&store, FORMAT_VERSION).unwrap();
        assert!(damage.is_empty());
        for t in doc.node_types().iter() {
            for (k, _) in built.vocabulary().iter() {
                assert_eq!(stats.tf(t, k), built.stats().tf(t, k));
                assert_eq!(stats.df(t, k), built.stats().df(t, k));
            }
        }

        // A flipped byte in the packed table is fatal for the whole
        // table — no per-keyword owner exists any more.
        let (key, value) = packed.into_iter().next().unwrap();
        let mut bad = value.clone();
        *bad.last_mut().unwrap() ^= 0xFF;
        store.put(&key, &bad).unwrap();
        match load_stats_lenient(&store, FORMAT_VERSION) {
            Err(e) => assert!(e.is_corrupt(), "unexpected error class: {e}"),
            Ok(_) => panic!("damaged packed table accepted"),
        }
    }

    #[test]
    fn verify_store_reports_damage_per_section() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        let clean = verify_store(&store);
        assert!(clean.is_clean(), "{clean:?}");
        assert_eq!(clean.version, Some(FORMAT_VERSION));
        assert!(clean.total_entries() > 4);

        // Damage one list and one stat entry.
        let key = list_key(0);
        let mut value = store.get(&key).unwrap().unwrap();
        *value.last_mut().unwrap() ^= 0xFF;
        store.put(&key, &value).unwrap();
        let mut sbad = store.get(b"S/T").unwrap().unwrap();
        *sbad.last_mut().unwrap() ^= 0xFF;
        store.put(b"S/T", &sbad).unwrap();

        let report = verify_store(&store);
        assert!(!report.is_clean());
        assert_eq!(report.total_damaged(), 2);
        let damaged_sections: Vec<&str> = report
            .sections
            .iter()
            .filter(|s| !s.is_clean())
            .map(|s| s.name)
            .collect();
        assert_eq!(damaged_sections, ["lists", "stats"]);
    }

    #[test]
    fn document_blob_roundtrips_exactly_at_every_version() {
        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        for version in [V2_FORMAT_VERSION, V3_FORMAT_VERSION, FORMAT_VERSION] {
            let mut store = MemKv::new();
            persist_versioned(&built, &mut store, version).unwrap();
            let framed = store.get(b"D/doc").unwrap().expect("v2+ embeds the doc");
            let blob = decode_value(version, &framed, "D/doc").unwrap();
            let replayed = decode_document(version, blob).unwrap();
            assert_eq!(replayed.len(), doc.len(), "v{version}");
            for ((_, a), (_, b)) in doc.nodes().zip(replayed.nodes()) {
                assert_eq!(a.dewey, b.dewey);
                assert_eq!(a.node_type, b.node_type);
                assert_eq!(a.text, b.text);
                assert_eq!(a.attributes, b.attributes);
            }
            assert_eq!(doc.to_xml(), replayed.to_xml());
        }
    }

    #[test]
    fn dag_document_dedups_repeated_subtrees() {
        // 50 identical records: the DAG stores the record subtree once.
        let mut xml = String::from("<bib>");
        for _ in 0..50 {
            xml.push_str("<paper><title>xml keyword</title><year>2009</year></paper>");
        }
        xml.push_str("</bib>");
        let doc = xmldom::parse_document(&xml).unwrap();
        let dag = encode_document_dag(&doc);
        let replay = encode_document_replay(&doc);
        assert!(
            dag.len() * 5 < replay.len(),
            "dag {} vs replay {}: expected >5x shrink on repeated records",
            dag.len(),
            replay.len()
        );
        let back = decode_document_dag(&dag).unwrap();
        assert_eq!(back.to_xml(), doc.to_xml());
        for ((_, a), (_, b)) in doc.nodes().zip(back.nodes()) {
            assert_eq!(a.dewey, b.dewey);
            assert_eq!(a.node_type, b.node_type);
        }
    }

    #[test]
    fn dag_document_rejects_structural_damage() {
        let doc = figure1();
        let dag = encode_document_dag(&doc);
        // truncations at every prefix must error, never panic
        for cut in 0..dag.len() {
            assert!(decode_document_dag(&dag[..cut]).is_err(), "cut {cut}");
        }
        // every single-byte flip must error or produce a well-formed doc
        // (the store frame CRC is what guarantees detection; here we only
        // require no panic and no expansion blow-up)
        for i in 0..dag.len() {
            let mut bad = dag.clone();
            bad[i] ^= 0xFF;
            let _ = decode_document_dag(&bad);
        }
        // a DAG bomb — node count understating the expansion — is cut off
        let mut bomb = dag.clone();
        let n = doc.len() as u64;
        // rewrite the trailing total_nodes varint to 1 (figure1 has < 128
        // nodes, so the count is the final single byte)
        assert_eq!(*bomb.last().unwrap() as u64, n);
        *bomb.last_mut().unwrap() = 1;
        let err = decode_document_dag(&bomb).unwrap_err();
        assert!(err.to_string().contains("expands past"), "{err}");
    }

    #[test]
    fn v4_store_is_smaller_than_v3_for_repetitive_corpora() {
        let mut xml = String::from("<bib>");
        for i in 0..120 {
            xml.push_str(&format!(
                "<paper><title>xml keyword search {}</title><year>2009</year></paper>",
                ["query", "refinement", "ranking"][i % 3]
            ));
        }
        xml.push_str("</bib>");
        let doc = Arc::new(xmldom::parse_document(&xml).unwrap());
        let built = Index::build(Arc::clone(&doc));
        let size = |version: u64| -> usize {
            let mut store = MemKv::new();
            persist_versioned(&built, &mut store, version).unwrap();
            store
                .scan_prefix(b"")
                .unwrap()
                .iter()
                .map(|(k, v)| k.len() + v.len())
                .sum()
        };
        let v3 = size(V3_FORMAT_VERSION);
        let v4 = size(FORMAT_VERSION);
        assert!(
            v4 * 2 < v3,
            "v4 store {v4} vs v3 {v3}: expected >= 2x shrink"
        );
    }

    #[test]
    fn load_rejects_missing_or_mismatched_state() {
        let doc = Arc::new(figure1());
        let store = MemKv::new();
        assert!(load(Arc::clone(&doc), &store).is_err());

        let built = Index::build(Arc::clone(&doc));
        let mut store = MemKv::new();
        persist(&built, &mut store).unwrap();
        // Different document (different type count) must be rejected.
        let other = Arc::new(xmldom::fixtures::tiny());
        assert!(load(other, &store).is_err());
    }

    #[test]
    fn persist_works_on_disk_store_too() {
        use kvstore::DiskKv;
        let dir = std::env::temp_dir().join(format!("invindex_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.db");
        let _ = std::fs::remove_file(&path);

        let doc = Arc::new(figure1());
        let built = Index::build(Arc::clone(&doc));
        {
            let mut store = DiskKv::open(&path).unwrap();
            persist(&built, &mut store).unwrap();
        }
        let store = DiskKv::open(&path).unwrap();
        let loaded = load(Arc::clone(&doc), &store).unwrap();
        assert_eq!(loaded.total_postings(), built.total_postings());
        std::fs::remove_file(&path).unwrap();
    }
}

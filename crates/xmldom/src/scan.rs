//! Streaming zero-copy structural scanner.
//!
//! The scanner walks a borrowed, complete XML buffer and emits *span
//! events* — byte ranges into the input — instead of materialising a DOM
//! or allocating per-event `String`s. It is the ingest half of the
//! structural-index pipeline: `invindex::stream` consumes the spans to
//! tokenize and label chunks in parallel, and `scan_with` is also usable
//! directly for validation passes (`check_document`).
//!
//! Contract with the reference parser ([`crate::parser`]):
//!
//! * **Acceptance parity.** `check_document(x).is_ok() ==
//!   parse_document(x).is_ok()` for every input below
//!   [`MAX_SCAN_DEPTH`]; the scanner replicates the parser's control
//!   flow construct by construct (same markup dispatch, same name
//!   grammar, same entity grammar, same well-formedness rules). The
//!   fuzz sweep in `tests/scan_fuzz.rs` exercises this.
//! * **Event parity.** For accepted input, start/text/end events arrive
//!   in exactly the order the parser would call its `XmlHandler`, with
//!   text spans still entity-encoded (decoding is the consumer's job,
//!   via [`decode_text`], so it can run in parallel workers).
//! * **Bounded memory.** The scanner holds only the open-element span
//!   stack and a per-tag attribute scratch list: at [`MAX_SCAN_DEPTH`]
//!   (8192) levels × 16-byte spans that is a ~128 KiB ceiling, the one
//!   intentional divergence from the parser (which recurses its open
//!   tags into heap `String`s without limit). Inputs deeper than the
//!   limit are rejected with [`ScanErrorKind::DepthLimitExceeded`].
//!
//! Delimiter search is SWAR (8-byte words, zero-byte trick) rather than
//! per-byte — the scanner's hot loop is "find the next `<`", which this
//! makes cache-speed without any SIMD intrinsics or dependencies.
//!
//! Errors are structured ([`ScanError`] with a byte offset), never
//! panics; the module is under the `no-panic-paths` lint scope.

use std::borrow::Cow;
use std::fmt;

/// Maximum element nesting the scanner accepts. Bounds the streaming
/// state: the open-tag stack is `MAX_SCAN_DEPTH × 16` bytes ≈ 128 KiB.
pub const MAX_SCAN_DEPTH: usize = 8192;

/// A byte range into the scanned input. Spans always start and end on
/// UTF-8 boundaries (every delimiter the scanner splits at is ASCII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// The spanned text. Returns `""` for a span that does not lie
    /// inside `input` (a span can only be used with the buffer it was
    /// scanned from).
    pub fn slice<'a>(&self, input: &'a str) -> &'a str {
        input.get(self.start..self.end).unwrap_or("")
    }
}

/// Why scanning failed. Mirrors [`crate::parser::ParseErrorKind`]
/// variant for variant (minus the allocated payloads — scan errors are
/// zero-copy too), plus [`DepthLimitExceeded`] for the bounded-memory
/// guarantee.
///
/// [`DepthLimitExceeded`]: ScanErrorKind::DepthLimitExceeded
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanErrorKind {
    UnexpectedEof,
    InvalidMarkup,
    InvalidName,
    MismatchedClose,
    ContentOutsideRoot,
    EmptyDocument,
    UnterminatedComment,
    UnterminatedCdata,
    UnterminatedPi,
    UnterminatedDoctype,
    InvalidAttribute,
    DuplicateAttribute,
    InvalidEntity,
    BareLt,
    DepthLimitExceeded,
}

/// A scan error with the byte offset it was detected at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanError {
    pub kind: ScanErrorKind,
    pub offset: usize,
}

impl fmt::Display for ScanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML scan error at byte {}: {:?}", self.offset, self.kind)
    }
}

impl std::error::Error for ScanError {}

/// Receiver of span events. Called in well-formed document order: the
/// scanner guarantees `start_tag`/`end_tag` balance exactly and `text`
/// only arrives inside an open element.
pub trait ScanSink {
    /// An element opened. `name` spans the tag name, `attrs` the raw
    /// attribute region (parse it lazily with [`AttrIter`]).
    fn start_tag(&mut self, name: Span, attrs: Span);
    /// The innermost open element closed (explicitly or `/>`).
    fn end_tag(&mut self);
    /// Character data (still entity-encoded; ASCII-trimmed) or a CDATA
    /// section (verbatim; trimmed). May still decode/trim to nothing —
    /// the consumer applies the final [`decode_text`]`.trim()`.
    fn text(&mut self, span: Span, cdata: bool);
}

/// Throughput accounting for one scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Bytes consumed (equals the input length on success).
    pub bytes: u64,
    /// Events delivered to the sink.
    pub events: u64,
}

struct NullSink;

impl ScanSink for NullSink {
    fn start_tag(&mut self, _name: Span, _attrs: Span) {}
    fn end_tag(&mut self) {}
    fn text(&mut self, _span: Span, _cdata: bool) {}
}

/// Scans a complete XML document into `sink`, enforcing the same
/// well-formedness rules as [`crate::parse_with`]. Metrics
/// (`xmldom_scan_bytes_total`, `xmldom_events_total`) are accumulated
/// locally and flushed once per scan.
pub fn scan_with<S: ScanSink>(input: &str, sink: &mut S) -> Result<ScanStats, ScanError> {
    let mut scanner = Scanner {
        input: input.as_bytes(),
        text: input,
        pos: 0,
        sink,
        open: Vec::new(),
        attr_scratch: Vec::new(),
        seen_root: false,
        events: 0,
    };
    let result = scanner.run();
    let stats = ScanStats {
        bytes: scanner.pos.min(input.len()) as u64,
        events: scanner.events,
    };
    obs::counter!("xmldom_scan_bytes_total").add(stats.bytes);
    obs::counter!("xmldom_events_total").add(stats.events);
    result?;
    if !scanner.seen_root {
        return Err(ScanError {
            kind: ScanErrorKind::EmptyDocument,
            offset: input.len(),
        });
    }
    Ok(stats)
}

/// Validates a document without materialising anything: runs the full
/// scanner (structure, names, attributes, entities) against a no-op
/// sink.
pub fn check_document(input: &str) -> Result<ScanStats, ScanError> {
    scan_with(input, &mut NullSink)
}

struct Scanner<'a, S: ScanSink> {
    input: &'a [u8],
    text: &'a str,
    pos: usize,
    sink: &'a mut S,
    /// Name spans of the open elements — the bounded streaming state.
    open: Vec<Span>,
    /// Attribute-name spans of the tag being scanned (duplicate check).
    attr_scratch: Vec<Span>,
    seen_root: bool,
    events: u64,
}

impl<'a, S: ScanSink> Scanner<'a, S> {
    fn err(&self, kind: ScanErrorKind) -> ScanError {
        ScanError {
            kind,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn rest(&self) -> &'a [u8] {
        self.input.get(self.pos..).unwrap_or(&[])
    }

    fn range(&self, start: usize, end: usize) -> &'a [u8] {
        self.input.get(start..end).unwrap_or(&[])
    }

    fn starts_with(&self, s: &[u8]) -> bool {
        self.rest().starts_with(s)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn run(&mut self) -> Result<(), ScanError> {
        loop {
            if self.open.is_empty() {
                self.skip_whitespace();
            }
            match self.peek() {
                None => {
                    if self.open.is_empty() {
                        return Ok(());
                    }
                    return Err(self.err(ScanErrorKind::UnexpectedEof));
                }
                Some(b'<') => self.markup()?,
                Some(_) => self.character_data()?,
            }
        }
    }

    fn markup(&mut self) -> Result<(), ScanError> {
        if self.starts_with(b"<!--") {
            self.comment()
        } else if self.starts_with(b"<![CDATA[") {
            self.cdata()
        } else if self.starts_with(b"<!DOCTYPE") {
            self.doctype()
        } else if self.starts_with(b"<?") {
            self.processing_instruction()
        } else if self.starts_with(b"</") {
            self.close_tag()
        } else {
            self.open_tag()
        }
    }

    fn comment(&mut self) -> Result<(), ScanError> {
        self.pos += 4;
        match find_sub(self.rest(), b"-->") {
            Some(end) => {
                self.pos += end + 3;
                Ok(())
            }
            None => Err(self.err(ScanErrorKind::UnterminatedComment)),
        }
    }

    fn cdata(&mut self) -> Result<(), ScanError> {
        if self.open.is_empty() {
            return Err(self.err(ScanErrorKind::ContentOutsideRoot));
        }
        self.pos += 9;
        match find_sub(self.rest(), b"]]>") {
            Some(end) => {
                let span = self.trimmed(self.pos, self.pos + end);
                if !span.is_empty() {
                    self.sink.text(span, true);
                    self.events += 1;
                }
                self.pos += end + 3;
                Ok(())
            }
            None => Err(self.err(ScanErrorKind::UnterminatedCdata)),
        }
    }

    fn doctype(&mut self) -> Result<(), ScanError> {
        // Skip to the matching `>`, tolerating one bracketed internal
        // subset (same tolerance as the parser).
        self.pos += 9;
        let mut depth = 0usize;
        while let Some(b) = self.peek() {
            match b {
                b'[' => depth += 1,
                b']' => depth = depth.saturating_sub(1),
                b'>' if depth == 0 => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(self.err(ScanErrorKind::UnterminatedDoctype))
    }

    fn processing_instruction(&mut self) -> Result<(), ScanError> {
        self.pos += 2;
        match find_sub(self.rest(), b"?>") {
            Some(end) => {
                self.pos += end + 2;
                Ok(())
            }
            None => Err(self.err(ScanErrorKind::UnterminatedPi)),
        }
    }

    fn name_span(&mut self) -> Result<Span, ScanError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if !is_name_byte(b) {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err(ScanErrorKind::InvalidName));
        }
        let first = self.input.get(start).copied().unwrap_or(0);
        if first.is_ascii_digit() || first == b'-' || first == b'.' {
            return Err(self.err(ScanErrorKind::InvalidName));
        }
        Ok(Span {
            start,
            end: self.pos,
        })
    }

    fn open_tag(&mut self) -> Result<(), ScanError> {
        if self.seen_root && self.open.is_empty() {
            return Err(self.err(ScanErrorKind::ContentOutsideRoot));
        }
        self.pos += 1; // '<'
        let name = self.name_span()?;
        self.seen_root = true;
        if self.open.len() >= MAX_SCAN_DEPTH {
            return Err(self.err(ScanErrorKind::DepthLimitExceeded));
        }
        self.open.push(name);

        let attrs_start = self.pos;
        self.attr_scratch.clear();
        loop {
            self.skip_whitespace();
            match self.peek() {
                None => return Err(self.err(ScanErrorKind::UnexpectedEof)),
                Some(b'>') => {
                    let attrs = Span {
                        start: attrs_start,
                        end: self.pos,
                    };
                    self.pos += 1;
                    self.sink.start_tag(name, attrs);
                    self.events += 1;
                    return Ok(());
                }
                Some(b'/') => {
                    if !self.starts_with(b"/>") {
                        return Err(self.err(ScanErrorKind::InvalidMarkup));
                    }
                    let attrs = Span {
                        start: attrs_start,
                        end: self.pos,
                    };
                    self.pos += 2;
                    self.sink.start_tag(name, attrs);
                    self.sink.end_tag();
                    self.events += 2;
                    self.open.pop();
                    return Ok(());
                }
                Some(_) => self.attribute()?,
            }
        }
    }

    fn attribute(&mut self) -> Result<(), ScanError> {
        let attr = self.name_span()?;
        let dup = self
            .attr_scratch
            .iter()
            .any(|s| self.range(s.start, s.end) == self.range(attr.start, attr.end));
        if dup {
            return Err(self.err(ScanErrorKind::DuplicateAttribute));
        }
        self.skip_whitespace();
        if self.peek() != Some(b'=') {
            return Err(self.err(ScanErrorKind::InvalidAttribute));
        }
        self.pos += 1;
        self.skip_whitespace();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err(ScanErrorKind::InvalidAttribute)),
        };
        self.pos += 1;
        let vstart = self.pos;
        // The value runs to the closing quote; `<` inside it is the
        // parser's BareLt error and EOF its UnexpectedEof.
        match find_byte2(self.rest(), quote, b'<') {
            Some(off) => {
                self.pos += off;
                if self.peek() == Some(b'<') {
                    return Err(self.err(ScanErrorKind::BareLt));
                }
            }
            None => {
                self.pos = self.input.len();
                return Err(self.err(ScanErrorKind::UnexpectedEof));
            }
        }
        self.validate_entities(vstart, self.pos)?;
        self.pos += 1; // closing quote
        self.attr_scratch.push(attr);
        Ok(())
    }

    fn close_tag(&mut self) -> Result<(), ScanError> {
        self.pos += 2; // '</'
        let name = self.name_span()?;
        self.skip_whitespace();
        if self.peek() != Some(b'>') {
            return Err(self.err(ScanErrorKind::InvalidMarkup));
        }
        self.pos += 1;
        match self.open.pop() {
            Some(open) if self.range(open.start, open.end) == self.range(name.start, name.end) => {
                self.sink.end_tag();
                self.events += 1;
                Ok(())
            }
            Some(_) => Err(self.err(ScanErrorKind::MismatchedClose)),
            None => Err(self.err(ScanErrorKind::ContentOutsideRoot)),
        }
    }

    fn character_data(&mut self) -> Result<(), ScanError> {
        if self.open.is_empty() {
            return Err(self.err(ScanErrorKind::ContentOutsideRoot));
        }
        let start = self.pos;
        let end = match find_byte(self.rest(), b'<') {
            Some(off) => start + off,
            None => self.input.len(),
        };
        self.pos = end;
        self.validate_entities(start, end)?;
        let span = self.trimmed(start, end);
        if !span.is_empty() {
            self.sink.text(span, false);
            self.events += 1;
        }
        Ok(())
    }

    /// ASCII-trims a byte range into a span. The consumer still applies
    /// the full Unicode `str::trim` after decoding (matching the
    /// parser); this pre-trim only sheds the common whitespace so
    /// whitespace-only runs never become events.
    fn trimmed(&self, mut start: usize, mut end: usize) -> Span {
        while start < end && matches!(self.input.get(start), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            start += 1;
        }
        while end > start && matches!(self.input.get(end - 1), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            end -= 1;
        }
        Span { start, end }
    }

    /// Validates every `&...;` reference in the range against the
    /// parser's entity grammar, without allocating.
    fn validate_entities(&self, start: usize, end: usize) -> Result<(), ScanError> {
        let mut i = start;
        while i < end {
            let Some(off) = find_byte(self.range(i, end), b'&') else {
                return Ok(());
            };
            let amp = i + off;
            let Some(semi_off) = find_byte(self.range(amp + 1, end), b';') else {
                return Err(ScanError {
                    kind: ScanErrorKind::InvalidEntity,
                    offset: amp,
                });
            };
            let semi = amp + 1 + semi_off;
            let entity = self.text.get(amp + 1..semi).unwrap_or("");
            if resolve_entity(entity).is_none() {
                return Err(ScanError {
                    kind: ScanErrorKind::InvalidEntity,
                    offset: amp,
                });
            }
            i = semi + 1;
        }
        Ok(())
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b':' || b >= 0x80
}

/// Resolves one entity body (the text between `&` and `;`) to its
/// character: the five predefined names plus `#NN` / `#xNN` references.
/// Exactly the grammar of the reference parser.
fn resolve_entity(entity: &str) -> Option<char> {
    match entity {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            if let Some(hex) = entity
                .strip_prefix("#x")
                .or_else(|| entity.strip_prefix("#X"))
            {
                u32::from_str_radix(hex, 16).ok().and_then(char::from_u32)
            } else if let Some(dec) = entity.strip_prefix('#') {
                dec.parse::<u32>().ok().and_then(char::from_u32)
            } else {
                None
            }
        }
    }
}

/// Decodes the five predefined entities and numeric character
/// references, borrowing when the input contains no `&` at all. This is
/// the streaming counterpart of the parser's `decode_entities`; spans
/// handed out by the scanner are guaranteed to decode cleanly, so the
/// error arm only fires for text that never went through `scan_with`.
pub fn decode_text(raw: &str) -> Result<Cow<'_, str>, ScanError> {
    if !raw.as_bytes().contains(&b'&') {
        return Ok(Cow::Borrowed(raw));
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    loop {
        let Some(amp) = rest.find('&') else {
            out.push_str(rest);
            return Ok(Cow::Owned(out));
        };
        out.push_str(rest.get(..amp).unwrap_or(""));
        rest = rest.get(amp..).unwrap_or("");
        let err = ScanError {
            kind: ScanErrorKind::InvalidEntity,
            offset: raw.len() - rest.len(),
        };
        let Some(semi) = rest.find(';') else {
            return Err(err);
        };
        let Some(ch) = rest.get(1..semi).and_then(resolve_entity) else {
            return Err(err);
        };
        out.push(ch);
        rest = rest.get(semi + 1..).unwrap_or("");
    }
}

/// Zero-copy iterator over the attributes of a scanned start tag.
///
/// Yields `(name, raw_value)` pairs; values are still entity-encoded
/// (decode with [`decode_text`]). The scanner has already validated the
/// region, so the iterator simply stops at anything unparseable.
pub struct AttrIter<'a> {
    input: &'a str,
    pos: usize,
    end: usize,
}

impl<'a> AttrIter<'a> {
    pub fn new(input: &'a str, attrs: Span) -> Self {
        AttrIter {
            input,
            pos: attrs.start.min(input.len()),
            end: attrs.end.min(input.len()),
        }
    }

    fn bytes(&self) -> &'a [u8] {
        self.input.as_bytes().get(self.pos..self.end).unwrap_or(&[])
    }

    fn skip_whitespace(&mut self) {
        while matches!(
            self.input.as_bytes().get(self.pos),
            Some(b' ' | b'\t' | b'\r' | b'\n')
        ) && self.pos < self.end
        {
            self.pos += 1;
        }
    }
}

impl<'a> Iterator for AttrIter<'a> {
    type Item = (&'a str, &'a str);

    fn next(&mut self) -> Option<Self::Item> {
        self.skip_whitespace();
        if self.pos >= self.end {
            return None;
        }
        let nstart = self.pos;
        while self
            .input
            .as_bytes()
            .get(self.pos)
            .is_some_and(|&b| is_name_byte(b))
            && self.pos < self.end
        {
            self.pos += 1;
        }
        if self.pos == nstart {
            return None;
        }
        let name = self.input.get(nstart..self.pos)?;
        self.skip_whitespace();
        if self.input.as_bytes().get(self.pos) != Some(&b'=') {
            return None;
        }
        self.pos += 1;
        self.skip_whitespace();
        let quote = match self.input.as_bytes().get(self.pos) {
            Some(&q @ (b'"' | b'\'')) => q,
            _ => return None,
        };
        self.pos += 1;
        let vstart = self.pos;
        let off = find_byte(self.bytes(), quote)?;
        let value = self.input.get(vstart..vstart + off)?;
        self.pos = vstart + off + 1;
        Some((name, value))
    }
}

/// Streaming Dewey labeller: reproduces the labels
/// [`crate::DocumentBuilder`] would assign, holding only the current
/// root-to-node path and one child counter per open level.
#[derive(Debug, Default)]
pub struct DeweyTracker {
    /// Components of the current open element's label.
    path: Vec<u32>,
    /// Completed-children count per open level.
    counts: Vec<u32>,
}

impl DeweyTracker {
    pub fn new() -> Self {
        Self::default()
    }

    /// Enters an element; returns the components of its Dewey label.
    pub fn start_element(&mut self) -> &[u32] {
        let ordinal = self.counts.last().copied().unwrap_or(0);
        self.path.push(ordinal);
        self.counts.push(0);
        &self.path
    }

    /// Leaves the current element.
    pub fn end_element(&mut self) {
        self.path.pop();
        self.counts.pop();
        if let Some(c) = self.counts.last_mut() {
            *c += 1;
        }
    }

    /// Components of the current open element's label (empty between
    /// the root's close and the next document).
    pub fn current(&self) -> &[u32] {
        &self.path
    }

    /// Current open depth (the root counts as 1).
    pub fn depth(&self) -> usize {
        self.path.len()
    }
}

// ---------------------------------------------------------------------
// SWAR byte search: 8 bytes per step via the zero-byte trick
// (`(w - 0x01..01) & !w & 0x80..80` has a high bit per zero byte).
// ---------------------------------------------------------------------

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

#[inline]
fn splat(b: u8) -> u64 {
    LO * b as u64
}

#[inline]
fn zero_byte_mask(w: u64) -> u64 {
    w.wrapping_sub(LO) & !w & HI
}

/// Index of the first occurrence of `needle`, scanning 8 bytes a step.
pub(crate) fn find_byte(haystack: &[u8], needle: u8) -> Option<usize> {
    let pat = splat(needle);
    let mut i = 0usize;
    let mut chunks = haystack.chunks_exact(8);
    for chunk in &mut chunks {
        if let Ok(arr) = <[u8; 8]>::try_from(chunk) {
            let m = zero_byte_mask(u64::from_le_bytes(arr) ^ pat);
            if m != 0 {
                return Some(i + (m.trailing_zeros() as usize) / 8);
            }
        }
        i += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&b| b == needle)
        .map(|p| i + p)
}

/// Index of the first occurrence of either needle.
pub(crate) fn find_byte2(haystack: &[u8], a: u8, b: u8) -> Option<usize> {
    let pa = splat(a);
    let pb = splat(b);
    let mut i = 0usize;
    let mut chunks = haystack.chunks_exact(8);
    for chunk in &mut chunks {
        if let Ok(arr) = <[u8; 8]>::try_from(chunk) {
            let w = u64::from_le_bytes(arr);
            let m = zero_byte_mask(w ^ pa) | zero_byte_mask(w ^ pb);
            if m != 0 {
                return Some(i + (m.trailing_zeros() as usize) / 8);
            }
        }
        i += 8;
    }
    chunks
        .remainder()
        .iter()
        .position(|&x| x == a || x == b)
        .map(|p| i + p)
}

/// Substring search: SWAR on the first byte, then a tail compare.
fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    let (&first, tail) = needle.split_first()?;
    let mut base = 0usize;
    loop {
        let window = haystack.get(base..)?;
        let at = base + find_byte(window, first)?;
        let rest = haystack.get(at + 1..at + needle.len())?;
        if rest == tail {
            return Some(at);
        }
        base = at + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    /// Collects events as owned strings for assertions.
    #[derive(Default)]
    struct Events {
        log: Vec<String>,
    }

    struct Recorder<'a> {
        input: &'a str,
        events: Events,
    }

    impl ScanSink for Recorder<'_> {
        fn start_tag(&mut self, name: Span, attrs: Span) {
            self.events.log.push(format!(
                "start:{}|{}",
                name.slice(self.input),
                attrs.slice(self.input).trim()
            ));
        }
        fn end_tag(&mut self) {
            self.events.log.push("end".into());
        }
        fn text(&mut self, span: Span, cdata: bool) {
            self.events.log.push(format!(
                "{}:{}",
                if cdata { "cdata" } else { "text" },
                span.slice(self.input)
            ));
        }
    }

    fn events(input: &str) -> Vec<String> {
        let mut rec = Recorder {
            input,
            events: Events::default(),
        };
        scan_with(input, &mut rec).expect("scan");
        rec.events.log
    }

    #[test]
    fn emits_span_events_in_document_order() {
        let ev = events("<bib><author><name>Mike</name><x a=\"1\"/></author></bib>");
        assert_eq!(
            ev,
            [
                "start:bib|",
                "start:author|",
                "start:name|",
                "text:Mike",
                "end",
                "start:x|a=\"1\"",
                "end",
                "end",
                "end",
            ]
        );
    }

    #[test]
    fn text_spans_are_ascii_trimmed_and_raw() {
        let ev = events("<a>\n  x &amp; y  \n</a>");
        assert_eq!(ev, ["start:a|", "text:x &amp; y", "end"]);
    }

    #[test]
    fn cdata_spans_are_verbatim() {
        let ev = events("<a><![CDATA[ raw <tags> & stuff ]]></a>");
        assert_eq!(ev, ["start:a|", "cdata:raw <tags> & stuff", "end"]);
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let ev = events("<a>\n  <b/>\n</a>");
        assert_eq!(ev, ["start:a|", "start:b|", "end", "end"]);
    }

    #[test]
    fn markup_skips_match_parser() {
        let ev = events(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE bib [<!ELEMENT bib ANY>]>\n<!-- c -->\n<bib><?pi data?><x/></bib>",
        );
        assert_eq!(ev, ["start:bib|", "start:x|", "end", "end"]);
    }

    #[test]
    fn acceptance_parity_with_parser() {
        let cases = [
            "<a/>",
            "<a></a>",
            "<a x=\"1\" y='two &amp; three'/>",
            "<a>x &lt; y &#65;&#x42;</a>",
            "<livre><títul>café über</títul></livre>",
            "<a><![CDATA[x]]></a>",
            "<a>&nope;</a>",
            "<a x=\"1\" x=\"2\"/>",
            "<a><b></a>",
            "<a><b>",
            "",
            "   \n  ",
            "<!-- only a comment -->",
            "<a/><b/>",
            "<a/>junk",
            "<a b=\"un<closed\"/>",
            "<a b=unquoted/>",
            "<a b=\"x",
            "<a 1bad=\"x\"/>",
            "<a>&#xZZ;</a>",
            "<a>&#;</a>",
            "<a>& loose</a>",
            "<a><!-- unterminated",
            "<a><![CDATA[ unterminated",
            "<?pi unterminated",
            "<!DOCTYPE unterminated",
            "<a / >",
            "<a></a  >",
            "junk<a/>",
            "<a attr  =  'v'  ></a>",
        ];
        for case in cases {
            let dom = parse_document(case);
            let scan = check_document(case);
            assert_eq!(
                dom.is_ok(),
                scan.is_ok(),
                "acceptance diverges on {case:?}: dom={dom:?} scan={scan:?}"
            );
        }
    }

    #[test]
    fn error_kinds_mirror_parser_kinds() {
        use ScanErrorKind::*;
        for (input, kind) in [
            ("", EmptyDocument),
            ("<a><b>", UnexpectedEof),
            ("<a><b></a>", MismatchedClose),
            ("<a/><b/>", ContentOutsideRoot),
            ("<a>&nope;</a>", InvalidEntity),
            ("<a x=\"1\" x=\"2\"/>", DuplicateAttribute),
            ("<a b=unquoted/>", InvalidAttribute),
            ("<a b=\"un<closed\"/>", BareLt),
            ("<a b=\"x", UnexpectedEof),
            ("<a><!-- nope", UnterminatedComment),
        ] {
            let err = check_document(input).expect_err("must fail");
            assert_eq!(err.kind, kind, "on {input:?}");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "<a>".repeat(MAX_SCAN_DEPTH + 1);
        let err = check_document(&deep).expect_err("too deep");
        assert_eq!(err.kind, ScanErrorKind::DepthLimitExceeded);
        let ok = format!("{}{}", "<a>".repeat(100), "</a>".repeat(100));
        assert!(check_document(&ok).is_ok());
    }

    #[test]
    fn dewey_tracker_matches_document_builder() {
        let input = "<bib><author><name>x</name><y/></author><author/></bib>";
        struct Tracked<'a> {
            tracker: DeweyTracker,
            labels: Vec<Vec<u32>>,
            _input: &'a str,
        }
        impl ScanSink for Tracked<'_> {
            fn start_tag(&mut self, _n: Span, _a: Span) {
                let label = self.tracker.start_element().to_vec();
                self.labels.push(label);
            }
            fn end_tag(&mut self) {
                self.tracker.end_element();
            }
            fn text(&mut self, _s: Span, _c: bool) {}
        }
        let mut sink = Tracked {
            tracker: DeweyTracker::new(),
            labels: Vec::new(),
            _input: input,
        };
        scan_with(input, &mut sink).expect("scan");
        let doc = parse_document(input).expect("parse");
        let expected: Vec<Vec<u32>> = doc
            .nodes()
            .map(|(_, n)| n.dewey.components().to_vec())
            .collect();
        assert_eq!(sink.labels, expected);
    }

    #[test]
    fn attr_iter_walks_scanned_region() {
        let input = "<a x=\"1\"  y = 'two &amp; three' z=\"\"/>";
        struct Grab {
            attrs: Option<Span>,
        }
        impl ScanSink for Grab {
            fn start_tag(&mut self, _n: Span, a: Span) {
                self.attrs = Some(a);
            }
            fn end_tag(&mut self) {}
            fn text(&mut self, _s: Span, _c: bool) {}
        }
        let mut g = Grab { attrs: None };
        scan_with(input, &mut g).expect("scan");
        let pairs: Vec<(String, String)> = AttrIter::new(input, g.attrs.expect("attrs"))
            .map(|(n, v)| (n.to_string(), decode_text(v).expect("decodes").into_owned()))
            .collect();
        assert_eq!(
            pairs,
            [
                ("x".into(), "1".into()),
                ("y".into(), "two & three".into()),
                ("z".into(), String::new()),
            ]
        );
    }

    #[test]
    fn decode_text_borrows_when_clean() {
        assert!(matches!(
            decode_text("plain text").expect("ok"),
            Cow::Borrowed(_)
        ));
        assert_eq!(decode_text("x &lt; &#65;&#x42;").expect("ok"), "x < AB");
        assert!(decode_text("&bogus;").is_err());
        assert!(decode_text("& alone").is_err());
    }

    #[test]
    fn swar_search_agrees_with_naive() {
        let hay = b"abcdefghij<klmno&pqrstuvwxyz<0123456789";
        for needle in [b'<', b'&', b'z', b'a', b'!'] {
            assert_eq!(
                find_byte(hay, needle),
                hay.iter().position(|&b| b == needle),
                "needle {}",
                needle as char
            );
        }
        assert_eq!(
            find_byte2(hay, b'&', b'<'),
            hay.iter().position(|&b| b == b'&' || b == b'<')
        );
        for (h, n, want) in [
            (&b"aa-->bb"[..], &b"-->"[..], Some(2)),
            (b"-- ->-->", b"-->", Some(5)),
            (b"no terminator", b"]]>", None),
            (b"--", b"-->", None),
        ] {
            assert_eq!(find_sub(h, n), want, "{h:?}");
        }
    }

    #[test]
    fn scan_stats_count_bytes_and_events() {
        let input = "<a><b>hi</b></a>";
        let stats = check_document(input).expect("ok");
        assert_eq!(stats.bytes, input.len() as u64);
        // start a, start b, text, end b, end a
        assert_eq!(stats.events, 5);
    }
}

//! `datagen` — synthetic corpora and query workloads (the DESIGN.md
//! substitutions for DBLP, Baseball, and the demo query log).
//!
//! * [`zipf`]: seeded Zipf sampler (keyword-frequency skew);
//! * [`vocab`]: bibliographic/baseball term pools;
//! * [`dblp`]: scale-parameterised DBLP-like generator;
//! * [`emit`]: the [`XmlSink`] event interface plus the streaming
//!   [`XmlStreamWriter`] — generators emit DBLP-scale corpora straight
//!   to disk, byte-identical to `Document::to_xml`;
//! * [`baseball`]: the shallower Baseball generator;
//! * [`workload`]: valid queries perturbed by the inverse of each
//!   refinement operation, with ground truth by construction;
//! * [`deweygen`]: seeded random Dewey-label corpora for the SLCA
//!   differential-oracle tests.

pub mod baseball;
pub mod dblp;
pub mod deweygen;
pub mod emit;
pub mod vocab;
pub mod workload;
pub mod zipf;

pub use baseball::{generate_baseball, BaseballConfig};
pub use dblp::{emit_dblp, generate_dblp, write_dblp_xml, DblpConfig};
pub use deweygen::{random_dewey_corpus, DeweyCorpusConfig};
pub use emit::{BuilderSink, XmlSink, XmlStreamWriter};
pub use workload::{generate_workload, PerturbKind, WorkloadConfig, WorkloadQuery};
pub use zipf::Zipf;

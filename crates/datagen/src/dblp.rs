//! Synthetic DBLP-like bibliography generator.
//!
//! Reproduces the structural properties the paper's experiments depend
//! on: a shallow, wide `bib/author/...` tree whose partitions are author
//! subtrees, heterogeneous publication containers (`publications` vs
//! `proceedings`), Zipf-skewed title vocabulary, and years/venues as
//! separate leaf elements. Scale is a single knob (`authors`) so the
//! Figure 6 data-size sweep is a loop over fractions of it.

use crate::emit::{BuilderSink, XmlSink, XmlStreamWriter};
use crate::vocab;
use crate::zipf::Zipf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use xmldom::Document;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct DblpConfig {
    /// Number of author subtrees (document partitions).
    pub authors: usize,
    /// Publications per author, inclusive range.
    pub pubs_min: usize,
    pub pubs_max: usize,
    /// Title length range (words).
    pub title_min: usize,
    pub title_max: usize,
    /// Zipf exponent for title terms.
    pub zipf_s: f64,
    /// RNG seed (all output is deterministic under it).
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        DblpConfig {
            authors: 200,
            pubs_min: 1,
            pubs_max: 8,
            title_min: 3,
            title_max: 7,
            zipf_s: 1.05,
            seed: 0xD8B1,
        }
    }
}

impl DblpConfig {
    /// A copy scaled to `fraction` of the authors (Figure 6's 20%–100%).
    pub fn scaled(&self, fraction: f64) -> Self {
        let mut c = self.clone();
        c.authors = ((self.authors as f64) * fraction).round().max(1.0) as usize;
        c
    }
}

/// Emits the bibliography into any [`XmlSink`]. The event stream (and
/// the RNG consumption driving it) is identical whichever sink backs
/// it, so in-memory and streamed-to-disk corpora agree byte for byte.
pub fn emit_dblp<S: XmlSink>(config: &DblpConfig, b: &mut S) -> io::Result<()> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(vocab::TITLE_TERMS.len(), config.zipf_s);
    b.open_element("bib")?;

    for a in 0..config.authors {
        b.open_element("author")?;
        let first = vocab::FIRST_NAMES[rng.random_range(0..vocab::FIRST_NAMES.len())];
        let last = vocab::LAST_NAMES[rng.random_range(0..vocab::LAST_NAMES.len())];
        b.leaf("name", &format!("{first} {last}"))?;
        if rng.random_bool(0.4) {
            let interest = vocab::INTERESTS[rng.random_range(0..vocab::INTERESTS.len())];
            b.leaf("interest", interest)?;
        }
        // Heterogeneous container tag, as in Figure 1 / Example 1.
        let container = if a % 7 == 3 {
            "proceedings"
        } else {
            "publications"
        };
        b.open_element(container)?;
        let n_pubs = rng.random_range(config.pubs_min..=config.pubs_max);
        for _ in 0..n_pubs {
            let is_article = rng.random_bool(0.3);
            b.open_element(if is_article {
                "article"
            } else {
                "inproceedings"
            })?;
            let len = rng.random_range(config.title_min..=config.title_max);
            let mut title = String::new();
            for w in 0..len {
                if w > 0 {
                    title.push(' ');
                }
                title.push_str(vocab::TITLE_TERMS[zipf.sample(&mut rng)]);
            }
            b.leaf("title", &title)?;
            b.leaf("year", &format!("{}", rng.random_range(1995..=2008)))?;
            if is_article {
                let j = vocab::JOURNALS[rng.random_range(0..vocab::JOURNALS.len())];
                b.leaf("journal", j)?;
            } else {
                let v = vocab::VENUES[rng.random_range(0..vocab::VENUES.len())];
                b.leaf("booktitle", v)?;
            }
            if rng.random_bool(0.2) {
                b.leaf(
                    "pages",
                    &format!(
                        "{}-{}",
                        rng.random_range(1..400),
                        rng.random_range(400..800)
                    ),
                )?;
            }
            b.close_element()?;
        }
        b.close_element()?; // container
        if rng.random_bool(0.15) {
            b.leaf(
                "hobby",
                ["fishing", "chess", "hiking", "painting"][rng.random_range(0..4)],
            )?;
        }
        b.close_element()?; // author
    }

    b.close_element()
}

/// Generates the document in memory (the classic API).
pub fn generate_dblp(config: &DblpConfig) -> Document {
    let mut sink = BuilderSink::new();
    emit_dblp(config, &mut sink).expect("builder sink never fails");
    sink.finish()
}

/// Streams the corpus as rendered XML to a writer without materialising
/// the document — byte-identical to `generate_dblp(config).to_xml()`,
/// at memory cost of the open-element stack. Wrap `w` in a
/// `BufWriter` for file output.
pub fn write_dblp_xml<W: io::Write>(config: &DblpConfig, w: W) -> io::Result<W> {
    let mut sink = XmlStreamWriter::new(w);
    emit_dblp(config, &mut sink)?;
    sink.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::tokenize;

    #[test]
    fn deterministic_under_seed() {
        let c = DblpConfig {
            authors: 20,
            ..Default::default()
        };
        let a = generate_dblp(&c);
        let b = generate_dblp(&c);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.to_xml(), b.to_xml());
    }

    #[test]
    fn structure_is_bibliographic() {
        let doc = generate_dblp(&DblpConfig {
            authors: 30,
            ..Default::default()
        });
        let root = doc.root();
        assert_eq!(doc.tag_name(root), "bib");
        assert_eq!(doc.node(root).children.len(), 30);
        // every partition is an author
        for &c in &doc.node(root).children {
            assert_eq!(doc.tag_name(c), "author");
        }
        // heterogeneous containers exist
        let tags: std::collections::HashSet<&str> =
            doc.nodes().map(|(id, _)| doc.tag_name(id)).collect();
        assert!(tags.contains("publications"));
        assert!(tags.contains("proceedings"));
        assert!(tags.contains("inproceedings"));
        assert!(tags.contains("title"));
    }

    #[test]
    fn scaled_config_shrinks_authors() {
        let c = DblpConfig {
            authors: 100,
            ..Default::default()
        };
        assert_eq!(c.scaled(0.2).authors, 20);
        assert_eq!(c.scaled(1.0).authors, 100);
        assert_eq!(c.scaled(0.001).authors, 1); // never zero
    }

    #[test]
    fn titles_are_zipf_skewed() {
        let doc = generate_dblp(&DblpConfig {
            authors: 300,
            ..Default::default()
        });
        let mut counts = std::collections::HashMap::new();
        for (_, n) in doc.nodes() {
            for t in tokenize(&n.text) {
                *counts.entry(t).or_insert(0usize) += 1;
            }
        }
        // the head term must dwarf a mid-rank term
        let head = counts.get("data").copied().unwrap_or(0);
        let mid = counts.get("neighbor").copied().unwrap_or(0);
        assert!(head > mid.max(1) * 3, "head={head} mid={mid}");
    }

    #[test]
    fn streamed_xml_is_byte_identical_to_dom_render() {
        let c = DblpConfig {
            authors: 40,
            ..Default::default()
        };
        let streamed = write_dblp_xml(&c, Vec::new()).expect("stream");
        assert_eq!(
            String::from_utf8(streamed).unwrap(),
            generate_dblp(&c).to_xml()
        );
    }

    #[test]
    fn parses_back_from_rendered_xml() {
        let doc = generate_dblp(&DblpConfig {
            authors: 5,
            ..Default::default()
        });
        let xml = doc.to_xml();
        let doc2 = xmldom::parse_document(&xml).unwrap();
        assert_eq!(doc.len(), doc2.len());
    }
}

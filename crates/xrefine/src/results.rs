//! Output types of the refinement algorithms, and the structured failure
//! report of the serving path.

use crate::query::RqCandidate;
use std::fmt;
use xmldom::Dewey;

/// A keyword the engine dropped or de-weighted because its on-disk state
/// is damaged: the answer was still produced, from the remaining
/// keywords and statistics, and this records what was ignored.
#[derive(Debug, Clone)]
pub struct DegradedKeyword {
    pub keyword: String,
    /// What is damaged (posting list frame, statistics entry, …).
    pub reason: String,
}

/// A query the engine could not answer, attributed to the keyword whose
/// storage failed when the failure is attributable at all.
///
/// The split with [`DegradedKeyword`] is the degradation policy: damage
/// to an *original* query keyword's posting list changes what the query
/// means, so it fails the query (this type); damage to a rule-*generated*
/// keyword or to ranking statistics only narrows the refinement space,
/// so the query proceeds and reports the degradation.
#[derive(Debug)]
pub struct QueryFailure {
    /// The query keyword whose list could not be served, when the
    /// failure is attributable to one keyword (`None` for session-level
    /// failures such as an unreadable store).
    pub keyword: Option<String>,
    pub error: kvstore::KvError,
}

impl fmt::Display for QueryFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.keyword {
            Some(kw) => write!(f, "query keyword {kw:?} cannot be served: {}", self.error),
            None => write!(f, "query cannot be served: {}", self.error),
        }
    }
}

impl std::error::Error for QueryFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<kvstore::KvError> for QueryFailure {
    fn from(error: kvstore::KvError) -> Self {
        QueryFailure {
            keyword: None,
            error,
        }
    }
}

impl From<QueryFailure> for kvstore::KvError {
    fn from(f: QueryFailure) -> Self {
        match (f.keyword, f.error) {
            (Some(kw), kvstore::KvError::Corrupt { page, context }) => kvstore::KvError::Corrupt {
                page,
                context: format!("keyword {kw:?}: {context}"),
            },
            (_, e) => e,
        }
    }
}

/// One refined query with its score and matching results.
#[derive(Debug, Clone)]
pub struct Refinement {
    pub candidate: RqCandidate,
    /// `Rank(RQ)` under the full ranking model (Formula 10); `0.0` when
    /// the algorithm ranks by dissimilarity only (stack-refine).
    pub rank_score: f64,
    /// Meaningful SLCA results, in document order.
    pub slcas: Vec<Dewey>,
}

/// The outcome of processing one query.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    /// True when the original query itself had meaningful results (its
    /// zero-dissimilarity candidate won): no refinement was necessary
    /// (Definition 3.4).
    pub original_ok: bool,
    /// Ranked refinements (best first). When `original_ok`, the first
    /// entry is the original query with its results.
    pub refinements: Vec<Refinement>,
    /// Sequential posting advances consumed (one-scan verification).
    pub advances: u64,
    /// Random accesses into the lists (SLE's probes).
    pub random_accesses: u64,
    /// Keywords dropped or de-weighted because their on-disk state is
    /// damaged (empty on a healthy store). Filled by the engine from the
    /// session; the algorithms themselves never degrade.
    pub degraded: Vec<DegradedKeyword>,
}

impl RefineOutcome {
    /// The best refinement, if any.
    pub fn best(&self) -> Option<&Refinement> {
        self.refinements.first()
    }

    /// Convenience: does the outcome propose an actual change to the
    /// query?
    pub fn needs_refinement(&self) -> bool {
        !self.original_ok
    }

    /// True when some keyword's damaged storage narrowed this answer.
    pub fn is_degraded(&self) -> bool {
        !self.degraded.is_empty()
    }
}

//! String interning for tag names and node types (prefix paths).
//!
//! Both the document tree and every statistics table key off tag names and
//! node types, so we intern them once per document: a [`SymbolTable`] maps
//! tag strings to dense [`Symbol`] ids, and a [`NodeTypeTable`] maps prefix
//! paths (sequences of symbols, Definition 3.1 of the paper) to dense
//! [`NodeTypeId`]s.

use std::collections::HashMap;

/// Dense id of an interned tag name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

/// Dense id of an interned node type (root-to-node prefix path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeTypeId(pub u32);

/// Interner for tag names.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    by_name: HashMap<String, Symbol>,
    names: Vec<String>,
}

impl SymbolTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.by_name.get(name) {
            return s;
        }
        let s = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), s);
        s
    }

    /// Looks up a symbol without interning.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Resolves a symbol to its string. Panics on a foreign symbol.
    pub fn resolve(&self, s: Symbol) -> &str {
        &self.names[s.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A node type: the tag-name path from the document root down to a node
/// (Definition 3.1). Two nodes share a type iff they share this path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeTypePath(pub Vec<Symbol>);

/// Interner and metadata store for node types.
#[derive(Debug, Default, Clone)]
pub struct NodeTypeTable {
    by_path: HashMap<NodeTypePath, NodeTypeId>,
    paths: Vec<NodeTypePath>,
}

impl NodeTypeTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a prefix path.
    pub fn intern(&mut self, path: &[Symbol]) -> NodeTypeId {
        let key = NodeTypePath(path.to_vec());
        if let Some(&id) = self.by_path.get(&key) {
            return id;
        }
        let id = NodeTypeId(self.paths.len() as u32);
        self.paths.push(key.clone());
        self.by_path.insert(key, id);
        id
    }

    pub fn get(&self, path: &[Symbol]) -> Option<NodeTypeId> {
        self.by_path.get(&NodeTypePath(path.to_vec())).copied()
    }

    /// The full prefix path of a node type.
    pub fn path(&self, id: NodeTypeId) -> &[Symbol] {
        &self.paths[id.0 as usize].0
    }

    /// The tag name (last path component) of a node type.
    pub fn tag(&self, id: NodeTypeId) -> Symbol {
        *self.paths[id.0 as usize]
            .0
            .last()
            .expect("node type paths are never empty")
    }

    /// Depth of nodes of this type; the root type has depth 0.
    pub fn depth(&self, id: NodeTypeId) -> usize {
        self.paths[id.0 as usize].0.len() - 1
    }

    /// True if `descendant` is a proper descendant type of `ancestor`
    /// (i.e. `ancestor`'s path is a proper prefix of `descendant`'s).
    pub fn is_descendant_type(&self, descendant: NodeTypeId, ancestor: NodeTypeId) -> bool {
        let a = self.path(ancestor);
        let d = self.path(descendant);
        d.len() > a.len() && d[..a.len()] == *a
    }

    /// Iterate all interned node types.
    pub fn iter(&self) -> impl Iterator<Item = NodeTypeId> + '_ {
        (0..self.paths.len() as u32).map(NodeTypeId)
    }

    pub fn len(&self) -> usize {
        self.paths.len()
    }

    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Renders a node type as `a/b/c` for diagnostics.
    pub fn display(&self, id: NodeTypeId, symbols: &SymbolTable) -> String {
        self.path(id)
            .iter()
            .map(|&s| symbols.resolve(s))
            .collect::<Vec<_>>()
            .join("/")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("bib");
        let b = t.intern("author");
        let a2 = t.intern("bib");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "bib");
        assert_eq!(t.resolve(b), "author");
        assert_eq!(t.get("bib"), Some(a));
        assert_eq!(t.get("nope"), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn node_type_interning_and_metadata() {
        let mut syms = SymbolTable::new();
        let bib = syms.intern("bib");
        let author = syms.intern("author");
        let name = syms.intern("name");

        let mut types = NodeTypeTable::new();
        let t_root = types.intern(&[bib]);
        let t_author = types.intern(&[bib, author]);
        let t_name = types.intern(&[bib, author, name]);
        assert_eq!(types.intern(&[bib, author]), t_author);

        assert_eq!(types.depth(t_root), 0);
        assert_eq!(types.depth(t_name), 2);
        assert_eq!(types.tag(t_author), author);
        assert!(types.is_descendant_type(t_name, t_author));
        assert!(types.is_descendant_type(t_name, t_root));
        assert!(!types.is_descendant_type(t_author, t_name));
        assert!(!types.is_descendant_type(t_author, t_author));
        assert_eq!(types.display(t_name, &syms), "bib/author/name");
        assert_eq!(types.len(), 3);
    }

    #[test]
    fn same_tag_different_paths_are_distinct_types() {
        let mut syms = SymbolTable::new();
        let a = syms.intern("a");
        let b = syms.intern("b");
        let title = syms.intern("title");
        let mut types = NodeTypeTable::new();
        let t1 = types.intern(&[a, title]);
        let t2 = types.intern(&[b, title]);
        assert_ne!(t1, t2);
        assert_eq!(types.tag(t1), types.tag(t2));
    }
}

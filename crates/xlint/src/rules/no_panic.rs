//! `no-panic-paths`: panicking constructs are forbidden in storage and
//! decode paths. A corrupt page, a truncated WAL, or a bit-flipped
//! postings frame must surface as `KvError::Corrupt`, never as a panic
//! that takes the whole engine down mid-recovery.
//!
//! Detected constructs:
//!
//! * `.unwrap()` / `.unwrap_err()` / `.expect(..)` / `.expect_err(..)`
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!`
//! * hard `assert!` / `assert_eq!` / `assert_ne!` (the `debug_assert*`
//!   family is exempt: it compiles out of release builds)
//! * data-dependent `[]` indexing, but only in decode-path files
//!   (`index_paths`): an index that came off disk must be bounds-checked
//!   with `.get()`. Structurally constant indices (integer literals,
//!   `UPPER_CASE` consts, and range punctuation) are allowed.

use crate::config::Config;
use crate::diag::Finding;
use crate::lexer::TokenKind;
use crate::source::SourceFile;

pub const RULE: &str = "no-panic-paths";

const PANIC_METHODS: &[&str] = &["unwrap", "unwrap_err", "expect", "expect_err"];
/// Keywords after which a `[` opens an array literal, not an index.
const KEYWORDS: &[&str] = &[
    "in", "return", "break", "else", "match", "if", "while", "loop", "move", "ref", "mut", "as",
];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

pub fn check(file: &SourceFile, config: &Config, out: &mut Vec<Finding>) {
    let scoped = Config::in_scope(&file.path, &config.no_panic_paths);
    let indexed = Config::in_scope(&file.path, &config.index_paths);
    if !scoped && !indexed {
        return;
    }
    let toks = file.code_tokens();
    for i in 0..toks.len() {
        let t = toks[i];
        if file.is_test_line(t.line) {
            continue;
        }
        if scoped {
            // `.unwrap()` and friends
            if t.is_punct('.') && i + 2 < toks.len() && toks[i + 2].is_punct('(') {
                let m = &toks[i + 1];
                if let TokenKind::Ident = m.kind {
                    if PANIC_METHODS.contains(&m.text.as_str()) {
                        super::emit(
                            out,
                            file,
                            RULE,
                            m.line,
                            m.col,
                            format!("`.{}()` can panic on a storage/decode path", m.text),
                            "return `KvError::Corrupt` with context instead".into(),
                        );
                    }
                }
            }
            // `panic!(..)` and friends
            if matches!(t.kind, TokenKind::Ident)
                && PANIC_MACROS.contains(&t.text.as_str())
                && i + 1 < toks.len()
                && toks[i + 1].is_punct('!')
            {
                super::emit(
                    out,
                    file,
                    RULE,
                    t.line,
                    t.col,
                    format!("`{}!` can panic on a storage/decode path", t.text),
                    "return `KvError::Corrupt` (or use `debug_assert!` for invariants)".into(),
                );
            }
        }
        if indexed && t.is_punct('[') && i > 0 {
            let prev = toks[i - 1];
            // A keyword before `[` means an array literal (`in [..]`,
            // `return [..]`), not an index expression.
            let is_index_expr = (matches!(prev.kind, TokenKind::Ident)
                && !KEYWORDS.contains(&prev.text.as_str()))
                || prev.is_punct(')')
                || prev.is_punct(']');
            // `vec![..]`-style macro bodies have `!` before `[`; `#[..]`
            // attributes have `#`. Neither matches above.
            if is_index_expr && !index_is_constant(&toks, i) {
                super::emit(
                    out,
                    file,
                    RULE,
                    t.line,
                    t.col,
                    "data-dependent `[]` indexing on a decode path".into(),
                    "use `.get(..)` and map a miss to `KvError::Corrupt`".into(),
                );
            }
        }
    }
}

/// Is every token between `toks[open]` (a `[`) and its matching `]`
/// structurally constant? Allowed: integer/float literals, `UPPER_CASE`
/// identifiers (consts), and the punctuation of ranges and constant
/// arithmetic (`.` `+` `-` `=` `*` `/`).
fn index_is_constant(toks: &[&crate::lexer::Token], open: usize) -> bool {
    let mut depth = 0usize;
    for t in &toks[open..] {
        if t.is_punct('[') {
            depth += 1;
            continue;
        }
        if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return true;
            }
            continue;
        }
        let ok = match &t.kind {
            TokenKind::Number => true,
            TokenKind::Ident => is_const_ident(&t.text),
            TokenKind::Punct(c) => matches!(c, '.' | '+' | '-' | '=' | '*' | '/'),
            _ => false,
        };
        if !ok {
            return false;
        }
    }
    true // unterminated bracket: the lexer ran off the file; don't flag
}

fn is_const_ident(s: &str) -> bool {
    s.chars()
        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && s.chars().any(|c| c.is_ascii_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::FileKind;

    fn findings(src: &str) -> Vec<(usize, String)> {
        let file = SourceFile::parse("crates/kvstore/src/wal.rs", src, FileKind::Production);
        let config = Config::workspace_defaults();
        let mut out = Vec::new();
        check(&file, &config, &mut out);
        out.into_iter().map(|f| (f.line, f.message)).collect()
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let fs = findings(
            "fn f() {\n\
             let a = x.unwrap();\n\
             let b = y.expect(\"msg\");\n\
             panic!(\"boom\");\n\
             unreachable!();\n\
             assert!(a > b);\n\
             }\n",
        );
        assert_eq!(fs.len(), 5, "{fs:?}");
    }

    #[test]
    fn debug_assert_and_strings_are_exempt() {
        let fs = findings(
            "fn f() {\n\
             debug_assert!(a > b);\n\
             debug_assert_eq!(a, b);\n\
             let s = \"x.unwrap() panic!\";\n\
             // x.unwrap() in a comment\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let fs = findings(
            "fn f() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
             fn t() { x.unwrap(); buf[i]; }\n\
             }\n",
        );
        assert!(fs.is_empty(), "{fs:?}");
    }

    #[test]
    fn indexing_flags_variables_but_not_constants() {
        let fs = findings(
            "fn f() {\n\
             let a = buf[pos];\n\
             let b = buf[..PAGE_SIZE];\n\
             let c = buf[0];\n\
             let d = buf[HDR + 4..HDR + 8];\n\
             let e = buf[pos..pos + len];\n\
             let f = vec![0u8; n];\n\
             for name in [a, b] { g(name); }\n\
             }\n",
        );
        assert_eq!(
            fs.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            vec![2, 6],
            "{fs:?}"
        );
    }

    #[test]
    fn suppression_pragma_with_justification_works() {
        let fs = findings(
            "fn f() {\n\
             // xlint::allow(no-panic-paths): index proven in-bounds by the loop guard\n\
             let a = buf[pos];\n\
             let b = buf[pos2];\n\
             }\n",
        );
        assert_eq!(fs.iter().map(|(l, _)| *l).collect::<Vec<_>>(), vec![4]);
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let file = SourceFile::parse(
            "crates/slca/src/lib.rs",
            "fn f() { x.unwrap(); }\n",
            FileKind::Production,
        );
        let mut out = Vec::new();
        check(&file, &Config::workspace_defaults(), &mut out);
        assert!(out.is_empty());
    }
}

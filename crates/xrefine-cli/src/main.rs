//! XRefine — the interactive keyword-search prototype of the paper.
//!
//! ```text
//! xrefine-cli [--data <file.xml>|dblp|baseball|figure1] \
//!             [--algorithm partition|sle|stack] [--k N]
//! xrefine-cli index <file.xml>|dblp|baseball|figure1 <store.db>
//! xrefine-cli query --store <store.db> [--algorithm ...] [--k N]
//! ```
//!
//! The flag-only form parses and indexes the document in memory, then
//! reads keyword queries from stdin (one per line). `index` persists the
//! built index into a kvstore file; `query --store` serves the same REPL
//! straight from that file — the document is replayed from the embedded
//! blob and posting lists are decoded lazily, per query.

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;
use xrefine::{Algorithm, EngineConfig, XRefineEngine};

const USAGE: &str = "usage: xrefine-cli [--data <file.xml>|dblp|baseball|figure1] \
[--algorithm partition|sle|stack] [--k N]\n       \
xrefine-cli index <file.xml>|dblp|baseball|figure1 <store.db>\n       \
xrefine-cli query --store <store.db> [--algorithm partition|sle|stack] [--k N]";

enum Command {
    /// Build an index for a document and persist it to a kvstore file.
    Index { data: String, store: String },
    /// Serve queries, either from a document spec or a persisted store.
    Repl(Options),
}

struct Options {
    data: String,
    store: Option<String>,
    algorithm: Algorithm,
    k: usize,
    max_render: usize,
}

fn parse_args() -> Result<Command, String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(|s| s.as_str()) == Some("index") {
        if args.len() != 3 {
            return Err(USAGE.into());
        }
        return Ok(Command::Index {
            data: args.remove(1),
            store: args.remove(1),
        });
    }
    let flags_at = usize::from(args.first().map(|s| s.as_str()) == Some("query"));
    let mut opts = Options {
        data: "figure1".to_string(),
        store: None,
        algorithm: Algorithm::Partition,
        k: 3,
        max_render: 2,
    };
    let mut i = flags_at;
    while i < args.len() {
        match args[i].as_str() {
            "--data" => {
                opts.data = args.get(i + 1).ok_or("--data needs a value")?.clone();
                i += 2;
            }
            "--store" => {
                opts.store = Some(args.get(i + 1).ok_or("--store needs a path")?.clone());
                i += 2;
            }
            "--algorithm" => {
                opts.algorithm = match args.get(i + 1).map(|s| s.as_str()) {
                    Some("partition") => Algorithm::Partition,
                    Some("sle") => Algorithm::ShortListEager,
                    Some("stack") => Algorithm::StackRefine,
                    other => return Err(format!("unknown algorithm {other:?}")),
                };
                i += 2;
            }
            "--k" => {
                opts.k = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--k needs a positive integer")?;
                i += 2;
            }
            "--max-render" => {
                opts.max_render = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--max-render needs an integer")?;
                i += 2;
            }
            "--help" | "-h" => {
                return Err(USAGE.into());
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Command::Repl(opts))
}

fn load_document(spec: &str) -> Result<Arc<xmldom::Document>, String> {
    match spec {
        "figure1" => Ok(Arc::new(xmldom::fixtures::figure1())),
        "dblp" => Ok(Arc::new(datagen::generate_dblp(&datagen::DblpConfig {
            authors: 500,
            ..Default::default()
        }))),
        "baseball" => Ok(Arc::new(datagen::generate_baseball(
            &datagen::BaseballConfig::default(),
        ))),
        path => {
            let xml =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Ok(Arc::new(
                xmldom::parse_document(&xml).map_err(|e| format!("parse error: {e}"))?,
            ))
        }
    }
}

/// `xrefine-cli index <data> <db>`: build and persist.
fn build_store(data: &str, store_path: &str) -> Result<(), String> {
    let doc = load_document(data)?;
    let index = invindex::Index::build(Arc::clone(&doc));
    let mut store = kvstore::DiskKv::open(std::path::Path::new(store_path))
        .map_err(|e| format!("cannot open store {store_path}: {e}"))?;
    invindex::persist::persist(&index, &mut store)
        .map_err(|e| format!("cannot persist index: {e}"))?;
    eprintln!(
        "indexed {} elements ({} keywords) from '{}' into {}",
        doc.len(),
        index.vocabulary().len(),
        data,
        store_path
    );
    Ok(())
}

fn build_engine(opts: &Options) -> Result<XRefineEngine, String> {
    let config = EngineConfig {
        algorithm: opts.algorithm,
        k: opts.k,
        ..Default::default()
    };
    match &opts.store {
        Some(path) => {
            let engine = XRefineEngine::from_store(std::path::Path::new(path), config)
                .map_err(|e| format!("cannot open store {path}: {e}"))?;
            eprintln!(
                "opened persisted index {} ({} elements, {:?}, Top-{})",
                path,
                engine.document().len(),
                opts.algorithm,
                opts.k
            );
            Ok(engine)
        }
        None => {
            let doc = load_document(&opts.data)?;
            eprintln!(
                "indexed {} elements from '{}' ({:?}, Top-{})",
                doc.len(),
                opts.data,
                opts.algorithm,
                opts.k
            );
            Ok(XRefineEngine::from_document(doc, config))
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Command::Index { data, store }) => {
            return match build_store(&data, &store) {
                Ok(()) => ExitCode::SUCCESS,
                Err(msg) => {
                    eprintln!("{msg}");
                    ExitCode::FAILURE
                }
            };
        }
        Ok(Command::Repl(o)) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let engine = match build_engine(&opts) {
        Ok(e) => e,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    eprint!("query> ");
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            eprint!("query> ");
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        let outcome = match engine.answer(line) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("storage error: {e}");
                eprint!("query> ");
                continue;
            }
        };
        if outcome.original_ok {
            let r = outcome.best().expect("original result present");
            let _ = writeln!(
                out,
                "query has {} meaningful result(s); no refinement needed",
                r.slcas.len()
            );
            render(&engine, &r.slcas, opts.max_render, &mut out);
            // over-broad queries get narrowing suggestions (§IX extension)
            if let Ok(Some(suggestions)) = engine.narrow(line, &xrefine::NarrowOptions::default()) {
                if !suggestions.is_empty() {
                    let _ = writeln!(out, "result set is large; consider narrowing:");
                    for s in &suggestions {
                        let _ = writeln!(
                            out,
                            "  + \"{}\" -> {} result(s)",
                            s.added,
                            s.refinement.slcas.len()
                        );
                    }
                }
            }
        } else if outcome.refinements.is_empty() {
            let _ = writeln!(out, "no refined query with meaningful results found");
        } else {
            let _ = writeln!(
                out,
                "query needs refinement; Top-{} refined queries:",
                outcome.refinements.len()
            );
            for (rank, r) in outcome.refinements.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  #{} {{{}}}  dSim={}  rank={:.4}  results={}",
                    rank + 1,
                    r.candidate.keywords.join(", "),
                    r.candidate.dissimilarity,
                    r.rank_score,
                    r.slcas.len()
                );
            }
            if let Some((_, steps)) =
                engine.explain(line, &outcome.refinements[0].candidate.keywords)
            {
                let rendered: Vec<String> = steps
                    .iter()
                    .filter(|s| !matches!(s, xrefine::AppliedOp::Kept(_)))
                    .map(|s| s.to_string())
                    .collect();
                if !rendered.is_empty() {
                    let _ = writeln!(out, "  derivation: {}", rendered.join("; "));
                }
            }
            render(
                &engine,
                &outcome.refinements[0].slcas,
                opts.max_render,
                &mut out,
            );
        }
        eprint!("query> ");
    }
    ExitCode::SUCCESS
}

fn render(engine: &XRefineEngine, slcas: &[xmldom::Dewey], max: usize, out: &mut impl Write) {
    for d in slcas.iter().take(max) {
        if let Some(xml) = engine.render(d) {
            let _ = writeln!(out, "--- result at {d} ---");
            for line in xml.lines().take(12) {
                let _ = writeln!(out, "  {line}");
            }
        }
    }
}

//! Tables III–VI: the query sets for each refinement operation — the
//! original (broken) query, the suggested replacement (ground truth by
//! construction), the engine's actual Top-1 refinement, and the result
//! size of that refinement.

use bench::{dblp, engine, Table};
use datagen::{generate_workload, PerturbKind, WorkloadConfig};
use xrefine::{Algorithm, Query};

fn main() {
    let doc = dblp(0.25);
    let workload = generate_workload(
        &doc,
        &WorkloadConfig {
            per_kind: 4,
            ..Default::default()
        },
    );
    let e = engine(doc, Algorithm::Partition, 1);

    let sections = [
        (PerturbKind::ExtraTerm, "Table III: term deletion"),
        (PerturbKind::SplitKeyword, "Table IV: term merging"),
        (PerturbKind::MergedKeywords, "Table V: term split"),
        (PerturbKind::Typo, "Table VI(a): spelling substitution"),
        (PerturbKind::Synonym, "Table VI(b): synonym substitution"),
        (PerturbKind::Stemming, "Table VI(c): stemming substitution"),
    ];

    for (kind, title) in sections {
        println!("\n== {title} ==\n");
        let mut t = Table::new(&[
            "original query",
            "intended (annotator)",
            "engine Top-1 RQ",
            "dSim",
            "size",
        ]);
        for wq in workload.iter().filter(|q| q.kind == kind) {
            let out = e
                .answer_query(Query::from_keywords(wq.keywords.iter().cloned()))
                .expect("query answered");
            let (rq, ds, size) = match out.best() {
                Some(r) => (
                    r.candidate.keywords.join(","),
                    format!("{}", r.candidate.dissimilarity),
                    format!("{}", r.slcas.len()),
                ),
                None => ("(none)".into(), "-".into(), "0".into()),
            };
            t.row(vec![
                wq.keywords.join(","),
                wq.intended.join(","),
                rq,
                ds,
                size,
            ]);
        }
        t.print();
    }
}

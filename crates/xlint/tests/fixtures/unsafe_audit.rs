// xlint-fixture: path=crates/xserve/src/signal.rs
// Every production `unsafe` needs an `xlint::safety(...)` invariant on
// the same line or the line above; the annotations feed SAFETY.md.

fn annotated_above() {
    // xlint::safety(act outlives the syscall; layout matches the x86_64 kernel ABI)
    unsafe { raw_syscall() }
}

fn annotated_same_line() {
    unsafe { raw_syscall() } // xlint::safety(argument registers hold valid pointers)
}

fn unannotated() {
    unsafe { raw_syscall() }
}

fn empty_invariant() {
    // xlint::safety()
    unsafe { raw_syscall() }
}

fn mentions_in_prose_only() {
    // this fn discusses unsafe code in a comment and a string
    let _doc = "unsafe { .. } requires an invariant";
}

#[cfg(test)]
mod tests {
    fn t() {
        unsafe { raw_syscall() }
    }
}

//! Shared pieces of the SLCA algorithms: candidate filtering and the
//! brute-force reference implementation used by the test suite.

use invindex::Posting;
use xmldom::Dewey;

/// Reduces a bag of "contains all keywords" candidates to the SLCA set:
/// sorts, deduplicates and removes every candidate that is a proper
/// ancestor of another.
///
/// Correctness of the consecutive-pair check: in Dewey (pre-)order any
/// label strictly between an ancestor `a` and its descendant `b` is itself
/// inside `a`'s subtree, so after sorting, an ancestor is followed
/// immediately by elements of its own subtree; scanning from the right and
/// dropping `c[i]` whenever it is an ancestor of the *surviving* successor
/// removes exactly the non-minimal candidates.
pub fn minimal_candidates(mut candidates: Vec<Dewey>) -> Vec<Dewey> {
    candidates.sort();
    candidates.dedup();
    let mut out: Vec<Dewey> = Vec::with_capacity(candidates.len());
    for c in candidates.into_iter().rev() {
        if out.last().map(|s| c.is_ancestor_of(s)).unwrap_or(false) {
            continue;
        }
        out.push(c);
    }
    out.reverse();
    out
}

/// Reference SLCA: intersects the ancestor-or-self closures of every
/// keyword's match list and keeps the minimal elements. Exponential in
/// nothing, linear in `matches × depth` — used as the oracle in tests.
pub fn slca_brute_force<S: AsRef<[Posting]>>(lists: &[S]) -> Vec<Dewey> {
    use std::collections::HashSet;
    let lists: Vec<&[Posting]> = lists.iter().map(AsRef::as_ref).collect();
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }
    let closure = |list: &[Posting]| -> HashSet<Vec<u32>> {
        let mut set = HashSet::new();
        for p in list {
            let comps = p.dewey.components();
            for m in 1..=comps.len() {
                set.insert(comps[..m].to_vec());
            }
        }
        set
    };
    let mut common = closure(lists[0]);
    for l in &lists[1..] {
        let next = closure(l);
        common.retain(|c| next.contains(c));
    }
    let candidates: Vec<Dewey> = common
        .into_iter()
        .map(|c| Dewey::new(c).expect("non-empty"))
        .collect();
    minimal_candidates(candidates)
}

/// The element of `list` whose LCA with `anchor` is deepest: the better of
/// the predecessor (`<= anchor`) and successor (`> anchor`) under the
/// longest-common-prefix measure. `None` on an empty list.
///
/// Returns a borrow into `list`: this runs once per (anchor, list) pair on
/// the eager/multiway hot paths, so it must not clone the matched label.
pub fn closest_match<'a>(list: &'a [Posting], anchor: &Dewey) -> Option<&'a Dewey> {
    if list.is_empty() {
        return None;
    }
    let idx = list.partition_point(|p| p.dewey <= *anchor);
    let pred = idx.checked_sub(1).map(|i| &list[i].dewey);
    let succ = list.get(idx).map(|p| &p.dewey);
    match (pred, succ) {
        (Some(p), Some(s)) => {
            if anchor.common_prefix_len(p) >= anchor.common_prefix_len(s) {
                Some(p)
            } else {
                Some(s)
            }
        }
        (Some(p), None) => Some(p),
        (None, Some(s)) => Some(s),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmldom::NodeTypeId;

    fn ps(labels: &[&str]) -> Vec<Posting> {
        labels
            .iter()
            .map(|s| Posting::new(s.parse().unwrap(), NodeTypeId(0)))
            .collect()
    }

    fn d(s: &str) -> Dewey {
        s.parse().unwrap()
    }

    #[test]
    fn minimal_candidates_removes_ancestors_and_dupes() {
        let got = minimal_candidates(vec![d("0"), d("0.0"), d("0.0.1"), d("0.1"), d("0.0.1")]);
        assert_eq!(got, vec![d("0.0.1"), d("0.1")]);
    }

    #[test]
    fn minimal_candidates_chain_of_ancestors() {
        let got = minimal_candidates(vec![d("0"), d("0.0"), d("0.0.0"), d("0.0.0.0")]);
        assert_eq!(got, vec![d("0.0.0.0")]);
    }

    #[test]
    fn brute_force_single_list_keeps_deepest_matches() {
        let l = ps(&["0.0", "0.0.1", "0.2"]);
        let got = slca_brute_force(&[&l]);
        assert_eq!(got, vec![d("0.0.1"), d("0.2")]);
    }

    #[test]
    fn brute_force_two_lists() {
        // figure-1-like: xml in 0.0.2.0.0 and 0.1.1.0.0; john in 0.1.0
        let xml = ps(&["0.0.2.0.0", "0.1.1.0.0"]);
        let john = ps(&["0.1.0"]);
        let got = slca_brute_force(&[&xml, &john]);
        assert_eq!(got, vec![d("0.1")]);
    }

    #[test]
    fn brute_force_empty_inputs() {
        let l = ps(&["0.0"]);
        let none: [&[Posting]; 0] = [];
        let pair: [&[Posting]; 2] = [&l, &[]];
        assert!(slca_brute_force(&none).is_empty());
        assert!(slca_brute_force(&pair).is_empty());
    }

    #[test]
    fn closest_match_picks_deeper_side() {
        let l = ps(&["0.0.1", "0.2.5"]);
        // anchor 0.2.4: pred 0.0.1 (lca 0), succ 0.2.5 (lca 0.2) -> succ
        assert_eq!(closest_match(&l, &d("0.2.4")).unwrap(), &d("0.2.5"));
        // anchor 0.0.2: pred 0.0.1 (lca 0.0), succ 0.2.5 (lca 0) -> pred
        assert_eq!(closest_match(&l, &d("0.0.2")).unwrap(), &d("0.0.1"));
        assert_eq!(closest_match(&[], &d("0")), None);
    }
}

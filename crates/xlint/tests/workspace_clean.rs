//! Meta-test: the live workspace must be xlint-clean. This is the same
//! check CI's `analysis` job runs via `cargo run -p xlint -- --workspace`,
//! kept as a test so plain `cargo test` catches regressions too.

#[test]
fn live_workspace_has_no_findings() {
    let root = xlint::workspace::default_root();
    // When the crate is vendored or built outside the workspace the
    // config files won't exist; that's not a lint failure.
    if !root.join("crates/xlint/lockorder.toml").exists() {
        eprintln!("skipping: {} is not the workspace root", root.display());
        return;
    }
    let findings = xlint::workspace::lint_workspace(&root).expect("workspace lints");
    let rendered: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{} {} — {}", f.path, f.line, f.rule, f.message))
        .collect();
    assert!(
        findings.is_empty(),
        "workspace must be xlint-clean, found {}:\n{}",
        findings.len(),
        rendered.join("\n")
    );
}

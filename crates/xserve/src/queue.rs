//! Bounded request queues with load-shedding semantics.
//!
//! [`BoundedQueue`] is a hand-rolled MPMC queue (`Mutex<VecDeque>` +
//! `Condvar` — the workspace owns its substrates) whose `try_push`
//! *never blocks and never grows past capacity*: admission control is a
//! property of the queue, not a convention of its callers.
//! [`ShardedQueue`] splits capacity across one queue per worker and
//! routes with two-choice placement, probing shard depths through
//! relaxed atomics so no path ever holds two shard locks at once (the
//! `serve.queue` rank covers every shard; nesting them would be a
//! same-rank acquisition, which both xlint's `lock-order` rule and the
//! runtime rank checker reject).
//!
//! Poisoning is deliberately ignored (`unwrap_or_else(into_inner)`): a
//! panicking worker must not wedge the accept path, and queue state —
//! lengths and a closed flag — is valid after any partial mutation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

use obs::lockrank::{self, rank};

/// Why a push was refused. The item is handed back so the caller can
/// answer the client (shedding must not drop the response channel).
#[derive(Debug)]
pub enum PushError<T> {
    /// Queue at capacity — shed the request (`503` upstream).
    Full(T),
    /// Queue closed by drain — no new work is admitted.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue. `pop` blocks until an item arrives or the
/// queue is closed *and* empty — so closing guarantees every admitted
/// item is still handed to a worker (the drain invariant).
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
    capacity: usize,
    /// Lock-free depth mirror for routing probes; maintained on every
    /// successful push/pop under the lock.
    depth: AtomicUsize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
        }
    }

    /// Current depth, approximately (relaxed read; exact under the lock).
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Non-blocking push; refuses rather than waits.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let _rank = lockrank::acquire(rank::SERVE_QUEUE, "serve.queue");
        let mut state = self
            .state
            .lock() // xlint::lock(serve.queue)
            .unwrap_or_else(PoisonError::into_inner);
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        self.depth.store(state.items.len(), Ordering::Relaxed);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocking pop. Returns `None` only once the queue is closed and
    /// every admitted item has been popped.
    pub fn pop(&self) -> Option<T> {
        let _rank = lockrank::acquire(rank::SERVE_QUEUE, "serve.queue");
        let mut state = self
            .state
            .lock() // xlint::lock(serve.queue)
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(item) = state.items.pop_front() {
                self.depth.store(state.items.len(), Ordering::Relaxed);
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .cond
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops admission and wakes every blocked popper. Items already
    /// queued remain poppable — close-then-drain, never close-and-drop.
    pub fn close(&self) {
        let _rank = lockrank::acquire(rank::SERVE_QUEUE, "serve.queue");
        let mut state = self
            .state
            .lock() // xlint::lock(serve.queue)
            .unwrap_or_else(PoisonError::into_inner);
        state.closed = true;
        self.cond.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        let _rank = lockrank::acquire(rank::SERVE_QUEUE, "serve.queue");
        self.state
            .lock() // xlint::lock(serve.queue)
            .unwrap_or_else(PoisonError::into_inner)
            .closed
    }
}

/// One [`BoundedQueue`] per worker with two-choice routing: probe two
/// shards' depths (relaxed), push to the shallower; on `Full`, try the
/// other before shedding. Keeps tail latency close to a single shared
/// queue while letting each worker pop from its own shard uncontended.
pub struct ShardedQueue<T> {
    shards: Vec<BoundedQueue<T>>,
    /// Rotates the probe pair so uniform load spreads over all shards.
    cursor: AtomicUsize,
}

impl<T> ShardedQueue<T> {
    /// `total_capacity` is divided across `shards` queues (each gets at
    /// least 1 slot).
    pub fn new(shards: usize, total_capacity: usize) -> ShardedQueue<T> {
        let shards = shards.max(1);
        let per_shard = (total_capacity / shards).max(1);
        ShardedQueue {
            shards: (0..shards).map(|_| BoundedQueue::new(per_shard)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total queued items across shards (approximate).
    pub fn len(&self) -> usize {
        self.shards.iter().map(BoundedQueue::len).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shard handle for worker `i` (workers pop their own shard).
    pub fn shard(&self, i: usize) -> Option<&BoundedQueue<T>> {
        self.shards.get(i)
    }

    /// Two-choice push. `Err(Full)` means both probed shards (and, for
    /// the 1-shard case, the only shard) refused — shed upstream.
    pub fn push(&self, item: T) -> Result<usize, PushError<T>> {
        let n = self.shards.len();
        let c = self.cursor.fetch_add(1, Ordering::Relaxed);
        let a = c % n;
        let b = if n > 1 { (c / n + 1 + a) % n } else { a };
        let (first, second) = match (self.shards.get(a), self.shards.get(b)) {
            (Some(qa), Some(qb)) => {
                if qb.len() < qa.len() {
                    ((b, qb), (a, qa))
                } else {
                    ((a, qa), (b, qb))
                }
            }
            _ => return Err(PushError::Closed(item)), // shards is non-empty; unreachable
        };
        match first.1.try_push(item) {
            Ok(()) => Ok(first.0),
            Err(PushError::Full(item)) if second.0 != first.0 => {
                second.1.try_push(item).map(|()| second.0)
            }
            Err(e) => Err(e),
        }
    }

    /// Closes every shard (drain entry point).
    pub fn close(&self) {
        for q in &self.shards {
            q.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn push_pop_roundtrip_in_order() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn full_queue_refuses_and_returns_item() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        match q.try_push("c") {
            Err(PushError::Full(item)) => assert_eq!(item, "c"),
            other => panic!("expected Full, got {other:?}"),
        }
    }

    #[test]
    fn closed_queue_drains_admitted_items_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(10).unwrap();
        q.try_push(20).unwrap();
        q.close();
        match q.try_push(30) {
            Err(PushError::Closed(item)) => assert_eq!(item, 30),
            other => panic!("expected Closed, got {other:?}"),
        }
        // Close-then-drain: both admitted items still come out…
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(20));
        // …and only then does pop report end-of-queue.
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(BoundedQueue::<u32>::new(4));
        let popper = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.pop())
        };
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(popper.join().unwrap(), None);
    }

    #[test]
    fn mpmc_under_contention_loses_nothing() {
        let q = Arc::new(BoundedQueue::<usize>::new(1024));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    for i in 0..100 {
                        while q.try_push(p * 100 + i).is_err() {
                            thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_routing_spreads_and_sheds() {
        let sq = ShardedQueue::new(4, 8); // 2 slots per shard
        let mut admitted = 0;
        for i in 0..64 {
            if sq.push(i).is_ok() {
                admitted += 1;
            }
        }
        // Capacity is a hard ceiling and two-choice fills it fully.
        assert_eq!(admitted, 8);
        assert_eq!(sq.len(), 8);
        for s in 0..sq.num_shards() {
            assert_eq!(sq.shard(s).unwrap().len(), 2, "shard {s} imbalance");
        }
    }

    #[test]
    fn sharded_close_ends_every_shard() {
        let sq = ShardedQueue::new(2, 4);
        sq.push(1).unwrap();
        sq.close();
        assert!(matches!(sq.push(2), Err(PushError::Closed(2))));
        let drained: usize = (0..sq.num_shards())
            .map(|s| {
                let mut n = 0;
                while sq.shard(s).unwrap().pop().is_some() {
                    n += 1;
                }
                n
            })
            .sum();
        assert_eq!(drained, 1);
    }

    #[test]
    fn single_shard_degenerates_cleanly() {
        let sq = ShardedQueue::new(1, 2);
        assert!(sq.push(1).is_ok());
        assert!(sq.push(2).is_ok());
        assert!(matches!(sq.push(3), Err(PushError::Full(3))));
    }
}

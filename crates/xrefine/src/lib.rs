//! `xrefine` — the paper's primary contribution: automatic XML keyword
//! query refinement.
//!
//! During the processing of a query `Q`, the engine decides whether `Q`
//! has any *meaningful SLCA* result (Definitions 3.3/3.4); if not, it
//! finds the Top-K refined queries — assured to have meaningful results —
//! together with those results, within one scan of the keyword inverted
//! lists.
//!
//! * [`query`]: queries and refined-query candidates;
//! * [`dp`]: the dynamic program `getOptimalRQ` of §V (Formula 11);
//! * [`ranking`]: the ranking model of §IV (Formulas 1–10 with the
//!   guideline ablations RS1–RS4 and the α/β weights);
//! * [`rqlist`]: the Top-2K running candidate list;
//! * [`mod@stack_refine`]: Algorithm 1;
//! * [`partition`]: Algorithm 2 (partition-based Top-K);
//! * [`sle`]: Algorithm 3 (short-list eager Top-K);
//! * [`engine`]: the XRefine prototype facade;
//! * [`live`]: the updatable engine over an online-maintained store.

pub mod dp;
pub mod engine;
pub mod live;
pub mod narrow;
pub mod partition;
pub mod query;
pub mod ranking;
pub mod results;
pub mod rqlist;
pub mod session;
pub mod sle;
pub mod stack_refine;
pub mod util;

pub use dp::{
    brute_force_rqs, explain_rq, get_optimal_rq, get_top_optimal_rqs, AppliedOp, DpResult,
};
pub use engine::{Algorithm, EngineConfig, PhaseTimings, XRefineEngine};
pub use live::LiveEngine;
pub use narrow::{narrow_refine, NarrowOptions, Narrowing};
pub use partition::{partition_refine, PartitionOptions, SlcaMethod};
pub use query::{Query, RqCandidate};
pub use ranking::{Ranker, RankingConfig};
pub use results::{DegradedKeyword, QueryFailure, RefineOutcome, Refinement};
pub use rqlist::RqSortedList;
pub use session::RefineSession;
pub use sle::{sle_refine, SleOptions};
pub use stack_refine::stack_refine;
pub use util::KeyMask;

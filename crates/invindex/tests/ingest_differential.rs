//! Differential oracle: streaming vs DOM ingest.
//!
//! Over 200+ seeded corpora — DBLP-shaped, baseball-shaped, and
//! handcrafted structural edge cases (deep nesting, wide flat fan-out,
//! CDATA, comments, PIs, entities, attributes, mixed content, Unicode)
//! — the streaming builder must produce
//!
//! 1. byte-identical *persisted stores* to `Index::build` over the
//!    parsed DOM (the strongest equivalence: keyword interning order,
//!    posting lists, every statistics table, the embedded document
//!    blob), at every thread count, and
//! 2. an identical Dewey label set from the streaming labeller alone
//!    ([`xmldom::DeweyTracker`], no builder involved).

use datagen::{generate_baseball, generate_dblp, BaseballConfig, DblpConfig};
use invindex::{build_streaming, persist, Index};
use kvstore::{DiskKv, KvStore, MemKv};
use std::path::PathBuf;
use std::sync::Arc;
use xmldom::scan::{scan_with, ScanSink, Span};
use xmldom::{parse_document, DeweyTracker};

/// Every key/value pair of a store, in key order.
fn dump(store: &dyn KvStore) -> Vec<(Vec<u8>, Vec<u8>)> {
    store.scan_range(b"", None).unwrap()
}

fn persisted(index: &Index) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut store = MemKv::new();
    persist::persist(index, &mut store).unwrap();
    dump(&store)
}

/// The full oracle for one document: store byte-identity at several
/// thread counts plus Dewey-label-set identity.
fn check(xml: &str, label: &str) {
    let doc = Arc::new(parse_document(xml).unwrap_or_else(|e| panic!("{label}: parse: {e}")));
    let dom = persisted(&Index::build(Arc::clone(&doc)));
    for threads in [1, 3] {
        let idx = build_streaming(xml, threads)
            .unwrap_or_else(|e| panic!("{label}: streaming ({threads}t): {e}"));
        let stream = persisted(&idx);
        assert_eq!(
            dom.len(),
            stream.len(),
            "{label} ({threads}t): entry count differs"
        );
        for ((ka, va), (kb, vb)) in dom.iter().zip(stream.iter()) {
            assert_eq!(ka, kb, "{label} ({threads}t): key sequence diverges");
            assert_eq!(
                va,
                vb,
                "{label} ({threads}t): value differs at key {:?}",
                String::from_utf8_lossy(ka)
            );
        }
    }

    // Streaming Dewey labeller alone reproduces the DOM label set.
    struct Labels {
        tracker: DeweyTracker,
        labels: Vec<Vec<u32>>,
    }
    impl ScanSink for Labels {
        fn start_tag(&mut self, _n: Span, _a: Span) {
            let l = self.tracker.start_element().to_vec();
            self.labels.push(l);
        }
        fn end_tag(&mut self) {
            self.tracker.end_element();
        }
        fn text(&mut self, _s: Span, _c: bool) {}
    }
    let mut sink = Labels {
        tracker: DeweyTracker::new(),
        labels: Vec::new(),
    };
    scan_with(xml, &mut sink).unwrap_or_else(|e| panic!("{label}: rescan: {e}"));
    let dom_labels: Vec<Vec<u32>> = doc
        .nodes()
        .map(|(_, n)| n.dewey.components().to_vec())
        .collect();
    assert_eq!(sink.labels, dom_labels, "{label}: Dewey label sets differ");
}

#[test]
fn dblp_corpora_across_seeds() {
    // 150 structurally distinct documents: the seed drives every random
    // choice (names, containers, title lengths, optional leaves).
    for seed in 0..150u64 {
        let cfg = DblpConfig {
            authors: 2 + (seed as usize % 5),
            seed: 0x5EED_0000 + seed,
            ..Default::default()
        };
        let xml = generate_dblp(&cfg).to_xml();
        check(&xml, &format!("dblp seed {seed}"));
    }
}

#[test]
fn baseball_corpora_across_seeds() {
    for seed in 0..40u64 {
        let cfg = BaseballConfig {
            leagues: 1,
            divisions_per_league: 1 + (seed as usize % 2),
            teams_per_division: 2,
            players_per_team: 3,
            seed: 0xBA5E_0000 + seed,
        };
        let xml = generate_baseball(&cfg).to_xml();
        check(&xml, &format!("baseball seed {seed}"));
    }
}

#[test]
fn structural_edge_cases() {
    let mut cases: Vec<(String, String)> = Vec::new();

    // Deep nesting (well under the scanner's depth bound).
    for depth in [5usize, 120, 600] {
        let mut xml = String::new();
        for i in 0..depth {
            xml.push_str(&format!("<level{}>", i % 7));
        }
        xml.push_str("bottom text");
        for i in (0..depth).rev() {
            xml.push_str(&format!("</level{}>", i % 7));
        }
        cases.push((format!("deep-{depth}"), xml));
    }

    // Wide flat fan-out.
    for width in [50usize, 1200] {
        let mut xml = String::from("<flat>");
        for i in 0..width {
            xml.push_str(&format!("<item>value {i}</item>"));
        }
        xml.push_str("</flat>");
        cases.push((format!("wide-{width}"), xml));
    }

    cases.push((
        "cdata".into(),
        "<doc><raw><![CDATA[keep <this> & that]]></raw>\
         <mix>before <![CDATA[middle]]> after</mix>\
         <ws><![CDATA[   ]]></ws></doc>"
            .into(),
    ));
    cases.push((
        "comments-and-pis".into(),
        "<?xml version=\"1.0\"?><!-- head --><doc><!-- inner --><a>x</a>\
         <?target data?><b><!-- b --></b></doc><!-- tail -->"
            .into(),
    ));
    cases.push((
        "entities".into(),
        "<doc a=\"x &amp; y\"><e>&lt;tag&gt; &quot;q&quot; &apos;a&apos;</e>\
         <n>&#65;&#x42;&#x6d;</n><sp>&#32;padded&#32;</sp></doc>"
            .into(),
    ));
    cases.push((
        "attributes".into(),
        "<doc><node one=\"1\" two='second value' empty=\"\"/>\
         <node one=\"repeated tokens one\"/></doc>"
            .into(),
    ));
    cases.push((
        "mixed-content".into(),
        "<p>lead <b>bold</b> middle <i>ital</i> tail</p>".into(),
    ));
    cases.push((
        "unicode".into(),
        "<livre><títul attr=\"café\">über straße 北京 données</títul></livre>".into(),
    ));
    cases.push((
        "whitespace-shapes".into(),
        "<doc>\n  <a>\n    spread\n    over lines\n  </a>\n  <b>  </b>\n</doc>".into(),
    ));
    cases.push((
        "repeated-keywords".into(),
        "<doc><x>word word word</x><x>word</x><y>word other word</y></doc>".into(),
    ));
    cases.push(("single-empty-root".into(), "<root/>".into()));

    assert!(cases.len() >= 12);
    for (label, xml) in &cases {
        check(xml, label);
    }
}

#[test]
fn disk_files_are_byte_identical_on_a_medium_corpus() {
    let dir = std::env::temp_dir().join(format!("ingest_diff_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let tmp = |name: &str| -> PathBuf {
        let p = dir.join(name);
        let _ = std::fs::remove_file(&p);
        p
    };

    let xml = generate_dblp(&DblpConfig {
        authors: 80,
        ..Default::default()
    })
    .to_xml();
    let dom = Index::build(Arc::new(parse_document(&xml).unwrap()));
    let stream = build_streaming(&xml, 4).unwrap();

    let dom_path = tmp("dom.db");
    let stream_path = tmp("stream.db");
    {
        let mut store = DiskKv::open(&dom_path).unwrap();
        persist::persist(&dom, &mut store).unwrap();
    }
    {
        let mut store = DiskKv::open(&stream_path).unwrap();
        persist::persist(&stream, &mut store).unwrap();
    }
    let a = std::fs::read(&dom_path).unwrap();
    let b = std::fs::read(&stream_path).unwrap();
    assert!(
        a == b,
        "store files are not byte-identical (first divergence at offset {})",
        a.iter()
            .zip(b.iter())
            .position(|(x, y)| x != y)
            .unwrap_or(0)
    );
    std::fs::remove_file(&dom_path).unwrap();
    std::fs::remove_file(&stream_path).unwrap();
}

//! Meaningful SLCA (Definitions 3.3 and 3.4).
//!
//! An SLCA result is *meaningful* when it is a self-or-descendant of some
//! inferred search-for node type; a query *needs refinement* when it has
//! no meaningful SLCA at all.

use crate::searchfor::{infer_search_for, SearchForConfig};
use invindex::{IndexReader, KeywordId};
use xmldom::{Dewey, Document, NodeTypeId};

/// A meaningfulness filter bound to one query's search-for candidates.
pub struct MeaningfulFilter<'a> {
    doc: &'a Document,
    candidates: Vec<NodeTypeId>,
}

impl<'a> MeaningfulFilter<'a> {
    /// Builds the filter by inferring search-for candidates for `query`.
    /// Works against any [`IndexReader`] backend — only the document and
    /// the statistics tables are touched, never the posting lists.
    pub fn infer(
        index: &'a dyn IndexReader,
        query: &[KeywordId],
        config: &SearchForConfig,
    ) -> Self {
        let candidates = infer_search_for(index, query, config)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        MeaningfulFilter {
            doc: index.document().as_ref(),
            candidates,
        }
    }

    /// Builds the filter from an explicit candidate type list.
    pub fn with_candidates(doc: &'a Document, candidates: Vec<NodeTypeId>) -> Self {
        MeaningfulFilter { doc, candidates }
    }

    /// The search-for candidate types this filter admits.
    pub fn candidates(&self) -> &[NodeTypeId] {
        &self.candidates
    }

    /// Definition 3.3: `dewey` is meaningful iff the node it denotes is of
    /// a candidate type or a descendant type thereof. Labels not denoting
    /// any element (possible only with foreign labels) are not meaningful.
    pub fn is_meaningful(&self, dewey: &Dewey) -> bool {
        let Some(id) = self.doc.node_by_dewey(dewey) else {
            return false;
        };
        let t = self.doc.node(id).node_type;
        let types = self.doc.node_types();
        self.candidates
            .iter()
            .any(|&c| t == c || types.is_descendant_type(t, c))
    }

    /// Keeps only the meaningful results.
    pub fn filter(&self, slcas: Vec<Dewey>) -> Vec<Dewey> {
        slcas
            .into_iter()
            .filter(|d| self.is_meaningful(d))
            .collect()
    }
}

/// Definition 3.4: does the query (given its SLCA set) need refinement?
pub fn needs_refinement(filter: &MeaningfulFilter<'_>, slcas: &[Dewey]) -> bool {
    !slcas.iter().any(|d| filter.is_meaningful(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eager::slca_scan_eager;
    use invindex::Index;
    use std::sync::Arc;
    use xmldom::fixtures::figure1;

    fn index() -> Index {
        Index::build(Arc::new(figure1()))
    }

    fn kws(idx: &Index, words: &[&str]) -> Vec<KeywordId> {
        words
            .iter()
            .filter_map(|w| idx.vocabulary().get(w))
            .collect()
    }

    fn slcas_of(idx: &Index, words: &[&str]) -> Vec<Dewey> {
        let lists: Vec<&[invindex::Posting]> = words
            .iter()
            .map(|w| idx.list(w).map(|l| l.as_slice()).unwrap_or(&[]))
            .collect();
        slca_scan_eager(&lists)
    }

    #[test]
    fn hobby_result_is_meaningful_under_author() {
        // Table I Q0/RQ0: SLCA of {john, fishing} is hobby's parent chain;
        // hobby:0.1.2 is a descendant of the author search-for node.
        let idx = index();
        let q = kws(&idx, &["john", "fishing"]);
        let filter = MeaningfulFilter::infer(&idx, &q, &SearchForConfig::default());
        let slcas = slcas_of(&idx, &["john", "fishing"]);
        assert!(!slcas.is_empty());
        let kept = filter.filter(slcas);
        assert!(!kept.is_empty());
        assert!(!needs_refinement(&filter, &kept));
    }

    #[test]
    fn root_only_result_triggers_refinement() {
        // Motivating Q4: {xml, john, 2003} is covered only by the root.
        let idx = index();
        let q = kws(&idx, &["xml", "john", "2003"]);
        let filter = MeaningfulFilter::infer(&idx, &q, &SearchForConfig::default());
        let slcas = slcas_of(&idx, &["xml", "john", "2003"]);
        assert_eq!(slcas.len(), 1);
        assert_eq!(slcas[0].to_string(), "0");
        assert!(!filter.is_meaningful(&slcas[0]));
        assert!(needs_refinement(&filter, &slcas));
    }

    #[test]
    fn missing_keyword_means_empty_slca_and_refinement() {
        // Example 1: {database, publication} — "publication" has no match.
        let idx = index();
        let q = kws(&idx, &["database", "publication"]);
        assert_eq!(q.len(), 1); // "publication" absent from vocabulary
        let filter = MeaningfulFilter::infer(&idx, &q, &SearchForConfig::default());
        let slcas = slcas_of(&idx, &["database", "publication"]);
        assert!(slcas.is_empty());
        assert!(needs_refinement(&filter, &slcas));
    }

    #[test]
    fn foreign_label_is_not_meaningful() {
        let idx = index();
        let q = kws(&idx, &["xml"]);
        let filter = MeaningfulFilter::infer(&idx, &q, &SearchForConfig::default());
        assert!(!filter.is_meaningful(&"0.9.9.9".parse().unwrap()));
    }

    #[test]
    fn explicit_candidates_filter() {
        let doc = figure1();
        let author_t = doc.node(doc.node(doc.root()).children[0]).node_type;
        let filter = MeaningfulFilter::with_candidates(&doc, vec![author_t]);
        assert!(filter.is_meaningful(&"0.0".parse().unwrap())); // author itself
        assert!(filter.is_meaningful(&"0.1.2".parse().unwrap())); // hobby below author
        assert!(!filter.is_meaningful(&"0".parse().unwrap())); // root above author
    }
}

//! Shared test/document fixtures.
//!
//! [`figure1`] reconstructs the bibliographic document of the paper's
//! Figure 1. One representational note: the paper assigns text *values*
//! their own Dewey components (a title's text sits at e.g. `0.0.1.0.0.0`),
//! while our model attaches text to its enclosing element, so every label
//! here is one level shallower than the paper's trace labels. LCA/SLCA
//! semantics are unaffected (see DESIGN.md).
//!
//! The fixture preserves all behaviours the paper derives from Figure 1:
//!
//! * `{database, publication}` has no match for `publication`; the data
//!   uses `proceedings` / `article` / `inproceedings` instead (Example 1);
//! * two `inproceedings` nodes contain "XML" (`f^inproceedings_XML = 2`);
//! * `{xml, john, 2003}` is only covered jointly by the document root
//!   (motivating query Q4);
//! * `hobby` is the last child of the second author, so a query matching
//!   it has its SLCA at `hobby:0.1.2` (Table I, Q0/RQ0);
//! * "on line data base"-style keyword fragments are scattered so the
//!   Example 4 / Example 5 refinement traces have analogues.

use crate::tree::{Document, DocumentBuilder};

/// Builds the Figure 1 bibliography document.
pub fn figure1() -> Document {
    let mut b = DocumentBuilder::new();
    b.open_element("bib");

    // author:0.0 — Mike Franklin
    b.open_element("author");
    b.leaf("name", "Mike Franklin");
    b.leaf("interest", "data stream management");
    b.open_element("publications");
    {
        b.open_element("inproceedings"); // 0.0.2.0
        b.leaf("title", "base line XML query processing");
        b.leaf("year", "2000");
        b.leaf("booktitle", "SIGMOD");
        b.close_element();

        b.open_element("inproceedings"); // 0.0.2.1
        b.leaf("title", "online database tuning");
        b.leaf("year", "2003");
        b.leaf("booktitle", "VLDB");
        b.close_element();

        b.open_element("article"); // 0.0.2.2
        b.leaf("title", "adaptive query optimization in database systems");
        b.leaf("year", "2003");
        b.leaf("journal", "TODS");
        b.close_element();
    }
    b.close_element(); // publications
    b.close_element(); // author 0.0

    // author:0.1 — John Smith
    b.open_element("author");
    b.leaf("name", "John Smith");
    b.open_element("proceedings"); // synonym container, Example 1
    {
        b.open_element("inproceedings"); // 0.1.1.0
        b.leaf("title", "XML keyword search");
        b.leaf("year", "2005");
        b.leaf("booktitle", "ICDE");
        b.close_element();

        b.open_element("article"); // 0.1.1.1
        b.leaf("title", "data base management systems");
        b.leaf("year", "2004");
        b.leaf("journal", "VLDB Journal");
        b.close_element();
    }
    b.close_element(); // proceedings
    b.leaf("hobby", "fishing"); // 0.1.2
    b.close_element(); // author 0.1

    b.close_element(); // bib
    b.finish()
}

/// A deliberately tiny document for edge-case tests: a root with one leaf.
pub fn tiny() -> Document {
    let mut b = DocumentBuilder::new();
    b.open_element("root");
    b.leaf("leaf", "solo keyword");
    b.close_element();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    #[test]
    fn figure1_shape_matches_paper_constraints() {
        let doc = figure1();
        // hobby is at 0.1.2
        let hobby = doc.node_by_dewey(&"0.1.2".parse().unwrap()).unwrap();
        assert_eq!(doc.tag_name(hobby), "hobby");
        // exactly two inproceedings subtrees contain "XML"
        let n_inproc_with_xml = doc
            .nodes()
            .filter(|(id, _)| doc.tag_name(*id) == "inproceedings")
            .filter(|(id, _)| {
                doc.descendants_or_self(*id)
                    .any(|d| tokenize(&doc.node(d).text).iter().any(|t| t == "xml"))
            })
            .count();
        assert_eq!(n_inproc_with_xml, 2);
        // "publication" never appears as a token anywhere
        let has_publication = doc.nodes().any(|(id, n)| {
            tokenize(doc.tag_name(id)).contains(&"publication".to_string())
                || tokenize(&n.text).contains(&"publication".to_string())
        });
        assert!(!has_publication);
    }

    #[test]
    fn figure1_q4_only_joint_cover_is_root() {
        // {xml, john, 2003}: john appears only under author 0.1, 2003 only
        // under author 0.0, so the root is the only node covering all.
        let doc = figure1();
        let john_holders: Vec<_> = doc
            .nodes()
            .filter(|(_, n)| tokenize(&n.text).contains(&"john".to_string()))
            .map(|(_, n)| n.dewey.clone())
            .collect();
        let y2003_holders: Vec<_> = doc
            .nodes()
            .filter(|(_, n)| tokenize(&n.text).contains(&"2003".to_string()))
            .map(|(_, n)| n.dewey.clone())
            .collect();
        assert!(!john_holders.is_empty() && !y2003_holders.is_empty());
        for j in &john_holders {
            for y in &y2003_holders {
                assert_eq!(j.lca(y).unwrap().to_string(), "0");
            }
        }
    }
}
